#!/usr/bin/env bash
# Canonical tier-1 CI entry point.
#
# Everything here runs fully offline: the workspace has no registry
# dependencies (see DESIGN.md, "Hermetic builds"), so a clean checkout
# with only the Rust toolchain passes this script with zero network
# access.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --release --offline --workspace
run cargo test -q --offline

# Chaos soak: re-run the fault-injection property suite at an elevated
# case count. Failures print a SAG_PROP_SEED replay line.
echo "==> SAG_PROP_CASES=150 cargo test -p sag-integration --test chaos_pipeline -q --offline"
SAG_PROP_CASES=150 cargo test -p sag-integration --test chaos_pipeline -q --offline

# Ledger parity soak: the incremental-vs-brute SNR contract at an
# elevated case count (tentpole invariant of the interference ledger).
echo "==> SAG_PROP_CASES=150 cargo test -p sag-integration --test ledger_parity -q --offline"
SAG_PROP_CASES=150 cargo test -p sag-integration --test ledger_parity -q --offline

# LP parity soak: the sparse revised simplex against the dense tableau
# oracle (differential rig), warm-vs-cold B&B incumbents, refactor
# cadence bit-stability, and CscMatrix construction fuzz.
echo "==> SAG_PROP_CASES=150 cargo test -p sag-integration --test lp_parity -q --offline"
SAG_PROP_CASES=150 cargo test -p sag-integration --test lp_parity -q --offline

# Churn soak: arbitrary seeded event streams must end in a typed error
# or an audit-clean, feasible, bounded-degradation placement; includes
# the starved-budget, worker-panic and ledger-desync chaos arms.
echo "==> SAG_PROP_CASES=150 cargo test -p sag-integration --test churn_pipeline -q --offline"
SAG_PROP_CASES=150 cargo test -p sag-integration --test churn_pipeline -q --offline

# Solver-backend matrix: the integration suite must stay green when
# SAG_SOLVER forces every zone onto a heuristic backend. Tests that
# assert exact-path behaviour pin their builder explicitly, so the
# override only reaches code that must be backend-agnostic.
for solver in greedy lp_round; do
    echo "==> SAG_SOLVER=${solver} cargo test -p sag-integration -q --offline"
    SAG_SOLVER=${solver} cargo test -p sag-integration -q --offline
done

# Sweep smoke under the heuristic backend override: a real figure sweep
# (the cache-heavy Fig. 3(e) shape) driven end to end through the
# batched engine with SAG_SOLVER=greedy, proving the engine and the
# backend override compose outside the test harness.
echo "==> SAG_SOLVER=greedy cargo run --release --offline -p sag-sim --bin repro -- fig3e --runs 1"
SAG_SOLVER=greedy cargo run --release --offline -p sag-sim --bin repro -- fig3e --runs 1 > /dev/null

# SNR engine benchmark: brute vs ledger on the 100-subscriber probe
# workload. Emits BENCH_snr.json and enforces the 5x speedup floor.
run cargo run --release --offline -p sag-bench --bin bench_snr -- --out BENCH_snr.json --min-speedup 5

# Observability overhead gate: the disabled instrumentation path must
# stay within 2% of the hand-composed uninstrumented pipeline. Emits
# BENCH_obs.json (parity between the paths is asserted before timing).
run cargo run --release --offline -p sag-bench --bin bench_obs -- --out BENCH_obs.json --max-overhead 1.02

# Zone-parallel engine gate: byte-identical deployments at threads=1
# vs threads=4 (always asserted), and a >=2x lower-tier speedup on the
# 8-zone probe. Emits BENCH_par.json. The speedup gate self-skips on
# hosts without 4 hardware threads — a single-core runner physically
# cannot show wall-clock speedup, but the determinism contract still
# holds and is still enforced there.
run cargo run --release --offline -p sag-bench --bin bench_par -- --out BENCH_par.json --min-speedup 2 --threads 4

# LP core benchmark: dense tableau vs sparse revised simplex on the
# 96-zone cover probe (>=3x floor) and cold vs warm-started B&B node
# throughput (>=1.5x floor). Parity is asserted before any timing.
# Emits BENCH_lp.json. Both gates self-skip below the 16-zone minimum
# instance size (--zones), where constants, not asymptotics, decide.
run cargo run --release --offline -p sag-bench --bin bench_lp -- --out BENCH_lp.json --min-speedup 3 --min-warm-speedup 1.5

# Churn repair benchmark: incremental dirty-zone repair vs a
# from-scratch SAMC per event on the 16-zone clustered probe. A mixed
# seeded trace must replay audit-clean before timing. Emits
# BENCH_churn.json with p50/p99 per-event repair latency; gates the
# median repair speedup at >=5x and the p99 latency at <=500us. The
# gate self-skips below the per-event timing floor, where the ratio
# would measure the timer rather than the engine.
run cargo run --release --offline -p sag-bench --bin bench_churn -- --out BENCH_churn.json --min-speedup 5 --max-p99-us 500

# Solver-backend benchmark: adaptive per-zone selection vs an all-exact
# lower tier on the 16-zone dense clustered probe. Both arms must pass
# the independent report audit before timing (equal feasibility), and
# the adaptive arm must route zones away from the exact backend. Emits
# BENCH_backends.json; gates the lower-tier speedup at >=1.5x. The gate
# self-skips below the timing floor, where the ratio would measure the
# timer rather than the selector.
run cargo run --release --offline -p sag-bench --bin bench_backends -- --out BENCH_backends.json --min-speedup 1.5

# Batched sweep engine gate: the fingerprint-cached engine vs the
# per-cell path on the Fig. 3(e)-shaped probe (scenarios fixed, GAC
# grid marching). Byte-identical CellStats are asserted before timing
# at threads=1/N, cold/warm cache and a shuffled work queue; then the
# sweep-cells-per-second speedup is gated at >=4x. The speedup is
# cache-driven, so it is enforced at any hardware thread count; the
# gate self-skips (machine-readably, honoring SAG_BENCH_STRICT) only
# when the reference sweep is too fast for the timer to resolve. Emits
# BENCH_sweep.json.
run cargo run --release --offline -p sag-bench --bin bench_sweep -- --out BENCH_sweep.json --min-speedup 4

# Churn chaos smoke: a short seeded trace through every chaos arm
# (burst, boundary hop, worker panic, ledger desync); every arm must
# score a full pass on the typed-error-or-audit-clean contract.
echo "==> cargo run --release --offline -p sag-sim --bin repro -- churn_chaos --fast"
churn_chaos_out=$(cargo run --release --offline -p sag-sim --bin repro -- churn_chaos --fast)
echo "${churn_chaos_out}"
echo "${churn_chaos_out}" | awk '$1 ~ /^[0-9]+$/ && $2 != "1.00" {
    print "churn chaos arm " $1 " broke the contract (pass=" $2 ")"; bad = 1
} END { exit bad }'

# Forensics chaos arm: every typed failure class (worker panic, ledger
# desync, budget exhaustion, portfolio loser panic/hang, churn
# deferral) must emit exactly one parseable post-mortem dump frame,
# and the analyzer must reconstruct each capture into a single span
# tree at 1, 2 and 4 threads. Run in release — the same optimized
# shape a production crash capture would have (the suite arms the
# flight recorder itself).
echo "==> cargo test --release -p sag-integration --test forensics_pipeline -q --offline"
cargo test --release -p sag-integration --test forensics_pipeline -q --offline

# JSONL sink smoke: a real repro run with SAG_OBS_JSON set must emit a
# capture in which every line parses, every stage has a span, the
# run_end trailer carries the dropped_events/ring_overflow loss
# accounting, and the solver work counters are present. The same
# capture must then feed the trace analyzer end to end.
echo "==> SAG_OBS_JSON=obs_smoke.jsonl cargo run --release --offline -p sag-sim --bin repro -- fig7a --runs 1"
SAG_OBS_JSON=obs_smoke.jsonl SAG_OBS_RING=256 cargo run --release --offline -p sag-sim --bin repro -- fig7a --runs 1 > /dev/null
run cargo run --release --offline -p sag-bench --bin bench_obs -- --check-jsonl obs_smoke.jsonl
run cargo run --release --offline -p sag-sim --bin repro -- trace obs_smoke.jsonl
rm -f obs_smoke.jsonl

echo "==> tier-1 CI green"
