//! Minimum spanning trees: Kruskal and Prim.
//!
//! Algorithm 7 (MBMC) finds an MST of the coverage-relay graph with the
//! base station as root and then steinerizes long edges. Two independent
//! implementations are provided; property tests assert they agree on total
//! weight, which guards both.

use crate::graph::{Edge, Graph};
use crate::unionfind::UnionFind;

/// A spanning tree: its edges and total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanningTree {
    /// Tree edges (|V| − 1 of them for a connected input).
    pub edges: Vec<Edge>,
    /// Sum of edge weights.
    pub total_weight: f64,
}

/// Computes an MST with Kruskal's algorithm.
///
/// Returns `None` if the graph is disconnected (or has no vertices).
/// A single-vertex graph yields an empty tree.
///
/// # Example
/// ```
/// use sag_graph::{Graph, mst::kruskal};
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 5.0);
/// g.add_edge(0, 2, 2.0);
/// let t = kruskal(&g).unwrap();
/// assert!((t.total_weight - 3.0).abs() < 1e-12);
/// ```
pub fn kruskal(g: &Graph) -> Option<SpanningTree> {
    let n = g.vertex_count();
    if n == 0 {
        return None;
    }
    let mut edges: Vec<Edge> = g.edges().to_vec();
    edges.sort_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"));
    let mut uf = UnionFind::new(n);
    let mut tree = Vec::with_capacity(n.saturating_sub(1));
    let mut total = 0.0;
    for e in edges {
        if uf.union(e.u, e.v) {
            total += e.weight;
            tree.push(e);
            if tree.len() == n - 1 {
                break;
            }
        }
    }
    (tree.len() == n - 1).then_some(SpanningTree {
        edges: tree,
        total_weight: total,
    })
}

/// Computes an MST with Prim's algorithm starting from vertex `root`.
///
/// Returns `None` if the graph is disconnected or `root` out of range.
///
/// The returned edges are oriented parent→child from the root outward
/// (`u` is the parent side), which MBMC uses to steinerize each tree edge
/// toward the base station.
pub fn prim(g: &Graph, root: usize) -> Option<SpanningTree> {
    let n = g.vertex_count();
    if root >= n {
        return None;
    }
    let mut in_tree = vec![false; n];
    // best[v] = (weight, parent) of the cheapest edge connecting v to the tree.
    let mut best: Vec<Option<(f64, usize)>> = vec![None; n];
    let mut heap = std::collections::BinaryHeap::new();

    // Min-heap via Reverse on an ordered wrapper.
    #[derive(PartialEq)]
    struct Item(f64, usize, usize); // weight, vertex, parent
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Item {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Reversed for min-heap behaviour.
            o.0.partial_cmp(&self.0).expect("finite weights")
        }
    }

    heap.push(Item(0.0, root, root));
    let mut tree = Vec::with_capacity(n.saturating_sub(1));
    let mut total = 0.0;
    while let Some(Item(w, v, parent)) = heap.pop() {
        if in_tree[v] {
            continue;
        }
        in_tree[v] = true;
        if v != root {
            total += w;
            tree.push(Edge {
                u: parent,
                v,
                weight: w,
            });
        }
        for (nb, nw) in g.neighbors(v) {
            if !in_tree[nb] {
                let better = match best[nb] {
                    None => true,
                    Some((bw, _)) => nw < bw,
                };
                if better {
                    best[nb] = Some((nw, v));
                    heap.push(Item(nw, nb, v));
                }
            }
        }
    }
    (tree.len() == n - 1).then_some(SpanningTree {
        edges: tree,
        total_weight: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 1.5);
        g.add_edge(0, 3, 10.0);
        g.add_edge(0, 2, 2.5);
        g
    }

    #[test]
    fn kruskal_known_tree() {
        let t = kruskal(&diamond()).unwrap();
        assert_eq!(t.edges.len(), 3);
        assert!((t.total_weight - 4.5).abs() < 1e-12);
    }

    #[test]
    fn prim_matches_kruskal() {
        let g = diamond();
        let k = kruskal(&g).unwrap();
        for root in 0..4 {
            let p = prim(&g, root).unwrap();
            assert!((p.total_weight - k.total_weight).abs() < 1e-12);
            assert_eq!(p.edges.len(), 3);
        }
    }

    #[test]
    fn disconnected_returns_none() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        assert!(kruskal(&g).is_none());
        assert!(prim(&g, 0).is_none());
    }

    #[test]
    fn single_vertex_empty_tree() {
        let g = Graph::new(1);
        let t = kruskal(&g).unwrap();
        assert!(t.edges.is_empty());
        assert_eq!(t.total_weight, 0.0);
        let t = prim(&g, 0).unwrap();
        assert!(t.edges.is_empty());
    }

    #[test]
    fn empty_graph_none() {
        assert!(kruskal(&Graph::new(0)).is_none());
        assert!(prim(&Graph::new(0), 0).is_none());
    }

    #[test]
    fn prim_edges_oriented_from_root() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let t = prim(&g, 0).unwrap();
        // Parent side u is always the already-connected vertex.
        assert_eq!(t.edges[0].u, 0);
        assert_eq!(t.edges[0].v, 1);
        assert_eq!(t.edges[1].u, 1);
        assert_eq!(t.edges[1].v, 2);
    }

    prop! {
        fn prop_prim_equals_kruskal(n in 2usize..30, seed in 0u64..500) {
            let mut rng = Rng::seed_from_u64(seed);
            // Random connected graph: a random spanning chain + extras.
            let mut g = Graph::new(n);
            for v in 1..n {
                let u = rng.gen_range(0..v);
                g.add_edge(u, v, rng.gen_range(0.1..100.0));
            }
            for _ in 0..n {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u, v, rng.gen_range(0.1..100.0));
                }
            }
            let k = kruskal(&g).unwrap();
            let p = prim(&g, rng.gen_range(0..n)).unwrap();
            prop_assert!((k.total_weight - p.total_weight).abs() < 1e-6);
            prop_assert_eq!(k.edges.len(), n - 1);
            prop_assert_eq!(p.edges.len(), n - 1);
        }

        fn prop_tree_spans_all_vertices(n in 2usize..25, seed in 0u64..300) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            for v in 1..n {
                let u = rng.gen_range(0..v);
                g.add_edge(u, v, rng.gen_range(0.1..10.0));
            }
            let t = kruskal(&g).unwrap();
            let mut uf = crate::UnionFind::new(n);
            for e in &t.edges {
                uf.union(e.u, e.v);
            }
            prop_assert_eq!(uf.set_count(), 1);
        }
    }
}
