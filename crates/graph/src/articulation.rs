//! Articulation points (cut vertices) via Tarjan's low-link DFS.
//!
//! Used by the resilience analysis in `sag-core`: a relay whose removal
//! disconnects some coverage relay from every base station is a single
//! point of failure of the upper tier.

use crate::graph::Graph;

/// Returns the articulation points of `g` (sorted ascending).
///
/// A vertex is an articulation point when removing it (and its edges)
/// increases the number of connected components. Isolated vertices are
/// never articulation points; the endpoints of a lone edge are not
/// either.
///
/// # Example
/// ```
/// use sag_graph::{articulation::articulation_points, Graph};
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// assert_eq!(articulation_points(&g), vec![1]);
/// ```
pub fn articulation_points(g: &Graph) -> Vec<usize> {
    let n = g.vertex_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    // Iterative Tarjan to avoid recursion depth limits on long chains
    // (steinerized relay chains can be hundreds of hops).
    #[derive(Clone)]
    struct Frame {
        v: usize,
        parent: Option<usize>,
        child_count: usize,
        neighbor_idx: usize,
        neighbors: Vec<usize>,
    }

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut stack = vec![Frame {
            v: root,
            parent: None,
            child_count: 0,
            neighbor_idx: 0,
            neighbors: g.neighbors(root).map(|(nb, _)| nb).collect(),
        }];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(frame) = stack.last_mut() {
            if frame.neighbor_idx < frame.neighbors.len() {
                let nb = frame.neighbors[frame.neighbor_idx];
                frame.neighbor_idx += 1;
                if disc[nb] == usize::MAX {
                    frame.child_count += 1;
                    let v = frame.v;
                    disc[nb] = timer;
                    low[nb] = timer;
                    timer += 1;
                    stack.push(Frame {
                        v: nb,
                        parent: Some(v),
                        child_count: 0,
                        neighbor_idx: 0,
                        neighbors: g.neighbors(nb).map(|(x, _)| x).collect(),
                    });
                } else if Some(nb) != frame.parent {
                    let v = frame.v;
                    low[v] = low[v].min(disc[nb]);
                }
            } else {
                let done = stack.pop().expect("last_mut guaranteed an element");
                if let Some(p) = done.parent {
                    low[p] = low[p].min(low[done.v]);
                    // Non-root rule: p is a cut vertex if some child's
                    // subtree cannot reach above p.
                    let p_is_root =
                        stack.len() == 1 && stack[0].v == p && stack[0].parent.is_none();
                    if !p_is_root && low[done.v] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
                // Root rule: ≥ 2 DFS children.
                if done.parent.is_none() && done.child_count >= 2 {
                    is_cut[done.v] = true;
                }
            }
        }
    }
    (0..n).filter(|&v| is_cut[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    /// Brute force: v is a cut vertex iff removing it increases the
    /// component count among the remaining vertices.
    fn brute(g: &Graph) -> Vec<usize> {
        let n = g.vertex_count();
        let components = |skip: Option<usize>| -> usize {
            let mut seen = vec![false; n];
            if let Some(s) = skip {
                seen[s] = true;
            }
            let mut count = 0;
            for start in 0..n {
                if seen[start] {
                    continue;
                }
                count += 1;
                let mut stack = vec![start];
                seen[start] = true;
                while let Some(v) = stack.pop() {
                    for (nb, _) in g.neighbors(v) {
                        if !seen[nb] {
                            seen[nb] = true;
                            stack.push(nb);
                        }
                    }
                }
            }
            count
        };
        let base = components(None);
        (0..n)
            .filter(|&v| {
                // Removing v: base count loses v's own (possibly isolated)
                // component contribution; compare against the remaining
                // graph's natural count.
                components(Some(v)) > base - if g.degree(v) == 0 { 1 } else { 0 }
            })
            .collect()
    }

    #[test]
    fn chain_interior_is_cut() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(articulation_points(&g), vec![1, 2]);
    }

    #[test]
    fn cycle_has_no_cut() {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_edge(v, (v + 1) % 4, 1.0);
        }
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn star_center_is_cut() {
        let mut g = Graph::new(5);
        for v in 1..5 {
            g.add_edge(0, v, 1.0);
        }
        assert_eq!(articulation_points(&g), vec![0]);
    }

    #[test]
    fn bridge_between_cycles() {
        // Two triangles joined by a bridge 2–3: both bridge endpoints cut.
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 0, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 5, 1.0);
        g.add_edge(5, 3, 1.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(articulation_points(&g), vec![2, 3]);
    }

    #[test]
    fn lone_edge_and_isolated() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        assert!(articulation_points(&g).is_empty());
    }

    prop! {
        fn prop_matches_brute_force(n in 1usize..14, seed in 0u64..400) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.3) {
                        g.add_edge(u, v, 1.0);
                    }
                }
            }
            prop_assert_eq!(articulation_points(&g), brute(&g));
        }
    }
}
