//! Maximum independent set: min-degree greedy and exact branch-and-bound.
//!
//! The paper sketches an LCRA approximation "based on … maximum independent
//! set": zone partitioning keeps inter-zone interference negligible, and an
//! independent set of the interference graph identifies subscribers that
//! can be treated in isolation. The greedy variant is used at scale; the
//! exact solver validates it on small instances.

use crate::graph::Graph;

/// Greedy independent set by repeatedly taking a minimum-degree vertex and
/// removing its neighbourhood. Returns a sorted vertex list.
///
/// Guaranteed maximal (no vertex can be added), not necessarily maximum.
///
/// # Example
/// ```
/// use sag_graph::{mis::greedy_mis, Graph};
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// assert_eq!(greedy_mis(&g), vec![0, 2]);
/// ```
pub fn greedy_mis(g: &Graph) -> Vec<usize> {
    let n = g.vertex_count();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = (0..n)
        .map(|v| g.neighbors(v).filter(|&(nb, _)| nb != v).count())
        .collect();
    let mut picked = Vec::new();
    while let Some(v) = (0..n).filter(|&v| alive[v]).min_by_key(|&v| degree[v]) {
        picked.push(v);
        alive[v] = false;
        for (nb, _) in g.neighbors(v) {
            if alive[nb] {
                alive[nb] = false;
                for (nb2, _) in g.neighbors(nb) {
                    if alive[nb2] {
                        degree[nb2] = degree[nb2].saturating_sub(1);
                    }
                }
            }
        }
    }
    picked.sort_unstable();
    picked
}

/// Exact maximum independent set by branch and bound.
///
/// Intended for small instances (≲ 30 vertices); used in tests and the
/// ablation bench to measure the greedy gap.
///
/// # Panics
/// Panics if the graph has more than 63 vertices (bitmask representation).
pub fn exact_mis(g: &Graph) -> Vec<usize> {
    let n = g.vertex_count();
    assert!(n <= 63, "exact_mis supports at most 63 vertices, got {n}");
    if n == 0 {
        return Vec::new();
    }
    let masks: Vec<u64> = (0..n)
        .map(|v| {
            let mut m = 0u64;
            for (nb, _) in g.neighbors(v) {
                m |= 1 << nb;
            }
            m
        })
        .collect();

    fn solve(
        remaining: u64,
        masks: &[u64],
        best_so_far: &mut u32,
        chosen: u64,
        best_set: &mut u64,
    ) {
        let count = chosen.count_ones();
        let upper = count + remaining.count_ones();
        if upper <= *best_so_far {
            return;
        }
        if remaining == 0 {
            if count > *best_so_far {
                *best_so_far = count;
                *best_set = chosen;
            }
            return;
        }
        // Branch on the lowest remaining vertex: either include it (and
        // drop its neighbourhood) or exclude it.
        let v = remaining.trailing_zeros() as usize;
        let vbit = 1u64 << v;
        solve(
            remaining & !vbit & !masks[v],
            masks,
            best_so_far,
            chosen | vbit,
            best_set,
        );
        solve(remaining & !vbit, masks, best_so_far, chosen, best_set);
    }

    let mut best = 0u32;
    let mut best_set = 0u64;
    let all = if n == 63 {
        u64::MAX >> 1
    } else {
        (1u64 << n) - 1
    };
    solve(all, &masks, &mut best, 0, &mut best_set);
    (0..n).filter(|&v| best_set & (1 << v) != 0).collect()
}

/// Checks that `set` is an independent set of `g`.
pub fn is_independent(g: &Graph, set: &[usize]) -> bool {
    let mark: std::collections::HashSet<usize> = set.iter().copied().collect();
    for &v in set {
        for (nb, _) in g.neighbors(v) {
            if mark.contains(&nb) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn path_graph() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let exact = exact_mis(&g);
        assert_eq!(exact.len(), 2);
        assert!(is_independent(&g, &exact));
        let greedy = greedy_mis(&g);
        assert!(is_independent(&g, &greedy));
        assert_eq!(greedy.len(), 2);
    }

    #[test]
    fn star_graph() {
        let mut g = Graph::new(5);
        for v in 1..5 {
            g.add_edge(0, v, 1.0);
        }
        assert_eq!(exact_mis(&g).len(), 4);
        assert_eq!(greedy_mis(&g).len(), 4);
    }

    #[test]
    fn edgeless_graph_takes_all() {
        let g = Graph::new(6);
        assert_eq!(exact_mis(&g).len(), 6);
        assert_eq!(greedy_mis(&g).len(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(exact_mis(&g).is_empty());
        assert!(greedy_mis(&g).is_empty());
    }

    #[test]
    fn complete_graph_takes_one() {
        let g = Graph::complete(5, |_, _| 1.0);
        assert_eq!(exact_mis(&g).len(), 1);
        assert_eq!(greedy_mis(&g).len(), 1);
    }

    prop! {
        fn prop_greedy_independent_and_maximal(n in 1usize..20, seed in 0u64..400) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.3) {
                        g.add_edge(u, v, 1.0);
                    }
                }
            }
            let s = greedy_mis(&g);
            prop_assert!(is_independent(&g, &s));
            // Maximality: every vertex outside s has a neighbour in s.
            let in_s: std::collections::HashSet<usize> = s.iter().copied().collect();
            for v in 0..n {
                if !in_s.contains(&v) {
                    let has = g.neighbors(v).any(|(nb, _)| in_s.contains(&nb));
                    prop_assert!(has, "vertex {} could be added", v);
                }
            }
        }

        fn prop_exact_at_least_greedy(n in 1usize..14, seed in 0u64..200) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.4) {
                        g.add_edge(u, v, 1.0);
                    }
                }
            }
            let e = exact_mis(&g);
            let s = greedy_mis(&g);
            prop_assert!(is_independent(&g, &e));
            prop_assert!(e.len() >= s.len());
        }
    }
}
