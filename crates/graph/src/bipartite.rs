//! Bipartite graphs, greedy degree-peeling (the shape of *Coverage Link
//! Escape*, Algorithm 3) and Hopcroft–Karp maximum matching.
//!
//! Algorithm 3 builds a bipartite graph between subscribers (side A) and
//! the hitting-set relay positions (side B), then repeatedly commits the
//! highest-degree B-point and deletes competing edges so that as many
//! subscribers as possible end up in *one-on-one* coverage. The generic
//! peeling loop lives here; the SNR-aware wrapper lives in `sag-core`.
//! Hopcroft–Karp is provided as the optimal one-on-one maximiser for the
//! `ablation_escape` bench.

/// A bipartite graph between `left` vertices `0..n_left` and `right`
/// vertices `0..n_right`.
///
/// # Example
/// ```
/// use sag_graph::BipartiteGraph;
/// let mut g = BipartiteGraph::new(2, 2);
/// g.add_edge(0, 0);
/// g.add_edge(1, 0);
/// g.add_edge(1, 1);
/// assert_eq!(g.max_matching().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    adj_left: Vec<Vec<usize>>,
    adj_right: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with the given side sizes.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        BipartiteGraph {
            n_left,
            n_right,
            adj_left: vec![Vec::new(); n_left],
            adj_right: vec![Vec::new(); n_right],
        }
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right vertices.
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Adds an edge between left vertex `l` and right vertex `r`.
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.n_left, "left vertex {l} out of range");
        assert!(r < self.n_right, "right vertex {r} out of range");
        if !self.adj_left[l].contains(&r) {
            self.adj_left[l].push(r);
            self.adj_right[r].push(l);
        }
    }

    /// Neighbours (right side) of left vertex `l`.
    pub fn neighbors_of_left(&self, l: usize) -> &[usize] {
        &self.adj_left[l]
    }

    /// Neighbours (left side) of right vertex `r`.
    pub fn neighbors_of_right(&self, r: usize) -> &[usize] {
        &self.adj_right[r]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj_left.iter().map(Vec::len).sum()
    }

    /// The degree-peeling assignment of *Coverage Link Escape*
    /// (Algorithm 3, Steps 3–5), generic over the bipartite structure.
    ///
    /// Processes right-side points in decreasing degree: when a point `p`
    /// with `k` current edges is committed, its edges are *marked* (its
    /// subscribers are assigned to it) and every other unmarked edge of
    /// those subscribers is deleted, so no subscriber is double-assigned.
    ///
    /// Returns `assignment[l] = Some(r)` for each left vertex; a left
    /// vertex with no edges maps to `None`.
    pub fn escape_assignment(&self) -> Vec<Option<usize>> {
        let mut assignment = vec![None; self.n_left];
        let mut right_alive: Vec<std::collections::BTreeSet<usize>> = self
            .adj_right
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();
        let mut left_alive: Vec<std::collections::BTreeSet<usize>> = self
            .adj_left
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();
        let mut committed = vec![false; self.n_right];
        let nmax = right_alive.iter().map(|s| s.len()).max().unwrap_or(0);
        // Step 5: for n from nmax down to 1, commit unmarked points with
        // exactly n live edges.
        for n in (1..=nmax).rev() {
            while let Some(p) =
                (0..self.n_right).find(|&r| !committed[r] && right_alive[r].len() == n)
            {
                committed[p] = true;
                let assigned: Vec<usize> = right_alive[p].iter().copied().collect();
                for &l in &assigned {
                    assignment[l] = Some(p);
                    // Delete all other unmarked edges of l.
                    let others: Vec<usize> = left_alive[l].iter().copied().collect();
                    for r in others {
                        if r != p {
                            right_alive[r].remove(&l);
                            left_alive[l].remove(&r);
                        }
                    }
                }
            }
        }
        assignment
    }

    /// Maximum bipartite matching via Hopcroft–Karp.
    ///
    /// Returns `(left, right)` pairs; each vertex appears at most once.
    pub fn max_matching(&self) -> Vec<(usize, usize)> {
        const NIL: usize = usize::MAX;
        let mut match_l = vec![NIL; self.n_left];
        let mut match_r = vec![NIL; self.n_right];
        let mut dist = vec![0usize; self.n_left];

        let bfs = |match_l: &[usize], match_r: &[usize], dist: &mut [usize]| -> bool {
            let mut queue = std::collections::VecDeque::new();
            let mut found = false;
            for l in 0..self.n_left {
                if match_l[l] == NIL {
                    dist[l] = 0;
                    queue.push_back(l);
                } else {
                    dist[l] = usize::MAX;
                }
            }
            while let Some(l) = queue.pop_front() {
                for &r in &self.adj_left[l] {
                    let next = match_r[r];
                    if next == NIL {
                        found = true;
                    } else if dist[next] == usize::MAX {
                        dist[next] = dist[l] + 1;
                        queue.push_back(next);
                    }
                }
            }
            found
        };

        fn dfs(
            l: usize,
            adj: &[Vec<usize>],
            match_l: &mut [usize],
            match_r: &mut [usize],
            dist: &mut [usize],
        ) -> bool {
            const NIL: usize = usize::MAX;
            for i in 0..adj[l].len() {
                let r = adj[l][i];
                let next = match_r[r];
                if next == NIL
                    || (dist[next] == dist[l] + 1 && dfs(next, adj, match_l, match_r, dist))
                {
                    match_l[l] = r;
                    match_r[r] = l;
                    return true;
                }
            }
            dist[l] = usize::MAX;
            false
        }

        while bfs(&match_l, &match_r, &mut dist) {
            for l in 0..self.n_left {
                if match_l[l] == NIL {
                    dfs(l, &self.adj_left, &mut match_l, &mut match_r, &mut dist);
                }
            }
        }
        (0..self.n_left)
            .filter_map(|l| (match_l[l] != NIL).then_some((l, match_l[l])))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn simple_matching() {
        let mut g = BipartiteGraph::new(3, 3);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        g.add_edge(2, 2);
        let m = g.max_matching();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn matching_respects_structure() {
        // Two left vertices, one right vertex: matching size 1.
        let mut g = BipartiteGraph::new(2, 1);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        assert_eq!(g.max_matching().len(), 1);
    }

    #[test]
    fn empty_graph_matching() {
        let g = BipartiteGraph::new(3, 3);
        assert!(g.max_matching().is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0);
        g.add_edge(0, 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn escape_assigns_every_covered_left() {
        let mut g = BipartiteGraph::new(4, 3);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        g.add_edge(2, 1);
        g.add_edge(3, 2);
        let a = g.escape_assignment();
        for (l, asg) in a.iter().enumerate() {
            let r = asg.expect("covered left must be assigned");
            assert!(g.neighbors_of_left(l).contains(&r));
        }
    }

    #[test]
    fn escape_prefers_high_degree_point() {
        // Point 0 covers {0,1,2}; point 1 covers {2}. The peeling commits
        // point 0 first, so subscriber 2 goes to point 0 and point 1 ends
        // up unused.
        let mut g = BipartiteGraph::new(3, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(2, 0);
        g.add_edge(2, 1);
        let a = g.escape_assignment();
        assert_eq!(a, vec![Some(0), Some(0), Some(0)]);
    }

    #[test]
    fn escape_uncovered_left_is_none() {
        let g = BipartiteGraph::new(2, 1);
        let a = g.escape_assignment();
        assert_eq!(a, vec![None, None]);
    }

    #[test]
    fn hopcroft_karp_perfect_on_cycle() {
        // 4-cycle as bipartite: L={0,1}, R={0,1}, all edges — perfect matching.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        assert_eq!(g.max_matching().len(), 2);
    }

    prop! {
        fn prop_matching_is_valid(seed in 0u64..500, nl in 1usize..12, nr in 1usize..12) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = BipartiteGraph::new(nl, nr);
            for l in 0..nl {
                for r in 0..nr {
                    if rng.gen_bool(0.3) {
                        g.add_edge(l, r);
                    }
                }
            }
            let m = g.max_matching();
            let mut seen_l = std::collections::HashSet::new();
            let mut seen_r = std::collections::HashSet::new();
            for (l, r) in &m {
                prop_assert!(g.neighbors_of_left(*l).contains(r));
                prop_assert!(seen_l.insert(*l), "left {l} matched twice");
                prop_assert!(seen_r.insert(*r), "right {r} matched twice");
            }
        }

        fn prop_escape_assignment_valid(seed in 0u64..500, nl in 1usize..12, nr in 1usize..12) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = BipartiteGraph::new(nl, nr);
            for l in 0..nl {
                for r in 0..nr {
                    if rng.gen_bool(0.4) {
                        g.add_edge(l, r);
                    }
                }
            }
            let a = g.escape_assignment();
            for (l, asg) in a.iter().enumerate() {
                match asg {
                    Some(r) => prop_assert!(g.neighbors_of_left(l).contains(r)),
                    None => prop_assert!(g.neighbors_of_left(l).is_empty(),
                        "left {} has edges but no assignment", l),
                }
            }
        }
    }
}
