//! # sag-graph — graph substrate
//!
//! Self-contained graph algorithms used by the SAG reproduction:
//!
//! * [`UnionFind`] — disjoint sets with path compression + union by rank,
//! * [`Graph`] — a small weighted undirected graph (adjacency lists),
//! * [`mst`] — Kruskal and Prim minimum spanning trees (Algorithm 7's
//!   backbone; the two implementations cross-check each other in tests),
//! * [`components`] — connected components / BFS / DFS (Zone Partition,
//!   Algorithm 2, groups subscribers by interference reach),
//! * [`paths`] — Dijkstra shortest paths (relay chain bookkeeping),
//! * [`bipartite`] — bipartite graphs with greedy *Coverage Link Escape*
//!   marking support and Hopcroft–Karp maximum matching,
//! * [`mis`] — greedy and exact maximum independent set,
//! * [`tree`] — rooted tree utilities (parents, depths, root paths) used
//!   by MBMC/UCPO to walk relay chains toward base stations.
//!
//! # Example
//!
//! ```
//! use sag_graph::{Graph, mst};
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1, 1.0);
//! g.add_edge(1, 2, 2.0);
//! g.add_edge(2, 3, 1.5);
//! g.add_edge(0, 3, 10.0);
//! let t = mst::kruskal(&g).expect("connected");
//! assert_eq!(t.edges.len(), 3);
//! assert!((t.total_weight - 4.5).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod articulation;
pub mod bipartite;
pub mod coloring;
pub mod components;
pub mod graph;
pub mod mis;
pub mod mst;
pub mod paths;
pub mod tree;
pub mod unionfind;

pub use bipartite::BipartiteGraph;
pub use graph::{Edge, Graph};
pub use tree::RootedTree;
pub use unionfind::UnionFind;
