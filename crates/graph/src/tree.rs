//! Rooted trees.
//!
//! MBMC returns a spanning tree rooted at a base station; UCPO walks each
//! coverage relay's path toward the root to set per-hop powers. This module
//! gives that tree a convenient indexed form.

use crate::graph::Graph;
use crate::mst::SpanningTree;

/// A rooted tree over vertices `0..n` with parent pointers.
///
/// # Example
/// ```
/// use sag_graph::{Graph, mst, RootedTree};
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// let t = mst::prim(&g, 0).unwrap();
/// let rt = RootedTree::from_spanning_tree(&t, 0, 3);
/// assert_eq!(rt.parent(2), Some(1));
/// assert_eq!(rt.path_to_root(2), vec![2, 1, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: usize,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    depth: Vec<usize>,
}

impl RootedTree {
    /// Builds a rooted tree from a [`SpanningTree`] over `n` vertices.
    ///
    /// The spanning tree's edges may be in any orientation; they are
    /// re-rooted at `root` by BFS.
    ///
    /// # Panics
    /// Panics if `root >= n`, an edge endpoint is out of range, or the
    /// edges do not form a spanning tree of the vertices reachable from
    /// `root` (i.e. a cycle or disconnection is detected).
    pub fn from_spanning_tree(tree: &SpanningTree, root: usize, n: usize) -> Self {
        assert!(root < n, "root {root} out of range for {n} vertices");
        let mut g = Graph::new(n);
        for e in &tree.edges {
            g.add_edge(e.u, e.v, e.weight);
        }
        let mut parent = vec![None; n];
        let mut depth = vec![0usize; n];
        let mut children = vec![Vec::new(); n];
        let mut seen = vec![false; n];
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        let mut visited = 0usize;
        while let Some(v) = queue.pop_front() {
            visited += 1;
            for (nb, _) in g.neighbors(v) {
                if !seen[nb] {
                    seen[nb] = true;
                    parent[nb] = Some(v);
                    depth[nb] = depth[v] + 1;
                    children[v].push(nb);
                    queue.push_back(nb);
                }
            }
        }
        assert_eq!(
            visited,
            tree.edges.len() + 1,
            "edges do not form a tree reachable from the root"
        );
        RootedTree {
            root,
            parent,
            children,
            depth,
        }
    }

    /// The root vertex.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of `v` (`None` for the root and for vertices outside the
    /// tree).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Children of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Depth of `v` (root = 0). Vertices outside the tree report 0;
    /// check [`RootedTree::contains`] first when that matters.
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v]
    }

    /// Returns `true` if `v` is the root or has a parent (i.e. is in the
    /// tree).
    pub fn contains(&self, v: usize) -> bool {
        v == self.root || self.parent[v].is_some()
    }

    /// The path from `v` up to the root, inclusive on both ends.
    ///
    /// # Panics
    /// Panics if `v` is not in the tree.
    pub fn path_to_root(&self, v: usize) -> Vec<usize> {
        assert!(self.contains(v), "vertex {v} is not in the tree");
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Vertices in BFS order from the root.
    pub fn bfs_order(&self) -> Vec<usize> {
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            queue.extend(self.children[v].iter().copied());
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;

    fn chain_tree() -> SpanningTree {
        SpanningTree {
            edges: vec![
                Edge {
                    u: 0,
                    v: 1,
                    weight: 1.0,
                },
                Edge {
                    u: 1,
                    v: 2,
                    weight: 1.0,
                },
                Edge {
                    u: 2,
                    v: 3,
                    weight: 1.0,
                },
            ],
            total_weight: 3.0,
        }
    }

    #[test]
    fn parents_and_depths() {
        let rt = RootedTree::from_spanning_tree(&chain_tree(), 0, 4);
        assert_eq!(rt.root(), 0);
        assert_eq!(rt.parent(0), None);
        assert_eq!(rt.parent(3), Some(2));
        assert_eq!(rt.depth(3), 3);
        assert_eq!(rt.children(1), &[2]);
    }

    #[test]
    fn reroot_mid_chain() {
        let rt = RootedTree::from_spanning_tree(&chain_tree(), 2, 4);
        assert_eq!(rt.parent(3), Some(2));
        assert_eq!(rt.parent(1), Some(2));
        assert_eq!(rt.parent(0), Some(1));
        assert_eq!(rt.depth(0), 2);
    }

    #[test]
    fn path_to_root() {
        let rt = RootedTree::from_spanning_tree(&chain_tree(), 0, 4);
        assert_eq!(rt.path_to_root(3), vec![3, 2, 1, 0]);
        assert_eq!(rt.path_to_root(0), vec![0]);
    }

    #[test]
    fn bfs_order_visits_all() {
        let rt = RootedTree::from_spanning_tree(&chain_tree(), 1, 4);
        let order = rt.bfs_order();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn contains_checks_membership() {
        // Tree over vertices 0..3 embedded in a 5-vertex space.
        let t = SpanningTree {
            edges: vec![
                Edge {
                    u: 0,
                    v: 1,
                    weight: 1.0,
                },
                Edge {
                    u: 1,
                    v: 2,
                    weight: 1.0,
                },
            ],
            total_weight: 2.0,
        };
        let rt = RootedTree::from_spanning_tree(&t, 0, 5);
        assert!(rt.contains(2));
        assert!(!rt.contains(4));
    }

    #[test]
    #[should_panic]
    fn disconnected_edges_panic() {
        let t = SpanningTree {
            edges: vec![Edge {
                u: 2,
                v: 3,
                weight: 1.0,
            }],
            total_weight: 1.0,
        };
        // Root 0 cannot reach edge (2,3): not a tree from this root.
        RootedTree::from_spanning_tree(&t, 0, 4);
    }

    #[test]
    #[should_panic]
    fn path_outside_tree_panics() {
        let t = SpanningTree {
            edges: vec![],
            total_weight: 0.0,
        };
        let rt = RootedTree::from_spanning_tree(&t, 0, 2);
        rt.path_to_root(1);
    }
}
