//! Connected components and traversals.
//!
//! Zone Partition (Algorithm 2) builds a graph over subscribers whose
//! effective interference distance is below `d_max` and takes its
//! connected components as zones; this module supplies that step.

use crate::graph::Graph;

/// Connected components of `g`, each a sorted vertex list; components are
/// ordered by their smallest vertex.
///
/// # Example
/// ```
/// use sag_graph::{components::connected_components, Graph};
/// let mut g = Graph::new(5);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(3, 4, 1.0);
/// let cc = connected_components(&g);
/// assert_eq!(cc, vec![vec![0, 1], vec![2], vec![3, 4]]);
/// ```
pub fn connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            comp.push(v);
            for (nb, _) in g.neighbors(v) {
                if !seen[nb] {
                    seen[nb] = true;
                    stack.push(nb);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Breadth-first order from `start` (including `start`); unreachable
/// vertices are absent.
///
/// # Panics
/// Panics if `start` is out of range.
pub fn bfs_order(g: &Graph, start: usize) -> Vec<usize> {
    assert!(start < g.vertex_count(), "start {start} out of range");
    let mut seen = vec![false; g.vertex_count()];
    let mut queue = std::collections::VecDeque::from([start]);
    seen[start] = true;
    let mut order = Vec::new();
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (nb, _) in g.neighbors(v) {
            if !seen[nb] {
                seen[nb] = true;
                queue.push_back(nb);
            }
        }
    }
    order
}

/// Returns `true` if the whole graph is one connected component
/// (vacuously true for the empty graph).
pub fn is_connected(g: &Graph) -> bool {
    g.vertex_count() == 0 || connected_components(g).len() == 1
}

/// BFS hop distance from `start` to every vertex (`None` = unreachable).
///
/// # Panics
/// Panics if `start` is out of range.
pub fn hop_distances(g: &Graph, start: usize) -> Vec<Option<usize>> {
    assert!(start < g.vertex_count(), "start {start} out of range");
    let mut dist = vec![None; g.vertex_count()];
    dist[start] = Some(0);
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v].expect("queued vertices have distances");
        for (nb, _) in g.neighbors(v) {
            if dist[nb].is_none() {
                dist[nb] = Some(dv + 1);
                queue.push_back(nb);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_islands() -> Graph {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(4, 5, 1.0);
        g
    }

    #[test]
    fn components_found() {
        let cc = connected_components(&two_islands());
        assert_eq!(cc, vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn empty_graph() {
        assert!(connected_components(&Graph::new(0)).is_empty());
        assert!(is_connected(&Graph::new(0)));
    }

    #[test]
    fn connectivity_predicate() {
        assert!(!is_connected(&two_islands()));
        let mut g = two_islands();
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        assert!(is_connected(&g));
    }

    #[test]
    fn bfs_order_starts_at_start() {
        let g = two_islands();
        let order = bfs_order(&g, 1);
        assert_eq!(order[0], 1);
        assert_eq!(order.len(), 3);
        assert!(!order.contains(&4));
    }

    #[test]
    fn hop_distance_values() {
        let g = two_islands();
        let d = hop_distances(&g, 0);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], None);
        assert_eq!(d[5], None);
    }

    #[test]
    #[should_panic]
    fn bfs_out_of_range_panics() {
        bfs_order(&Graph::new(1), 1);
    }
}
