//! Disjoint-set forest with path compression and union by rank.

/// A union-find (disjoint set) structure over `0..n`.
///
/// # Example
/// ```
/// use sag_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` for the empty structure.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set, with path compression.
    ///
    /// # Panics
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element {x} out of range");
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all elements by representative; each inner vector is one set
    /// (ascending element order, sets ordered by smallest element).
    pub fn sets(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|s| s[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 2));
        assert_eq!(uf.set_count(), 2);
        assert!(uf.connected(1, 3));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn sets_grouping() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let sets = uf.sets();
        assert_eq!(sets, vec![vec![0, 2, 4], vec![1, 5], vec![3]]);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        assert!(uf.sets().is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        UnionFind::new(2).find(2);
    }

    prop! {
        fn prop_set_count_invariant(n in 1usize..40, ops in vec_of((0usize..40, 0usize..40), 0..80)) {
            let mut uf = UnionFind::new(n);
            let mut merges = 0usize;
            for (a, b) in ops {
                let (a, b) = (a % n, b % n);
                if uf.union(a, b) {
                    merges += 1;
                }
            }
            prop_assert_eq!(uf.set_count(), n - merges);
            let total: usize = uf.sets().iter().map(Vec::len).sum();
            prop_assert_eq!(total, n);
        }

        fn prop_connectivity_transitive(n in 3usize..30, seed in 0usize..1000) {
            let mut uf = UnionFind::new(n);
            let a = seed % n;
            let b = (seed / 7) % n;
            let c = (seed / 49) % n;
            uf.union(a, b);
            uf.union(b, c);
            prop_assert!(uf.connected(a, c));
        }
    }
}
