//! A small weighted undirected graph.

use std::fmt;

/// A weighted undirected edge between vertices `u` and `v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub u: usize,
    /// The other endpoint.
    pub v: usize,
    /// Edge weight.
    pub weight: f64,
}

/// A weighted undirected graph over vertices `0..n`, stored as adjacency
/// lists. Parallel edges are allowed (algorithms treat them independently);
/// self-loops are rejected.
///
/// # Example
/// ```
/// use sag_graph::Graph;
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 2.5);
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.neighbors(1).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<(usize, f64)>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range, `u == v`, or the weight
    /// is not finite.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        let n = self.adj.len();
        assert!(
            u < n && v < n,
            "edge ({u},{v}) out of range for {n} vertices"
        );
        assert!(u != v, "self-loops are not allowed (vertex {u})");
        assert!(
            weight.is_finite(),
            "edge weight must be finite, got {weight}"
        );
        self.adj[u].push((v, weight));
        self.adj[v].push((u, weight));
        self.edges.push(Edge { u, v, weight });
    }

    /// Adds a vertex, returning its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Degree of vertex `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Iterator over `(neighbor, weight)` pairs of vertex `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj[u].iter().copied()
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Builds a complete graph over `n` vertices with weights from `w`.
    ///
    /// `w(i, j)` is called once per unordered pair with `i < j`. This is
    /// how MBMC's Step 1 ("construct a complete graph over the coverage
    /// RSs") is realised.
    pub fn complete(n: usize, mut w: impl FnMut(usize, usize) -> f64) -> Self {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i, j, w(i, j));
            }
        }
        g
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(V={}, E={})",
            self.vertex_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
        let nb: Vec<_> = g.neighbors(1).collect();
        assert!(nb.contains(&(0, 1.0)) && nb.contains(&(2, 2.0)));
        assert!((g.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_vertex_extends() {
        let mut g = Graph::new(1);
        let v = g.add_vertex();
        assert_eq!(v, 1);
        g.add_edge(0, 1, 5.0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = Graph::complete(5, |i, j| (i + j) as f64);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        Graph::new(2).add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        Graph::new(2).add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic]
    fn non_finite_weight_panics() {
        Graph::new(2).add_edge(0, 1, f64::NAN);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Graph::new(0)).is_empty());
    }
}
