//! Graph coloring: greedy DSATUR and an exact small-instance solver.
//!
//! Used by the channel-assignment extension in `sag-core`: relays that
//! would violate a subscriber's SNR when sharing a frequency are joined
//! by a conflict edge, and a proper coloring of the conflict graph is a
//! feasible channel plan.

use crate::graph::Graph;

/// Greedy DSATUR coloring: repeatedly colors the vertex with the highest
/// *saturation* (number of distinct neighbour colors), breaking ties by
/// degree. Returns one color index per vertex (colors are `0..k`).
///
/// DSATUR is exact on bipartite graphs and near-optimal on the sparse
/// conflict graphs interference produces.
///
/// # Example
/// ```
/// use sag_graph::{coloring::dsatur, Graph};
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// let colors = dsatur(&g);
/// assert_ne!(colors[0], colors[1]);
/// assert_ne!(colors[1], colors[2]);
/// ```
pub fn dsatur(g: &Graph) -> Vec<usize> {
    let n = g.vertex_count();
    let mut color: Vec<Option<usize>> = vec![None; n];
    for _ in 0..n {
        // Pick the uncolored vertex with max saturation, then max degree.
        let pick = (0..n)
            .filter(|&v| color[v].is_none())
            .max_by_key(|&v| {
                let sat: std::collections::BTreeSet<usize> =
                    g.neighbors(v).filter_map(|(nb, _)| color[nb]).collect();
                (sat.len(), g.degree(v), std::cmp::Reverse(v))
            })
            .expect("loop bounded by n");
        let used: std::collections::BTreeSet<usize> =
            g.neighbors(pick).filter_map(|(nb, _)| color[nb]).collect();
        let c = (0..)
            .find(|c| !used.contains(c))
            .expect("infinite color supply");
        color[pick] = Some(c);
    }
    color
        .into_iter()
        .map(|c| c.expect("all vertices colored"))
        .collect()
}

/// Number of colors a coloring uses.
pub fn color_count(colors: &[usize]) -> usize {
    colors.iter().max().map_or(0, |&m| m + 1)
}

/// Checks that `colors` is a proper coloring of `g`.
pub fn is_proper(g: &Graph, colors: &[usize]) -> bool {
    if colors.len() != g.vertex_count() {
        return false;
    }
    g.edges().iter().all(|e| colors[e.u] != colors[e.v])
}

/// Exact chromatic number by branch and bound (small graphs only; used
/// to validate DSATUR in tests).
///
/// # Panics
/// Panics if the graph has more than 24 vertices.
pub fn exact_chromatic_number(g: &Graph) -> usize {
    let n = g.vertex_count();
    assert!(
        n <= 24,
        "exact coloring supports at most 24 vertices, got {n}"
    );
    if n == 0 {
        return 0;
    }
    let upper = color_count(&dsatur(g));
    for k in 1..upper {
        if colorable_with(g, k) {
            return k;
        }
    }
    upper
}

fn colorable_with(g: &Graph, k: usize) -> bool {
    fn rec(g: &Graph, k: usize, colors: &mut Vec<Option<usize>>, v: usize) -> bool {
        if v == g.vertex_count() {
            return true;
        }
        // Symmetry breaking: vertex v may use at most (max used color + 1).
        let max_used = colors.iter().flatten().copied().max().map_or(0, |m| m + 1);
        for c in 0..k.min(max_used + 1) {
            let ok = g.neighbors(v).all(|(nb, _)| colors[nb] != Some(c));
            if ok {
                colors[v] = Some(c);
                if rec(g, k, colors, v + 1) {
                    return true;
                }
                colors[v] = None;
            }
        }
        false
    }
    let mut colors = vec![None; g.vertex_count()];
    rec(g, k, &mut colors, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn path_is_two_colorable() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let colors = dsatur(&g);
        assert!(is_proper(&g, &colors));
        assert_eq!(color_count(&colors), 2);
        assert_eq!(exact_chromatic_number(&g), 2);
    }

    #[test]
    fn odd_cycle_needs_three() {
        let mut g = Graph::new(5);
        for v in 0..5 {
            g.add_edge(v, (v + 1) % 5, 1.0);
        }
        let colors = dsatur(&g);
        assert!(is_proper(&g, &colors));
        assert_eq!(color_count(&colors), 3);
        assert_eq!(exact_chromatic_number(&g), 3);
    }

    #[test]
    fn complete_graph_needs_n() {
        let g = Graph::complete(5, |_, _| 1.0);
        let colors = dsatur(&g);
        assert!(is_proper(&g, &colors));
        assert_eq!(color_count(&colors), 5);
        assert_eq!(exact_chromatic_number(&g), 5);
    }

    #[test]
    fn edgeless_graph_needs_one() {
        let g = Graph::new(7);
        let colors = dsatur(&g);
        assert_eq!(color_count(&colors), 1);
        assert_eq!(exact_chromatic_number(&g), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(dsatur(&g).is_empty());
        assert_eq!(exact_chromatic_number(&g), 0);
    }

    prop! {
        fn prop_dsatur_proper_and_bounded(n in 1usize..16, seed in 0u64..300) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            let mut max_deg = 0usize;
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.35) {
                        g.add_edge(u, v, 1.0);
                    }
                }
            }
            for v in 0..n {
                max_deg = max_deg.max(g.degree(v));
            }
            let colors = dsatur(&g);
            prop_assert!(is_proper(&g, &colors));
            // Greedy bound: Δ + 1 colors suffice.
            prop_assert!(color_count(&colors) <= max_deg + 1);
        }

        fn prop_dsatur_within_one_of_exact_on_small(n in 1usize..9, seed in 0u64..100) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.4) {
                        g.add_edge(u, v, 1.0);
                    }
                }
            }
            let greedy = color_count(&dsatur(&g));
            let exact = exact_chromatic_number(&g);
            prop_assert!(greedy >= exact);
            prop_assert!(greedy <= exact + 1, "DSATUR used {greedy} vs χ = {exact}");
        }
    }
}
