//! Shortest paths (Dijkstra).
//!
//! Used for relay-chain bookkeeping on the upper tier: hop-weighted
//! shortest paths from coverage relays to their base stations, and for
//! sanity checks of the steinerized MBMC topology.

use crate::graph::Graph;

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// `dist[v]` is the weighted distance from the source (`None` if `v`
    /// is unreachable).
    pub dist: Vec<Option<f64>>,
    /// `prev[v]` is the predecessor of `v` on a shortest path.
    pub prev: Vec<Option<usize>>,
    source: usize,
}

/// Runs Dijkstra from `source` over non-negative edge weights.
///
/// # Panics
/// Panics if `source` is out of range or the graph contains a negative
/// edge weight.
///
/// # Example
/// ```
/// use sag_graph::{paths::dijkstra, Graph};
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 2.0);
/// g.add_edge(0, 2, 5.0);
/// let sp = dijkstra(&g, 0);
/// assert_eq!(sp.dist[2], Some(3.0));
/// assert_eq!(sp.path_to(2), Some(vec![0, 1, 2]));
/// ```
pub fn dijkstra(g: &Graph, source: usize) -> ShortestPaths {
    let n = g.vertex_count();
    assert!(source < n, "source {source} out of range for {n} vertices");
    for e in g.edges() {
        assert!(
            e.weight >= 0.0,
            "Dijkstra requires non-negative weights, got {}",
            e.weight
        );
    }
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];

    #[derive(PartialEq)]
    struct Item(f64, usize);
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Item {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            o.0.partial_cmp(&self.0).expect("finite distances")
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    dist[source] = Some(0.0);
    heap.push(Item(0.0, source));
    while let Some(Item(d, v)) = heap.pop() {
        if dist[v].is_none_or(|best| d > best) {
            continue;
        }
        for (nb, w) in g.neighbors(v) {
            let cand = d + w;
            if dist[nb].is_none_or(|best| cand < best) {
                dist[nb] = Some(cand);
                prev[nb] = Some(v);
                heap.push(Item(cand, nb));
            }
        }
    }
    ShortestPaths { dist, prev, source }
}

impl ShortestPaths {
    /// Reconstructs the vertex path from the source to `target`
    /// (inclusive), or `None` if unreachable.
    ///
    /// # Panics
    /// Panics if `target` is out of range.
    pub fn path_to(&self, target: usize) -> Option<Vec<usize>> {
        assert!(target < self.dist.len(), "target {target} out of range");
        self.dist[target]?;
        let mut path = vec![target];
        let mut cur = target;
        while cur != self.source {
            cur = self.prev[cur].expect("reachable vertices have predecessors");
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn straight_line() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[3], Some(3.0));
        assert_eq!(sp.path_to(3).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shortcut_chosen() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 10.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[1], Some(2.0));
        assert_eq!(sp.path_to(1).unwrap(), vec![0, 2, 1]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], None);
        assert!(sp.path_to(2).is_none());
    }

    #[test]
    fn source_path_is_trivial() {
        let g = Graph::new(1);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[0], Some(0.0));
        assert_eq!(sp.path_to(0).unwrap(), vec![0]);
    }

    #[test]
    #[should_panic]
    fn negative_weight_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -1.0);
        dijkstra(&g, 0);
    }

    prop! {
        fn prop_triangle_inequality_on_dists(n in 2usize..20, seed in 0u64..300) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            for v in 1..n {
                let u = rng.gen_range(0..v);
                g.add_edge(u, v, rng.gen_range(0.1..10.0));
            }
            let sp = dijkstra(&g, 0);
            // Every edge (u,v): dist[v] <= dist[u] + w.
            for e in g.edges() {
                let (du, dv) = (sp.dist[e.u].unwrap(), sp.dist[e.v].unwrap());
                prop_assert!(dv <= du + e.weight + 1e-9);
                prop_assert!(du <= dv + e.weight + 1e-9);
            }
        }

        fn prop_path_length_matches_dist(n in 2usize..15, seed in 0u64..300) {
            let mut rng = Rng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            for v in 1..n {
                let u = rng.gen_range(0..v);
                g.add_edge(u, v, rng.gen_range(0.1..10.0));
            }
            let sp = dijkstra(&g, 0);
            for t in 0..n {
                let path = sp.path_to(t).unwrap();
                let mut len = 0.0;
                for w in path.windows(2) {
                    // Find the cheapest edge between consecutive vertices.
                    let best = g
                        .neighbors(w[0])
                        .filter(|&(nb, _)| nb == w[1])
                        .map(|(_, wt)| wt)
                        .fold(f64::INFINITY, f64::min);
                    len += best;
                }
                prop_assert!((len - sp.dist[t].unwrap()).abs() < 1e-9);
            }
        }
    }
}
