//! The two-ray ground path-loss model of Eq. (2.1).
//!
//! `Pr = Pt · Gt · Gr · ht² · hr² · d^{-α}`. The antenna gains and tower
//! heights are folded into a single constant `G = Gt·Gr·ht²·hr²`, exactly
//! as the paper does in constraints (3.8)–(3.9) and in the Zone Partition
//! algorithm (`P_max · G · d_max^{-α} = N_max`).

use std::fmt;

/// Two-ray ground propagation model with folded gain constant.
///
/// # Example
/// ```
/// use sag_radio::TwoRay;
/// let m = TwoRay::new(1.0, 3.0);
/// let pr = m.received_power(8.0, 2.0);
/// assert!((pr - 1.0).abs() < 1e-12); // 8 / 2³
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoRay {
    g: f64,
    alpha: f64,
}

impl TwoRay {
    /// Creates a model with gain constant `g = Gt·Gr·ht²·hr²` and
    /// attenuation exponent `alpha` (the paper uses `α ∈ [2, 4]`).
    ///
    /// # Panics
    /// Panics unless `g > 0` and `alpha >= 1`, both finite.
    pub fn new(g: f64, alpha: f64) -> Self {
        assert!(
            g.is_finite() && g > 0.0,
            "gain constant must be > 0, got {g}"
        );
        assert!(
            alpha.is_finite() && alpha >= 1.0,
            "attenuation exponent must be ≥ 1, got {alpha}"
        );
        TwoRay { g, alpha }
    }

    /// Builds the model from explicit antenna parameters:
    /// transmitter/receiver gains `gt`, `gr` and tower heights `ht`, `hr`.
    ///
    /// # Panics
    /// Panics if any parameter is non-positive or `alpha < 1`.
    pub fn from_antennas(gt: f64, gr: f64, ht: f64, hr: f64, alpha: f64) -> Self {
        assert!(
            gt > 0.0 && gr > 0.0 && ht > 0.0 && hr > 0.0,
            "antenna parameters must be > 0"
        );
        TwoRay::new(gt * gr * ht * ht * hr * hr, alpha)
    }

    /// The folded gain constant `G`.
    #[inline]
    pub fn gain(&self) -> f64 {
        self.g
    }

    /// The attenuation exponent `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Received power at distance `d` for transmit power `pt`:
    /// `Pr = Pt·G·d^{-α}`.
    ///
    /// Distances below [`TwoRay::NEAR_FIELD`] are clamped to it — the
    /// far-field model diverges as `d → 0` and stations are never
    /// physically co-located.
    ///
    /// # Panics
    /// Panics if `pt < 0` or `d < 0`.
    pub fn received_power(&self, pt: f64, d: f64) -> f64 {
        assert!(pt >= 0.0, "transmit power must be ≥ 0, got {pt}");
        assert!(d >= 0.0, "distance must be ≥ 0, got {d}");
        let d = d.max(Self::NEAR_FIELD);
        pt * self.g * d.powf(-self.alpha)
    }

    /// Minimum near-field distance; receivers closer than this are treated
    /// as being at this distance.
    pub const NEAR_FIELD: f64 = 1e-3;

    /// Transmit power needed so the receiver at distance `d` gets `pr`:
    /// the inverse of [`TwoRay::received_power`].
    ///
    /// # Panics
    /// Panics if `pr < 0` or `d < 0`.
    pub fn required_tx_power(&self, pr: f64, d: f64) -> f64 {
        assert!(pr >= 0.0, "received power must be ≥ 0, got {pr}");
        assert!(d >= 0.0, "distance must be ≥ 0, got {d}");
        let d = d.max(Self::NEAR_FIELD);
        pr * d.powf(self.alpha) / self.g
    }

    /// Maximum distance at which transmit power `pt` still delivers
    /// received power `pr_min`: `d = (Pt·G / Pr)^{1/α}`.
    ///
    /// Returns `0.0` when `pt == 0`, and `f64::INFINITY` when
    /// `pr_min == 0`.
    ///
    /// # Panics
    /// Panics if `pt < 0` or `pr_min < 0`.
    pub fn max_range(&self, pt: f64, pr_min: f64) -> f64 {
        assert!(pt >= 0.0 && pr_min >= 0.0, "powers must be ≥ 0");
        if pt == 0.0 {
            return 0.0;
        }
        if pr_min == 0.0 {
            return f64::INFINITY;
        }
        (pt * self.g / pr_min).powf(1.0 / self.alpha)
    }

    /// The `d_max` of the Zone Partition algorithm: the distance beyond
    /// which a station transmitting at `pmax` contributes at most
    /// `n_max` of noise — i.e. solves `Pmax·G·d^{-α} = Nmax`.
    ///
    /// # Panics
    /// Panics unless `pmax > 0` and `n_max > 0`.
    pub fn ignorable_noise_distance(&self, pmax: f64, n_max: f64) -> f64 {
        assert!(pmax > 0.0 && n_max > 0.0, "pmax and n_max must be > 0");
        (pmax * self.g / n_max).powf(1.0 / self.alpha)
    }
}

impl Default for TwoRay {
    /// The reproduction's default: `G = 1`, `α = 3`.
    fn default() -> Self {
        TwoRay::new(1.0, 3.0)
    }
}

impl fmt::Display for TwoRay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TwoRay(G={:.3e}, α={:.2})", self.g, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn power_law() {
        let m = TwoRay::new(2.0, 3.0);
        assert!((m.received_power(1.0, 2.0) - 0.25).abs() < 1e-12);
        // Doubling the distance with α=3 cuts power by 8.
        let p1 = m.received_power(1.0, 10.0);
        let p2 = m.received_power(1.0, 20.0);
        assert!((p1 / p2 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn antenna_folding() {
        let m = TwoRay::from_antennas(2.0, 3.0, 1.5, 0.5, 2.0);
        assert!((m.gain() - 2.0 * 3.0 * 2.25 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn inverse_relations() {
        let m = TwoRay::new(0.7, 3.3);
        let pr = m.received_power(5.0, 37.0);
        assert!((m.required_tx_power(pr, 37.0) - 5.0).abs() < 1e-9);
        let d = m.max_range(5.0, pr);
        assert!((d - 37.0).abs() < 1e-9);
    }

    #[test]
    fn near_field_clamp() {
        let m = TwoRay::default();
        let at_zero = m.received_power(1.0, 0.0);
        let at_near = m.received_power(1.0, TwoRay::NEAR_FIELD);
        assert_eq!(at_zero, at_near);
        assert!(at_zero.is_finite());
    }

    #[test]
    fn range_edge_cases() {
        let m = TwoRay::default();
        assert_eq!(m.max_range(0.0, 1.0), 0.0);
        assert_eq!(m.max_range(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn zone_partition_dmax() {
        let m = TwoRay::new(1.0, 3.0);
        let dmax = m.ignorable_noise_distance(1.0, 1e-6);
        // 1·1·d⁻³ = 1e-6  →  d = 100.
        assert!((dmax - 100.0).abs() < 1e-9);
        // At that distance the received power equals Nmax.
        assert!((m.received_power(1.0, dmax) - 1e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_gain_panics() {
        TwoRay::new(0.0, 3.0);
    }

    #[test]
    #[should_panic]
    fn sub_linear_alpha_panics() {
        TwoRay::new(1.0, 0.5);
    }

    prop! {
        fn prop_monotone_in_distance(
            g in 0.1..10.0f64, alpha in 2.0..4.0f64,
            d1 in 1.0..500.0f64, d2 in 1.0..500.0f64,
        ) {
            prop_assume!(d1 < d2);
            let m = TwoRay::new(g, alpha);
            prop_assert!(m.received_power(1.0, d1) > m.received_power(1.0, d2));
        }

        fn prop_tx_rx_roundtrip(
            g in 0.1..10.0f64, alpha in 2.0..4.0f64,
            pt in 0.01..100.0f64, d in 0.5..500.0f64,
        ) {
            let m = TwoRay::new(g, alpha);
            let pr = m.received_power(pt, d);
            prop_assert!((m.required_tx_power(pr, d) - pt).abs() / pt < 1e-9);
        }

        fn prop_max_range_consistent(
            g in 0.1..10.0f64, alpha in 2.0..4.0f64,
            pt in 0.01..100.0f64, pr in 1e-9..1e-3f64,
        ) {
            let m = TwoRay::new(g, alpha);
            let d = m.max_range(pt, pr);
            // Just inside the range the delivered power meets the floor.
            prop_assert!(m.received_power(pt, d * 0.999) >= pr);
            // Just outside it does not.
            prop_assert!(m.received_power(pt, d * 1.001) <= pr);
        }
    }
}
