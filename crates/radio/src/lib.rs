//! # sag-radio — radio propagation substrate
//!
//! Physical-layer models for the SAG (Signal-Aware Green relay network
//! design) reproduction:
//!
//! * [`units`] — decibel newtypes ([`Db`], [`DbMilliwatt`]) and exact
//!   linear↔dB conversions,
//! * [`tworay`] — the two-ray ground path-loss model of Eq. (2.1),
//!   `Pr = Pt · G · d^{-α}`,
//! * [`snr`] — the paper's interference-limited SNR (Definition 2) plus a
//!   thermal-noise variant,
//! * [`ledger`] — the incremental [`InterferenceLedger`]: per-subscriber
//!   interference accumulators with O(S) relay deltas, O(1) SNR queries
//!   and a brute-force oracle mode for parity checks,
//! * [`capacity`] — Shannon capacity and the capacity↔distance reduction
//!   of §II that turns data-rate requests into distance requests,
//! * [`link`] — a [`LinkBudget`] convenience facade combining all of the
//!   above.
//!
//! # Example: the paper's data-rate → distance reduction
//!
//! ```
//! use sag_radio::{capacity, tworay::TwoRay};
//!
//! let model = TwoRay::new(1.0, 3.0); // G = 1, α = 3
//! // A subscriber requests 2 Mbps over a 1 MHz channel at max power 1.0
//! // with thermal noise 1e-6: what is its feasible distance?
//! let d = capacity::max_distance_for_rate(&model, 1.0, 2.0e6, 1.0e6, 1.0e-6);
//! assert!(d > 0.0);
//! // At that distance the rate is exactly met.
//! let c = capacity::capacity_at_distance(&model, 1.0, d, 1.0e6, 1.0e-6);
//! assert!((c - 2.0e6).abs() / 2.0e6 < 1e-9);
//! ```

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(rust_2018_idioms)]

pub mod capacity;
pub mod ledger;
pub mod link;
pub mod models;
pub mod snr;
pub mod tworay;
pub mod units;

pub use ledger::{DesyncError, InterferenceLedger, LedgerMode, LedgerStats};
pub use link::LinkBudget;
pub use models::PathLoss;
pub use tworay::TwoRay;
pub use units::{Db, DbMilliwatt};
