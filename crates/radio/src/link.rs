//! Link-budget facade combining the propagation, SNR and capacity models.
//!
//! [`LinkBudget`] bundles the model constants the SAG algorithms carry
//! around (two-ray model, max transmit power, SNR threshold β, thermal
//! noise, bandwidth) behind one value with convenience queries. It is the
//! type the `sag-core` crate embeds in its `NetworkParams`.

use crate::capacity;
use crate::tworay::TwoRay;
use crate::units::Db;
use sag_geom::Point;

/// Bundled link-budget parameters.
///
/// Construct with [`LinkBudget::builder`]; all fields have physically
/// sensible defaults matching the reproduction's simulation settings.
///
/// # Example
/// ```
/// use sag_radio::{LinkBudget, units::Db};
/// let lb = LinkBudget::builder()
///     .snr_threshold(Db::new(-15.0))
///     .max_power(1.0)
///     .build();
/// assert!(lb.beta() < 0.04);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkBudget {
    model: TwoRay,
    pmax: f64,
    beta: f64,
    noise: f64,
    bandwidth: f64,
}

/// Builder for [`LinkBudget`]. See [`LinkBudget::builder`].
#[derive(Debug, Clone)]
pub struct LinkBudgetBuilder {
    model: TwoRay,
    pmax: f64,
    beta: f64,
    noise: f64,
    bandwidth: f64,
}

impl LinkBudget {
    /// Starts a builder with the reproduction defaults: two-ray `G = 1`,
    /// `α = 3`, `Pmax = 1`, β = −15 dB, noise `1e-9`, bandwidth 1 MHz.
    pub fn builder() -> LinkBudgetBuilder {
        LinkBudgetBuilder {
            model: TwoRay::default(),
            pmax: 1.0,
            beta: Db::new(-15.0).to_linear(),
            noise: 1e-9,
            bandwidth: 1.0e6,
        }
    }

    /// The propagation model.
    #[inline]
    pub fn model(&self) -> &TwoRay {
        &self.model
    }

    /// Maximum relay transmit power `Pmax`.
    #[inline]
    pub fn pmax(&self) -> f64 {
        self.pmax
    }

    /// Linear SNR threshold β.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The SNR threshold as dB.
    pub fn beta_db(&self) -> Db {
        Db::from_linear(self.beta)
    }

    /// Thermal noise floor `N0`.
    #[inline]
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Channel bandwidth in Hz.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Received power at `rx` from a transmitter at `tx` with power `pt`.
    pub fn received_power(&self, tx: Point, rx: Point, pt: f64) -> f64 {
        self.model.received_power(pt, tx.distance(rx))
    }

    /// The `P_ss` of constraint (3.8) for a subscriber whose feasible
    /// distance is `d`: the power received at exactly distance `d` under
    /// `Pmax`. (The reproduction ties data-rate requests to distances, so
    /// `P_ss` falls out of the distance rather than the rate.)
    pub fn min_received_power_for_distance(&self, d: f64) -> f64 {
        self.model.received_power(self.pmax, d)
    }

    /// Channel capacity (bps) of a link of length `d` at power `pt`.
    pub fn capacity(&self, pt: f64, d: f64) -> f64 {
        capacity::capacity_at_distance(&self.model, pt, d, self.bandwidth, self.noise)
    }

    /// Feasible distance for a requested `rate` in bps at `Pmax`.
    pub fn feasible_distance(&self, rate: f64) -> f64 {
        capacity::max_distance_for_rate(&self.model, self.pmax, rate, self.bandwidth, self.noise)
    }
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget::builder().build()
    }
}

impl LinkBudgetBuilder {
    /// Sets the propagation model.
    pub fn model(&mut self, model: TwoRay) -> &mut Self {
        self.model = model;
        self
    }

    /// Sets the maximum relay transmit power.
    ///
    /// # Panics
    /// Panics (at [`LinkBudgetBuilder::build`]) unless `pmax > 0`.
    pub fn max_power(&mut self, pmax: f64) -> &mut Self {
        self.pmax = pmax;
        self
    }

    /// Sets the SNR threshold.
    pub fn snr_threshold(&mut self, beta: Db) -> &mut Self {
        self.beta = beta.to_linear();
        self
    }

    /// Sets the thermal noise floor.
    pub fn noise(&mut self, n0: f64) -> &mut Self {
        self.noise = n0;
        self
    }

    /// Sets the channel bandwidth in Hz.
    pub fn bandwidth(&mut self, hz: f64) -> &mut Self {
        self.bandwidth = hz;
        self
    }

    /// Builds the [`LinkBudget`].
    ///
    /// # Panics
    /// Panics if any parameter is out of range (`pmax <= 0`,
    /// `beta < 0`, `noise < 0`, `bandwidth <= 0`).
    pub fn build(&self) -> LinkBudget {
        assert!(self.pmax > 0.0, "pmax must be > 0, got {}", self.pmax);
        assert!(self.beta >= 0.0, "beta must be ≥ 0, got {}", self.beta);
        assert!(self.noise >= 0.0, "noise must be ≥ 0, got {}", self.noise);
        assert!(
            self.bandwidth > 0.0,
            "bandwidth must be > 0, got {}",
            self.bandwidth
        );
        LinkBudget {
            model: self.model,
            pmax: self.pmax,
            beta: self.beta,
            noise: self.noise,
            bandwidth: self.bandwidth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let lb = LinkBudget::default();
        assert_eq!(lb.pmax(), 1.0);
        assert!((lb.beta_db().value() + 15.0).abs() < 1e-9);
        assert_eq!(lb.bandwidth(), 1.0e6);
    }

    #[test]
    fn builder_overrides() {
        let lb = LinkBudget::builder()
            .max_power(2.5)
            .snr_threshold(Db::new(-20.0))
            .noise(1e-8)
            .bandwidth(5.0e6)
            .model(TwoRay::new(4.0, 2.0))
            .build();
        assert_eq!(lb.pmax(), 2.5);
        assert!((lb.beta() - 0.01).abs() < 1e-9);
        assert_eq!(lb.noise(), 1e-8);
        assert_eq!(lb.model().alpha(), 2.0);
    }

    #[test]
    fn received_power_between_points() {
        let lb = LinkBudget::default();
        let pr = lb.received_power(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0);
        assert!((pr - 1e-3).abs() < 1e-12); // 1 / 10³
    }

    #[test]
    fn pss_at_feasible_distance_boundary() {
        let lb = LinkBudget::default();
        let pss = lb.min_received_power_for_distance(35.0);
        // Received power at 35.0 under Pmax equals P_ss by construction.
        assert!(
            (lb.received_power(Point::ORIGIN, Point::new(35.0, 0.0), lb.pmax()) - pss).abs()
                < 1e-15
        );
    }

    #[test]
    fn capacity_and_feasible_distance_roundtrip() {
        let lb = LinkBudget::builder().noise(1e-7).build();
        let rate = 2.0e6;
        let d = lb.feasible_distance(rate);
        assert!((lb.capacity(lb.pmax(), d) - rate).abs() / rate < 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_pmax_panics() {
        LinkBudget::builder().max_power(0.0).build();
    }
}
