//! Alternative path-loss models and the [`PathLoss`] abstraction.
//!
//! The paper fixes the two-ray ground model (Eq. 2.1) but leaves the
//! attenuation exponent open ("α usually varies in a range of 2–4").
//! This module abstracts the propagation law so sensitivity studies
//! (the `alpha_sweep` experiment, the `ablation` benches) can swap
//! models without touching the algorithms:
//!
//! * [`FreeSpace`] — Friis free-space loss (`α = 2` with a wavelength
//!   constant),
//! * [`LogDistance`] — log-distance loss around a reference distance,
//!   the standard empirical generalisation,
//! * [`crate::TwoRay`] — the paper's model, which also implements the
//!   trait.
//!
//! All models expose the same `received_power` / `required_tx_power` /
//! `max_range` triple with the same invariants (monotone decay,
//! inverse consistency).

use crate::tworay::TwoRay;

/// A deterministic distance-dependent path-loss law.
///
/// Implementations must be monotone non-increasing in distance and
/// satisfy the round-trip identities
/// `required_tx_power(received_power(pt, d), d) == pt` and
/// `received_power(pt, max_range(pt, pr)) == pr` (up to float error).
pub trait PathLoss {
    /// Received power at distance `d` for transmit power `pt`.
    fn received_power(&self, pt: f64, d: f64) -> f64;

    /// Transmit power needed to deliver `pr` at distance `d`.
    fn required_tx_power(&self, pr: f64, d: f64) -> f64;

    /// Maximum distance at which `pt` still delivers `pr_min`.
    fn max_range(&self, pt: f64, pr_min: f64) -> f64;
}

impl PathLoss for TwoRay {
    fn received_power(&self, pt: f64, d: f64) -> f64 {
        TwoRay::received_power(self, pt, d)
    }
    fn required_tx_power(&self, pr: f64, d: f64) -> f64 {
        TwoRay::required_tx_power(self, pr, d)
    }
    fn max_range(&self, pt: f64, pr_min: f64) -> f64 {
        TwoRay::max_range(self, pt, pr_min)
    }
}

/// Friis free-space propagation: `Pr = Pt · (λ / 4πd)²`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FreeSpace {
    wavelength: f64,
}

impl FreeSpace {
    /// Creates the model for carrier wavelength `wavelength` (metres).
    ///
    /// # Panics
    /// Panics unless `wavelength > 0` and finite.
    pub fn new(wavelength: f64) -> Self {
        assert!(
            wavelength.is_finite() && wavelength > 0.0,
            "wavelength must be > 0, got {wavelength}"
        );
        FreeSpace { wavelength }
    }

    /// The carrier wavelength.
    pub fn wavelength(&self) -> f64 {
        self.wavelength
    }

    #[inline]
    fn k(&self) -> f64 {
        let f = self.wavelength / (4.0 * std::f64::consts::PI);
        f * f
    }
}

impl PathLoss for FreeSpace {
    fn received_power(&self, pt: f64, d: f64) -> f64 {
        assert!(pt >= 0.0 && d >= 0.0, "powers and distances must be ≥ 0");
        let d = d.max(TwoRay::NEAR_FIELD);
        pt * self.k() / (d * d)
    }

    fn required_tx_power(&self, pr: f64, d: f64) -> f64 {
        assert!(pr >= 0.0 && d >= 0.0, "powers and distances must be ≥ 0");
        let d = d.max(TwoRay::NEAR_FIELD);
        pr * d * d / self.k()
    }

    fn max_range(&self, pt: f64, pr_min: f64) -> f64 {
        assert!(pt >= 0.0 && pr_min >= 0.0, "powers must be ≥ 0");
        if pt == 0.0 {
            return 0.0;
        }
        if pr_min == 0.0 {
            return f64::INFINITY;
        }
        (pt * self.k() / pr_min).sqrt()
    }
}

/// Log-distance path loss: `Pr = Pt · K · (d0 / d)^γ` — free-space-like
/// decay `γ` anchored at a measured reference distance `d0` with gain
/// `K` (the received-power fraction at `d0`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogDistance {
    d0: f64,
    k: f64,
    gamma: f64,
}

impl LogDistance {
    /// Creates a model with reference distance `d0`, reference gain `k`
    /// (received/transmitted power ratio at `d0`) and exponent `gamma`.
    ///
    /// # Panics
    /// Panics unless all parameters are positive and `gamma ≥ 1`.
    pub fn new(d0: f64, k: f64, gamma: f64) -> Self {
        assert!(d0.is_finite() && d0 > 0.0, "d0 must be > 0, got {d0}");
        assert!(k.is_finite() && k > 0.0, "k must be > 0, got {k}");
        assert!(
            gamma.is_finite() && gamma >= 1.0,
            "gamma must be ≥ 1, got {gamma}"
        );
        LogDistance { d0, k, gamma }
    }

    /// The path-loss exponent γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl PathLoss for LogDistance {
    fn received_power(&self, pt: f64, d: f64) -> f64 {
        assert!(pt >= 0.0 && d >= 0.0, "powers and distances must be ≥ 0");
        let d = d.max(TwoRay::NEAR_FIELD);
        pt * self.k * (self.d0 / d).powf(self.gamma)
    }

    fn required_tx_power(&self, pr: f64, d: f64) -> f64 {
        assert!(pr >= 0.0 && d >= 0.0, "powers and distances must be ≥ 0");
        let d = d.max(TwoRay::NEAR_FIELD);
        pr / (self.k * (self.d0 / d).powf(self.gamma))
    }

    fn max_range(&self, pt: f64, pr_min: f64) -> f64 {
        assert!(pt >= 0.0 && pr_min >= 0.0, "powers must be ≥ 0");
        if pt == 0.0 {
            return 0.0;
        }
        if pr_min == 0.0 {
            return f64::INFINITY;
        }
        self.d0 * (pt * self.k / pr_min).powf(1.0 / self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    fn check_roundtrip<M: PathLoss>(m: &M, pt: f64, d: f64) {
        let pr = m.received_power(pt, d);
        assert!((m.required_tx_power(pr, d) - pt).abs() / pt < 1e-9);
        let range = m.max_range(pt, pr);
        assert!((range - d).abs() / d < 1e-9, "range {range} vs d {d}");
    }

    #[test]
    fn freespace_follows_inverse_square() {
        let m = FreeSpace::new(0.125); // 2.4 GHz
        let p1 = m.received_power(1.0, 10.0);
        let p2 = m.received_power(1.0, 20.0);
        assert!((p1 / p2 - 4.0).abs() < 1e-9);
        check_roundtrip(&m, 2.0, 35.0);
    }

    #[test]
    fn log_distance_reference_gain() {
        let m = LogDistance::new(10.0, 1e-4, 3.0);
        // At d0 the received fraction is exactly k.
        assert!((m.received_power(1.0, 10.0) - 1e-4).abs() < 1e-12);
        // One decade further: 10^-γ less.
        assert!((m.received_power(1.0, 100.0) - 1e-7).abs() < 1e-15);
        check_roundtrip(&m, 0.5, 42.0);
    }

    #[test]
    fn two_ray_trait_object_usable() {
        let models: Vec<Box<dyn PathLoss>> = vec![
            Box::new(TwoRay::new(1.0, 3.0)),
            Box::new(FreeSpace::new(0.125)),
            Box::new(LogDistance::new(10.0, 1e-4, 3.0)),
        ];
        for m in &models {
            let pr = m.received_power(1.0, 50.0);
            assert!(pr > 0.0 && pr < 1.0);
            assert!(m.max_range(1.0, pr * 2.0) < 50.0);
        }
    }

    #[test]
    fn log_distance_matches_two_ray_when_aligned() {
        // LogDistance with k = G·d0^{-α} and γ = α is exactly TwoRay.
        let alpha = 3.0;
        let g = 2.0;
        let d0 = 10.0;
        let tr = TwoRay::new(g, alpha);
        let ld = LogDistance::new(d0, g * d0.powf(-alpha), alpha);
        for d in [5.0, 20.0, 80.0, 300.0] {
            let a = tr.received_power(1.0, d);
            let b = ld.received_power(1.0, d);
            assert!((a - b).abs() / a < 1e-12, "mismatch at d={d}");
        }
    }

    #[test]
    #[should_panic]
    fn bad_wavelength_panics() {
        FreeSpace::new(0.0);
    }

    #[test]
    #[should_panic]
    fn bad_gamma_panics() {
        LogDistance::new(1.0, 1.0, 0.5);
    }

    prop! {
        fn prop_monotone_decay(d1 in 1.0..400.0f64, d2 in 1.0..400.0f64, gamma in 2.0..4.0f64) {
            prop_assume!(d1 < d2);
            let models: Vec<Box<dyn PathLoss>> = vec![
                Box::new(TwoRay::new(1.0, gamma)),
                Box::new(FreeSpace::new(0.125)),
                Box::new(LogDistance::new(10.0, 1e-3, gamma)),
            ];
            for m in &models {
                prop_assert!(m.received_power(1.0, d1) >= m.received_power(1.0, d2));
            }
        }

        fn prop_roundtrips(pt in 0.01..10.0f64, d in 1.0..300.0f64, gamma in 2.0..4.0f64) {
            check_roundtrip(&TwoRay::new(1.5, gamma), pt, d);
            check_roundtrip(&FreeSpace::new(0.3), pt, d);
            check_roundtrip(&LogDistance::new(7.0, 1e-3, gamma), pt, d);
        }
    }
}
