//! Signal-to-noise computations.
//!
//! Definition 2 of the paper: if subscriber `s` receives powers
//! `p_1, …, p_n` from the placed relays and is served by relay `j`, its SNR
//! is `p_j / (Σ_i p_i − p_j)` — the serving signal over the sum of all
//! *other* relays' signals (interference-limited; thermal noise is treated
//! separately where needed).

use crate::tworay::TwoRay;
use sag_geom::Point;

/// Interference-limited SNR per Definition 2.
///
/// `received` holds the power received from every relay (including the
/// serving one at `serving_idx`).
///
/// Returns `f64::INFINITY` when there is no interference (single relay or
/// all other powers zero) and the serving power is positive; returns `0.0`
/// when the serving power is zero.
///
/// # Panics
/// Panics if `serving_idx` is out of bounds or any power is negative/NaN.
///
/// # Example
/// ```
/// use sag_radio::snr::snr_interference_limited;
/// let snr = snr_interference_limited(&[1.0, 0.25], 0);
/// assert!((snr - 4.0).abs() < 1e-12);
/// ```
pub fn snr_interference_limited(received: &[f64], serving_idx: usize) -> f64 {
    assert!(
        serving_idx < received.len(),
        "serving index {serving_idx} out of bounds"
    );
    let mut total = 0.0;
    for (i, &p) in received.iter().enumerate() {
        assert!(
            p >= 0.0 && !p.is_nan(),
            "received power {i} must be ≥ 0, got {p}"
        );
        total += p;
    }
    let signal = received[serving_idx];
    let interference = total - signal;
    if signal <= 0.0 {
        0.0
    } else if interference <= 0.0 {
        f64::INFINITY
    } else {
        signal / interference
    }
}

/// SNR with explicit thermal noise `n0` added to the interference
/// denominator (SINR). With `n0 == 0` this reduces to
/// [`snr_interference_limited`].
///
/// # Panics
/// Panics if `serving_idx` is out of bounds, any power is negative, or
/// `n0 < 0`.
pub fn sinr(received: &[f64], serving_idx: usize, n0: f64) -> f64 {
    assert!(n0 >= 0.0, "thermal noise must be ≥ 0, got {n0}");
    assert!(
        serving_idx < received.len(),
        "serving index {serving_idx} out of bounds"
    );
    let signal = received[serving_idx];
    let mut interference = n0;
    for (i, &p) in received.iter().enumerate() {
        assert!(p >= 0.0 && !p.is_nan(), "received power {i} must be ≥ 0");
        if i != serving_idx {
            interference += p;
        }
    }
    if signal <= 0.0 {
        0.0
    } else if interference <= 0.0 {
        f64::INFINITY
    } else {
        signal / interference
    }
}

/// Received-power vector at a subscriber location from a set of
/// transmitters with per-transmitter powers, under `model`.
///
/// `transmitters` and `powers` must have equal length.
///
/// # Panics
/// Panics on length mismatch.
pub fn received_powers(
    model: &TwoRay,
    subscriber: Point,
    transmitters: &[Point],
    powers: &[f64],
) -> Vec<f64> {
    assert_eq!(
        transmitters.len(),
        powers.len(),
        "transmitters ({}) and powers ({}) length mismatch",
        transmitters.len(),
        powers.len()
    );
    transmitters
        .iter()
        .zip(powers)
        .map(|(t, &p)| model.received_power(p, t.distance(subscriber)))
        .collect()
}

/// SNR at `subscriber` served by transmitter `serving_idx`, with all
/// transmitter positions and powers given explicitly (Definition 2 applied
/// through the two-ray model).
///
/// This is the workhorse predicate behind constraint (3.5): with all
/// relays at `Pmax` the powers cancel and the SNR depends only on
/// distances, but the general form is needed by PRO and the LPQC.
pub fn placement_snr(
    model: &TwoRay,
    subscriber: Point,
    transmitters: &[Point],
    powers: &[f64],
    serving_idx: usize,
) -> f64 {
    let rx = received_powers(model, subscriber, transmitters, powers);
    snr_interference_limited(&rx, serving_idx)
}

/// The uniform-power specialisation of constraint (3.5): all relays
/// transmit the same power, so SNR reduces to
/// `d_aj^{-α} / (Σ_i d_ij^{-α} − d_aj^{-α})` and the power level cancels.
pub fn placement_snr_uniform(
    model: &TwoRay,
    subscriber: Point,
    transmitters: &[Point],
    serving_idx: usize,
) -> f64 {
    let powers = vec![1.0; transmitters.len()];
    placement_snr(model, subscriber, transmitters, &powers, serving_idx)
}

/// Minimum serving power needed to reach SNR `beta` at a subscriber given
/// fixed interference `interference` (sum of other signals plus any
/// noise): `P_signal ≥ β · I`. Returns the *received* signal power floor.
///
/// # Panics
/// Panics if `beta < 0` or `interference < 0`.
pub fn min_signal_for_snr(beta: f64, interference: f64) -> f64 {
    assert!(beta >= 0.0, "beta must be ≥ 0, got {beta}");
    assert!(
        interference >= 0.0,
        "interference must be ≥ 0, got {interference}"
    );
    beta * interference
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn definition_two() {
        // p_j / (Σ p_i − p_j)
        let snr = snr_interference_limited(&[3.0, 1.0, 2.0], 0);
        assert!((snr - 1.0).abs() < 1e-12);
        let snr = snr_interference_limited(&[3.0, 1.0, 2.0], 1);
        assert!((snr - 0.2).abs() < 1e-12);
    }

    #[test]
    fn no_interference_is_infinite() {
        assert_eq!(snr_interference_limited(&[5.0], 0), f64::INFINITY);
        assert_eq!(snr_interference_limited(&[5.0, 0.0], 0), f64::INFINITY);
    }

    #[test]
    fn zero_signal_is_zero() {
        assert_eq!(snr_interference_limited(&[0.0, 1.0], 0), 0.0);
    }

    #[test]
    fn sinr_reduces_to_snr_at_zero_noise() {
        let rx = [2.0, 0.5, 0.25];
        assert!((sinr(&rx, 0, 0.0) - snr_interference_limited(&rx, 0)).abs() < 1e-12);
        // Noise lowers SINR.
        assert!(sinr(&rx, 0, 0.5) < snr_interference_limited(&rx, 0));
        // Single transmitter with noise: finite SINR.
        assert!((sinr(&[1.0], 0, 0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn placement_snr_uniform_cancels_power() {
        let m = TwoRay::new(1.0, 3.0);
        let s = Point::new(0.0, 0.0);
        let tx = [Point::new(10.0, 0.0), Point::new(40.0, 0.0)];
        let u = placement_snr_uniform(&m, s, &tx, 0);
        for p in [0.1, 1.0, 17.0] {
            let powers = vec![p, p];
            let v = placement_snr(&m, s, &tx, &powers, 0);
            assert!(
                (u - v).abs() / u < 1e-9,
                "power level leaked into uniform SNR"
            );
        }
        // d=10 vs 40 at α=3: ratio = (40/10)³ = 64.
        assert!((u - 64.0).abs() < 1e-9);
    }

    #[test]
    fn nearer_server_better_snr() {
        let m = TwoRay::default();
        let s = Point::ORIGIN;
        let tx = [Point::new(10.0, 0.0), Point::new(20.0, 0.0)];
        let near = placement_snr_uniform(&m, s, &tx, 0);
        let far = placement_snr_uniform(&m, s, &tx, 1);
        assert!(near > 1.0 && far < 1.0);
    }

    #[test]
    fn min_signal_scales_linearly() {
        assert_eq!(min_signal_for_snr(2.0, 3.0), 6.0);
        assert_eq!(min_signal_for_snr(0.0, 3.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_serving_panics() {
        snr_interference_limited(&[1.0], 1);
    }

    #[test]
    #[should_panic]
    fn negative_power_panics() {
        snr_interference_limited(&[1.0, -0.5], 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        received_powers(&TwoRay::default(), Point::ORIGIN, &[Point::ORIGIN], &[]);
    }

    prop! {
        fn prop_snr_nonnegative(
            ps in vec_of(0.0..10.0f64, 1..6),
            idx in 0usize..6,
        ) {
            prop_assume!(idx < ps.len());
            let s = snr_interference_limited(&ps, idx);
            prop_assert!(s >= 0.0);
        }

        fn prop_scaling_invariance(
            ps in vec_of(0.01..10.0f64, 2..6),
            idx in 0usize..6,
            k in 0.1..100.0f64,
        ) {
            prop_assume!(idx < ps.len());
            let a = snr_interference_limited(&ps, idx);
            let scaled: Vec<f64> = ps.iter().map(|p| p * k).collect();
            let b = snr_interference_limited(&scaled, idx);
            prop_assert!((a - b).abs() / a.max(1e-12) < 1e-9);
        }

        fn prop_more_interference_lower_snr(
            ps in vec_of(0.01..10.0f64, 2..6),
            extra in 0.01..5.0f64,
        ) {
            let base = snr_interference_limited(&ps, 0);
            let mut worse = ps.clone();
            worse.push(extra);
            let w = snr_interference_limited(&worse, 0);
            prop_assert!(w <= base + 1e-12);
        }
    }
}
