//! The incremental interference ledger — the SNR hot-path engine.
//!
//! Every placement-search loop in the pipeline asks the same question
//! over and over: "with the relays *here*, what is subscriber `j`'s
//! interference-limited SNR (Definition 2)?" Recomputing the mutual
//! interference sum from scratch costs `O(R)` per subscriber and
//! `O(S·R)` per probe; branch-and-bound, sliding-movement enumeration
//! and power reduction each issue thousands of probes.
//!
//! [`InterferenceLedger`] maintains, per subscriber, the aggregate
//! received power `T_j = Σ_i Pr(p_i, d_ij)` over all registered relays.
//! Relay mutations ([`add_relay`](InterferenceLedger::add_relay),
//! [`remove_relay`](InterferenceLedger::remove_relay),
//! [`move_relay`](InterferenceLedger::move_relay),
//! [`set_power`](InterferenceLedger::set_power)) are `O(S)` deltas —
//! or better under a cutoff, see below — and SNR queries are `O(1)`:
//! `snr(j, a) = signal / (T_j − signal)` with
//! `signal = Pr(p_a, d_aj)`.
//!
//! ## Exactness and the brute-force oracle
//!
//! A freshly built ledger (no cutoff) accumulates contributions in
//! relay order, so `T_j` is **bit-identical** to the sum inside
//! [`crate::snr::snr_interference_limited`] and the resulting SNR is
//! bit-identical to [`crate::snr::placement_snr`]. After incremental
//! mutations the accumulators can drift from the exact sum by a few
//! ulps (floating-point addition is not associative); the documented
//! parity bound is `1e-9` relative, enforced by property tests and far
//! below every feasibility margin in the pipeline.
//!
//! [`LedgerMode::Oracle`] keeps the brute-force path alive behind a
//! switch: every query recomputes the full sum from the registered
//! relays, ignoring the accumulators. [`snr_checked`]
//! (InterferenceLedger::snr_checked) and
//! [`audit`](InterferenceLedger::audit) cross-check the incremental
//! state against the oracle and surface divergence as a typed
//! [`DesyncError`] — never a silently wrong answer.
//!
//! ## Cutoff and the residual bound
//!
//! With a negligible-contribution cutoff `d_cut`, mutations only touch
//! subscribers within `d_cut` of the relay (found through a
//! [`sag_geom::SpatialHash`] radius walk). Each far subscriber's missed
//! contribution is *over*-approximated by the per-relay bound
//! `Pr(p, d_cut)` folded into a residual term, so the queried SNR is a
//! **lower bound** on the exact SNR: a constraint that passes under the
//! cutoff also passes exactly (soundness; see DESIGN.md, "Interference
//! engine"). The default everywhere in the pipeline is no cutoff.

use crate::tworay::TwoRay;
use sag_geom::{float, Point, SpatialHash};

/// Relative tolerance of the oracle cross-checks ([`DesyncError`]
/// detection). Incremental ulp drift sits orders of magnitude below
/// this; an actually stale accumulator sits far above.
pub const AUDIT_REL_TOL: f64 = 1e-6;

/// Relative cancellation guard: incremental interference below this
/// fraction of the aggregate received power is indistinguishable from
/// accumulated ulp drift (floating-point `total − signal` cancels
/// catastrophically when the serving relay dominates). Queries landing
/// in this regime are answered by an exact `O(R)` recompute from the
/// slot table instead of the ambiguous difference, so the ledger never
/// reports drift as physics — and never guesses `∞` where an
/// adversarially large threshold would make the guess unsound.
pub const CANCELLATION_GUARD: f64 = 1e-12;

/// SNR values at or above this are *saturated*: deep inside the
/// cancellation regime, where the interference is a sub-ulp residue of
/// the aggregate and tiny rounding differences between two exact-sum
/// *orders* can still swing "huge finite" to `∞`. The oracle
/// cross-checks and the parity suite treat two saturated values as
/// equal; every physical threshold in the pipeline sits many orders of
/// magnitude below.
pub const SNR_SATURATED: f64 = 1e11;

/// When a subtraction delta erases more than this fraction of an
/// accumulator's magnitude, the result is dominated by rounding noise
/// from the *old* (larger) magnitude, so the ledger recomputes that
/// subscriber exactly instead of trusting the difference. With this
/// threshold every surviving incremental step loses at most ~2 ulps
/// *relative to the current value*, which keeps total drift far below
/// [`CANCELLATION_GUARD`] between rebuilds.
const CANCEL_REFRESH: f64 = 0.5;

/// How the ledger answers queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LedgerMode {
    /// `O(1)` queries from the per-subscriber accumulators.
    #[default]
    Incremental,
    /// Brute-force recompute per query (`O(R)`): the exact reference
    /// path, kept alive for parity checking and debugging
    /// (`SAG_SNR_ORACLE=1` in the pipeline).
    Oracle,
}

/// Typed divergence between the incremental accumulators and the exact
/// brute-force recompute: the ledger's answer can no longer be trusted.
///
/// Produced by [`InterferenceLedger::audit`] and
/// [`InterferenceLedger::snr_checked`]; the chaos suite injects a stale
/// accumulator via [`InterferenceLedger::skew_accumulator`] and asserts
/// this error surfaces instead of a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesyncError {
    /// Subscriber whose state diverged.
    pub subscriber: usize,
    /// The incremental (ledger) value.
    pub ledger: f64,
    /// The exact brute-force (oracle) value.
    pub oracle: f64,
}

impl std::fmt::Display for DesyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "interference ledger desync at subscriber {}: ledger {:e}, oracle {:e}",
            self.subscriber, self.ledger, self.oracle
        )
    }
}

impl std::error::Error for DesyncError {}

/// One registered relay.
#[derive(Debug, Clone, Copy)]
struct RelaySlot {
    pos: Point,
    power: f64,
}

/// Cutoff state: the subscriber spatial index plus the conservative
/// residual bookkeeping (see the module docs).
#[derive(Debug, Clone)]
struct Cutoff {
    radius: f64,
    index: SpatialHash,
    /// `Σ` over active relays of the per-relay far bound `Pr(p, d_cut)`.
    residual_total: f64,
    /// Per subscriber, the portion of `residual_total` contributed by
    /// relays *within* its cutoff range (whose exact contribution is in
    /// `total_rx` instead). Residual for `j` is the difference.
    near_bound: Vec<f64>,
}

/// Snapshot of a ledger's cumulative work counters (see
/// [`InterferenceLedger::stats`]). These are observability data, not
/// algorithm state: consumers flush them into `sag-obs` counters at
/// stage boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Public mutations applied (`add`/`remove`/`move`/`set_power`).
    pub delta_ops: u64,
    /// Subscribers recomputed exactly after a cancelling subtraction
    /// (the [`CANCEL_REFRESH`] mechanism).
    pub cancel_refreshes: u64,
    /// Queries answered by the exact fallback because the incremental
    /// difference fell inside the [`CANCELLATION_GUARD`] drift regime.
    pub guard_activations: u64,
    /// Full [`rebuild`](InterferenceLedger::rebuild) passes.
    pub rebuilds: u64,
}

/// Internal counter cell. Mutation counters are plain integers (those
/// paths take `&mut self`); the guard counter is atomic because the
/// guarded queries run through `&self`.
#[derive(Debug, Default)]
struct StatsCell {
    delta_ops: u64,
    cancel_refreshes: u64,
    rebuilds: u64,
    guard_activations: std::sync::atomic::AtomicU64,
}

impl StatsCell {
    fn snapshot(&self) -> LedgerStats {
        LedgerStats {
            delta_ops: self.delta_ops,
            cancel_refreshes: self.cancel_refreshes,
            guard_activations: self
                .guard_activations
                .load(std::sync::atomic::Ordering::Relaxed),
            rebuilds: self.rebuilds,
        }
    }

    fn note_guard(&self) {
        self.guard_activations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Clone for StatsCell {
    fn clone(&self) -> Self {
        let s = self.snapshot();
        StatsCell {
            delta_ops: s.delta_ops,
            cancel_refreshes: s.cancel_refreshes,
            rebuilds: s.rebuilds,
            guard_activations: std::sync::atomic::AtomicU64::new(s.guard_activations),
        }
    }
}

/// Per-subscriber aggregate received-interference accumulators with
/// `O(S)` relay deltas and `O(1)` SNR queries. See the module docs.
///
/// Relay identifiers returned by
/// [`add_relay`](InterferenceLedger::add_relay) are slot indices:
/// stable across unrelated mutations, reused after
/// [`remove_relay`](InterferenceLedger::remove_relay) (lowest freed
/// slot first). Adding relays to a fresh ledger in order yields ids
/// `0, 1, 2, …` aligned with the caller's relay indexing.
#[derive(Debug, Clone)]
pub struct InterferenceLedger {
    model: TwoRay,
    subscribers: Vec<Point>,
    /// Subscriber-slot liveness: tombstoned slots keep their position
    /// and keep receiving relay deltas (so re-activation is exact and
    /// [`audit`](InterferenceLedger::audit) stays uniform), they are
    /// just not meaningful to query.
    sub_active: Vec<bool>,
    /// Freed subscriber slots, reused LIFO by
    /// [`add_subscriber`](InterferenceLedger::add_subscriber).
    sub_free: Vec<usize>,
    slots: Vec<Option<RelaySlot>>,
    free: Vec<usize>,
    n_active: usize,
    total_rx: Vec<f64>,
    mode: LedgerMode,
    cutoff: Option<Cutoff>,
    /// Reused buffer of subscribers needing an exact refresh after a
    /// severely-cancelling subtraction (see [`CANCEL_REFRESH`]).
    scratch: Vec<usize>,
    /// Cumulative work counters (see [`InterferenceLedger::stats`]).
    stats: StatsCell,
}

impl InterferenceLedger {
    /// An empty ledger over the given subscriber positions (exact: no
    /// cutoff, incremental mode).
    ///
    /// # Panics
    /// Panics if any subscriber position is not finite.
    pub fn new(model: TwoRay, subscribers: Vec<Point>) -> Self {
        for (j, s) in subscribers.iter().enumerate() {
            assert!(s.is_finite(), "subscriber {j} position is not finite");
        }
        let n = subscribers.len();
        InterferenceLedger {
            model,
            subscribers,
            sub_active: vec![true; n],
            sub_free: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            n_active: 0,
            total_rx: vec![0.0; n],
            mode: LedgerMode::default(),
            cutoff: None,
            scratch: Vec::new(),
            stats: StatsCell::default(),
        }
    }

    /// Switches the query mode (builder style).
    pub fn with_mode(mut self, mode: LedgerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables the negligible-contribution cutoff at `radius` (builder
    /// style): mutations only touch subscribers within `radius` of the
    /// relay; farther contributions are folded into the conservative
    /// residual bound. Queries become SNR *lower* bounds — sound but
    /// not exact. Must be set before any relay is added.
    ///
    /// # Panics
    /// Panics if `radius` is not strictly positive and finite, or if
    /// relays were already added.
    pub fn with_cutoff(mut self, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "cutoff radius must be > 0, got {radius}"
        );
        assert!(
            self.n_active == 0,
            "set the cutoff before adding relays (it is part of the accumulator layout)"
        );
        assert!(
            self.sub_free.is_empty(),
            "set the cutoff before mutating subscribers (the spatial index is static)"
        );
        let index = SpatialHash::build(&self.subscribers, radius);
        self.cutoff = Some(Cutoff {
            radius,
            index,
            residual_total: 0.0,
            near_bound: vec![0.0; self.subscribers.len()],
        });
        self
    }

    /// The active query mode.
    pub fn mode(&self) -> LedgerMode {
        self.mode
    }

    /// The cutoff radius, if one is set.
    pub fn cutoff_radius(&self) -> Option<f64> {
        self.cutoff.as_ref().map(|c| c.radius)
    }

    /// Number of subscribers the ledger tracks.
    pub fn n_subscribers(&self) -> usize {
        self.subscribers.len()
    }

    /// Position of subscriber `j`.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    pub fn subscriber(&self, j: usize) -> Point {
        self.subscribers[j]
    }

    /// Whether subscriber slot `j` is active (never tombstoned, or
    /// re-activated by [`add_subscriber`](InterferenceLedger::add_subscriber)).
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    pub fn is_subscriber_active(&self, j: usize) -> bool {
        self.sub_active[j]
    }

    /// Number of active (non-tombstoned) subscriber slots.
    pub fn n_active_subscribers(&self) -> usize {
        self.subscribers.len() - self.sub_free.len()
    }

    /// Registers a subscriber and returns its slot id, mirroring
    /// [`add_relay`](InterferenceLedger::add_relay): the lowest-freed
    /// slot is reused first (LIFO), otherwise a new slot is appended.
    /// The new accumulator is initialised to the exact slot-order sum
    /// over the registered relays (the same sum
    /// [`audit`](InterferenceLedger::audit) checks against), so an
    /// added subscriber is **bit-identical** to one present in a fresh
    /// build with the same relay sequence. `O(R)`.
    ///
    /// # Panics
    /// Panics if `pos` is not finite, or if a cutoff is set (the
    /// subscriber spatial index is static; churn requires an exact
    /// ledger, which is the pipeline default).
    pub fn add_subscriber(&mut self, pos: Point) -> usize {
        assert!(pos.is_finite(), "subscriber position is not finite");
        assert!(
            self.cutoff.is_none(),
            "subscriber mutations require an exact (no-cutoff) ledger"
        );
        let j = match self.sub_free.pop() {
            Some(j) => j,
            None => {
                self.subscribers.push(pos);
                self.sub_active.push(false);
                self.total_rx.push(0.0);
                self.subscribers.len() - 1
            }
        };
        self.subscribers[j] = pos;
        self.sub_active[j] = true;
        self.total_rx[j] = self.expected_total(j);
        self.stats.delta_ops += 1;
        j
    }

    /// Tombstones subscriber slot `j`, returning its position. The slot
    /// keeps its position and continues to receive relay deltas (so
    /// [`audit`](InterferenceLedger::audit) stays uniform across slots
    /// and re-activation is exact); it is merely excluded from the
    /// active count and eligible for reuse. `O(1)`.
    ///
    /// # Panics
    /// Panics if `j` is not an active subscriber slot, or if a cutoff
    /// is set.
    pub fn remove_subscriber(&mut self, j: usize) -> Point {
        assert!(
            self.cutoff.is_none(),
            "subscriber mutations require an exact (no-cutoff) ledger"
        );
        assert!(
            self.sub_active.get(j).copied().unwrap_or(false),
            "subscriber slot {j} is not active"
        );
        self.sub_active[j] = false;
        self.sub_free.push(j);
        self.stats.delta_ops += 1;
        self.subscribers[j]
    }

    /// Moves subscriber `j` to `pos`, returning its old position.
    /// Implemented literally as remove + add on the same slot (the LIFO
    /// free list guarantees slot reuse), so the result is bit-identical
    /// to [`remove_subscriber`](InterferenceLedger::remove_subscriber)
    /// followed by [`add_subscriber`](InterferenceLedger::add_subscriber)
    /// by construction. `O(R)`.
    ///
    /// # Panics
    /// Panics if `j` is not an active subscriber slot, `pos` is not
    /// finite, or a cutoff is set.
    pub fn move_subscriber(&mut self, j: usize, pos: Point) -> Point {
        assert!(pos.is_finite(), "subscriber position is not finite");
        let old = self.remove_subscriber(j);
        let reused = self.add_subscriber(pos);
        debug_assert_eq!(reused, j, "LIFO free list must reuse the freed slot");
        old
    }

    /// Number of currently registered relays.
    pub fn n_relays(&self) -> usize {
        self.n_active
    }

    /// Registers a relay and returns its id. `O(S)`, or `O(|near|)`
    /// under a cutoff.
    ///
    /// # Panics
    /// Panics if `pos` is not finite or `power` is negative/non-finite.
    pub fn add_relay(&mut self, pos: Point, power: f64) -> usize {
        assert!(pos.is_finite(), "relay position is not finite");
        assert!(
            power.is_finite() && power >= 0.0,
            "relay power must be ≥ 0 and finite, got {power}"
        );
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[id] = Some(RelaySlot { pos, power });
        self.n_active += 1;
        self.stats.delta_ops += 1;
        self.apply_add(pos, power);
        id
    }

    /// Unregisters relay `id`, returning its position and power.
    ///
    /// # Panics
    /// Panics if `id` is not a registered relay.
    pub fn remove_relay(&mut self, id: usize) -> (Point, f64) {
        let slot = self.take_slot(id);
        self.n_active -= 1;
        self.stats.delta_ops += 1;
        if self.n_active == 0 {
            // No relays left: reset the accumulators to exact zero so
            // incremental drift cannot survive an empty ledger.
            self.total_rx.fill(0.0);
            if let Some(c) = &mut self.cutoff {
                c.residual_total = 0.0;
                c.near_bound.fill(0.0);
            }
        } else {
            let mut dirty = std::mem::take(&mut self.scratch);
            let residual_stale = self.apply_sub(slot.pos, slot.power, &mut dirty);
            self.refresh(&mut dirty, residual_stale);
        }
        self.free.push(id);
        (slot.pos, slot.power)
    }

    /// Moves relay `id` to `pos` (remove + add delta in one pass pair).
    ///
    /// # Panics
    /// Panics if `id` is not registered or `pos` is not finite.
    pub fn move_relay(&mut self, id: usize, pos: Point) {
        assert!(pos.is_finite(), "relay position is not finite");
        let slot = self.slot(id);
        if slot.pos == pos {
            return;
        }
        let (old_pos, power) = (slot.pos, slot.power);
        // Commit the slot first: exact refreshes recompute from the
        // slot table, which must describe the *final* state.
        self.slot_mut(id).pos = pos;
        self.stats.delta_ops += 1;
        let mut dirty = std::mem::take(&mut self.scratch);
        let residual_stale = self.apply_sub(old_pos, power, &mut dirty);
        self.apply_add(pos, power);
        self.refresh(&mut dirty, residual_stale);
    }

    /// Changes relay `id`'s transmit power.
    ///
    /// # Panics
    /// Panics if `id` is not registered or `power` is
    /// negative/non-finite.
    pub fn set_power(&mut self, id: usize, power: f64) {
        assert!(
            power.is_finite() && power >= 0.0,
            "relay power must be ≥ 0 and finite, got {power}"
        );
        let slot = self.slot(id);
        if slot.power == power {
            return;
        }
        let (pos, old_power) = (slot.pos, slot.power);
        self.slot_mut(id).power = power;
        self.stats.delta_ops += 1;
        let mut dirty = std::mem::take(&mut self.scratch);
        let residual_stale = self.apply_sub(pos, old_power, &mut dirty);
        self.apply_add(pos, power);
        self.refresh(&mut dirty, residual_stale);
    }

    /// Relay `id`'s position.
    ///
    /// # Panics
    /// Panics if `id` is not registered.
    pub fn position(&self, id: usize) -> Point {
        self.slot(id).pos
    }

    /// Relay `id`'s transmit power.
    ///
    /// # Panics
    /// Panics if `id` is not registered.
    pub fn power(&self, id: usize) -> f64 {
        self.slot(id).power
    }

    /// Exact received power at subscriber `j` from relay `id` (always
    /// recomputed from the relay's registered position/power — never
    /// subject to cutoff or drift).
    pub fn signal(&self, j: usize, id: usize) -> f64 {
        let slot = self.slot(id);
        self.model
            .received_power(slot.power, slot.pos.distance(self.subscribers[j]))
    }

    /// Aggregate interference at subscriber `j` excluding relay
    /// `serving` — the denominator of Definition 2. `O(1)` in
    /// incremental mode; an upper bound under a cutoff (hence SNR from
    /// it is a sound lower bound); exact brute recompute in
    /// [`LedgerMode::Oracle`].
    pub fn interference_at(&self, j: usize, serving: usize) -> f64 {
        match self.mode {
            LedgerMode::Oracle => self.interference_oracle(j, serving),
            LedgerMode::Incremental => {
                let v = self.interference_incremental(j, serving);
                if v <= CANCELLATION_GUARD * self.total_rx[j].abs() {
                    // Drift-scale difference: resolve exactly rather
                    // than clamp (see `snr_incremental`).
                    self.stats.note_guard();
                    self.interference_oracle(j, serving)
                } else {
                    v
                }
            }
        }
    }

    /// Interference-limited SNR at subscriber `j` served by relay
    /// `serving` (Definition 2): `0.0` when the serving signal is zero,
    /// `∞` when there is no interference. `O(1)` in incremental mode.
    pub fn snr(&self, j: usize, serving: usize) -> f64 {
        match self.mode {
            LedgerMode::Oracle => self.snr_oracle(j, serving),
            LedgerMode::Incremental => self.snr_incremental(j, serving),
        }
    }

    /// [`snr`](InterferenceLedger::snr) with the oracle cross-check:
    /// recomputes the exact SNR from the registered relays and returns
    /// a typed [`DesyncError`] when the incremental answer diverges
    /// beyond [`AUDIT_REL_TOL`] (beyond the sound direction, for cutoff
    /// ledgers). This is the "wrong answers become typed errors" hook
    /// the chaos suite drives.
    ///
    /// # Errors
    /// [`DesyncError`] when the accumulators no longer agree with the
    /// brute-force recompute.
    pub fn snr_checked(&self, j: usize, serving: usize) -> Result<f64, DesyncError> {
        // Accumulator staleness first: the cancellation-guard fallback
        // answers from the slot table when the incremental difference is
        // ambiguous, so a skewed accumulator could otherwise produce a
        // correct *answer* while the state is corrupt. A desync is a
        // desync regardless of which path the query took.
        let expected = self.expected_total(j);
        let got = self.total_rx[j];
        if (got - expected).abs() > AUDIT_REL_TOL * expected.abs().max(1e-12) {
            return Err(DesyncError {
                subscriber: j,
                ledger: got,
                oracle: expected,
            });
        }
        let oracle = self.snr_oracle(j, serving);
        let inc = self.snr_incremental(j, serving);
        // Two saturated answers (including ∞) are equivalent: inside the
        // cancellation-guard regime the exact and incremental paths may
        // legitimately disagree about "huge vs infinite".
        let saturated = inc >= SNR_SATURATED && oracle >= SNR_SATURATED;
        let ok = saturated
            || if self.cutoff.is_some() {
                // Conservative mode: the incremental answer must stay a
                // lower bound (up to tolerance).
                inc <= oracle * (1.0 + AUDIT_REL_TOL)
            } else {
                (inc - oracle).abs() <= AUDIT_REL_TOL * oracle.abs().max(AUDIT_REL_TOL)
            };
        if ok {
            Ok(match self.mode {
                LedgerMode::Oracle => oracle,
                LedgerMode::Incremental => inc,
            })
        } else {
            Err(DesyncError {
                subscriber: j,
                ledger: inc,
                oracle,
            })
        }
    }

    /// Full accumulator audit against the brute-force recompute:
    /// `Ok(())` when every subscriber's accumulator matches the exact
    /// sum within [`AUDIT_REL_TOL`], the first divergence otherwise.
    ///
    /// # Errors
    /// [`DesyncError`] naming the first diverged subscriber.
    pub fn audit(&self) -> Result<(), DesyncError> {
        for j in 0..self.subscribers.len() {
            let expected = self.expected_total(j);
            let got = self.total_rx[j];
            if (got - expected).abs() > AUDIT_REL_TOL * expected.abs().max(1e-12) {
                return Err(DesyncError {
                    subscriber: j,
                    ledger: got,
                    oracle: expected,
                });
            }
        }
        Ok(())
    }

    /// Recomputes every accumulator from the registered relays,
    /// discarding any incremental drift. `O(R·S)` — cheap insurance for
    /// long mutation sequences (branch-and-bound calls this
    /// periodically).
    pub fn rebuild(&mut self) {
        self.stats.rebuilds += 1;
        self.total_rx.fill(0.0);
        if let Some(c) = &mut self.cutoff {
            c.residual_total = 0.0;
            c.near_bound.fill(0.0);
        }
        let active: Vec<RelaySlot> = self.slots.iter().filter_map(|s| *s).collect();
        for slot in active {
            self.apply_add(slot.pos, slot.power);
        }
    }

    /// Chaos hook: skews subscriber `j`'s accumulator by `delta`,
    /// simulating a stale/corrupted ledger entry. Only the robustness
    /// suites should call this; [`audit`](InterferenceLedger::audit)
    /// and [`snr_checked`](InterferenceLedger::snr_checked) are
    /// expected to surface the damage as a [`DesyncError`].
    pub fn skew_accumulator(&mut self, j: usize, delta: f64) {
        self.total_rx[j] += delta;
    }

    /// A new ledger restricted to the subscriber subset `subset`
    /// (indices into this ledger, kept in the caller's order), with the
    /// same propagation model, query mode, cutoff and registered relays.
    ///
    /// Subset accumulators are rebuilt exactly (relays re-added in slot
    /// id order), so a split of a freshly built ledger is bit-identical
    /// to building over the subset directly — zone workers get private
    /// drift-free state. Relay ids compact to `0, 1, 2, …` in the
    /// parent's slot id order.
    ///
    /// # Panics
    /// Panics if any subset index is out of range.
    pub fn split(&self, subset: &[usize]) -> InterferenceLedger {
        let subs: Vec<Point> = subset.iter().map(|&j| self.subscribers[j]).collect();
        let mut out = InterferenceLedger::new(self.model, subs).with_mode(self.mode);
        if let Some(c) = &self.cutoff {
            out = out.with_cutoff(c.radius);
        }
        for slot in self.slots.iter().flatten() {
            out.add_relay(slot.pos, slot.power);
        }
        out
    }

    /// Registers every relay of `other` into `self` (in `other`'s slot
    /// id order), returning the ids assigned here. Contributions are
    /// recomputed against *this* ledger's subscribers, so merging the
    /// per-zone ledgers of a partition back into an empty global ledger
    /// — in zone order — reproduces, bit for bit, the ledger a
    /// sequential build of the concatenated relay list would produce.
    pub fn merge_from(&mut self, other: &InterferenceLedger) -> Vec<usize> {
        other
            .slots
            .iter()
            .flatten()
            .map(|slot| self.add_relay(slot.pos, slot.power))
            .collect()
    }

    /// Snapshot of the cumulative work counters: delta mutations,
    /// exact cancel-refresh recomputes, cancellation-guard query
    /// fallbacks and full rebuilds. Counters survive [`Clone`] (the
    /// clone starts from the parent's totals) and are never reset.
    pub fn stats(&self) -> LedgerStats {
        self.stats.snapshot()
    }

    // ---- internals ----------------------------------------------------

    fn slot(&self, id: usize) -> &RelaySlot {
        self.slots
            .get(id)
            .and_then(|s| s.as_ref())
            .unwrap_or_else(|| panic!("relay id {id} is not registered"))
    }

    fn slot_mut(&mut self, id: usize) -> &mut RelaySlot {
        self.slots
            .get_mut(id)
            .and_then(|s| s.as_mut())
            .unwrap_or_else(|| panic!("relay id {id} is not registered"))
    }

    fn take_slot(&mut self, id: usize) -> RelaySlot {
        self.slots
            .get_mut(id)
            .and_then(Option::take)
            .unwrap_or_else(|| panic!("relay id {id} is not registered"))
    }

    /// Adds one relay's contribution to every (in-range) accumulator.
    /// Addition of non-negative terms cannot cancel, so no refresh
    /// bookkeeping is needed on this path.
    fn apply_add(&mut self, pos: Point, power: f64) {
        match &mut self.cutoff {
            None => {
                for (j, sub) in self.subscribers.iter().enumerate() {
                    self.total_rx[j] += self.model.received_power(power, pos.distance(*sub));
                }
            }
            Some(c) => {
                let bound = self.model.received_power(power, c.radius);
                c.residual_total += bound;
                let Cutoff {
                    radius,
                    index,
                    near_bound,
                    ..
                } = c;
                let total_rx = &mut self.total_rx;
                let model = self.model;
                index.for_each_within(pos, *radius, |j, d| {
                    total_rx[j] += model.received_power(power, d);
                    near_bound[j] += bound;
                });
            }
        }
    }

    /// Subtracts one relay's contribution. Subscribers whose
    /// accumulator lost more than [`CANCEL_REFRESH`] of its magnitude
    /// (the difference is then rounding noise from the old, larger
    /// value) are pushed onto `dirty` for exact recomputation once the
    /// slot table reflects the final state. Returns whether the cutoff
    /// residual total suffered the same fate.
    fn apply_sub(&mut self, pos: Point, power: f64, dirty: &mut Vec<usize>) -> bool {
        match &mut self.cutoff {
            None => {
                for (j, sub) in self.subscribers.iter().enumerate() {
                    let old = self.total_rx[j];
                    let new = old - self.model.received_power(power, pos.distance(*sub));
                    self.total_rx[j] = new;
                    if new.abs() < CANCEL_REFRESH * old.abs() {
                        dirty.push(j);
                    }
                }
                false
            }
            Some(c) => {
                let bound = self.model.received_power(power, c.radius);
                let old_rt = c.residual_total;
                c.residual_total -= bound;
                let residual_stale = c.residual_total.abs() < CANCEL_REFRESH * old_rt.abs();
                let Cutoff {
                    radius,
                    index,
                    near_bound,
                    ..
                } = c;
                let total_rx = &mut self.total_rx;
                let model = self.model;
                index.for_each_within(pos, *radius, |j, d| {
                    let old = total_rx[j];
                    let new = old - model.received_power(power, d);
                    total_rx[j] = new;
                    let old_nb = near_bound[j];
                    near_bound[j] -= bound;
                    if new.abs() < CANCEL_REFRESH * old.abs()
                        || near_bound[j].abs() < CANCEL_REFRESH * old_nb.abs()
                    {
                        dirty.push(j);
                    }
                });
                residual_stale
            }
        }
    }

    /// Exactly recomputes the accumulators of every subscriber in
    /// `dirty` (and the residual total when stale) from the slot table,
    /// then returns the buffer to `scratch` for reuse.
    fn refresh(&mut self, dirty: &mut Vec<usize>, residual_stale: bool) {
        let mut buf = std::mem::take(dirty);
        self.stats.cancel_refreshes += buf.len() as u64;
        for &j in &buf {
            self.total_rx[j] = self.expected_total(j);
            if self.cutoff.is_some() {
                let nb = self.expected_near_bound(j);
                if let Some(c) = &mut self.cutoff {
                    c.near_bound[j] = nb;
                }
            }
        }
        if residual_stale {
            let rt = self.expected_residual_total();
            if let Some(c) = &mut self.cutoff {
                c.residual_total = rt;
            }
        }
        buf.clear();
        self.scratch = buf;
    }

    /// The conservative residual interference bound for subscriber `j`
    /// (0 without a cutoff).
    fn residual(&self, j: usize) -> f64 {
        match &self.cutoff {
            None => 0.0,
            Some(c) => (c.residual_total - c.near_bound[j]).max(0.0),
        }
    }

    fn interference_incremental(&self, j: usize, serving: usize) -> f64 {
        // Without a cutoff this is exactly `total − signal`, matching
        // the brute path bit-for-bit on a freshly built ledger. With a
        // cutoff the serving relay may or may not be inside `total`;
        // either way the residual covers the gap from above (see
        // DESIGN.md "Interference engine" for the case analysis).
        let base = self.total_rx[j] - self.signal(j, serving);
        match &self.cutoff {
            None => base,
            Some(_) => base + self.residual(j),
        }
    }

    fn snr_incremental(&self, j: usize, serving: usize) -> f64 {
        let signal = self.signal(j, serving);
        if signal <= 0.0 {
            return 0.0;
        }
        let interference = self.interference_incremental(j, serving);
        // The cancellation guard subsumes the `≤ 0` branch: interference
        // at ulp scale relative to the aggregate is drift, not physics —
        // the incremental difference cannot distinguish "exactly zero"
        // from "tiny but real". Resolve the ambiguity exactly instead of
        // guessing: an `O(R)` recompute, paid only in the rare regime
        // where the serving relay all but owns the aggregate. Guessing
        // `∞` here would be unsound against adversarially huge
        // thresholds (the chaos suite's `ExtremeThreshold` pushes β far
        // beyond any physical SNR).
        if interference <= CANCELLATION_GUARD * self.total_rx[j].abs() {
            self.stats.note_guard();
            self.snr_oracle(j, serving)
        } else {
            signal / interference
        }
    }

    fn interference_oracle(&self, j: usize, serving: usize) -> f64 {
        let sub = self.subscribers[j];
        let mut sum = 0.0;
        for (id, slot) in self.slots.iter().enumerate() {
            if id == serving {
                continue;
            }
            if let Some(s) = slot {
                sum += self.model.received_power(s.power, s.pos.distance(sub));
            }
        }
        sum
    }

    fn snr_oracle(&self, j: usize, serving: usize) -> f64 {
        // Mirror `snr_interference_limited`: accumulate the *total* in
        // slot order and subtract the serving signal, so a fresh ledger
        // and the brute helper agree bit-for-bit.
        let sub = self.subscribers[j];
        let mut total = 0.0;
        for slot in self.slots.iter().flatten() {
            total += self
                .model
                .received_power(slot.power, slot.pos.distance(sub));
        }
        let signal = self.signal(j, serving);
        let interference = total - signal;
        if signal <= 0.0 {
            0.0
        } else if interference <= 0.0 {
            f64::INFINITY
        } else {
            signal / interference
        }
    }

    /// What `total_rx[j]` *should* hold: the slot-order sum of every
    /// active relay's contribution, restricted to in-range relays under
    /// a cutoff (same membership predicate as the spatial walk).
    fn expected_total(&self, j: usize) -> f64 {
        let sub = self.subscribers[j];
        let mut total = 0.0;
        for slot in self.slots.iter().flatten() {
            let d = slot.pos.distance(sub);
            if let Some(c) = &self.cutoff {
                if !float::leq(d, c.radius) {
                    continue;
                }
            }
            total += self.model.received_power(slot.power, d);
        }
        total
    }

    /// What `near_bound[j]` should hold: the sum of per-relay far
    /// bounds over active relays within cutoff range of `j`.
    fn expected_near_bound(&self, j: usize) -> f64 {
        let Some(c) = &self.cutoff else {
            return 0.0;
        };
        let sub = self.subscribers[j];
        let mut total = 0.0;
        for slot in self.slots.iter().flatten() {
            if float::leq(slot.pos.distance(sub), c.radius) {
                total += self.model.received_power(slot.power, c.radius);
            }
        }
        total
    }

    /// What `residual_total` should hold: the sum of every active
    /// relay's far bound.
    fn expected_residual_total(&self) -> f64 {
        let Some(c) = &self.cutoff else {
            return 0.0;
        };
        self.slots
            .iter()
            .flatten()
            .map(|slot| self.model.received_power(slot.power, c.radius))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snr;
    use sag_testkit::prelude::*;

    fn model() -> TwoRay {
        TwoRay::new(1.0, 3.0)
    }

    fn subs() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(0.0, 80.0),
        ]
    }

    /// Exact SNR via the brute helpers, for parity assertions.
    fn brute_snr(ledger: &InterferenceLedger, ids: &[usize], j: usize, serving: usize) -> f64 {
        let positions: Vec<Point> = ids.iter().map(|&i| ledger.position(i)).collect();
        let powers: Vec<f64> = ids.iter().map(|&i| ledger.power(i)).collect();
        let serving_idx = ids.iter().position(|&i| i == serving).unwrap();
        snr::placement_snr(
            &model(),
            ledger.subscribers[j],
            &positions,
            &powers,
            serving_idx,
        )
    }

    #[test]
    fn stats_count_mutations_refreshes_and_rebuilds() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        assert_eq!(ledger.stats(), LedgerStats::default());
        let a = ledger.add_relay(Point::new(10.0, 0.0), 1.0);
        let b = ledger.add_relay(Point::new(40.0, 10.0), 1.0);
        ledger.move_relay(a, Point::new(12.0, 0.0));
        ledger.set_power(b, 0.5);
        ledger.remove_relay(b);
        let s = ledger.stats();
        assert_eq!(s.delta_ops, 5);
        // Removing the dominant contributor next to a subscriber forces
        // at least one cancelling refresh somewhere along the sequence.
        ledger.rebuild();
        assert_eq!(ledger.stats().rebuilds, 1);
        // Clones carry the parent's totals forward.
        let clone = ledger.clone();
        assert_eq!(clone.stats(), ledger.stats());
    }

    #[test]
    fn guard_activations_count_exact_fallback_queries() {
        // One lone relay serving a subscriber: all interference comes
        // from itself, so the incremental difference is pure drift and
        // the guard must answer via the oracle.
        let mut ledger = InterferenceLedger::new(model(), subs());
        let id = ledger.add_relay(Point::new(1.0, 0.0), 1.0);
        assert_eq!(ledger.stats().guard_activations, 0);
        let _ = ledger.snr(0, id);
        assert!(ledger.stats().guard_activations >= 1);
    }

    fn assert_snr_close(a: f64, b: f64) {
        if a >= SNR_SATURATED || b >= SNR_SATURATED {
            assert!(
                a >= SNR_SATURATED && b >= SNR_SATURATED,
                "saturation mismatch: {a} vs {b}"
            );
        } else {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1e-9),
                "SNR parity broken: {a} vs {b}"
            );
        }
    }

    #[test]
    fn split_matches_a_direct_build_over_the_subset() {
        let mut parent = InterferenceLedger::new(model(), subs());
        parent.add_relay(Point::new(10.0, 0.0), 1.0);
        parent.add_relay(Point::new(45.0, 5.0), 0.7);
        let piece = parent.split(&[0, 2]);
        assert_eq!(piece.n_subscribers(), 2);
        assert_eq!(piece.n_relays(), 2);
        assert_eq!(piece.subscriber(1), Point::new(0.0, 80.0));
        // Bit-identical to building fresh over the subset.
        let mut direct =
            InterferenceLedger::new(model(), vec![Point::new(0.0, 0.0), Point::new(0.0, 80.0)]);
        direct.add_relay(Point::new(10.0, 0.0), 1.0);
        direct.add_relay(Point::new(45.0, 5.0), 0.7);
        for j in 0..2 {
            for id in 0..2 {
                assert_eq!(piece.interference_at(j, id), direct.interference_at(j, id));
            }
        }
        // Mode survives the split.
        let oracle = parent.clone().with_mode(LedgerMode::Oracle).split(&[1]);
        assert_eq!(oracle.mode(), LedgerMode::Oracle);
    }

    #[test]
    fn merging_zone_ledgers_reproduces_the_sequential_build() {
        // Two "zones" over disjoint subscriber subsets; each zone
        // ledger carries its own relays. Merging them into an empty
        // global ledger in zone order must equal adding the
        // concatenated relay list to a fresh global ledger.
        let all = subs();
        let global_empty = InterferenceLedger::new(model(), all.clone());
        let mut zone_a = global_empty.split(&[0, 1]);
        zone_a.add_relay(Point::new(8.0, 2.0), 1.0);
        zone_a.add_relay(Point::new(42.0, -3.0), 1.0);
        let mut zone_b = global_empty.split(&[2]);
        zone_b.add_relay(Point::new(4.0, 71.0), 1.0);

        let mut merged = global_empty.clone();
        let ids_a = merged.merge_from(&zone_a);
        let ids_b = merged.merge_from(&zone_b);
        assert_eq!(ids_a, vec![0, 1]);
        assert_eq!(ids_b, vec![2]);

        let mut sequential = InterferenceLedger::new(model(), all);
        for p in [
            Point::new(8.0, 2.0),
            Point::new(42.0, -3.0),
            Point::new(4.0, 71.0),
        ] {
            sequential.add_relay(p, 1.0);
        }
        for j in 0..3 {
            for id in 0..3 {
                assert_eq!(
                    merged.interference_at(j, id),
                    sequential.interference_at(j, id),
                    "merge diverged at (j={j}, id={id})"
                );
            }
        }
        merged.audit().expect("merged ledger is exact");
    }

    #[test]
    fn fresh_ledger_is_bit_identical_to_brute() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        let positions = [
            Point::new(10.0, 0.0),
            Point::new(45.0, 5.0),
            Point::new(-5.0, 70.0),
        ];
        for p in positions {
            ledger.add_relay(p, 1.0);
        }
        for j in 0..3 {
            for serving in 0..3 {
                let want = snr::placement_snr_uniform(&model(), subs()[j], &positions, serving);
                let got = ledger.snr(j, serving);
                assert!(
                    got == want || (got.is_infinite() && want.is_infinite()),
                    "bit parity broken at j={j} serving={serving}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn single_relay_has_infinite_snr() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        let id = ledger.add_relay(Point::new(10.0, 0.0), 1.0);
        assert_eq!(ledger.snr(0, id), f64::INFINITY);
        assert_eq!(ledger.interference_at(0, id), 0.0);
    }

    #[test]
    fn zero_power_serving_is_zero_snr() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        let a = ledger.add_relay(Point::new(10.0, 0.0), 0.0);
        ledger.add_relay(Point::new(20.0, 0.0), 1.0);
        assert_eq!(ledger.snr(0, a), 0.0);
    }

    #[test]
    fn remove_returns_slot_and_resets_empty_ledger() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        let a = ledger.add_relay(Point::new(10.0, 0.0), 0.7);
        let (pos, power) = ledger.remove_relay(a);
        assert_eq!(pos, Point::new(10.0, 0.0));
        assert_eq!(power, 0.7);
        assert_eq!(ledger.n_relays(), 0);
        assert!(ledger.total_rx.iter().all(|&t| t == 0.0));
        // Slot ids are reused.
        let b = ledger.add_relay(Point::new(1.0, 1.0), 1.0);
        assert_eq!(b, a);
    }

    #[test]
    fn move_and_set_power_track_the_oracle() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        let a = ledger.add_relay(Point::new(10.0, 0.0), 1.0);
        let b = ledger.add_relay(Point::new(40.0, 10.0), 1.0);
        ledger.move_relay(a, Point::new(5.0, 2.0));
        ledger.set_power(b, 0.25);
        for j in 0..3 {
            for serving in [a, b] {
                assert_snr_close(
                    ledger.snr(j, serving),
                    brute_snr(&ledger, &[a, b], j, serving),
                );
            }
        }
        assert!(ledger.audit().is_ok());
    }

    #[test]
    fn oracle_mode_matches_incremental() {
        let mut inc = InterferenceLedger::new(model(), subs());
        let mut ora = InterferenceLedger::new(model(), subs()).with_mode(LedgerMode::Oracle);
        for p in [Point::new(10.0, 0.0), Point::new(45.0, 5.0)] {
            inc.add_relay(p, 1.0);
            ora.add_relay(p, 1.0);
        }
        assert_eq!(ora.mode(), LedgerMode::Oracle);
        for j in 0..3 {
            for s in 0..2 {
                assert_snr_close(inc.snr(j, s), ora.snr(j, s));
            }
        }
    }

    #[test]
    fn skewed_accumulator_surfaces_typed_desync() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        ledger.add_relay(Point::new(10.0, 0.0), 1.0);
        ledger.add_relay(Point::new(30.0, 0.0), 1.0);
        assert!(ledger.audit().is_ok());
        assert!(ledger.snr_checked(0, 0).is_ok());
        ledger.skew_accumulator(0, 1e-3);
        let err = ledger.audit().unwrap_err();
        assert_eq!(err.subscriber, 0);
        let err = ledger.snr_checked(0, 0).unwrap_err();
        assert_eq!(err.subscriber, 0);
        // Other subscribers are untouched.
        assert!(ledger.snr_checked(1, 0).is_ok());
        // The error renders.
        assert!(format!("{err}").contains("desync at subscriber 0"));
        // Rebuild repairs the damage.
        ledger.rebuild();
        assert!(ledger.audit().is_ok());
    }

    #[test]
    fn cutoff_snr_is_a_sound_lower_bound() {
        let positions = [
            Point::new(5.0, 0.0),
            Point::new(55.0, 0.0),
            Point::new(0.0, 75.0),
            Point::new(400.0, 400.0), // far: outside every cutoff range
        ];
        let mut exact = InterferenceLedger::new(model(), subs());
        let mut cut = InterferenceLedger::new(model(), subs()).with_cutoff(150.0);
        for p in positions {
            exact.add_relay(p, 1.0);
            cut.add_relay(p, 1.0);
        }
        assert_eq!(cut.cutoff_radius(), Some(150.0));
        for j in 0..3 {
            for s in 0..3 {
                let lo = cut.snr(j, s);
                let hi = exact.snr(j, s);
                assert!(
                    lo <= hi * (1.0 + 1e-12) || (lo.is_infinite() && hi.is_infinite()),
                    "cutoff SNR {lo} must lower-bound exact {hi}"
                );
            }
        }
        // The bound is tight when everything is in range.
        let mut wide = InterferenceLedger::new(model(), subs()).with_cutoff(1e4);
        for p in positions {
            wide.add_relay(p, 1.0);
        }
        for j in 0..3 {
            assert_snr_close(wide.snr(j, 0), exact.snr(j, 0));
        }
        assert!(cut.audit().is_ok());
        assert!(cut.snr_checked(0, 0).is_ok());
    }

    #[test]
    fn subscriber_mutations_reuse_slots_and_track_activity() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        ledger.add_relay(Point::new(10.0, 0.0), 1.0);
        ledger.add_relay(Point::new(40.0, 10.0), 0.5);
        assert_eq!(ledger.n_active_subscribers(), 3);
        let gone = ledger.remove_subscriber(1);
        assert_eq!(gone, Point::new(50.0, 0.0));
        assert!(!ledger.is_subscriber_active(1));
        assert_eq!(ledger.n_active_subscribers(), 2);
        // Tombstoned slots stay audit-consistent.
        assert!(ledger.audit().is_ok());
        // LIFO reuse of the freed slot.
        let j = ledger.add_subscriber(Point::new(60.0, 5.0));
        assert_eq!(j, 1);
        assert!(ledger.is_subscriber_active(1));
        assert_eq!(ledger.subscriber(1), Point::new(60.0, 5.0));
        // No free slot left: the next add appends.
        let k = ledger.add_subscriber(Point::new(5.0, 5.0));
        assert_eq!(k, 3);
        assert_eq!(ledger.n_subscribers(), 4);
        assert_eq!(ledger.n_active_subscribers(), 4);
        assert!(ledger.audit().is_ok());
    }

    #[test]
    fn added_subscriber_is_bit_identical_to_fresh_build() {
        let relays = [
            (Point::new(10.0, 0.0), 1.0),
            (Point::new(45.0, 5.0), 0.7),
            (Point::new(-5.0, 70.0), 1.3),
        ];
        let mut grown = InterferenceLedger::new(model(), subs());
        for (p, w) in relays {
            grown.add_relay(p, w);
        }
        let newcomer = Point::new(25.0, 25.0);
        let j = grown.add_subscriber(newcomer);

        let mut fresh_subs = subs();
        fresh_subs.push(newcomer);
        let mut fresh = InterferenceLedger::new(model(), fresh_subs);
        for (p, w) in relays {
            fresh.add_relay(p, w);
        }
        for id in 0..relays.len() {
            assert_eq!(grown.snr(j, id), fresh.snr(3, id), "bit parity broken");
        }
    }

    #[test]
    fn move_subscriber_is_bit_identical_to_remove_plus_add() {
        let mut a = InterferenceLedger::new(model(), subs());
        for (p, w) in [(Point::new(10.0, 0.0), 1.0), (Point::new(45.0, 5.0), 0.7)] {
            a.add_relay(p, w);
        }
        let mut b = a.clone();
        let target = Point::new(33.0, 12.0);
        let old = a.move_subscriber(1, target);
        assert_eq!(old, Point::new(50.0, 0.0));
        b.remove_subscriber(1);
        assert_eq!(b.add_subscriber(target), 1);
        assert_eq!(a.total_rx, b.total_rx);
        for id in 0..2 {
            assert_eq!(a.snr(1, id), b.snr(1, id));
        }
    }

    #[test]
    #[should_panic]
    fn removing_an_inactive_subscriber_panics() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        ledger.remove_subscriber(1);
        ledger.remove_subscriber(1);
    }

    #[test]
    #[should_panic]
    fn subscriber_mutation_under_cutoff_panics() {
        let mut ledger = InterferenceLedger::new(model(), subs()).with_cutoff(100.0);
        ledger.add_subscriber(Point::new(1.0, 1.0));
    }

    #[test]
    #[should_panic]
    fn unknown_relay_id_panics() {
        let ledger = InterferenceLedger::new(model(), subs());
        ledger.power(0);
    }

    #[test]
    #[should_panic]
    fn cutoff_after_relays_panics() {
        let mut ledger = InterferenceLedger::new(model(), subs());
        ledger.add_relay(Point::ORIGIN, 1.0);
        let _ = ledger.with_cutoff(10.0);
    }

    prop! {
        /// Random add/remove/move/set-power sequences: the incremental
        /// accumulators track the exact brute recompute within 1e-9
        /// relative at every step.
        fn prop_ledger_brute_parity(
            subs_raw in vec_of((0.0..500.0f64, 0.0..500.0f64), 1..8),
            ops in vec_of((0usize..4, 0.0..500.0f64, 0.0..500.0f64, 0.01..2.0f64), 1..30),
        ) {
            let subscribers: Vec<Point> =
                subs_raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut ledger = InterferenceLedger::new(model(), subscribers.clone());
            let mut ids: Vec<usize> = Vec::new();
            for (kind, x, y, p) in ops {
                match kind {
                    0 => ids.push(ledger.add_relay(Point::new(x, y), p)),
                    1 if !ids.is_empty() => {
                        let victim = ids.remove(ids.len() / 2);
                        ledger.remove_relay(victim);
                    }
                    2 if !ids.is_empty() => {
                        let target = ids[ids.len() / 2];
                        ledger.move_relay(target, Point::new(x, y));
                    }
                    3 if !ids.is_empty() => {
                        let target = ids[ids.len() / 2];
                        ledger.set_power(target, p);
                    }
                    _ => ids.push(ledger.add_relay(Point::new(x, y), p)),
                }
                prop_assert!(ledger.audit().is_ok(), "audit failed mid-sequence");
                for j in 0..subscribers.len() {
                    for &serving in &ids {
                        let got = ledger.snr(j, serving);
                        let want = brute_snr(&ledger, &ids, j, serving);
                        if got >= SNR_SATURATED || want >= SNR_SATURATED {
                            prop_assert!(
                                got >= SNR_SATURATED && want >= SNR_SATURATED,
                                "saturation mismatch: {got} vs {want}"
                            );
                        } else {
                            prop_assert!(
                                (got - want).abs() <= 1e-9 * want.abs().max(1e-9),
                                "parity broken: {got} vs {want}"
                            );
                        }
                    }
                }
            }
        }

        /// Cutoff ledgers never overestimate the SNR (soundness), for
        /// any cutoff radius and geometry.
        fn prop_cutoff_is_sound(
            subs_raw in vec_of((0.0..400.0f64, 0.0..400.0f64), 1..6),
            relays_raw in vec_of((0.0..400.0f64, 0.0..400.0f64, 0.1..2.0f64), 1..6),
            radius in 10.0..500.0f64,
        ) {
            let subscribers: Vec<Point> =
                subs_raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut exact = InterferenceLedger::new(model(), subscribers.clone());
            let mut cut =
                InterferenceLedger::new(model(), subscribers.clone()).with_cutoff(radius);
            let mut ids = Vec::new();
            for &(x, y, p) in &relays_raw {
                ids.push(exact.add_relay(Point::new(x, y), p));
                cut.add_relay(Point::new(x, y), p);
            }
            for j in 0..subscribers.len() {
                for &s in &ids {
                    let lo = cut.snr(j, s);
                    let hi = exact.snr(j, s);
                    prop_assert!(
                        lo <= hi * (1.0 + 1e-9)
                            || hi >= SNR_SATURATED
                            || hi.is_infinite(),
                        "cutoff SNR {lo} exceeds exact {hi}"
                    );
                }
            }
        }

        /// Random interleavings of relay *and* subscriber mutations:
        /// every slot's accumulator (active or tombstoned) stays within
        /// 1e-9 relative of a fresh rebuild over the final slot layout,
        /// and the audit passes after every op.
        fn prop_subscriber_mutations_match_fresh_build(
            subs_raw in vec_of((0.0..500.0f64, 0.0..500.0f64), 1..6),
            ops in vec_of((0usize..6, 0.0..500.0f64, 0.0..500.0f64, 0.01..2.0f64), 1..30),
        ) {
            let subscribers: Vec<Point> =
                subs_raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut ledger = InterferenceLedger::new(model(), subscribers);
            let mut relay_ids: Vec<usize> = Vec::new();
            let mut active: Vec<usize> = (0..ledger.n_subscribers()).collect();
            for (kind, x, y, p) in ops {
                match kind {
                    0 => relay_ids.push(ledger.add_relay(Point::new(x, y), p)),
                    1 if !relay_ids.is_empty() => {
                        let victim = relay_ids.remove(relay_ids.len() / 2);
                        ledger.remove_relay(victim);
                    }
                    2 if !relay_ids.is_empty() => {
                        let target = relay_ids[relay_ids.len() / 2];
                        ledger.move_relay(target, Point::new(x, y));
                    }
                    3 => active.push(ledger.add_subscriber(Point::new(x, y))),
                    4 if active.len() > 1 => {
                        let victim = active.remove(active.len() / 2);
                        ledger.remove_subscriber(victim);
                    }
                    5 if !active.is_empty() => {
                        let target = active[active.len() / 2];
                        ledger.move_subscriber(target, Point::new(x, y));
                    }
                    _ => relay_ids.push(ledger.add_relay(Point::new(x, y), p)),
                }
                prop_assert!(ledger.audit().is_ok(), "audit failed mid-sequence");
                // Fresh rebuild over the final slot layout (positions of
                // every slot, tombstoned or not) and the same relay
                // sequence in slot-id order.
                let mut fresh =
                    InterferenceLedger::new(model(), ledger.subscribers.clone());
                for slot in ledger.slots.iter().flatten() {
                    fresh.add_relay(slot.pos, slot.power);
                }
                for j in 0..ledger.n_subscribers() {
                    let got = ledger.total_rx[j];
                    let want = fresh.total_rx[j];
                    prop_assert!(
                        (got - want).abs() <= 1e-9 * want.abs().max(1e-12),
                        "slot {j}: incremental {got:e} vs fresh {want:e}"
                    );
                }
                for &j in &active {
                    for &serving in &relay_ids {
                        let got = ledger.snr(j, serving);
                        let want = brute_snr(&ledger, &relay_ids, j, serving);
                        if got >= SNR_SATURATED || want >= SNR_SATURATED {
                            prop_assert!(
                                got >= SNR_SATURATED && want >= SNR_SATURATED,
                                "saturation mismatch: {got} vs {want}"
                            );
                        } else {
                            prop_assert!(
                                (got - want).abs() <= 1e-9 * want.abs().max(1e-9),
                                "parity broken: {got} vs {want}"
                            );
                        }
                    }
                }
            }
        }

        /// `move_subscriber` is bit-identical to `remove_subscriber` +
        /// `add_subscriber` on the same slot, for any relay background.
        fn prop_move_subscriber_is_remove_plus_add(
            subs_raw in vec_of((0.0..500.0f64, 0.0..500.0f64), 2..6),
            relays_raw in vec_of((0.0..500.0f64, 0.0..500.0f64, 0.1..2.0f64), 0..5),
            mover in 0usize..64,
            to in (0.0..500.0f64, 0.0..500.0f64),
        ) {
            let subscribers: Vec<Point> =
                subs_raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let j = mover % subscribers.len();
            let mut moved = InterferenceLedger::new(model(), subscribers);
            for &(x, y, p) in &relays_raw {
                moved.add_relay(Point::new(x, y), p);
            }
            let mut stepped = moved.clone();
            moved.move_subscriber(j, Point::new(to.0, to.1));
            stepped.remove_subscriber(j);
            prop_assert_eq!(stepped.add_subscriber(Point::new(to.0, to.1)), j);
            prop_assert_eq!(moved.total_rx.clone(), stepped.total_rx.clone());
        }
    }
}
