//! Decibel newtypes and conversions.
//!
//! The paper quotes SNR thresholds in dB (`-10 dB` to `-25 dB`, `-40 dB`
//! in Fig. 3(c)); all internal math uses linear ratios. These newtypes keep
//! the two scales from being mixed up (a classic source of silent bugs in
//! link-budget code).

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A dimensionless power *ratio* expressed in decibels.
///
/// `Db(x)` represents the linear ratio `10^(x/10)`.
///
/// # Example
/// ```
/// use sag_radio::units::Db;
/// let beta = Db::new(-15.0);
/// assert!((beta.to_linear() - 0.0316227766).abs() < 1e-9);
/// assert!((Db::from_linear(2.0).value() - 3.0103).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Db(f64);

/// An absolute power level in dBm (decibels relative to one milliwatt).
///
/// `DbMilliwatt(x)` represents `10^(x/10)` milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DbMilliwatt(f64);

impl Db {
    /// Creates a dB value.
    ///
    /// # Panics
    /// Panics if `value` is NaN (infinities are allowed: `-inf dB` is a
    /// zero ratio).
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "dB value must not be NaN");
        Db(value)
    }

    /// The underlying dB figure.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to the linear ratio `10^(dB/10)`.
    #[inline]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts a linear ratio to dB.
    ///
    /// # Panics
    /// Panics if `ratio` is negative or NaN; `ratio == 0` maps to `-inf dB`.
    pub fn from_linear(ratio: f64) -> Self {
        assert!(
            ratio >= 0.0 && !ratio.is_nan(),
            "ratio must be ≥ 0, got {ratio}"
        );
        Db(10.0 * ratio.log10())
    }
}

impl DbMilliwatt {
    /// Creates a dBm value.
    ///
    /// # Panics
    /// Panics if `value` is NaN.
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "dBm value must not be NaN");
        DbMilliwatt(value)
    }

    /// The underlying dBm figure.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to milliwatts.
    #[inline]
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts a power in milliwatts to dBm.
    ///
    /// # Panics
    /// Panics if `mw` is negative or NaN; `mw == 0` maps to `-inf dBm`.
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(
            mw >= 0.0 && !mw.is_nan(),
            "milliwatts must be ≥ 0, got {mw}"
        );
        DbMilliwatt(10.0 * mw.log10())
    }
}

// Adding a ratio (Db) to an absolute level (DbMilliwatt) yields an absolute
// level; subtracting two absolute levels yields a ratio. These are the only
// physically meaningful arithmetic combinations, so only they are provided.

impl Add<Db> for DbMilliwatt {
    type Output = DbMilliwatt;
    fn add(self, gain: Db) -> DbMilliwatt {
        DbMilliwatt(self.0 + gain.0)
    }
}

impl Sub<Db> for DbMilliwatt {
    type Output = DbMilliwatt;
    fn sub(self, loss: Db) -> DbMilliwatt {
        DbMilliwatt(self.0 - loss.0)
    }
}

impl Sub for DbMilliwatt {
    type Output = Db;
    fn sub(self, other: DbMilliwatt) -> Db {
        Db(self.0 - other.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, other: Db) -> Db {
        Db(self.0 + other.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, other: Db) -> Db {
        Db(self.0 - other.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl fmt::Display for DbMilliwatt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn known_conversions() {
        assert!((Db::new(0.0).to_linear() - 1.0).abs() < 1e-12);
        assert!((Db::new(10.0).to_linear() - 10.0).abs() < 1e-9);
        assert!((Db::new(-10.0).to_linear() - 0.1).abs() < 1e-12);
        assert!((Db::new(3.0).to_linear() - 1.9952623).abs() < 1e-6);
        assert!((Db::new(-15.0).to_linear() - 0.03162278).abs() < 1e-7);
    }

    #[test]
    fn dbm_conversions() {
        assert!((DbMilliwatt::new(0.0).to_milliwatts() - 1.0).abs() < 1e-12);
        assert!((DbMilliwatt::new(30.0).to_milliwatts() - 1000.0).abs() < 1e-6);
        assert!((DbMilliwatt::from_milliwatts(100.0).value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_ratio_is_negative_infinity() {
        assert_eq!(Db::from_linear(0.0).value(), f64::NEG_INFINITY);
        assert_eq!(DbMilliwatt::from_milliwatts(0.0).to_milliwatts(), 0.0);
    }

    #[test]
    fn arithmetic_combinations() {
        let tx = DbMilliwatt::new(20.0); // 100 mW
        let loss = Db::new(15.0);
        assert!(((tx - loss).value() - 5.0).abs() < 1e-12);
        assert!(((tx + Db::new(3.0)).value() - 23.0).abs() < 1e-12);
        let rx = DbMilliwatt::new(-70.0);
        assert!(((tx - rx).value() - 90.0).abs() < 1e-12);
        assert!(((Db::new(3.0) + Db::new(4.0)).value() - 7.0).abs() < 1e-12);
        assert!(((Db::new(3.0) - Db::new(4.0)).value() + 1.0).abs() < 1e-12);
        assert!(((-Db::new(3.0)).value() + 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn nan_db_panics() {
        Db::new(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn negative_ratio_panics() {
        Db::from_linear(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Db::new(-15.0)), "-15.00 dB");
        assert_eq!(format!("{}", DbMilliwatt::new(30.0)), "30.00 dBm");
    }

    prop! {
        fn prop_roundtrip_db(x in -200.0..200.0f64) {
            let db = Db::new(x);
            let back = Db::from_linear(db.to_linear());
            prop_assert!((back.value() - x).abs() < 1e-9);
        }

        fn prop_roundtrip_dbm(x in -200.0..200.0f64) {
            let dbm = DbMilliwatt::new(x);
            let back = DbMilliwatt::from_milliwatts(dbm.to_milliwatts());
            prop_assert!((back.value() - x).abs() < 1e-9);
        }

        fn prop_monotone(a in -100.0..100.0f64, b in -100.0..100.0f64) {
            prop_assume!(a < b);
            prop_assert!(Db::new(a).to_linear() < Db::new(b).to_linear());
        }
    }
}
