//! Shannon capacity and the capacity↔distance reduction of §II.
//!
//! With constant thermal noise `N0` and fixed transmit power, the channel
//! capacity `C = B·log₂(1 + Pr/N0)` is a strictly decreasing function of
//! distance, so "SS `s_i` requests `b_i` bps" is equivalent to "SS `s_i`
//! must be within distance `d_i` of its serving relay". These helpers
//! compute both directions of that equivalence.

use crate::tworay::TwoRay;

/// Shannon capacity in bps for bandwidth `bandwidth` (Hz) and linear SNR
/// `snr`: `C = B·log₂(1 + SNR)`.
///
/// # Panics
/// Panics if `bandwidth < 0` or `snr < 0`.
///
/// # Example
/// ```
/// use sag_radio::capacity::shannon_capacity;
/// assert_eq!(shannon_capacity(1.0e6, 1.0), 1.0e6); // log2(2) = 1
/// ```
pub fn shannon_capacity(bandwidth: f64, snr: f64) -> f64 {
    assert!(bandwidth >= 0.0, "bandwidth must be ≥ 0, got {bandwidth}");
    assert!(snr >= 0.0, "snr must be ≥ 0, got {snr}");
    bandwidth * (1.0 + snr).log2()
}

/// Minimum linear SNR needed to carry `rate` bps over `bandwidth` Hz:
/// the inverse Shannon relation `SNR = 2^{rate/B} − 1`.
///
/// # Panics
/// Panics unless `rate >= 0` and `bandwidth > 0`.
pub fn required_snr(rate: f64, bandwidth: f64) -> f64 {
    assert!(rate >= 0.0, "rate must be ≥ 0, got {rate}");
    assert!(bandwidth > 0.0, "bandwidth must be > 0, got {bandwidth}");
    (rate / bandwidth).exp2() - 1.0
}

/// Channel capacity (bps) at distance `d` from a transmitter at power
/// `pt`, over `bandwidth` Hz with thermal noise `n0`.
///
/// # Panics
/// Panics if any argument is negative or `n0 == 0` (the noiseless channel
/// has unbounded capacity).
pub fn capacity_at_distance(model: &TwoRay, pt: f64, d: f64, bandwidth: f64, n0: f64) -> f64 {
    assert!(
        n0 > 0.0,
        "thermal noise must be > 0 for a finite capacity, got {n0}"
    );
    let pr = model.received_power(pt, d);
    shannon_capacity(bandwidth, pr / n0)
}

/// The paper's reduction: the maximum distance at which a transmitter at
/// power `pt` can still deliver `rate` bps over `bandwidth` Hz with noise
/// `n0`. This is the subscriber's *feasible distance* `d_i`.
///
/// # Panics
/// Panics unless `pt > 0`, `rate > 0`, `bandwidth > 0` and `n0 > 0`.
pub fn max_distance_for_rate(model: &TwoRay, pt: f64, rate: f64, bandwidth: f64, n0: f64) -> f64 {
    assert!(
        pt > 0.0 && rate > 0.0 && bandwidth > 0.0 && n0 > 0.0,
        "all arguments must be > 0"
    );
    let snr = required_snr(rate, bandwidth);
    let pr_min = snr * n0;
    model.max_range(pt, pr_min)
}

/// Minimum received power for `rate` bps over `bandwidth` Hz with noise
/// `n0` — the `P_ss` of constraint (3.8).
///
/// # Panics
/// Panics unless `rate >= 0`, `bandwidth > 0` and `n0 >= 0`.
pub fn min_received_power_for_rate(rate: f64, bandwidth: f64, n0: f64) -> f64 {
    assert!(n0 >= 0.0, "noise must be ≥ 0, got {n0}");
    required_snr(rate, bandwidth) * n0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn shannon_known_points() {
        assert_eq!(shannon_capacity(1.0, 0.0), 0.0);
        assert_eq!(shannon_capacity(2.0e6, 3.0), 4.0e6); // log2(4) = 2
        assert_eq!(shannon_capacity(0.0, 100.0), 0.0);
    }

    #[test]
    fn required_snr_inverts_shannon() {
        for (rate, bw) in [(1.0e6, 1.0e6), (5.5e6, 2.0e6), (0.1e6, 1.0e6)] {
            let snr = required_snr(rate, bw);
            assert!((shannon_capacity(bw, snr) - rate).abs() / rate < 1e-9);
        }
        assert_eq!(required_snr(0.0, 1.0e6), 0.0);
    }

    #[test]
    fn rate_distance_equivalence() {
        let m = TwoRay::new(1.0, 3.0);
        let (pt, rate, bw, n0) = (2.0, 3.0e6, 1.0e6, 1e-7);
        let d = max_distance_for_rate(&m, pt, rate, bw, n0);
        // At the feasible distance the rate is met with equality…
        let c = capacity_at_distance(&m, pt, d, bw, n0);
        assert!((c - rate).abs() / rate < 1e-9);
        // …closer exceeds it, farther misses it.
        assert!(capacity_at_distance(&m, pt, d * 0.9, bw, n0) > rate);
        assert!(capacity_at_distance(&m, pt, d * 1.1, bw, n0) < rate);
    }

    #[test]
    fn min_received_power_matches_reduction() {
        let m = TwoRay::new(1.0, 3.0);
        let (pt, rate, bw, n0) = (1.0, 2.0e6, 1.0e6, 1e-7);
        let pss = min_received_power_for_rate(rate, bw, n0);
        let d = max_distance_for_rate(&m, pt, rate, bw, n0);
        // Received power at the feasible distance equals P_ss.
        assert!((m.received_power(pt, d) - pss).abs() / pss < 1e-9);
    }

    #[test]
    fn higher_rate_shorter_distance() {
        let m = TwoRay::default();
        let d1 = max_distance_for_rate(&m, 1.0, 1.0e6, 1.0e6, 1e-7);
        let d2 = max_distance_for_rate(&m, 1.0, 2.0e6, 1.0e6, 1e-7);
        assert!(d2 < d1);
    }

    #[test]
    #[should_panic]
    fn zero_noise_capacity_panics() {
        capacity_at_distance(&TwoRay::default(), 1.0, 10.0, 1.0e6, 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_required_snr_panics() {
        required_snr(1.0, 0.0);
    }

    prop! {
        fn prop_capacity_monotone_in_snr(bw in 0.1..10.0f64, a in 0.0..100.0f64, b in 0.0..100.0f64) {
            prop_assume!(a < b);
            prop_assert!(shannon_capacity(bw, a) <= shannon_capacity(bw, b));
        }

        fn prop_rate_distance_roundtrip(
            pt in 0.1..10.0f64,
            rate in 0.1e6..5.0e6f64,
            bw in 0.5e6..2.0e6f64,
            n0 in 1e-9..1e-5f64,
        ) {
            let m = TwoRay::new(1.0, 3.0);
            let d = max_distance_for_rate(&m, pt, rate, bw, n0);
            prop_assume!(d.is_finite() && d > TwoRay::NEAR_FIELD);
            let c = capacity_at_distance(&m, pt, d, bw, n0);
            prop_assert!((c - rate).abs() / rate < 1e-6);
        }
    }
}
