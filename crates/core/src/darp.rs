//! The DARP baseline of \[1\] (Zhang et al., INFOCOM'11), used in the
//! Fig. 7 comparisons.
//!
//! DARP places relays for coverage and connectivity but (a) assumes every
//! relay transmits at **maximum power** — no PRO, no UCPO — and (b) its
//! connectivity layer (MUST) supports a **single base station**. The
//! paper combines DARP's deployment with each lower-tier coverage variant
//! (IAC / GAC / SAMC) and compares total power against the full SAG
//! pipeline.

use crate::coverage::CoverageSolution;
use crate::error::SagResult;
use crate::mbmc::{must, ConnectivityPlan};
use crate::model::Scenario;

/// Outcome of the DARP baseline for a given lower-tier solution.
#[derive(Debug, Clone)]
pub struct DarpOutcome {
    /// The MUST connectivity plan (single BS).
    pub plan: ConnectivityPlan,
    /// Lower-tier power (all coverage relays at `Pmax`).
    pub lower_power: f64,
    /// Upper-tier power (all relay-link transmitters at `Pmax`).
    pub upper_power: f64,
}

impl DarpOutcome {
    /// Total power of the DARP deployment.
    pub fn total_power(&self) -> f64 {
        self.lower_power + self.upper_power
    }
}

/// Runs the DARP baseline on an existing lower-tier coverage solution,
/// connecting everything to base station `bs_index` at maximum power.
///
/// # Errors
/// Propagates connectivity errors (bad BS index).
pub fn darp(
    scenario: &Scenario,
    coverage: &CoverageSolution,
    bs_index: usize,
) -> SagResult<DarpOutcome> {
    let pmax = scenario.params.link.pmax();
    let plan = must(scenario, coverage, bs_index)?;
    let lower_power = coverage.n_relays() as f64 * pmax;
    let upper_power: f64 = plan.chains.iter().map(|c| c.hops as f64 * pmax).sum();
    Ok(DarpOutcome {
        plan,
        lower_power,
        upper_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::{Point, Rect};

    fn scenario() -> Scenario {
        Scenario::new(
            Rect::centered_square(600.0),
            vec![
                Subscriber::new(Point::new(0.0, 0.0), 30.0),
                Subscriber::new(Point::new(150.0, 0.0), 30.0),
            ],
            vec![
                BaseStation::new(Point::new(250.0, 250.0)),
                BaseStation::new(Point::new(-10.0, 40.0)),
            ],
            NetworkParams::default(),
        )
        .unwrap()
    }

    fn coverage() -> CoverageSolution {
        CoverageSolution {
            relays: vec![Point::new(0.0, 0.0), Point::new(150.0, 0.0)],
            assignment: vec![0, 1],
        }
    }

    #[test]
    fn darp_power_counts_everything_at_pmax() {
        let sc = scenario();
        let out = darp(&sc, &coverage(), 0).unwrap();
        assert!((out.lower_power - 2.0).abs() < 1e-12);
        let hops: usize = out.plan.chains.iter().map(|c| c.hops).sum();
        assert!((out.upper_power - hops as f64).abs() < 1e-12);
        assert!(out.total_power() > out.lower_power);
    }

    #[test]
    fn darp_ignores_nearer_bs() {
        // BS 1 is much nearer, but DARP is pinned to BS 0.
        let sc = scenario();
        let out = darp(&sc, &coverage(), 0).unwrap();
        assert!(out.plan.serving_bs.iter().all(|&b| b == 0));
    }

    #[test]
    fn darp_bad_bs_errors() {
        assert!(darp(&scenario(), &coverage(), 9).is_err());
    }
}
