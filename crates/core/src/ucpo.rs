//! Upper-tier Connectivity Power Optimization — UCPO (Algorithm 8) and
//! the all-`Pmax` upper-tier baseline.
//!
//! For each coverage relay `r_i`, the received-power requirement on its
//! relay links is `P_rs^i = max` of its subscribers' `P_ss` (the chain
//! must sustain the largest per-subscriber rate it aggregates). The chain
//! toward the parent is split into `N_i` equal hops of length
//! `D_i = ‖e‖ / N_i`, and every transmitter on it (the coverage relay's
//! uplink radio plus each steiner relay) gets the minimum power
//! delivering `P_rs^i` over one hop: `p_ij = P_rs^i · D_i^α / G`.

use crate::coverage::CoverageSolution;
use crate::mbmc::ConnectivityPlan;
use crate::model::Scenario;
use crate::pro::PowerAllocation;

/// Per-chain hop power and totals computed by UCPO.
#[derive(Debug, Clone)]
pub struct UpperTierPower {
    /// For each chain (same order as the plan's), the power of each of
    /// its transmitters.
    pub hop_power: Vec<f64>,
    /// Number of transmitters per chain (`N_i`).
    pub hops: Vec<usize>,
}

impl UpperTierPower {
    /// Total upper-tier power `P_H = Σ_i N_i · p_i`.
    pub fn total(&self) -> f64 {
        self.hop_power
            .iter()
            .zip(&self.hops)
            .map(|(&p, &n)| p * n as f64)
            .sum()
    }

    /// Flat per-transmitter allocation (chain order, hop order).
    pub fn flatten(&self) -> PowerAllocation {
        let mut powers = Vec::new();
        for (&p, &n) in self.hop_power.iter().zip(&self.hops) {
            powers.extend(std::iter::repeat_n(p, n));
        }
        PowerAllocation { powers }
    }
}

/// Runs UCPO (Algorithm 8) over a connectivity plan.
///
/// Powers are clamped to `Pmax`; a hop longer than the `Pmax` range of
/// its requirement cannot occur because steinerization bounds every hop
/// by the chain's effective feasible distance.
pub fn ucpo(
    scenario: &Scenario,
    coverage: &CoverageSolution,
    plan: &ConnectivityPlan,
) -> UpperTierPower {
    let _stage = sag_obs::span("ucpo");
    let model = scenario.params.link.model();
    let pmax = scenario.params.link.pmax();

    // P_rs per coverage relay: max P_ss over its subscribers.
    let mut prs = vec![0.0f64; coverage.n_relays()];
    for (j, &r) in coverage.assignment.iter().enumerate() {
        prs[r] = prs[r].max(scenario.params.pss_for(&scenario.subscribers[j]));
    }

    let mut hop_power = Vec::with_capacity(plan.chains.len());
    let mut hops = Vec::with_capacity(plan.chains.len());
    for chain in &plan.chains {
        let p = model
            .required_tx_power(prs[chain.child], chain.hop_length)
            .min(pmax);
        hop_power.push(p);
        hops.push(chain.hops);
    }
    UpperTierPower { hop_power, hops }
}

/// The all-`Pmax` upper-tier baseline: every relay-link transmitter at
/// maximum power.
pub fn baseline_upper_power(scenario: &Scenario, plan: &ConnectivityPlan) -> UpperTierPower {
    let pmax = scenario.params.link.pmax();
    UpperTierPower {
        hop_power: vec![pmax; plan.chains.len()],
        hops: plan.chains.iter().map(|c| c.hops).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbmc::mbmc;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::{Point, Rect};

    fn scenario(subs: Vec<(f64, f64, f64)>, bss: Vec<(f64, f64)>) -> Scenario {
        Scenario::new(
            Rect::centered_square(600.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            bss.into_iter()
                .map(|(x, y)| BaseStation::new(Point::new(x, y)))
                .collect(),
            NetworkParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn hop_power_is_per_hop_requirement() {
        // Relay on the subscriber, BS 100 away, feasible distance 25 →
        // 4 hops of 25. P_rs = Pmax·G·25^{-α}; hop power =
        // P_rs·25^α/G = Pmax·(25/25)^α = Pmax·1 → exactly Pmax.
        let sc = scenario(vec![(0.0, 0.0, 25.0)], vec![(100.0, 0.0)]);
        let coverage = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0)],
            assignment: vec![0],
        };
        let plan = mbmc(&sc, &coverage).unwrap();
        let up = ucpo(&sc, &coverage, &plan);
        assert_eq!(up.hops, vec![4]);
        assert!((up.hop_power[0] - sc.params.link.pmax()).abs() < 1e-9);
        assert!((up.total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn shorter_hops_cost_less() {
        // BS 90 away, feasible 30: 3 hops of 30 → hop power = Pmax.
        // BS 80 away, feasible 30: 3 hops of 26.67 → hop power < Pmax.
        let sc1 = scenario(vec![(0.0, 0.0, 30.0)], vec![(90.0, 0.0)]);
        let sc2 = scenario(vec![(0.0, 0.0, 30.0)], vec![(80.0, 0.0)]);
        let cov = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0)],
            assignment: vec![0],
        };
        let p1 = ucpo(&sc1, &cov, &mbmc(&sc1, &cov).unwrap());
        let p2 = ucpo(&sc2, &cov, &mbmc(&sc2, &cov).unwrap());
        assert!((p1.hop_power[0] - 1.0).abs() < 1e-9);
        assert!(p2.hop_power[0] < 1.0);
    }

    #[test]
    fn ucpo_never_exceeds_baseline() {
        let sc = scenario(
            vec![(0.0, 0.0, 30.0), (100.0, 50.0, 35.0), (-120.0, -40.0, 32.0)],
            vec![(250.0, 250.0), (-250.0, -250.0)],
        );
        let coverage = CoverageSolution {
            relays: vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 50.0),
                Point::new(-120.0, -40.0),
            ],
            assignment: vec![0, 1, 2],
        };
        let plan = mbmc(&sc, &coverage).unwrap();
        let opt = ucpo(&sc, &coverage, &plan);
        let base = baseline_upper_power(&sc, &plan);
        assert!(opt.total() <= base.total() + 1e-12);
        assert_eq!(opt.flatten().powers.len(), base.flatten().powers.len());
    }

    #[test]
    fn prs_uses_strictest_subscriber() {
        // Two subscribers on one relay: the smaller feasible distance
        // (higher P_ss) drives the chain requirement.
        let sc = scenario(vec![(0.0, 0.0, 10.0), (1.0, 0.0, 40.0)], vec![(60.0, 0.0)]);
        let cov = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0)],
            assignment: vec![0, 0],
        };
        let plan = mbmc(&sc, &cov).unwrap();
        let up = ucpo(&sc, &cov, &plan);
        // eff distance = 10 → 6 hops of 10; P_rs = Pmax·10^{-3};
        // hop power = Pmax·(10/10)³ = Pmax.
        assert_eq!(up.hops, vec![6]);
        assert!((up.hop_power[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flatten_matches_totals() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], vec![(100.0, 0.0)]);
        let cov = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0)],
            assignment: vec![0],
        };
        let plan = mbmc(&sc, &cov).unwrap();
        let up = ucpo(&sc, &cov, &plan);
        assert!((up.flatten().total() - up.total()).abs() < 1e-12);
    }
}
