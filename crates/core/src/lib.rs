//! # sag-core — Signal-Aware Green wireless relay network design
//!
//! A faithful, self-contained implementation of every algorithm in
//! *"Signal-Aware Green Wireless Relay Network Design"* (ICDCS 2013):
//! relay station placement and power allocation in two-tier wireless
//! relay networks under channel-capacity (distance) and SNR constraints,
//! with multiple base stations.
//!
//! ## The problem
//!
//! Subscribers (`SS`) must each be covered by a relay (`RS`) within their
//! capacity-derived feasible distance **and** above an SNR threshold β
//! under mutual relay interference (the *LCRA* problem); every coverage
//! relay must then reach a base station (`BS`) over multi-hop relay links
//! (the *UCRA* problem); and the total transmit power of all placed
//! relays should be minimal (the *SAG* problem, Definition 3).
//!
//! ## Module map (paper → code)
//!
//! | Paper artefact | Module |
//! |---|---|
//! | network model, Defs. 1–3 | [`model`], [`coverage`] |
//! | IAC / GAC candidates (Fig. 2) | [`candidates`] |
//! | ILPQC (3.1)–(3.5), Gurobi benchmark | [`ilpqc`] |
//! | Zone Partition (Alg. 2) | [`zone`] |
//! | SAMC (Alg. 1) | [`samc`] |
//! | Coverage Link Escape (Alg. 3) | [`escape`] |
//! | RS Sliding Movement / Update RS Topology (Algs. 4–5) | [`sliding`] |
//! | PRO (Alg. 6, Theorem 1) + LPQC optimum | [`pro`] |
//! | MBMC (Alg. 7) + MUST baseline | [`mbmc`] |
//! | UCPO (Alg. 8) | [`ucpo`] |
//! | DARP baseline (\[1\]) | [`darp`] |
//! | SAG pipeline (Alg. 9) | [`sag`] |
//!
//! Extensions beyond the paper (flagged as such in their module docs):
//! [`kcover`] (dual-relay k-coverage, after the cited 802.16j MMR
//! architecture) and [`lifetime`] (battery-driven network lifetime,
//! after the cited lifetime-oriented deployment line of work).
//!
//! ## Quickstart
//!
//! ```
//! use sag_core::{model::*, sag::run_sag};
//! use sag_geom::{Point, Rect};
//!
//! let scenario = Scenario::new(
//!     Rect::centered_square(500.0),
//!     vec![
//!         Subscriber::new(Point::new(0.0, 0.0), 35.0),
//!         Subscriber::new(Point::new(60.0, 20.0), 30.0),
//!     ],
//!     vec![BaseStation::new(Point::new(200.0, 200.0))],
//!     NetworkParams::default(),
//! )?;
//! let report = run_sag(&scenario)?;
//! println!(
//!     "{} coverage + {} connectivity relays, total power {:.3}",
//!     report.n_coverage_relays(),
//!     report.n_connectivity_relays(),
//!     report.power_summary().total,
//! );
//! # Ok::<(), sag_core::error::SagError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
// Library code must degrade through typed errors, not panic on `None`/
// `Err`; tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod candidates;
pub mod channels;
pub mod churn;
pub mod coverage;
pub mod darp;
pub mod engine;
pub mod error;
pub mod escape;
pub mod fallback;
pub mod ilpqc;
pub mod kcover;
pub mod lifetime;
pub mod mbmc;
pub mod model;
pub mod pro;
pub mod resilience;
pub mod sag;
pub mod samc;
pub mod sleep;
pub mod sliding;
pub mod solver;
pub mod trace;
pub mod traffic;
pub mod ucpo;
pub mod validate;
pub mod zone;

pub use churn::{ChurnConfig, ChurnEngine, ChurnEvent, ChurnReport, EventRecord, RepairRung};
pub use coverage::{CoverageSolution, ServedIndex};
pub use error::{SagError, SagResult};
pub use model::{BaseStation, NetworkParams, Relay, RelayRole, Scenario, Subscriber};
pub use sag::{run_sag, run_sag_with, AnsweringSolver, LowerSolver, SagPipelineConfig, SagReport};
pub use sag_lp::{Budget, Spent};
pub use solver::{
    CoverageSolver, LoserFault, SelectionPolicy, SelectionReason, SolveOutcome, SolverBackend,
    SolverBuilder, SolverChoice,
};
