//! Greedy set-cover fallback for the lower tier.
//!
//! When the exact [`crate::ilpqc`] branch-and-bound exhausts its
//! [`sag_lp::Budget`] before finding *any* incumbent, the pipeline
//! degrades to this solver instead of failing: a classic greedy set
//! cover over the same candidate set (pick the candidate covering the
//! most still-uncovered subscribers), followed by the nearest-eligible
//! assignment and a bounded SNR-repair loop that inserts closer eligible
//! candidates for violated subscribers — the same repair move the exact
//! search branches on, applied greedily.
//!
//! The building blocks (eligibility lists, greedy selection, the SNR
//! repair + prune pass) are shared `pub(crate)` helpers: the `LpRound`
//! and `LocalSearch` backends in [`crate::solver`] reuse them so every
//! rung of the ladder agrees on what "eligible" and "repaired" mean.
//!
//! The result is feasible whenever the repair loop converges, but
//! carries no optimality certificate; [`crate::sag::SagReport`] records
//! that the greedy solver answered so downstream consumers can tell the
//! difference.

use sag_geom::Point;

use crate::coverage::{snr_violations, CoverageSolution};
use crate::error::{SagError, SagResult};
use crate::model::Scenario;

/// Eligibility lists: `eligible[j]` = candidate indices (ascending)
/// within subscriber `j`'s feasible distance. The shared first step of
/// every candidate-set backend, so they cannot disagree on coverage.
///
/// # Errors
/// [`SagError::Infeasible`] when some subscriber has no eligible
/// candidate at all; `stage` names the solver for the error payload.
pub(crate) fn eligibility(
    scenario: &Scenario,
    candidates: &[Point],
    stage: &str,
) -> SagResult<Vec<Vec<usize>>> {
    let n_cands = candidates.len();
    let mut eligible: Vec<Vec<usize>> = Vec::with_capacity(scenario.n_subscribers());
    for sub in &scenario.subscribers {
        let circle = sub.feasible_circle();
        let e: Vec<usize> = (0..n_cands)
            .filter(|&c| circle.contains(candidates[c]))
            .collect();
        if e.is_empty() {
            return Err(SagError::Infeasible(format!(
                "{stage}: a subscriber has no candidate within distance"
            )));
        }
        eligible.push(e);
    }
    Ok(eligible)
}

/// Greedy set cover over precomputed eligibility lists: repeatedly take
/// the candidate covering the most still-uncovered subscribers. Returns
/// the selected candidate indices, sorted ascending.
///
/// # Errors
/// [`SagError::Infeasible`] when no remaining candidate covers an
/// uncovered subscriber (only possible with inconsistent lists).
pub(crate) fn greedy_select(
    eligible: &[Vec<usize>],
    n_cands: usize,
    stage: &str,
) -> SagResult<Vec<usize>> {
    let n_subs = eligible.len();
    let mut selected: Vec<usize> = Vec::new();
    let mut covered = vec![false; n_subs];
    while covered.iter().any(|&c| !c) {
        let best = (0..n_cands)
            .filter(|c| !selected.contains(c))
            .max_by_key(|&c| {
                eligible
                    .iter()
                    .enumerate()
                    .filter(|(j, e)| !covered[*j] && e.contains(&c))
                    .count()
            })
            .filter(|&c| {
                eligible
                    .iter()
                    .enumerate()
                    .any(|(j, e)| !covered[j] && e.contains(&c))
            });
        let Some(c) = best else {
            return Err(SagError::Infeasible(format!(
                "{stage}: greedy cover stalled before covering every subscriber"
            )));
        };
        selected.push(c);
        for (j, e) in eligible.iter().enumerate() {
            if e.contains(&c) {
                covered[j] = true;
            }
        }
    }
    selected.sort_unstable();
    Ok(selected)
}

/// SNR repair + prune over a distance-complete selection (sorted
/// candidate indices): while some subscriber is violated, add the
/// closest not-yet-selected eligible candidate strictly closer than its
/// current server — the same repair move the exact search branches on,
/// applied greedily — then drop selected candidates that serve nobody.
/// Bounded by the candidate pool size.
///
/// # Errors
/// [`SagError::Infeasible`] when the repair loop exhausts the candidate
/// pool without clearing every SNR violation, or the selection does not
/// cover every subscriber.
pub(crate) fn repair_and_prune(
    scenario: &Scenario,
    candidates: &[Point],
    eligible: &[Vec<usize>],
    mut selected: Vec<usize>,
    stage: &str,
) -> SagResult<CoverageSolution> {
    loop {
        let assignment = nearest_assignment(scenario, candidates, eligible, &selected, stage)?;
        let relays: Vec<Point> = selected.iter().map(|&c| candidates[c]).collect();
        let violated = snr_violations(scenario, &relays, &assignment);
        let Some(&j) = violated.first() else {
            return prune_unused(scenario, candidates, eligible, selected, stage);
        };
        let spos = scenario.subscribers[j].position;
        let cur_d = candidates[selected[assignment[j]]].distance(spos);
        let repair = eligible[j]
            .iter()
            .copied()
            .filter(|&c| {
                selected.binary_search(&c).is_err() && candidates[c].distance(spos) < cur_d - 1e-9
            })
            .min_by(|&a, &b| {
                sag_geom::float::total_cmp(
                    &candidates[a].distance(spos),
                    &candidates[b].distance(spos),
                )
            });
        let Some(c) = repair else {
            return Err(SagError::Infeasible(format!(
                "{stage}: SNR repair exhausted the candidate pool"
            )));
        };
        let pos = match selected.binary_search(&c) {
            Ok(p) | Err(p) => p,
        };
        selected.insert(pos, c);
    }
}

/// Greedy set cover + SNR repair over `candidates`.
///
/// Runs in `O(n_cands² · n_subs)` worst case and performs no LP solves,
/// so it terminates quickly even when the budget that stopped the exact
/// solver has already expired — it is the last rung of the degradation
/// ladder and deliberately ignores deadlines.
///
/// Under the zone-parallel lower tier ([`crate::engine`]) this runs
/// once per *zone* that exhausted its share of the budget, over that
/// zone's candidates — zones where the exact search finished keep
/// their optimal answer.
///
/// # Errors
/// [`SagError::Infeasible`] when some subscriber has no eligible
/// candidate, or the repair loop exhausts the candidate pool without
/// clearing every SNR violation.
pub fn greedy_cover(scenario: &Scenario, candidates: &[Point]) -> SagResult<CoverageSolution> {
    let _stage = sag_obs::span("greedy_fallback");
    let eligible = eligibility(scenario, candidates, "fallback")?;
    let selected = greedy_select(&eligible, candidates.len(), "fallback")?;
    repair_and_prune(scenario, candidates, &eligible, selected, "fallback")
}

/// Nearest-eligible assignment over the selected candidates.
fn nearest_assignment(
    scenario: &Scenario,
    candidates: &[Point],
    eligible: &[Vec<usize>],
    selected: &[usize],
    stage: &str,
) -> SagResult<Vec<usize>> {
    let mut out = Vec::with_capacity(scenario.n_subscribers());
    for (j, e) in eligible.iter().enumerate() {
        let spos = scenario.subscribers[j].position;
        let best = e
            .iter()
            .filter_map(|c| selected.binary_search(c).ok())
            .min_by(|&a, &b| {
                sag_geom::float::total_cmp(
                    &candidates[selected[a]].distance(spos),
                    &candidates[selected[b]].distance(spos),
                )
            });
        match best {
            Some(b) => out.push(b),
            None => {
                return Err(SagError::Infeasible(format!(
                    "{stage}: selection does not cover every subscriber"
                )))
            }
        }
    }
    Ok(out)
}

/// Drops selected candidates that serve nobody and remaps the
/// assignment onto the compacted relay list.
fn prune_unused(
    scenario: &Scenario,
    candidates: &[Point],
    eligible: &[Vec<usize>],
    selected: Vec<usize>,
    stage: &str,
) -> SagResult<CoverageSolution> {
    let assignment = nearest_assignment(scenario, candidates, eligible, &selected, stage)?;
    let mut used = vec![false; selected.len()];
    for &a in &assignment {
        used[a] = true;
    }
    // SNR repair may have left earlier, farther servers idle; keeping
    // them would only add interference. Pruning can only improve SNR.
    let mut remap = vec![usize::MAX; selected.len()];
    let mut relays = Vec::new();
    for (i, &c) in selected.iter().enumerate() {
        if used[i] {
            remap[i] = relays.len();
            relays.push(candidates[c]);
        }
    }
    let assignment = assignment.into_iter().map(|a| remap[a]).collect();
    Ok(CoverageSolution { relays, assignment })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::iac_candidates;
    use crate::coverage::is_feasible;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::Rect;
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::new(
                LinkBudget::builder()
                    .snr_threshold(Db::new(beta_db))
                    .build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    #[test]
    fn covers_single_subscriber() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let sol = greedy_cover(&sc, &[Point::new(10.0, 0.0)]).unwrap();
        assert_eq!(sol.n_relays(), 1);
        assert!(is_feasible(&sc, &sol));
    }

    #[test]
    fn prefers_shared_candidate() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (40.0, 0.0, 30.0)], -15.0);
        let cands = vec![
            Point::new(20.0, 0.0), // covers both
            Point::new(0.0, 0.0),
            Point::new(40.0, 0.0),
        ];
        let sol = greedy_cover(&sc, &cands).unwrap();
        assert_eq!(sol.n_relays(), 1);
        assert!(sol.relays[0].approx_eq(Point::new(20.0, 0.0)));
    }

    #[test]
    fn infeasible_when_no_candidate_in_range() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        assert!(matches!(
            greedy_cover(&sc, &[Point::new(100.0, 0.0)]),
            Err(SagError::Infeasible(_))
        ));
        assert!(matches!(
            greedy_cover(&sc, &[]),
            Err(SagError::Infeasible(_))
        ));
    }

    #[test]
    fn iac_candidates_feasible_end_to_end() {
        let sc = scenario(
            vec![
                (0.0, 0.0, 35.0),
                (40.0, 0.0, 35.0),
                (150.0, 10.0, 30.0),
                (180.0, -10.0, 30.0),
            ],
            -15.0,
        );
        let cands = iac_candidates(&sc);
        let sol = greedy_cover(&sc, &cands).unwrap();
        assert!(is_feasible(&sc, &sol));
    }

    #[test]
    fn snr_repair_produces_feasible_cover_under_strict_beta() {
        let sc = scenario(vec![(0.0, 0.0, 32.0), (60.0, 0.0, 32.0)], 5.0);
        let cands = vec![
            Point::new(5.0, 0.0),
            Point::new(55.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(60.0, 0.0),
            Point::new(30.0, 0.0),
        ];
        let sol = greedy_cover(&sc, &cands).unwrap();
        assert!(is_feasible(&sc, &sol));
    }

    #[test]
    fn eligibility_stage_names_the_caller() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        match eligibility(&sc, &[Point::new(500.0, 0.0)], "lp_round") {
            Err(SagError::Infeasible(msg)) => assert!(msg.starts_with("lp_round:")),
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }
}
