//! RS Sliding Movement (Algorithm 4) and Update RS Topology
//! (Algorithm 5): the SNR-repair stage of SAMC.
//!
//! After the hitting set and Coverage Link Escape fix the coverage
//! topology, some subscribers may still miss their SNR threshold. The
//! repair moves relays *without changing who covers whom*:
//!
//! 1. every relay serving exactly one subscriber is moved onto that
//!    subscriber (maximum signal, least interference leakage — Alg. 4
//!    Step 2);
//! 2. for each relay covering a violated subscriber, a *virtual circle*
//!    is computed per violated subscriber — positions close enough that
//!    the serving signal beats `β ×` the current interference — and
//!    intersected with the feasible circles of all its other subscribers
//!    (the set `W` of Alg. 5). A relay whose `W` has common area is
//!    *updatable*; the witness point is its proposed new position;
//! 3. combinations of updatable relays are applied and every SNR
//!    re-checked; if violations shrink, the procedure recurses on the
//!    smaller violation set (Alg. 5 Step 3).
//!
//! The paper's "unlimited number of order combinations" is made finite
//! exactly as here: only the discrete updatable-relay subsets are tried.

use sag_geom::{disks, Circle, Point};
use sag_radio::InterferenceLedger;

use crate::coverage::{interference_ledger, snr_violations_ledger, CoverageSolution, ServedIndex};
use crate::model::Scenario;

/// Upper bound on relays considered in one subset-enumeration round
/// (2^12 = 4096 combinations); beyond this the enumeration degrades to
/// greedy single moves, which keeps the stage polynomial in practice as
/// the paper requires.
const MAX_ENUMERATED: usize = 12;

/// Maximum recursion depth of Update RS Topology; each level strictly
/// shrinks the violation set, so `n_subscribers` levels always suffice.
fn max_depth(scenario: &Scenario) -> usize {
    scenario.n_subscribers() + 1
}

/// Work counters of one repair run, aggregated in plain locals and
/// flushed to the observability layer once at the end (the mask loop
/// itself stays uninstrumented).
#[derive(Default)]
struct SlideStats {
    /// Relay-move combinations evaluated by Update RS Topology.
    trials: u64,
    /// Relay moves committed into the accepted placement (snaps and
    /// mask moves on the successful path).
    accepted_moves: u64,
    /// Combinations rejected because the violation set did not shrink.
    mask_rejections: u64,
}

/// Runs the sliding-movement repair on a placement with a fixed
/// assignment. Returns the repaired solution, or `None` when the repair
/// fails (SAMC then reports infeasibility for the zone).
///
/// The input `assignment` must assign every subscriber to a relay index
/// within `relays`.
///
/// # Panics
/// Panics if `assignment` is inconsistent with `relays`/`scenario`.
pub fn rs_sliding_movement(
    scenario: &Scenario,
    relays: Vec<Point>,
    assignment: Vec<usize>,
) -> Option<CoverageSolution> {
    let _span = sag_obs::span("sliding");
    let mut stats = SlideStats::default();
    let out = sliding_inner(scenario, relays, assignment, &mut stats);
    if sag_obs::enabled() {
        sag_obs::counter("sliding.trials", stats.trials);
        sag_obs::counter("sliding.accepted_moves", stats.accepted_moves);
        sag_obs::counter("sliding.mask_rejections", stats.mask_rejections);
    }
    out
}

fn sliding_inner(
    scenario: &Scenario,
    mut relays: Vec<Point>,
    mut assignment: Vec<usize>,
    stats: &mut SlideStats,
) -> Option<CoverageSolution> {
    assert_eq!(
        assignment.len(),
        scenario.n_subscribers(),
        "assignment length mismatch"
    );
    assert!(
        assignment.iter().all(|&r| r < relays.len()),
        "assignment references a relay out of range"
    );

    // One interference ledger for the whole repair: relay ids coincide
    // with indices into `relays`, every slide below is a `move_relay`
    // delta, and each violation scan is O(S) instead of O(S·R²).
    let mut ledger = interference_ledger(scenario, &relays);

    // Refinement loop: snap one-on-one relays (Alg. 4 Step 2) and
    // re-serve violated subscribers from their nearest in-range relay.
    // The ILP's `T_ij` is a free variable, so reassignment never leaves
    // the formulation — and with uniform powers the nearest relay is the
    // SNR-optimal server (the interference sum is assignment-
    // independent). Without this, a relay parked *on top of* a
    // subscriber served by someone else jams it unfixably: Algorithm 5
    // only ever moves relays that serve violated subscribers.
    for _ in 0..=scenario.n_subscribers() {
        let served = ServedIndex::build(relays.len(), &assignment);
        for (r, pos) in relays.iter_mut().enumerate() {
            if let [only] = served.of(r) {
                let target = scenario.subscribers[*only].position;
                if !pos.approx_eq(target) {
                    stats.accepted_moves += 1;
                }
                *pos = target;
                ledger.move_relay(r, *pos);
            }
        }
        let violated = snr_violations_ledger(scenario, &ledger, &assignment);
        if violated.is_empty() {
            drop_unused_relays(&mut relays, &mut assignment);
            return Some(CoverageSolution { relays, assignment });
        }
        let mut changed = false;
        for &j in &violated {
            let sub = &scenario.subscribers[j];
            let cur_d = relays[assignment[j]].distance(sub.position);
            let nearer = relays
                .iter()
                .enumerate()
                .filter(|&(r, p)| {
                    r != assignment[j]
                        && p.distance(sub.position) <= sub.distance_req + 1e-9
                        && p.distance(sub.position) < cur_d - 1e-9
                })
                .min_by(|a, b| {
                    sag_geom::float::total_cmp(
                        &a.1.distance(sub.position),
                        &b.1.distance(sub.position),
                    )
                });
            if let Some((r, _)) = nearer {
                assignment[j] = r;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let violated = snr_violations_ledger(scenario, &ledger, &assignment);
    if violated.is_empty() {
        drop_unused_relays(&mut relays, &mut assignment);
        return Some(CoverageSolution { relays, assignment });
    }
    // Build `served` fresh from the final assignment (the refinement loop
    // may have exited right after a reassignment) so Update RS Topology
    // sees every relay's true subscriber set — otherwise a move could
    // leave a reassigned subscriber outside its feasible circle.
    crate::coverage::flush_ledger_stats(&ledger);
    let served = ServedIndex::build(relays.len(), &assignment);
    let repaired = update_rs_topology(
        scenario,
        relays,
        ledger,
        &assignment,
        &served,
        violated,
        max_depth(scenario),
        stats,
    )?;
    let mut relays = repaired;
    drop_unused_relays(&mut relays, &mut assignment);
    Some(CoverageSolution { relays, assignment })
}

/// Removes relays that serve no subscriber (possible after violated
/// subscribers were re-served elsewhere), remapping the assignment.
/// Constraint (3.2) — every placed relay covers at least one SS — is
/// thereby restored, and the relay count can only shrink.
fn drop_unused_relays(relays: &mut Vec<Point>, assignment: &mut [usize]) {
    let mut used = vec![false; relays.len()];
    for &r in assignment.iter() {
        used[r] = true;
    }
    if used.iter().all(|&u| u) {
        return;
    }
    let mut remap = vec![usize::MAX; relays.len()];
    let mut kept = Vec::with_capacity(relays.len());
    for (r, &u) in used.iter().enumerate() {
        if u {
            remap[r] = kept.len();
            kept.push(relays[r]);
        }
    }
    for a in assignment.iter_mut() {
        *a = remap[*a];
    }
    *relays = kept;
}

/// The virtual circle of Algorithm 5: positions for the serving relay
/// from which subscriber `j`'s SNR clears β given the *current* positions
/// of all other relays (read from the ledger). `None` when no position
/// can (required radius is non-positive).
///
/// The ledger holds unit powers, so the `Pmax` interference of the
/// paper is `Pmax ×` the ledger's aggregate — the per-relay sum itself
/// is the one ledger-backed implementation shared with coverage/PRO.
fn virtual_circle(
    scenario: &Scenario,
    ledger: &InterferenceLedger,
    j: usize,
    serving: usize,
) -> Option<Circle> {
    let beta = scenario.params.link.beta();
    let model = scenario.params.link.model();
    let pmax = scenario.params.link.pmax();
    let interference = pmax * ledger.interference_at(j, serving);
    let sub = &scenario.subscribers[j];
    // Signal needed: Pmax·G·d^{-α} ≥ β·I  →  d ≤ (Pmax·G / (β·I))^{1/α}.
    let d_snr = if interference <= 0.0 {
        f64::INFINITY
    } else {
        model.max_range(pmax, beta * interference)
    };
    let radius = d_snr.min(sub.distance_req);
    (radius > 1e-9).then(|| Circle::new(sub.position, radius.min(1e9)))
}

/// One Update RS Topology round (Algorithm 5), recursing while the
/// violation set shrinks.
#[allow(clippy::too_many_arguments)]
fn update_rs_topology(
    scenario: &Scenario,
    relays: Vec<Point>,
    ledger: InterferenceLedger,
    assignment: &[usize],
    served: &ServedIndex,
    violated: Vec<usize>,
    depth: usize,
    stats: &mut SlideStats,
) -> Option<Vec<Point>> {
    if depth == 0 {
        return None;
    }
    let beta = scenario.params.link.beta();
    // Relays covering violated subscribers (R_u of the paper).
    let mut updatable: Vec<(usize, Point)> = Vec::new();
    let mut r_u: Vec<usize> = violated.iter().map(|&j| assignment[j]).collect();
    r_u.sort_unstable();
    r_u.dedup();
    for &r in &r_u {
        // W = feasible circles of satisfied covered SS ∪ virtual circles
        // of violated covered SS.
        let mut w: Vec<Circle> = Vec::new();
        let mut possible = true;
        for &j in served.of(r) {
            let ok = ledger.snr(j, r) >= beta - 1e-12;
            if ok {
                w.push(scenario.subscribers[j].feasible_circle());
            } else {
                match virtual_circle(scenario, &ledger, j, r) {
                    Some(c) => w.push(c),
                    None => {
                        possible = false;
                        break;
                    }
                }
            }
        }
        if !possible {
            continue; // unupdatable (Alg. 5 Step 2 "mark as unupdatable")
        }
        if let Some(target) = disks::deep_common_point(&w) {
            if target.distance(relays[r]) > 1e-9 {
                updatable.push((r, target));
            }
        }
    }
    if updatable.is_empty() {
        return None;
    }
    updatable.truncate(MAX_ENUMERATED);

    // Try combinations of updatable relays, smallest first (Alg. 5 Step 3
    // tries "any combination"; ordering by size prefers minimal moves).
    // Each trial clones the ledger (O(S + R)) and applies ≤ MAX_ENUMERATED
    // move deltas — the full violation rescan the old code did per mask
    // was the hottest loop of the whole stage.
    let m = updatable.len();
    let mut masks: Vec<u32> = (1u32..(1 << m)).collect();
    masks.sort_by_key(|mask| mask.count_ones());
    let mut best_recursion: Option<Vec<Point>> = None;
    for mask in masks {
        stats.trials += 1;
        let mut moved = relays.clone();
        let mut moved_ledger = ledger.clone();
        for (bit, &(r, target)) in updatable.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                moved[r] = target;
                moved_ledger.move_relay(r, target);
            }
        }
        let now_violated = snr_violations_ledger(scenario, &moved_ledger, assignment);
        if now_violated.is_empty() {
            stats.accepted_moves += u64::from(mask.count_ones());
            return Some(moved);
        }
        if now_violated.len() >= violated.len() {
            stats.mask_rejections += 1;
            continue;
        }
        if best_recursion.is_none() {
            // Alg. 5: recurse on the strictly smaller violation set.
            if let Some(sol) = update_rs_topology(
                scenario,
                moved,
                moved_ledger,
                assignment,
                served,
                now_violated,
                depth - 1,
                stats,
            ) {
                stats.accepted_moves += u64::from(mask.count_ones());
                best_recursion = Some(sol);
                break;
            }
        }
    }
    best_recursion
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::{is_feasible, snr_violations};
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::Rect;
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::new(
                LinkBudget::builder()
                    .snr_threshold(Db::new(beta_db))
                    .build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    #[test]
    fn already_feasible_passes_through() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (200.0, 0.0, 30.0)], -15.0);
        let relays = vec![Point::new(5.0, 0.0), Point::new(195.0, 0.0)];
        let sol = rs_sliding_movement(&sc, relays, vec![0, 1]).expect("feasible");
        assert!(is_feasible(&sc, &sol));
        // One-on-one relays snapped onto their subscribers.
        assert!(sol.relays[0].approx_eq(Point::new(0.0, 0.0)));
        assert!(sol.relays[1].approx_eq(Point::new(200.0, 0.0)));
    }

    #[test]
    fn one_on_one_snap_fixes_snr() {
        // Relays parked at the far edges of their circles: SS0 sees
        // serving 29 vs interferer 41 → SNR = (41/29)³ ≈ 2.8 (4.5 dB),
        // violated at 5 dB. Snapping one-on-one relays onto their
        // subscribers repairs it.
        let strict = scenario(vec![(0.0, 0.0, 30.0), (70.0, 0.0, 30.0)], 5.0);
        let relays = vec![Point::new(29.0, 0.0), Point::new(41.0, 0.0)];
        let assignment = vec![0, 1];
        let viol = snr_violations(&strict, &relays, &assignment);
        assert!(!viol.is_empty(), "setup should start violated");
        let sol = rs_sliding_movement(&strict, relays, assignment).expect("repairable");
        assert!(is_feasible(&strict, &sol));
        assert!(sol.relays[0].approx_eq(Point::new(0.0, 0.0)));
        assert!(sol.relays[1].approx_eq(Point::new(70.0, 0.0)));
    }

    #[test]
    fn shared_relay_moves_via_common_area() {
        // Relay 0 serves two subscribers (cannot snap one-on-one);
        // relay 1 serves a third close enough to interfere. Starting at
        // the top of the coverage lens, SS0 sees serving 39 vs interferer
        // 70 → (70/39)³ ≈ 5.8 and SS1 sees (40/39)³ ≈ 1.08: both violated
        // at 9 dB (7.94). Moving relay 0 into the common area of the
        // virtual circles (near the lens centre) repairs everything.
        let sc = scenario(
            vec![(0.0, 0.0, 40.0), (30.0, 0.0, 40.0), (70.0, 0.0, 35.0)],
            9.0,
        );
        let relays = vec![Point::new(15.0, 36.0), Point::new(70.0, 0.0)];
        let assignment = vec![0, 0, 1];
        let viol = snr_violations(&sc, &relays, &assignment);
        assert!(!viol.is_empty(), "setup should start violated");
        let sol = rs_sliding_movement(&sc, relays, assignment).expect("repairable");
        assert!(is_feasible(&sc, &sol));
        // Moved relay still covers both assigned subscribers.
        for j in [0usize, 1] {
            let d = sol.relays[0].distance(sc.subscribers[j].position);
            assert!(d <= sc.subscribers[j].distance_req + 1e-6);
        }
    }

    #[test]
    fn impossible_snr_returns_none() {
        // Two shared relays (two subscribers each, so no one-on-one
        // snap): serving distance is pinned at ≈ 6 while the interfering
        // relay sits ≈ 12 away → SNR ≤ (13.4/6)³ ≈ 11 (10.4 dB).
        // A +20 dB threshold is unreachable by any sliding.
        let sc = scenario(
            vec![
                (0.0, -6.0, 6.5),
                (0.0, 6.0, 6.5),
                (12.0, -6.0, 6.5),
                (12.0, 6.0, 6.5),
            ],
            20.0,
        );
        let relays = vec![Point::new(0.0, 0.0), Point::new(12.0, 0.0)];
        let assignment = vec![0, 0, 1, 1];
        assert!(rs_sliding_movement(&sc, relays, assignment).is_none());
    }

    #[test]
    fn virtual_circle_radius_bounded_by_distance_req() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (500.0, 0.0, 30.0)], -15.0);
        let relays = vec![Point::new(10.0, 0.0), Point::new(490.0, 0.0)];
        let ledger = interference_ledger(&sc, &relays);
        // Interference at SS0 is tiny → d_snr huge → radius capped at d_0.
        let c = virtual_circle(&sc, &ledger, 0, 0).unwrap();
        assert!((c.radius - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn bad_assignment_panics() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        rs_sliding_movement(&sc, vec![Point::ORIGIN], vec![5]);
    }
}
