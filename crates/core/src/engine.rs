//! Zone-parallel solve engine.
//!
//! Zone Partition (Algorithm 2) produces interference-independent
//! zones, which makes the lower tier embarrassingly parallel: each zone
//! is solved against a private [`InterferenceLedger`] restricted to its
//! own subscribers, and the per-zone answers are reassembled in zone
//! index order. [`run_zones`] is the shared work-queue under both SAMC
//! and the ILPQC path of [`crate::sag::run_sag_with`].
//!
//! # Determinism contract
//!
//! `threads = 1` and `threads = N` produce byte-identical results as
//! long as no zone errors:
//!
//! * the partition itself never depends on the thread count;
//! * each zone solve is a pure function of its zone scenario (workers
//!   inherit the coordinator's observability stack and ledger-mode
//!   override, so not even debug switches can diverge);
//! * the merge consumes zone results **in zone index order**, so the
//!   relay numbering, the assignment remap and the merged ledger's
//!   floating-point accumulators replay the sequential build exactly.
//!
//! When a shared budget is exhausted mid-run the *outcome* (which zone
//! trips first) depends on scheduling, so error runs are only
//! deterministic at `threads = 1`.
//!
//! Worker panics are caught at the engine boundary and surfaced as
//! [`SagError::WorkerPanic`] — a poisoned zone never hangs the merge.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use sag_geom::Point;
use sag_radio::ledger::InterferenceLedger;

use crate::coverage::{
    flush_ledger_stats, ledger_mode_override, push_ledger_mode_override, snr_violations_ledger,
    CoverageSolution,
};
use crate::error::{SagError, SagResult};
use crate::model::Scenario;
use crate::sliding::rs_sliding_movement;
use crate::zone::Zone;

thread_local! {
    /// Chaos switch: when set, every zone solve started from this
    /// thread (or a worker it spawns) panics instead of solving.
    static INJECT_PANIC: Cell<bool> = const { Cell::new(false) };
}

/// Arms (or disarms) the chaos fault that makes zone workers panic.
///
/// Scoped to the calling thread — pipelines started from other threads
/// are unaffected — but propagated to the worker threads those
/// pipelines spawn, so the fault exercises the real panic boundary.
/// Test-only in spirit; it exists so the chaos suite can verify that a
/// dying worker surfaces [`SagError::WorkerPanic`] instead of hanging
/// or poisoning the run.
pub fn inject_zone_worker_panic(armed: bool) {
    INJECT_PANIC.with(|f| f.set(armed));
}

/// Resolves the `threads` knob: `0` means "all hardware threads".
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Solves `n_zones` zone jobs with up to `threads` workers and returns
/// the results in zone index order.
///
/// `threads <= 1` (or a single zone) runs everything on the calling
/// thread in zone order — the exact sequential loop the merge replays.
/// Otherwise a scoped work queue hands zones out in index order;
/// workers re-install the coordinator's thread-local observability
/// stack and ledger-mode override so a zone solve behaves identically
/// on either path.
///
/// The first error **by zone index** wins and later zones are
/// abandoned cooperatively (in-flight zones still finish). Panics in
/// `solve` become [`SagError::WorkerPanic`] on both paths.
pub(crate) fn run_zones<T, F>(
    stage: &'static str,
    n_zones: usize,
    threads: usize,
    solve: F,
) -> SagResult<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> SagResult<T> + Sync,
{
    let inject = INJECT_PANIC.with(|f| f.get());
    let solve_caught = |zone: usize| -> SagResult<T> {
        catch_unwind(AssertUnwindSafe(|| {
            let _zone_span = sag_obs::span_zone("zone_solve", zone as u64);
            assert!(!inject, "injected zone-worker panic (zone {zone})");
            solve(zone)
        }))
        .unwrap_or(Err(SagError::WorkerPanic { stage, zone }))
    };

    let threads = resolve_threads(threads).min(n_zones.max(1));
    if threads <= 1 {
        let mut out = Vec::with_capacity(n_zones);
        for zone in 0..n_zones {
            out.push(solve_caught(zone)?);
        }
        return Ok(out);
    }

    let slots: Vec<Mutex<Option<SagResult<T>>>> = (0..n_zones).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // Aggregating recorders (the run's Collector) must not be written
    // from racing workers: gauge last-write-wins and first-seen vector
    // order would depend on scheduling. Workers record them into a
    // private per-zone collector instead, and the coordinator folds
    // those summaries back in zone-index order below — reproducing the
    // sequential event order, so collected metrics are identical at
    // any thread count. Streaming recorders (the JSONL sink) stay live
    // with per-thread attribution.
    let (buffered, live): (Vec<_>, Vec<_>) = sag_obs::local_stack()
        .into_iter()
        .partition(|r| r.buffered());
    let zone_collectors: Vec<std::sync::Arc<sag_obs::Collector>> = if buffered.is_empty() {
        Vec::new()
    } else {
        (0..n_zones).map(|_| Default::default()).collect()
    };
    let ctx = sag_obs::span_context();
    let mode = ledger_mode_override();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                sag_obs::with_span_context(ctx, || {
                    sag_obs::with_local_stack(&live, || {
                        let _mode = push_ledger_mode_override(mode);
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let zone = next.fetch_add(1, Ordering::Relaxed);
                            if zone >= n_zones {
                                break;
                            }
                            let out = match zone_collectors.get(zone) {
                                Some(c) => sag_obs::with_local(c.clone(), || solve_caught(zone)),
                                None => solve_caught(zone),
                            };
                            if out.is_err() {
                                abort.store(true, Ordering::Relaxed);
                            }
                            if let Ok(mut slot) = slots[zone].lock() {
                                *slot = Some(out);
                            }
                        }
                    })
                });
            });
        }
    });

    // Deterministic merge of the buffered per-zone metrics (zones a
    // preceding error kept from running fold in as empty summaries).
    for collector in &zone_collectors {
        let summary = collector.summary();
        for recorder in &buffered {
            recorder.absorb(&summary);
        }
    }

    // Zones are claimed in index order, so every slot below the first
    // error is filled; slots above an abort may be empty but are only
    // reached when no error precedes them.
    let mut out = Vec::with_capacity(n_zones);
    for slot in slots {
        match slot.into_inner() {
            Ok(Some(Ok(v))) => out.push(v),
            Ok(Some(Err(e))) => return Err(e),
            Ok(None) | Err(_) => {
                // Unreachable without a preceding error (claims are
                // ordered and panics are caught); fail closed anyway.
                return Err(SagError::WorkerPanic {
                    stage,
                    zone: out.len(),
                });
            }
        }
    }
    Ok(out)
}

/// One zone's contribution to the merged lower-tier answer: the
/// zone-local coverage plus the worker's private zone ledger (relays at
/// unit power, drift-free by construction of
/// [`InterferenceLedger::split`]).
pub(crate) struct ZoneOutcome {
    /// Zone-local placement (relay indices local to the zone).
    pub solution: CoverageSolution,
    /// Private ledger over the zone's subscribers with the zone's
    /// relays applied.
    pub ledger: InterferenceLedger,
}

/// Builds a worker's [`ZoneOutcome`]: split the relay-free base ledger
/// down to the zone's subscribers and apply the zone's relays.
pub(crate) fn zone_outcome(
    base: &InterferenceLedger,
    zone: &Zone,
    solution: CoverageSolution,
) -> ZoneOutcome {
    let mut ledger = base.split(zone);
    for &relay in &solution.relays {
        ledger.add_relay(relay, 1.0);
    }
    ZoneOutcome { solution, ledger }
}

/// Reassembles per-zone outcomes into one global [`CoverageSolution`],
/// strictly in zone index order.
///
/// Relays are concatenated zone by zone, assignments remapped through
/// each zone's subscriber indices, and the zone ledgers merged into a
/// clone of the relay-free base — which replays, add for add, the
/// sequential global build, so the merged accumulators are bit-identical
/// to `threads = 1`. Zones are interference-independent only up to
/// `N_max`; the merged placement is re-checked and one global repair
/// round clears any residual inter-zone violations.
pub(crate) fn merge_zone_outcomes(
    scenario: &Scenario,
    zones: &[Zone],
    outcomes: Vec<ZoneOutcome>,
    base: &InterferenceLedger,
    stage: &str,
) -> SagResult<CoverageSolution> {
    debug_assert_eq!(zones.len(), outcomes.len());
    let mut all_relays: Vec<Point> = Vec::new();
    let mut global_assignment = vec![usize::MAX; scenario.n_subscribers()];
    let mut merged = base.clone();
    for (zone, outcome) in zones.iter().zip(&outcomes) {
        let offset = all_relays.len();
        all_relays.extend(outcome.solution.relays.iter().copied());
        for (local_j, &global_j) in zone.iter().enumerate() {
            global_assignment[global_j] = offset + outcome.solution.assignment[local_j];
        }
        merged.merge_from(&outcome.ledger);
    }
    debug_assert!(global_assignment.iter().all(|&a| a != usize::MAX));

    let violations = snr_violations_ledger(scenario, &merged, &global_assignment);
    // Residual inter-zone violations the merged check surfaced (the
    // global repair round clears them or fails the solve).
    sag_obs::gauge("coverage.snr_violations", violations.len() as f64);
    flush_ledger_stats(&merged);
    if violations.is_empty() {
        return Ok(CoverageSolution {
            relays: all_relays,
            assignment: global_assignment,
        });
    }
    rs_sliding_movement(scenario, all_relays, global_assignment)
        .ok_or_else(|| SagError::Infeasible(format!("{stage}: global SNR repair failed")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_on_results_and_order() {
        let square = |z: usize| -> SagResult<usize> { Ok(z * z) };
        let seq = run_zones("samc", 9, 1, square).unwrap();
        let par = run_zones("samc", 9, 4, square).unwrap();
        assert_eq!(seq, (0..9).map(|z| z * z).collect::<Vec<_>>());
        assert_eq!(seq, par);
    }

    #[test]
    fn first_error_by_zone_index_wins() {
        let solve = |z: usize| -> SagResult<usize> {
            if z >= 3 {
                Err(SagError::Infeasible(format!("zone {z}")))
            } else {
                Ok(z)
            }
        };
        for threads in [1, 4] {
            let err = run_zones("samc", 8, threads, solve).unwrap_err();
            assert_eq!(
                err,
                SagError::Infeasible("zone 3".into()),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn worker_panic_is_caught_as_a_typed_error() {
        let solve = |z: usize| -> SagResult<usize> {
            if z == 2 {
                panic!("boom");
            }
            Ok(z)
        };
        for threads in [1, 4] {
            let err = run_zones("ilpqc", 5, threads, solve).unwrap_err();
            assert_eq!(
                err,
                SagError::WorkerPanic {
                    stage: "ilpqc",
                    zone: 2
                },
                "threads {threads}"
            );
        }
    }

    #[test]
    fn injected_panic_arms_and_disarms_per_thread() {
        inject_zone_worker_panic(true);
        let err = run_zones("samc", 3, 2, Ok).unwrap_err();
        assert!(matches!(err, SagError::WorkerPanic { stage: "samc", .. }));
        inject_zone_worker_panic(false);
        assert!(run_zones("samc", 3, 2, Ok).is_ok());
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn workers_inherit_the_observability_stack() {
        use std::sync::Arc;
        let collector = Arc::new(sag_obs::Collector::default());
        sag_obs::with_local(collector.clone(), || {
            run_zones("samc", 6, 3, |z| {
                sag_obs::counter("engine.test_zone", 1);
                Ok(z)
            })
            .unwrap();
        });
        let metrics = collector.summary();
        assert_eq!(metrics.counter("engine.test_zone"), 6);
    }
}
