//! Streaming churn engine: incremental placement repair under subscriber
//! arrivals, departures and mobility.
//!
//! The paper's pipeline is batch: given a fixed subscriber set, SAMC
//! places relays once. Real deployments churn — subscribers join, leave
//! and move — and re-running the whole pipeline per event is wasteful
//! when one event only perturbs one interference zone. [`ChurnEngine`]
//! keeps a live placement and repairs it *incrementally*:
//!
//! 1. every event patches the [`InterferenceLedger`] in place through
//!    its subscriber mutations (`add/remove/move_subscriber`), so SNR
//!    state stays `O(R)`-per-event instead of `O(S·R)` rebuilds;
//! 2. the event dirties only the interference zone(s) it touches; the
//!    dirty set is closed over serving relays so a zone split/merge or
//!    boundary crossing drags every co-served zone along;
//! 3. only dirty zones are re-solved, through the same work queue as
//!    the batch path ([`crate::engine`]), under a per-event cooperative
//!    [`Budget`].
//!
//! # Degradation ladder
//!
//! When an event burst starves the budget the engine does not block —
//! it falls down a ladder, recording every rung in the [`ChurnReport`]:
//!
//! * **[`RepairRung::Exact`]** — dirty zones re-solved by the full SAMC
//!   zone solver (hitting set → escape → sliding);
//! * **[`RepairRung::Greedy`]** — a zone whose exact solve came back
//!   infeasible is patched by the shared greedy rescue rung
//!   ([`SolverBuilder::primary_or_greedy_rescue`]) instead — the same
//!   ladder bottom the steady-state pipeline uses, so rung accounting
//!   agrees between churn and batch paths;
//! * **[`RepairRung::Deferred`]** — no budget at all: the event's slots
//!   join a backlog that the next funded event (or an explicit
//!   [`ChurnEngine::flush`]) batch-repairs; the backlog is bounded by
//!   [`ChurnConfig::max_backlog`], past which a forced flush runs.
//!
//! Departures are the fast path: removing a subscriber (and its relay,
//! when orphaned) only ever *lowers* interference, so no zone needs a
//! re-solve.
//!
//! # Safety contract
//!
//! Every entry point returns a typed [`SagError`] or leaves the engine
//! audit-clean — never a hang, a panic escape, or a silently corrupted
//! placement. Worker panics inside a repair surface as
//! [`SagError::WorkerPanic`]; a skewed ledger accumulator (chaos
//! injection or a real bug) is caught by the audit policy
//! ([`ChurnConfig::audit_every`]) as [`SagError::LedgerDesync`]; a
//! repair that fails re-queues its slots so the caller can retry.

use std::time::{Duration, Instant};

use sag_geom::Point;
use sag_lp::{Budget, Spent};
use sag_radio::ledger::InterferenceLedger;

use crate::coverage::{interference_ledger, CoverageSolution};
use crate::engine;
use crate::error::{SagError, SagResult};
use crate::model::{Scenario, Subscriber};
use crate::samc::{self, SamcConfig};
use crate::solver::SolverBuilder;
use crate::zone::{zone_partition, zone_scenario};

/// One subscriber-side event in the churn stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// A new subscriber appears and must be covered.
    SsArrive {
        /// Where the subscriber appears (must be finite, inside the field).
        position: Point,
        /// Its capacity-derived feasible distance (Definition 1).
        distance_req: f64,
    },
    /// An existing subscriber leaves the network.
    SsDepart {
        /// Engine slot of the departing subscriber (as returned in
        /// arrival order; slots are reused LIFO after departures).
        subscriber: usize,
    },
    /// An existing subscriber moves (one mobility-trace step).
    SsMove {
        /// Engine slot of the moving subscriber.
        subscriber: usize,
        /// New position (must be finite, inside the field).
        to: Point,
    },
}

/// Which rung of the degradation ladder repaired an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepairRung {
    /// Dirty zones re-solved exactly by the SAMC zone solver.
    Exact,
    /// At least one dirty zone fell back to the greedy cover patch.
    Greedy,
    /// No budget: the event joined the deferred backlog.
    Deferred,
}

/// Tuning knobs for the churn engine.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Zone-solver configuration used for exact repairs.
    pub samc: SamcConfig,
    /// Worker threads for multi-zone repairs (`1` = sequential and
    /// fully deterministic, `0` = all hardware threads).
    pub threads: usize,
    /// Backlog bound: once this many slots are deferred, the next
    /// deferral triggers a forced batch flush so degradation stays
    /// bounded instead of open-ended.
    pub max_backlog: usize,
    /// Audit cadence: run a full ledger [`InterferenceLedger::audit`]
    /// every `audit_every` events (`0` disables; `1`, the default,
    /// audits after every event). An audit failure surfaces as
    /// [`SagError::LedgerDesync`].
    pub audit_every: u64,
    /// Backend selection front shared with the steady-state pipeline;
    /// the repair ladder's Exact→Greedy rescue routes through
    /// [`SolverBuilder::primary_or_greedy_rescue`] so rung accounting
    /// cannot drift between churn and batch paths.
    pub solver: SolverBuilder,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            samc: SamcConfig::default(),
            threads: 1,
            max_backlog: 8,
            audit_every: 1,
            solver: SolverBuilder::default(),
        }
    }
}

/// What happened to one event: its ladder rung and repair latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// The event as applied.
    pub event: ChurnEvent,
    /// Ladder rung that handled it.
    pub rung: RepairRung,
    /// Wall-clock latency of the whole apply (mutate + repair + audit).
    pub latency_ns: u64,
    /// Number of zones the repair re-solved (0 for departures and
    /// deferred events).
    pub dirty_zones: usize,
    /// Backlog size after the event.
    pub backlog: usize,
}

/// Aggregated outcome of a churn run: per-event records plus ladder and
/// repair counters. Latency percentiles are the SLO surface gated by
/// `BENCH_churn.json`.
#[derive(Debug, Clone, Default)]
pub struct ChurnReport {
    /// One record per applied event, in stream order.
    pub events: Vec<EventRecord>,
    /// Batch flushes of the deferred backlog (explicit or forced).
    pub flushes: u64,
    /// Global sliding-repair rounds triggered by residual cross-zone
    /// SNR violations after a commit.
    pub global_repairs: u64,
    /// Ledger audits that ran (and passed) under the audit policy.
    pub audits: u64,
}

impl ChurnReport {
    /// How many events landed on `rung`.
    pub fn rung_count(&self, rung: RepairRung) -> usize {
        self.events.iter().filter(|e| e.rung == rung).count()
    }

    /// Nearest-rank latency percentile over all events, in nanoseconds
    /// (`p` in percent, e.g. `99.0`). Returns 0 for an empty report.
    pub fn latency_percentile_ns(&self, p: f64) -> u64 {
        let mut v: Vec<u64> = self.events.iter().map(|e| e.latency_ns).collect();
        if v.is_empty() {
            return 0;
        }
        v.sort_unstable();
        let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
        v[rank.saturating_sub(1).min(v.len() - 1)]
    }

    /// Median per-event repair latency (ns).
    pub fn p50_ns(&self) -> u64 {
        self.latency_percentile_ns(50.0)
    }

    /// Tail per-event repair latency (ns).
    pub fn p99_ns(&self) -> u64 {
        self.latency_percentile_ns(99.0)
    }
}

/// A live placement under churn: slot tables mirroring the ledger, the
/// current serving assignment, and the deferred-repair backlog.
///
/// Slot discipline: subscriber slot `j` is active iff `subs[j]` is
/// `Some`; the ledger's subscriber slot `j` always agrees (both reuse
/// freed slots LIFO). Relay ids are ledger relay ids, mirrored in
/// `relay_pos` (both reuse freed ids LIFO).
#[derive(Debug)]
pub struct ChurnEngine {
    /// Field, base stations and radio parameters (the subscriber list
    /// inside is the *initial* one; the live set is `subs`).
    template: Scenario,
    /// Slot-aligned live subscribers (`None` = tombstoned slot).
    subs: Vec<Option<Subscriber>>,
    /// Slot-aligned serving relay ids (`None` = awaiting repair).
    serving: Vec<Option<usize>>,
    /// Relay-id-aligned positions (`None` = freed id).
    relay_pos: Vec<Option<Point>>,
    /// Incremental interference state over all slots (exact mode; churn
    /// forbids the truncated cutoff because subscriber mutations do).
    ledger: InterferenceLedger,
    config: ChurnConfig,
    /// Subscriber slots whose repair was deferred (dedup'd, unordered).
    deferred: Vec<usize>,
    report: ChurnReport,
    events_seen: u64,
}

impl ChurnEngine {
    /// Builds an engine by solving `scenario` from scratch with SAMC.
    pub fn new(scenario: &Scenario, config: ChurnConfig) -> SagResult<ChurnEngine> {
        scenario.validate()?;
        let initial = samc::samc_with(scenario, config.samc)?;
        ChurnEngine::with_placement(scenario, initial, config)
    }

    /// Builds an engine around an existing placement (e.g. a cached
    /// from-scratch solve), skipping the initial SAMC run.
    pub fn with_placement(
        scenario: &Scenario,
        solution: CoverageSolution,
        config: ChurnConfig,
    ) -> SagResult<ChurnEngine> {
        if solution.assignment.len() != scenario.n_subscribers()
            || solution
                .assignment
                .iter()
                .any(|&r| r >= solution.relays.len())
        {
            return Err(SagError::InvalidScenario(
                "churn: placement does not match the scenario's subscribers".into(),
            ));
        }
        let ledger = interference_ledger(scenario, &solution.relays);
        Ok(ChurnEngine {
            template: scenario.clone(),
            subs: scenario.subscribers.iter().map(|&s| Some(s)).collect(),
            serving: solution.assignment.iter().map(|&r| Some(r)).collect(),
            relay_pos: solution.relays.iter().map(|&p| Some(p)).collect(),
            ledger,
            config,
            deferred: Vec::new(),
            report: ChurnReport::default(),
            events_seen: 0,
        })
    }

    /// Live subscriber count.
    pub fn n_subscribers(&self) -> usize {
        self.subs.iter().filter(|s| s.is_some()).count()
    }

    /// Powered-on relay count.
    pub fn n_relays(&self) -> usize {
        self.ledger.n_relays()
    }

    /// Slots currently awaiting a deferred repair.
    pub fn backlog(&self) -> usize {
        self.deferred.len()
    }

    /// The accumulated report so far.
    pub fn report(&self) -> &ChurnReport {
        &self.report
    }

    /// Consumes the engine, yielding its report.
    pub fn into_report(self) -> ChurnReport {
        self.report
    }

    /// Read-only view of the live interference ledger.
    pub fn ledger(&self) -> &InterferenceLedger {
        &self.ledger
    }

    /// Full ledger audit on demand (the audit policy runs this
    /// automatically every [`ChurnConfig::audit_every`] events).
    pub fn audit(&self) -> SagResult<()> {
        self.ledger.audit().map_err(SagError::from)
    }

    /// Chaos hook: skews one accumulator of the live ledger (see
    /// [`InterferenceLedger::skew_accumulator`]). Test-only in spirit —
    /// the chaos suite uses it to prove the audit policy converts state
    /// corruption into [`SagError::LedgerDesync`].
    pub fn skew_ledger(&mut self, subscriber_slot: usize, delta: f64) {
        self.ledger.skew_accumulator(subscriber_slot, delta);
    }

    /// The live scenario over active subscribers (compact order =
    /// ascending slot). `None` when no subscriber is active.
    pub fn scenario(&self) -> Option<Scenario> {
        self.compact().map(|(sc, _)| sc)
    }

    /// The live placement as a [`CoverageSolution`] over the compact
    /// scenario of [`ChurnEngine::scenario`]. `None` while repairs are
    /// deferred (call [`ChurnEngine::flush`] first) or when no
    /// subscriber is active.
    pub fn solution(&self) -> Option<CoverageSolution> {
        let (_, slots) = self.compact()?;
        let ids: Vec<usize> = (0..self.relay_pos.len())
            .filter(|&i| self.relay_pos[i].is_some())
            .collect();
        let mut id_to_k = vec![usize::MAX; self.relay_pos.len()];
        for (k, &id) in ids.iter().enumerate() {
            id_to_k[id] = k;
        }
        let relays: Vec<Point> = ids.iter().filter_map(|&i| self.relay_pos[i]).collect();
        let mut assignment = Vec::with_capacity(slots.len());
        for &j in &slots {
            assignment.push(id_to_k[self.serving[j]?]);
        }
        Some(CoverageSolution { relays, assignment })
    }

    /// Applies one event under `budget` and repairs (or defers) the
    /// placement. See the module docs for the ladder semantics.
    ///
    /// This is a dump-on-failure boundary: a typed error leaving here
    /// emits exactly one post-mortem frame (inner layers never dump,
    /// so a propagating error cannot double-dump), and an event that
    /// lands on the `Deferred` rung emits a `churn_deferred` frame.
    pub fn apply_event(&mut self, event: ChurnEvent, budget: &Budget) -> SagResult<()> {
        self.apply_event_impl(event, budget).inspect_err(|e| {
            e.emit_post_mortem();
        })
    }

    fn apply_event_impl(&mut self, event: ChurnEvent, budget: &Budget) -> SagResult<()> {
        let _span = sag_obs::span("churn_event");
        let started = Instant::now();
        self.events_seen += 1;

        // 1. Validate, then mutate the slot tables and the ledger.
        let mut seeds: Vec<usize> = Vec::new();
        match event {
            ChurnEvent::SsArrive {
                position,
                distance_req,
            } => {
                self.check_point(position, "arrival")?;
                if !(distance_req.is_finite() && distance_req > 0.0) {
                    return Err(SagError::InvalidScenario(format!(
                        "churn: arrival with invalid distance_req {distance_req}"
                    )));
                }
                let j = self.ledger.add_subscriber(position);
                if j == self.subs.len() {
                    self.subs.push(None);
                    self.serving.push(None);
                }
                self.subs[j] = Some(Subscriber {
                    position,
                    distance_req,
                });
                self.serving[j] = None;
                seeds.push(j);
            }
            ChurnEvent::SsDepart { subscriber } => {
                self.check_active(subscriber, "depart")?;
                self.ledger.remove_subscriber(subscriber);
                self.subs[subscriber] = None;
                self.deferred.retain(|&s| s != subscriber);
                if let Some(r) = self.serving[subscriber].take() {
                    if !self.serving.contains(&Some(r)) {
                        self.ledger.remove_relay(r);
                        self.relay_pos[r] = None;
                    }
                }
                // Fast path: dropping a subscriber (and its orphaned
                // relay) only lowers interference, so no zone dirties.
            }
            ChurnEvent::SsMove { subscriber, to } => {
                self.check_active(subscriber, "move")?;
                self.check_point(to, "move destination")?;
                self.ledger.move_subscriber(subscriber, to);
                if let Some(sub) = self.subs[subscriber].as_mut() {
                    sub.position = to;
                }
                seeds.push(subscriber);
            }
        }

        // 2. Pick the ladder rung. A funded event also drains the
        // backlog; a starved one grows it.
        let starved = budget.check_interrupt().is_err();
        let (rung, dirty_zones) = if starved {
            self.push_deferred(&seeds);
            (RepairRung::Deferred, 0)
        } else {
            let mut all = std::mem::take(&mut self.deferred);
            for &s in &seeds {
                if !all.contains(&s) {
                    all.push(s);
                }
            }
            match self.repair(&all, budget, started) {
                Ok(outcome) => outcome,
                Err(SagError::BudgetExceeded { .. }) => {
                    self.push_deferred(&all);
                    (RepairRung::Deferred, 0)
                }
                Err(e) => {
                    // Re-queue so a later event or flush retries; the
                    // commit protocol keeps state consistent on error.
                    self.push_deferred(&all);
                    return Err(e);
                }
            }
        };

        // Deferral is the rung the SLO burn-rate analysis cares about:
        // leave a forensics frame with the backlog state.
        if rung == RepairRung::Deferred && sag_obs::armed() {
            let detail = format!(
                "repair deferred ({} backlog slots, {})",
                self.deferred.len(),
                if starved {
                    "budget starved before repair"
                } else {
                    "repair budget exhausted"
                }
            );
            sag_obs::post_mortem(&sag_obs::Dump {
                class: "churn_deferred",
                stage: Some("churn"),
                detail: &detail,
                ..sag_obs::Dump::default()
            });
        }

        // 3. Bounded degradation: a backlog at the cap forces a flush.
        if rung == RepairRung::Deferred && self.deferred.len() >= self.config.max_backlog {
            self.flush_impl()?;
        }

        // 4. Audit policy: catch accumulator drift as a typed error.
        if self.config.audit_every > 0 && self.events_seen.is_multiple_of(self.config.audit_every) {
            self.ledger.audit()?;
            self.report.audits += 1;
        }

        // 5. Record the event and its SLO metrics.
        let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.report.events.push(EventRecord {
            event,
            rung,
            latency_ns,
            dirty_zones,
            backlog: self.deferred.len(),
        });
        sag_obs::counter(
            match rung {
                RepairRung::Exact => "churn.rung_exact",
                RepairRung::Greedy => "churn.rung_greedy",
                RepairRung::Deferred => "churn.rung_deferred",
            },
            1,
        );
        sag_obs::observe("churn.repair_ns", latency_ns);
        sag_obs::gauge("churn.backlog", self.deferred.len() as f64);
        Ok(())
    }

    /// Batch-repairs the deferred backlog under an unlimited budget.
    /// Returns how many slots were drained. On error the backlog is
    /// restored so the flush can be retried.
    ///
    /// Like [`ChurnEngine::apply_event`], a dump-on-failure boundary.
    pub fn flush(&mut self) -> SagResult<usize> {
        self.flush_impl().inspect_err(|e| {
            e.emit_post_mortem();
        })
    }

    fn flush_impl(&mut self) -> SagResult<usize> {
        let seeds = std::mem::take(&mut self.deferred);
        if seeds.is_empty() {
            return Ok(0);
        }
        let _span = sag_obs::span("churn_flush");
        self.report.flushes += 1;
        sag_obs::counter("churn.flushes", 1);
        match self.repair(&seeds, &Budget::unlimited(), Instant::now()) {
            Ok(_) => {
                sag_obs::gauge("churn.backlog", 0.0);
                Ok(seeds.len())
            }
            Err(e) => {
                self.deferred = seeds;
                Err(e)
            }
        }
    }

    /// Drives a whole event stream: applies each event under its own
    /// budget (`per_event = None` means unlimited) and flushes any
    /// remaining backlog at the end.
    pub fn run(&mut self, events: &[ChurnEvent], per_event: Option<Duration>) -> SagResult<()> {
        for &event in events {
            let budget = match per_event {
                Some(d) => Budget::unlimited().with_deadline(d),
                None => Budget::unlimited(),
            };
            self.apply_event(event, &budget)?;
        }
        self.flush()?;
        Ok(())
    }

    /// Active slots in ascending order plus the compact live scenario.
    fn compact(&self) -> Option<(Scenario, Vec<usize>)> {
        let slots: Vec<usize> = (0..self.subs.len())
            .filter(|&j| self.subs[j].is_some())
            .collect();
        if slots.is_empty() {
            return None;
        }
        let sc = Scenario {
            field: self.template.field,
            subscribers: slots.iter().filter_map(|&j| self.subs[j]).collect(),
            base_stations: self.template.base_stations.clone(),
            params: self.template.params,
        };
        Some((sc, slots))
    }

    /// Re-solves every zone touched by `seeds` (transitively through
    /// serving relays) and commits the result. Solve happens before any
    /// mutation, so an error leaves the placement exactly as it was.
    fn repair(
        &mut self,
        seeds: &[usize],
        budget: &Budget,
        started: Instant,
    ) -> SagResult<(RepairRung, usize)> {
        // Stale seeds (departed while deferred) repair to nothing.
        let seeds: Vec<usize> = seeds
            .iter()
            .copied()
            .filter(|&j| self.subs.get(j).is_some_and(|s| s.is_some()))
            .collect();
        if seeds.is_empty() {
            return Ok((RepairRung::Exact, 0));
        }
        let _span = sag_obs::span("churn_repair");
        let Some((sc, slots)) = self.compact() else {
            return Ok((RepairRung::Exact, 0));
        };

        // Zone geometry of the *live* subscriber set.
        let zones = zone_partition(&sc);
        let mut compact_of = vec![usize::MAX; self.subs.len()];
        for (c, &j) in slots.iter().enumerate() {
            compact_of[j] = c;
        }
        let mut zone_of = vec![usize::MAX; slots.len()];
        for (zi, z) in zones.iter().enumerate() {
            for &c in z {
                zone_of[c] = zi;
            }
        }

        // Dirty set: the seeds' zones, closed over serving relays — a
        // relay with one foot in a dirty zone drags its other zones in
        // (this is what makes boundary hops and zone merges safe).
        let mut dirty = vec![false; zones.len()];
        for &j in &seeds {
            dirty[zone_of[compact_of[j]]] = true;
        }
        let mut relay_dirty = vec![false; self.relay_pos.len()];
        loop {
            for &j in &slots {
                if let Some(r) = self.serving[j] {
                    if dirty[zone_of[compact_of[j]]] {
                        relay_dirty[r] = true;
                    }
                }
            }
            let mut changed = false;
            for &j in &slots {
                if let Some(r) = self.serving[j] {
                    if relay_dirty[r] && !dirty[zone_of[compact_of[j]]] {
                        dirty[zone_of[compact_of[j]]] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let dirty_zone_ids: Vec<usize> = (0..zones.len()).filter(|&z| dirty[z]).collect();
        sag_obs::gauge("churn.dirty_zones", dirty_zone_ids.len() as f64);

        // Solve every dirty zone (pure; no state touched yet). Budget
        // exhaustion between zones surfaces as BudgetExceeded, which
        // the caller converts into a deferral.
        let cfg = self.config.samc;
        let solver = self.config.solver;
        let solved = engine::run_zones(
            "churn",
            dirty_zone_ids.len(),
            self.config.threads,
            |k| -> SagResult<(CoverageSolution, RepairRung)> {
                budget
                    .check_interrupt()
                    .map_err(|_| SagError::BudgetExceeded {
                        stage: "churn",
                        spent: Spent {
                            nodes: 0,
                            elapsed: started.elapsed(),
                        },
                    })?;
                let (zsc, _) = zone_scenario(&sc, &zones[dirty_zone_ids[k]]);
                // One ladder for both paths: the SAMC zone solver is
                // the exact rung; an infeasible answer falls to the
                // shared greedy rescue in the solver builder, so the
                // rung accounting here matches the steady-state
                // pipeline's by construction.
                let (sol, rescued) =
                    solver.primary_or_greedy_rescue(&zsc, || samc::solve_zone(&zsc, cfg))?;
                Ok((
                    sol,
                    if rescued {
                        RepairRung::Greedy
                    } else {
                        RepairRung::Exact
                    },
                ))
            },
        )?;

        // Commit: retire every dirty relay, install the zone answers.
        for (id, d) in relay_dirty.iter().enumerate() {
            if *d {
                self.ledger.remove_relay(id);
                self.relay_pos[id] = None;
            }
        }
        for &j in &slots {
            if dirty[zone_of[compact_of[j]]] {
                self.serving[j] = None;
            }
        }
        let mut rung = RepairRung::Exact;
        for (&zid, (sol, zone_rung)) in dirty_zone_ids.iter().zip(solved) {
            if zone_rung == RepairRung::Greedy {
                rung = RepairRung::Greedy;
            }
            let ids: Vec<usize> = sol
                .relays
                .iter()
                .map(|&p| {
                    let id = self.ledger.add_relay(p, 1.0);
                    if id == self.relay_pos.len() {
                        self.relay_pos.push(None);
                    }
                    self.relay_pos[id] = Some(p);
                    id
                })
                .collect();
            for (local, &c) in zones[zid].iter().enumerate() {
                self.serving[slots[c]] = Some(ids[sol.assignment[local]]);
            }
        }

        // Zones are interference-independent only up to N_max: new
        // relays can push a *clean* zone's subscriber under β. Re-check
        // everyone against the patched ledger and run one global
        // sliding-repair round if needed (same policy as the batch
        // merge in `engine::merge_zone_outcomes`).
        let beta = sc.params.link.beta();
        let violated = slots
            .iter()
            .any(|&j| self.serving[j].is_some_and(|r| self.ledger.snr(j, r) < beta - 1e-12));
        if violated {
            self.global_repair(&sc, &slots)?;
        }
        Ok((rung, dirty_zone_ids.len()))
    }

    /// One global RS Sliding Movement round over the live placement,
    /// committed back through `move_relay` diffs (relay ids stable).
    fn global_repair(&mut self, sc: &Scenario, slots: &[usize]) -> SagResult<()> {
        self.report.global_repairs += 1;
        sag_obs::counter("churn.global_repairs", 1);
        let ids: Vec<usize> = (0..self.relay_pos.len())
            .filter(|&i| self.relay_pos[i].is_some())
            .collect();
        let mut id_to_k = vec![usize::MAX; self.relay_pos.len()];
        for (k, &id) in ids.iter().enumerate() {
            id_to_k[id] = k;
        }
        let relays: Vec<Point> = ids.iter().filter_map(|&i| self.relay_pos[i]).collect();
        let mut assignment = Vec::with_capacity(slots.len());
        for &j in slots {
            match self.serving[j] {
                Some(r) => assignment.push(id_to_k[r]),
                None => {
                    return Err(SagError::Infeasible(
                        "churn: global repair with unserved subscriber".into(),
                    ))
                }
            }
        }
        match crate::sliding::rs_sliding_movement(sc, relays, assignment) {
            Some(sol) => {
                debug_assert_eq!(sol.relays.len(), ids.len());
                for (k, &id) in ids.iter().enumerate() {
                    self.ledger.move_relay(id, sol.relays[k]);
                    self.relay_pos[id] = Some(sol.relays[k]);
                }
                for (c, &j) in slots.iter().enumerate() {
                    self.serving[j] = Some(ids[sol.assignment[c]]);
                }
                Ok(())
            }
            None => Err(SagError::Infeasible(
                "churn: global SNR repair failed".into(),
            )),
        }
    }

    fn push_deferred(&mut self, seeds: &[usize]) {
        for &s in seeds {
            if !self.deferred.contains(&s) {
                self.deferred.push(s);
            }
        }
    }

    fn check_point(&self, p: Point, what: &str) -> SagResult<()> {
        if !p.is_finite() {
            return Err(SagError::InvalidScenario(format!(
                "churn: {what} at non-finite position"
            )));
        }
        if !self.template.field.contains(p) {
            return Err(SagError::InvalidScenario(format!(
                "churn: {what} outside the field"
            )));
        }
        Ok(())
    }

    fn check_active(&self, j: usize, what: &str) -> SagResult<()> {
        if !matches!(self.subs.get(j), Some(Some(_))) {
            return Err(SagError::InvalidScenario(format!(
                "churn: {what} of unknown subscriber slot {j}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::is_feasible;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::{Point, Rect};
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::new(
                LinkBudget::builder().snr_threshold(Db::new(-15.0)).build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    fn engine() -> ChurnEngine {
        let sc = scenario(vec![
            (0.0, 0.0, 35.0),
            (40.0, 10.0, 35.0),
            (-150.0, -150.0, 35.0),
        ]);
        ChurnEngine::new(&sc, ChurnConfig::default()).unwrap()
    }

    fn assert_live_feasible(eng: &ChurnEngine) {
        let sc = eng.scenario().expect("live scenario");
        let sol = eng.solution().expect("fully served placement");
        assert!(is_feasible(&sc, &sol), "live placement infeasible");
        eng.audit().unwrap();
    }

    #[test]
    fn arrival_is_repaired_exactly_and_stays_feasible() {
        let mut eng = engine();
        let before = eng.n_subscribers();
        eng.apply_event(
            ChurnEvent::SsArrive {
                position: Point::new(120.0, -40.0),
                distance_req: 35.0,
            },
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(eng.n_subscribers(), before + 1);
        assert_eq!(eng.backlog(), 0);
        assert_eq!(eng.report().events.last().unwrap().rung, RepairRung::Exact);
        assert_live_feasible(&eng);
    }

    #[test]
    fn depart_is_a_fast_path_that_prunes_orphaned_relays() {
        let mut eng = engine();
        let relays_before = eng.n_relays();
        // Slot 2 is the isolated far-corner subscriber: its relay
        // serves nobody else and must be powered off on departure.
        eng.apply_event(ChurnEvent::SsDepart { subscriber: 2 }, &Budget::unlimited())
            .unwrap();
        assert_eq!(eng.n_subscribers(), 2);
        assert!(eng.n_relays() < relays_before, "orphaned relay not pruned");
        let rec = *eng.report().events.last().unwrap();
        assert_eq!(rec.rung, RepairRung::Exact);
        assert_eq!(rec.dirty_zones, 0, "departures must not re-solve zones");
        assert_live_feasible(&eng);
    }

    #[test]
    fn move_across_the_field_is_repaired() {
        let mut eng = engine();
        eng.apply_event(
            ChurnEvent::SsMove {
                subscriber: 0,
                to: Point::new(180.0, 180.0),
            },
            &Budget::unlimited(),
        )
        .unwrap();
        assert_live_feasible(&eng);
    }

    #[test]
    fn starved_budget_defers_and_flush_drains() {
        let mut eng = engine();
        let expired = Budget::unlimited().with_deadline(Duration::ZERO);
        eng.apply_event(
            ChurnEvent::SsArrive {
                position: Point::new(100.0, 100.0),
                distance_req: 35.0,
            },
            &expired,
        )
        .unwrap();
        assert_eq!(
            eng.report().events.last().unwrap().rung,
            RepairRung::Deferred
        );
        assert_eq!(eng.backlog(), 1);
        assert!(
            eng.solution().is_none(),
            "unserved arrival must gate solution()"
        );
        assert_eq!(eng.flush().unwrap(), 1);
        assert_eq!(eng.backlog(), 0);
        assert_live_feasible(&eng);
    }

    #[test]
    fn backlog_at_cap_forces_a_flush() {
        let sc = scenario(vec![(0.0, 0.0, 35.0)]);
        let mut eng = ChurnEngine::new(
            &sc,
            ChurnConfig {
                max_backlog: 2,
                ..ChurnConfig::default()
            },
        )
        .unwrap();
        let expired = Budget::unlimited().with_deadline(Duration::ZERO);
        for i in 0..5 {
            eng.apply_event(
                ChurnEvent::SsArrive {
                    position: Point::new(30.0 * f64::from(i), -60.0),
                    distance_req: 35.0,
                },
                &expired,
            )
            .unwrap();
            assert!(
                eng.backlog() < 2,
                "backlog must stay below the cap after every event"
            );
        }
        assert!(eng.report().flushes >= 2);
        eng.flush().unwrap();
        assert_live_feasible(&eng);
    }

    #[test]
    fn invalid_events_are_typed_errors() {
        let mut eng = engine();
        let b = Budget::unlimited();
        for event in [
            ChurnEvent::SsArrive {
                position: Point::new(f64::NAN, 0.0),
                distance_req: 35.0,
            },
            ChurnEvent::SsArrive {
                position: Point::new(9e9, 0.0),
                distance_req: 35.0,
            },
            ChurnEvent::SsArrive {
                position: Point::new(0.0, 0.0),
                distance_req: -1.0,
            },
            ChurnEvent::SsDepart { subscriber: 99 },
            ChurnEvent::SsMove {
                subscriber: 99,
                to: Point::new(0.0, 0.0),
            },
        ] {
            match eng.apply_event(event, &b) {
                Err(SagError::InvalidScenario(_)) => {}
                other => panic!("{event:?} must be rejected, got {other:?}"),
            }
        }
        // Rejected events leave the placement untouched.
        assert_live_feasible(&eng);
    }

    #[test]
    fn departed_slot_rejects_further_events_until_reused() {
        let mut eng = engine();
        let b = Budget::unlimited();
        eng.apply_event(ChurnEvent::SsDepart { subscriber: 1 }, &b)
            .unwrap();
        let err = eng
            .apply_event(
                ChurnEvent::SsMove {
                    subscriber: 1,
                    to: Point::new(5.0, 5.0),
                },
                &b,
            )
            .unwrap_err();
        assert!(matches!(err, SagError::InvalidScenario(_)));
    }

    #[test]
    fn skewed_ledger_surfaces_a_typed_desync() {
        let mut eng = engine();
        // Skew the isolated far-corner subscriber's accumulator: the
        // depart below repairs nothing near it, so no incremental
        // refresh can mask the corruption before the audit runs. The
        // delta dwarfs any received power at this field scale.
        eng.skew_ledger(2, 1e12);
        let err = eng
            .apply_event(ChurnEvent::SsDepart { subscriber: 1 }, &Budget::unlimited())
            .unwrap_err();
        assert!(
            matches!(err, SagError::LedgerDesync(_)),
            "expected LedgerDesync, got {err:?}"
        );
    }

    #[test]
    fn same_stream_is_deterministic() {
        let events = vec![
            ChurnEvent::SsArrive {
                position: Point::new(110.0, -30.0),
                distance_req: 35.0,
            },
            ChurnEvent::SsMove {
                subscriber: 0,
                to: Point::new(-120.0, 80.0),
            },
            ChurnEvent::SsDepart { subscriber: 1 },
            ChurnEvent::SsArrive {
                position: Point::new(-100.0, -90.0),
                distance_req: 35.0,
            },
        ];
        let mut a = engine();
        let mut b = engine();
        a.run(&events, None).unwrap();
        b.run(&events, None).unwrap();
        let ra: Vec<_> = a.report().events.iter().map(|e| e.rung).collect();
        let rb: Vec<_> = b.report().events.iter().map(|e| e.rung).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.solution().unwrap().relays, b.solution().unwrap().relays);
        assert_live_feasible(&a);
    }

    #[test]
    fn report_percentiles_are_nearest_rank() {
        let mut report = ChurnReport::default();
        for ns in [10u64, 20, 30, 40] {
            report.events.push(EventRecord {
                event: ChurnEvent::SsDepart { subscriber: 0 },
                rung: RepairRung::Exact,
                latency_ns: ns,
                dirty_zones: 0,
                backlog: 0,
            });
        }
        assert_eq!(report.p50_ns(), 20);
        assert_eq!(report.p99_ns(), 40);
        assert_eq!(report.latency_percentile_ns(100.0), 40);
        assert_eq!(ChurnReport::default().p99_ns(), 0);
    }
}
