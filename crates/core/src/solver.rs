//! Pluggable lower-tier coverage solver backends.
//!
//! The exact ILPQC formulation is only tractable on small zones;
//! everywhere else the pipeline used to *fall* down the degradation
//! ladder (exact → greedy) on budget exhaustion. This module turns that
//! failure path into a first-class scheduling policy, in the spirit of
//! multi-backend LP fronts: a [`CoverageSolver`] trait with four
//! in-tree backends, a [`SolverBuilder`] that *chooses* a backend per
//! zone, and a deterministic portfolio mode that races two backends
//! under the shared cooperative budget.
//!
//! # Backends
//!
//! * [`ExactIlp`] — the warm-started ILPQC branch-and-bound
//!   ([`crate::ilpqc`]); optimal when it finishes inside its budget.
//! * [`LpRound`] — solve the set-cover LP relaxation with the sparse
//!   revised simplex (the same relaxation the B&B prunes with), round
//!   candidates with ≥ 0.5 mass, patch uncovered subscribers with their
//!   highest-mass eligible candidate, then run the shared SNR
//!   repair + prune pass. One LP solve instead of a tree search.
//! * [`LocalSearch`] — greedy start, then deterministic drop and
//!   2-for-1 swap passes that shrink the cover, then SNR repair.
//! * [`Greedy`] — the classic greedy set cover ([`crate::fallback`]);
//!   the last rung, deliberately budget-oblivious.
//!
//! # Selection and determinism
//!
//! [`SelectionPolicy`] picks by candidate-set size and the *static*
//! properties of the remaining [`Budget`] (node-cap size, not wall
//! clock) — wall-clock remaining time differs across thread counts and
//! would break the byte-identical `threads = 1 ≡ threads = N` contract
//! of [`crate::engine`].
//!
//! [`SolverChoice::Portfolio`] races two backends: the higher-ranked
//! arm (lower [`SolverBackend::rank`]) runs on the calling thread under
//! the real budget; the other arm runs on a scoped thread under its own
//! budget slice (same deadline and node cap, its own cancel flag, **no
//! shared node pool** — a loser charging the winner's pool would
//! perturb the winner's search between runs). The committed answer is
//! decided by *rank*, never by wall-clock arrival: if the primary arm
//! returns a feasible answer it wins regardless of timing, so the
//! result is byte-identical at any thread count and across replays. A
//! loser that panics or hangs past its slice is counted
//! (`portfolio.loser_panic` / `portfolio.loser_cancelled`) and
//! discarded — never allowed to corrupt the committed answer.
//!
//! The process-wide default choice comes from the `SAG_SOLVER`
//! environment variable (read once): `adaptive` (default), a backend
//! name (`exact`, `lp_round`, `local_search`, `greedy`), `portfolio`
//! (exact + lp_round), or `portfolio:<a>+<b>`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sag_geom::Point;
use sag_lp::{Budget, Spent};

use crate::coverage::CoverageSolution;
use crate::error::{SagError, SagResult};
use crate::fallback;
use crate::ilpqc::{build_cover_lp, solve_ilpqc, IlpqcConfig};
use crate::model::Scenario;

/// Identity of a coverage backend (the key selection and reporting
/// speak in; the trait objects themselves carry tuning knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverBackend {
    /// Exact ILPQC branch-and-bound.
    ExactIlp,
    /// LP-relaxation rounding with feasibility repair.
    LpRound,
    /// Swap/drop local search from a greedy start.
    LocalSearch,
    /// Greedy set cover.
    Greedy,
}

impl SolverBackend {
    /// Every backend, strongest first.
    pub const ALL: [SolverBackend; 4] = [
        SolverBackend::ExactIlp,
        SolverBackend::LpRound,
        SolverBackend::LocalSearch,
        SolverBackend::Greedy,
    ];

    /// Fixed arbitration rank: lower is stronger. Portfolio races
    /// commit by this rank — never by wall-clock arrival — so racing
    /// stays deterministic.
    pub fn rank(self) -> usize {
        match self {
            SolverBackend::ExactIlp => 0,
            SolverBackend::LpRound => 1,
            SolverBackend::LocalSearch => 2,
            SolverBackend::Greedy => 3,
        }
    }

    /// Stable lowercase name (env values, report fields, JSON).
    pub fn name(self) -> &'static str {
        match self {
            SolverBackend::ExactIlp => "exact",
            SolverBackend::LpRound => "lp_round",
            SolverBackend::LocalSearch => "local_search",
            SolverBackend::Greedy => "greedy",
        }
    }

    /// Parses a backend name as accepted by `SAG_SOLVER`.
    pub fn parse(s: &str) -> Option<SolverBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact" | "exact_ilp" | "ilpqc" => Some(SolverBackend::ExactIlp),
            "lp_round" | "lpround" => Some(SolverBackend::LpRound),
            "local_search" | "localsearch" => Some(SolverBackend::LocalSearch),
            "greedy" => Some(SolverBackend::Greedy),
            _ => None,
        }
    }

    /// The `solver.selected.*` counter bumped when this backend's
    /// answer is committed.
    fn selected_counter(self) -> &'static str {
        match self {
            SolverBackend::ExactIlp => "solver.selected.exact",
            SolverBackend::LpRound => "solver.selected.lp_round",
            SolverBackend::LocalSearch => "solver.selected.local_search",
            SolverBackend::Greedy => "solver.selected.greedy",
        }
    }
}

/// Why a backend was chosen for a zone (recorded per zone in
/// [`crate::sag::SagReport::zone_solvers`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionReason {
    /// A fixed [`SolverChoice::Fixed`] (config or `SAG_SOLVER`) forced
    /// the backend.
    Forced,
    /// Candidate set small enough for the exact search.
    SmallZone,
    /// Mid-size candidate set: LP rounding beats tree search.
    MediumZone,
    /// Large candidate set: even one LP solve is dear; local search.
    LargeZone,
    /// Candidate set past every threshold: greedy only.
    HugeZone,
    /// The budget's node cap is too small for any search to finish;
    /// skip straight to the budget-oblivious greedy rung.
    BudgetCapped,
    /// Won a portfolio race under fixed rank arbitration.
    PortfolioRank,
    /// The selected backend exhausted its budget and the ladder
    /// degraded to greedy.
    FallbackRung,
}

impl SelectionReason {
    /// Stable lowercase name (report fields, JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            SelectionReason::Forced => "forced",
            SelectionReason::SmallZone => "small_zone",
            SelectionReason::MediumZone => "medium_zone",
            SelectionReason::LargeZone => "large_zone",
            SelectionReason::HugeZone => "huge_zone",
            SelectionReason::BudgetCapped => "budget_capped",
            SelectionReason::PortfolioRank => "portfolio_rank",
            SelectionReason::FallbackRung => "fallback_rung",
        }
    }
}

/// A backend's raw answer, before the builder records selection.
#[derive(Debug, Clone)]
pub struct BackendAnswer {
    /// The placement found.
    pub solution: CoverageSolution,
    /// `true` only when the backend proved optimality (exact search
    /// that finished inside its budget).
    pub optimal: bool,
    /// Resources the solve consumed.
    pub spent: Spent,
}

/// The builder's committed answer for one zone: the placement plus the
/// provenance the report and the bench emitters record.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The placement.
    pub solution: CoverageSolution,
    /// Backend whose answer was committed.
    pub backend: SolverBackend,
    /// Why that backend answered.
    pub reason: SelectionReason,
    /// Whether the answer carries an optimality certificate.
    pub optimal: bool,
    /// Resources consumed (nodes are summed across ladder rungs).
    pub spent: Spent,
}

/// A lower-tier coverage solver over a finite candidate set.
///
/// Implementations must be pure functions of `(scenario, candidates)`
/// up to budget truncation: given the same inputs and an un-exhausted
/// budget they must return the same answer, because zone workers rely
/// on it for the byte-identical thread-count contract.
pub trait CoverageSolver {
    /// Which backend this is.
    fn backend(&self) -> SolverBackend;

    /// Solves coverage for `scenario` over `candidates`.
    ///
    /// # Errors
    /// [`SagError::Infeasible`] when no feasible cover exists over the
    /// candidates; [`SagError::BudgetExceeded`] when the budget stops
    /// the solve before any feasible answer.
    fn solve(
        &self,
        scenario: &Scenario,
        candidates: &[Point],
        budget: &Budget,
    ) -> SagResult<BackendAnswer>;
}

/// The exact ILPQC branch-and-bound backend (wraps
/// [`crate::ilpqc::solve_ilpqc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactIlp {
    /// Node budget for the search (see [`IlpqcConfig::node_limit`]).
    pub node_limit: usize,
    /// Candidate-count threshold for per-node LP bounds (see
    /// [`IlpqcConfig::lp_bound_min_cands`]).
    pub lp_bound_min_cands: usize,
}

impl Default for ExactIlp {
    fn default() -> Self {
        let d = IlpqcConfig::default();
        ExactIlp {
            node_limit: d.node_limit,
            lp_bound_min_cands: d.lp_bound_min_cands,
        }
    }
}

impl CoverageSolver for ExactIlp {
    fn backend(&self) -> SolverBackend {
        SolverBackend::ExactIlp
    }

    fn solve(
        &self,
        scenario: &Scenario,
        candidates: &[Point],
        budget: &Budget,
    ) -> SagResult<BackendAnswer> {
        let out = solve_ilpqc(
            scenario,
            candidates,
            IlpqcConfig {
                node_limit: self.node_limit,
                budget: budget.clone(),
                lp_bound_min_cands: self.lp_bound_min_cands,
            },
        )?;
        Ok(BackendAnswer {
            solution: out.solution,
            optimal: out.optimal,
            spent: out.spent,
        })
    }
}

/// The LP-rounding backend: one sparse-simplex solve of the set-cover
/// relaxation, deterministic rounding at mass ≥ 0.5, a cover-repair
/// pass for subscribers the rounding dropped, then the shared SNR
/// repair + prune. No optimality certificate, but one LP instead of a
/// search tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LpRound;

impl CoverageSolver for LpRound {
    fn backend(&self) -> SolverBackend {
        SolverBackend::LpRound
    }

    fn solve(
        &self,
        scenario: &Scenario,
        candidates: &[Point],
        budget: &Budget,
    ) -> SagResult<BackendAnswer> {
        let _stage = sag_obs::span("lp_round");
        let started = Instant::now();
        let eligible = fallback::eligibility(scenario, candidates, "lp_round")?;
        let mut lp = build_cover_lp(candidates.len(), &eligible);
        lp.set_budget(budget.clone());
        let sol = lp.solve().map_err(|e| {
            if e == sag_lp::LpError::Cancelled {
                SagError::BudgetExceeded {
                    stage: "lp_round",
                    spent: Spent {
                        nodes: 0,
                        elapsed: started.elapsed(),
                    },
                }
            } else {
                SagError::Lp(e)
            }
        })?;

        // Round: keep every candidate carrying at least half a unit of
        // LP mass. Threshold rounding of a ≥1-row cover LP can leave a
        // subscriber whose mass is spread thin uncovered; the repair
        // pass below patches exactly those.
        let mut selected: Vec<usize> = (0..candidates.len()).filter(|&c| sol.x[c] >= 0.5).collect();
        for e in &eligible {
            if e.iter().any(|c| selected.binary_search(c).is_ok()) {
                continue;
            }
            // Uncovered after rounding: take its highest-mass eligible
            // candidate, first-max-wins so ties break to the lower
            // index deterministically.
            let mut best = e[0];
            for &c in &e[1..] {
                if sol.x[c] > sol.x[best] + 1e-12 {
                    best = c;
                }
            }
            let pos = match selected.binary_search(&best) {
                Ok(p) | Err(p) => p,
            };
            selected.insert(pos, best);
        }

        let solution =
            fallback::repair_and_prune(scenario, candidates, &eligible, selected, "lp_round")?;
        Ok(BackendAnswer {
            solution,
            optimal: false,
            spent: Spent {
                nodes: 0,
                elapsed: started.elapsed(),
            },
        })
    }
}

/// The local-search backend: greedy start, then deterministic
/// improvement passes — drop redundant relays, replace relay *pairs*
/// whose joint duty a single unselected candidate can absorb — up to
/// [`LocalSearch::max_rounds`] rounds, then the shared SNR
/// repair + prune. Iteration order is fixed (ascending indices), so the
/// result is a pure function of the inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearch {
    /// Improvement rounds before settling (each round is one drop pass
    /// plus one swap pass; the loop exits early when a round finds
    /// nothing).
    pub max_rounds: usize,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch { max_rounds: 4 }
    }
}

impl LocalSearch {
    /// Removes every selected candidate whose subscribers are all
    /// covered by another selected candidate. Returns `true` when
    /// anything was dropped.
    fn drop_pass(eligible: &[Vec<usize>], selected: &mut Vec<usize>) -> bool {
        let mut counts = vec![0usize; eligible.len()];
        for (j, e) in eligible.iter().enumerate() {
            counts[j] = e
                .iter()
                .filter(|c| selected.binary_search(c).is_ok())
                .count();
        }
        let mut dropped = false;
        let mut i = 0;
        while i < selected.len() {
            let c = selected[i];
            let redundant = eligible
                .iter()
                .enumerate()
                .all(|(j, e)| e.binary_search(&c).is_err() || counts[j] >= 2);
            if redundant {
                for (j, e) in eligible.iter().enumerate() {
                    if e.binary_search(&c).is_ok() {
                        counts[j] -= 1;
                    }
                }
                selected.remove(i);
                dropped = true;
            } else {
                i += 1;
            }
        }
        dropped
    }

    /// One 2-for-1 swap: find a selected pair whose sole subscribers
    /// can all be served by a single unselected candidate (or by the
    /// rest of the selection) and apply the first such move in
    /// ascending index order. Returns `true` when a move was applied.
    fn swap_pass(eligible: &[Vec<usize>], n_cands: usize, selected: &mut Vec<usize>) -> bool {
        for ai in 0..selected.len() {
            for bi in ai + 1..selected.len() {
                let (a, b) = (selected[ai], selected[bi]);
                // Subscribers whose only selected coverers are a and/or b.
                let must: Vec<usize> = eligible
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| {
                        (e.binary_search(&a).is_ok() || e.binary_search(&b).is_ok())
                            && !e
                                .iter()
                                .any(|&c| c != a && c != b && selected.binary_search(&c).is_ok())
                    })
                    .map(|(j, _)| j)
                    .collect();
                if must.is_empty() {
                    // Jointly redundant pair: drop both outright.
                    selected.retain(|&s| s != a && s != b);
                    return true;
                }
                let replacement = (0..n_cands).find(|&c| {
                    selected.binary_search(&c).is_err()
                        && must.iter().all(|&j| eligible[j].binary_search(&c).is_ok())
                });
                if let Some(c) = replacement {
                    selected.retain(|&s| s != a && s != b);
                    let pos = match selected.binary_search(&c) {
                        Ok(p) | Err(p) => p,
                    };
                    selected.insert(pos, c);
                    return true;
                }
            }
        }
        false
    }
}

impl CoverageSolver for LocalSearch {
    fn backend(&self) -> SolverBackend {
        SolverBackend::LocalSearch
    }

    fn solve(
        &self,
        scenario: &Scenario,
        candidates: &[Point],
        budget: &Budget,
    ) -> SagResult<BackendAnswer> {
        let _stage = sag_obs::span("local_search");
        let started = Instant::now();
        let interrupted = || SagError::BudgetExceeded {
            stage: "local_search",
            spent: Spent {
                nodes: 0,
                elapsed: started.elapsed(),
            },
        };
        let eligible = fallback::eligibility(scenario, candidates, "local_search")?;
        let mut selected = fallback::greedy_select(&eligible, candidates.len(), "local_search")?;
        for _ in 0..self.max_rounds {
            budget.check_interrupt().map_err(|_| interrupted())?;
            let mut improved = LocalSearch::drop_pass(&eligible, &mut selected);
            while LocalSearch::swap_pass(&eligible, candidates.len(), &mut selected) {
                improved = true;
                budget.check_interrupt().map_err(|_| interrupted())?;
            }
            if !improved {
                break;
            }
        }
        let solution =
            fallback::repair_and_prune(scenario, candidates, &eligible, selected, "local_search")?;
        Ok(BackendAnswer {
            solution,
            optimal: false,
            spent: Spent {
                nodes: 0,
                elapsed: started.elapsed(),
            },
        })
    }
}

/// The greedy set-cover backend (wraps
/// [`crate::fallback::greedy_cover`]); the budget-oblivious last rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Greedy;

impl CoverageSolver for Greedy {
    fn backend(&self) -> SolverBackend {
        SolverBackend::Greedy
    }

    fn solve(
        &self,
        scenario: &Scenario,
        candidates: &[Point],
        _budget: &Budget,
    ) -> SagResult<BackendAnswer> {
        let started = Instant::now();
        let solution = fallback::greedy_cover(scenario, candidates)?;
        Ok(BackendAnswer {
            solution,
            optimal: false,
            spent: Spent {
                nodes: 0,
                elapsed: started.elapsed(),
            },
        })
    }
}

/// Dispatches a backend identity to its default-tuned implementation.
fn run_backend(
    backend: SolverBackend,
    scenario: &Scenario,
    candidates: &[Point],
    budget: &Budget,
) -> SagResult<BackendAnswer> {
    match backend {
        SolverBackend::ExactIlp => ExactIlp::default().solve(scenario, candidates, budget),
        SolverBackend::LpRound => LpRound.solve(scenario, candidates, budget),
        SolverBackend::LocalSearch => LocalSearch::default().solve(scenario, candidates, budget),
        SolverBackend::Greedy => Greedy.solve(scenario, candidates, budget),
    }
}

/// How the builder picks a backend for a zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Per-zone adaptive selection via [`SelectionPolicy`] (default).
    #[default]
    Adaptive,
    /// Always this backend.
    Fixed(SolverBackend),
    /// Race two backends; commit by fixed rank arbitration.
    Portfolio(SolverBackend, SolverBackend),
}

impl SolverChoice {
    /// Parses a `SAG_SOLVER` value; `None` for unrecognised input (the
    /// caller then keeps its default).
    pub fn parse(s: &str) -> Option<SolverChoice> {
        let v = s.trim().to_ascii_lowercase();
        if v == "adaptive" {
            return Some(SolverChoice::Adaptive);
        }
        if v == "portfolio" {
            return Some(SolverChoice::Portfolio(
                SolverBackend::ExactIlp,
                SolverBackend::LpRound,
            ));
        }
        if let Some(arms) = v.strip_prefix("portfolio:") {
            let (a, b) = arms.split_once('+')?;
            return Some(SolverChoice::Portfolio(
                SolverBackend::parse(a)?,
                SolverBackend::parse(b)?,
            ));
        }
        SolverBackend::parse(&v).map(SolverChoice::Fixed)
    }

    /// Stable label for reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            SolverChoice::Adaptive => "adaptive",
            SolverChoice::Fixed(b) => b.name(),
            SolverChoice::Portfolio(..) => "portfolio",
        }
    }
}

/// Thresholds for adaptive per-zone selection. Everything here is a
/// *static* property of the zone or the budget — never wall-clock
/// remaining time, which would differ across thread counts and break
/// the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionPolicy {
    /// Candidate count up to which the exact search runs. IAC yields
    /// up to `n + 2·C(n,2)` candidates per cluster, so this is roughly
    /// "clusters of ≤ 7 subscribers stay exact".
    pub exact_max_cands: usize,
    /// Candidate count up to which LP rounding runs.
    pub lp_round_max_cands: usize,
    /// Candidate count up to which local search runs; beyond it, greedy.
    pub local_search_max_cands: usize,
    /// Node caps below this make an exact search pointless (it could
    /// not even enumerate one branching level); go straight to greedy.
    pub exact_min_node_budget: usize,
}

impl Default for SelectionPolicy {
    fn default() -> Self {
        SelectionPolicy {
            exact_max_cands: 48,
            lp_round_max_cands: 192,
            local_search_max_cands: 512,
            exact_min_node_budget: 64,
        }
    }
}

impl SelectionPolicy {
    /// Picks a backend for a zone with `n_cands` candidates under
    /// `budget`. Deterministic in `(n_cands, budget.node_limit())`.
    pub fn select(&self, n_cands: usize, budget: &Budget) -> (SolverBackend, SelectionReason) {
        if budget
            .node_limit()
            .is_some_and(|cap| cap < self.exact_min_node_budget)
        {
            return (SolverBackend::Greedy, SelectionReason::BudgetCapped);
        }
        if n_cands <= self.exact_max_cands {
            (SolverBackend::ExactIlp, SelectionReason::SmallZone)
        } else if n_cands <= self.lp_round_max_cands {
            (SolverBackend::LpRound, SelectionReason::MediumZone)
        } else if n_cands <= self.local_search_max_cands {
            (SolverBackend::LocalSearch, SelectionReason::LargeZone)
        } else {
            (SolverBackend::Greedy, SelectionReason::HugeZone)
        }
    }
}

/// Fault injected into the *losing* arm of a portfolio race (chaos
/// testing). Test-only in spirit, like
/// [`crate::engine::inject_zone_worker_panic`]: it exists so the chaos
/// suite can verify that a dying or wedged loser never corrupts the
/// winner's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoserFault {
    /// The losing arm panics instead of solving.
    Panic,
    /// The losing arm wedges until its budget slice cancels it (with a
    /// hard internal cap so a test can never deadlock).
    Hang,
}

/// Per-zone backend selection front: owns the [`SolverChoice`], the
/// [`SelectionPolicy`], and the single copy of the degradation ladder
/// (budget-exhausted → greedy) that both the steady-state pipeline
/// ([`crate::sag`]) and the churn engine ([`crate::churn`]) route
/// through, so rung accounting cannot drift between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverBuilder {
    /// How backends are chosen (default: `SAG_SOLVER`, else adaptive).
    pub choice: SolverChoice,
    /// Thresholds for [`SolverChoice::Adaptive`].
    pub policy: SelectionPolicy,
    /// Whether a budget-exhausted backend may degrade to greedy (the
    /// `IlpqcWithGreedyFallback` behaviour); strict mode clears it.
    pub allow_fallback: bool,
    loser_fault: Option<LoserFault>,
}

/// The `SAG_SOLVER` process default, read once.
fn env_choice() -> Option<SolverChoice> {
    static CHOICE: OnceLock<Option<SolverChoice>> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        std::env::var("SAG_SOLVER")
            .ok()
            .and_then(|v| SolverChoice::parse(&v))
    })
}

impl Default for SolverBuilder {
    /// The process default: `SAG_SOLVER` when set and parsable,
    /// adaptive selection otherwise.
    fn default() -> Self {
        SolverBuilder {
            choice: env_choice().unwrap_or_default(),
            policy: SelectionPolicy::default(),
            allow_fallback: true,
            loser_fault: None,
        }
    }
}

impl SolverBuilder {
    /// Adaptive per-zone selection (ignores `SAG_SOLVER`).
    pub fn adaptive() -> Self {
        SolverBuilder {
            choice: SolverChoice::Adaptive,
            ..Self::env_free()
        }
    }

    /// Always `backend` (ignores `SAG_SOLVER`).
    pub fn fixed(backend: SolverBackend) -> Self {
        SolverBuilder {
            choice: SolverChoice::Fixed(backend),
            ..Self::env_free()
        }
    }

    /// Race `a` against `b` (ignores `SAG_SOLVER`).
    pub fn portfolio(a: SolverBackend, b: SolverBackend) -> Self {
        SolverBuilder {
            choice: SolverChoice::Portfolio(a, b),
            ..Self::env_free()
        }
    }

    /// A builder with library defaults and no env influence — the base
    /// for the explicit constructors, so tests pinning a choice behave
    /// the same under any `SAG_SOLVER`.
    fn env_free() -> Self {
        SolverBuilder {
            choice: SolverChoice::Adaptive,
            policy: SelectionPolicy::default(),
            allow_fallback: true,
            loser_fault: None,
        }
    }

    /// Strict-exact variant: forces the exact backend and disables the
    /// greedy rescue, so budget exhaustion surfaces as
    /// [`SagError::BudgetExceeded`] (the `IlpqcStrict` contract).
    pub fn strict_exact(self) -> Self {
        SolverBuilder {
            choice: SolverChoice::Fixed(SolverBackend::ExactIlp),
            allow_fallback: false,
            ..self
        }
    }

    /// Arms a chaos fault in the losing arm of every portfolio race.
    pub fn with_loser_fault(mut self, fault: LoserFault) -> Self {
        self.loser_fault = Some(fault);
        self
    }

    /// `true` when the process default came from `SAG_SOLVER`.
    pub fn choice_from_env() -> bool {
        env_choice().is_some()
    }

    /// Solves one zone: select (or race) a backend, run the ladder,
    /// commit the answer with its provenance.
    ///
    /// # Errors
    /// Whatever the committed backend surfaces; with
    /// [`SolverBuilder::allow_fallback`] cleared, budget exhaustion
    /// propagates instead of degrading to greedy.
    pub fn solve_zone(
        &self,
        scenario: &Scenario,
        candidates: &[Point],
        budget: &Budget,
    ) -> SagResult<SolveOutcome> {
        match self.choice {
            SolverChoice::Fixed(b) => {
                self.run_ladder(b, SelectionReason::Forced, scenario, candidates, budget)
            }
            SolverChoice::Adaptive => {
                let (b, reason) = self.policy.select(candidates.len(), budget);
                self.run_ladder(b, reason, scenario, candidates, budget)
            }
            SolverChoice::Portfolio(a, b) => self.race(a, b, scenario, candidates, budget),
        }
    }

    /// Runs a churn-style primary solve with the shared greedy rescue:
    /// `primary` (the zone's preferred exact path, e.g. the SAMC zone
    /// solver) answers when it can; an [`SagError::Infeasible`] answer
    /// falls to the greedy backend over the zone's IAC candidates —
    /// the same rung, counter, and accounting as the steady-state
    /// ladder. Returns the solution and whether the rescue ran.
    ///
    /// # Errors
    /// Non-`Infeasible` primary errors propagate; so does `Infeasible`
    /// when [`SolverBuilder::allow_fallback`] is cleared or the rescue
    /// itself fails.
    pub fn primary_or_greedy_rescue<F>(
        &self,
        zsc: &Scenario,
        primary: F,
    ) -> SagResult<(CoverageSolution, bool)>
    where
        F: FnOnce() -> SagResult<CoverageSolution>,
    {
        match primary() {
            Ok(sol) => Ok((sol, false)),
            Err(SagError::Infeasible(_)) if self.allow_fallback => {
                let cands = crate::candidates::iac_candidates(zsc);
                let ans = run_backend(SolverBackend::Greedy, zsc, &cands, &Budget::unlimited())?;
                let out = commit(ans, SolverBackend::Greedy, SelectionReason::FallbackRung);
                Ok((out.solution, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Runs `backend`, degrading to greedy on budget exhaustion when
    /// the ladder is enabled.
    fn run_ladder(
        &self,
        backend: SolverBackend,
        reason: SelectionReason,
        scenario: &Scenario,
        candidates: &[Point],
        budget: &Budget,
    ) -> SagResult<SolveOutcome> {
        match run_backend(backend, scenario, candidates, budget) {
            Ok(ans) => Ok(commit(ans, backend, reason)),
            Err(SagError::BudgetExceeded { spent, .. })
                if self.allow_fallback && backend != SolverBackend::Greedy =>
            {
                // Last rung: the greedy cover does no LP work and
                // ignores the exhausted budget. The abandoned search's
                // nodes stay billed to the zone.
                let ans = run_backend(SolverBackend::Greedy, scenario, candidates, budget)?;
                let mut out = commit(ans, SolverBackend::Greedy, SelectionReason::FallbackRung);
                out.spent.nodes += spent.nodes;
                Ok(out)
            }
            Err(e) => Err(e),
        }
    }

    /// Races two backends and commits by fixed rank arbitration.
    ///
    /// The stronger-ranked arm (the *primary*) runs on the calling
    /// thread under the real budget; the other arm runs on a scoped
    /// thread under a derived slice: same absolute deadline and node
    /// cap, its own cancel flag (raised the moment the primary
    /// answers), and no shared node pool — so nothing the loser does
    /// can perturb the primary's search or the committed answer. The
    /// primary's feasible answer always wins; the secondary's answer is
    /// committed only when the primary *fails*, which is itself a
    /// deterministic function of the inputs and budget.
    fn race(
        &self,
        a: SolverBackend,
        b: SolverBackend,
        scenario: &Scenario,
        candidates: &[Point],
        budget: &Budget,
    ) -> SagResult<SolveOutcome> {
        let (primary, secondary) = if a.rank() <= b.rank() { (a, b) } else { (b, a) };
        sag_obs::counter("portfolio.races", 1);

        let loser_stop = Arc::new(AtomicBool::new(false));
        let mut sec_budget = Budget::unlimited().with_cancel_flag(loser_stop.clone());
        if let Some(at) = budget.deadline() {
            sec_budget = sec_budget.with_deadline_until(at);
        }
        if let Some(cap) = budget.node_limit() {
            sec_budget = sec_budget.with_node_limit(cap);
        }
        let fault = self.loser_fault;
        // The loser arm streams to live sinks (JSONL) but must not
        // write aggregating recorders: how far it gets before the
        // cancel flag lands is scheduling-dependent, and the committed
        // answer never includes its work — so its partial counts would
        // make collected metrics nondeterministic.
        let obs_stack: Vec<_> = sag_obs::local_stack()
            .into_iter()
            .filter(|r| !r.buffered())
            .collect();
        let ctx = sag_obs::span_context();

        let (prim_result, sec_result) = std::thread::scope(|scope| {
            let sec_handle = scope.spawn(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    // Seed the coordinator's span linkage so any span
                    // the loser arm opens still hangs off the race's
                    // enclosing span in the trace tree.
                    sag_obs::with_span_context(ctx, || {
                        sag_obs::with_local_stack(&obs_stack, || match fault {
                            Some(LoserFault::Panic) => panic!("injected portfolio loser panic"),
                            Some(LoserFault::Hang) => hang_until_cancelled(&sec_budget),
                            None => run_backend(secondary, scenario, candidates, &sec_budget),
                        })
                    })
                }))
            });
            let prim = run_backend(primary, scenario, candidates, budget);
            if prim.is_ok() {
                // Rank arbitration is already decided; release the
                // loser's slice so it stops burning cycles.
                loser_stop.store(true, Ordering::Relaxed);
            }
            let sec = match sec_handle.join() {
                Ok(Ok(r)) => LoserOutcome::Done(r),
                // catch_unwind caught it, or (fail closed) the join
                // itself reported a panic.
                Ok(Err(_)) | Err(_) => LoserOutcome::Panicked,
            };
            (prim, sec)
        });

        match prim_result {
            Ok(ans) => {
                match &sec_result {
                    LoserOutcome::Panicked => {
                        sag_obs::counter("portfolio.loser_panic", 1);
                        dump_loser("portfolio_loser_panic", secondary);
                    }
                    LoserOutcome::Done(r) => {
                        sag_obs::counter("portfolio.loser_cancelled", 1);
                        if loser_wedged(r) {
                            dump_loser("portfolio_loser_hang", secondary);
                        }
                    }
                }
                Ok(commit(ans, primary, SelectionReason::PortfolioRank))
            }
            Err(prim_err) => match sec_result {
                LoserOutcome::Done(Ok(ans)) => {
                    Ok(commit(ans, secondary, SelectionReason::PortfolioRank))
                }
                LoserOutcome::Done(Err(e)) => {
                    if loser_wedged(&Err(e)) {
                        dump_loser("portfolio_loser_hang", secondary);
                    }
                    Err(prim_err)
                }
                LoserOutcome::Panicked => {
                    sag_obs::counter("portfolio.loser_panic", 1);
                    dump_loser("portfolio_loser_panic", secondary);
                    Err(prim_err)
                }
            },
        }
    }
}

/// Did the loser arm wedge until its slice ran dry (rather than answer
/// or get cancelled mid-iteration)? [`hang_until_cancelled`] is the
/// only producer of a `"portfolio"`-staged budget error.
fn loser_wedged(r: &SagResult<BackendAnswer>) -> bool {
    matches!(r, Err(SagError::BudgetExceeded { stage, .. }) if *stage == "portfolio")
}

/// Leaves a forensics frame for a loser arm that died or wedged
/// (normal cancellation is the expected race outcome and does not
/// dump).
fn dump_loser(class: &'static str, backend: SolverBackend) {
    if !sag_obs::armed() {
        return;
    }
    let detail = format!("portfolio loser arm ({}) {}", backend.name(), class);
    sag_obs::post_mortem(&sag_obs::Dump {
        class,
        stage: Some("portfolio"),
        detail: &detail,
        backend: Some(backend.name()),
        reason: Some("portfolio_rank"),
        ..sag_obs::Dump::default()
    });
}

/// What the losing arm of a race came back with.
enum LoserOutcome {
    /// Finished (possibly with a typed error).
    Done(SagResult<BackendAnswer>),
    /// Died; the panic was contained at the race boundary.
    Panicked,
}

/// Realises [`LoserFault::Hang`]: spin on the cooperative checks like a
/// genuinely wedged backend would, with a hard cap so a test can never
/// deadlock the race even when the primary also fails.
fn hang_until_cancelled(budget: &Budget) -> SagResult<BackendAnswer> {
    const HARD_CAP: Duration = Duration::from_secs(2);
    let started = Instant::now();
    while budget.check_interrupt().is_ok() && started.elapsed() < HARD_CAP {
        std::thread::sleep(Duration::from_millis(1));
    }
    Err(SagError::BudgetExceeded {
        stage: "portfolio",
        spent: Spent {
            nodes: 0,
            elapsed: started.elapsed(),
        },
    })
}

/// Stamps a committed answer with its provenance and bumps the
/// selection counter.
fn commit(ans: BackendAnswer, backend: SolverBackend, reason: SelectionReason) -> SolveOutcome {
    sag_obs::counter(backend.selected_counter(), 1);
    SolveOutcome {
        solution: ans.solution,
        backend,
        reason,
        optimal: ans.optimal,
        spent: ans.spent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::iac_candidates;
    use crate::coverage::is_feasible;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::Rect;
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::new(
                LinkBudget::builder()
                    .snr_threshold(Db::new(beta_db))
                    .build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    fn probe() -> (Scenario, Vec<Point>) {
        let sc = scenario(
            vec![
                (0.0, 0.0, 35.0),
                (40.0, 0.0, 35.0),
                (150.0, 10.0, 30.0),
                (180.0, -10.0, 30.0),
            ],
            -15.0,
        );
        let cands = iac_candidates(&sc);
        (sc, cands)
    }

    #[test]
    fn every_backend_answers_feasibly() {
        let (sc, cands) = probe();
        let exact =
            run_backend(SolverBackend::ExactIlp, &sc, &cands, &Budget::unlimited()).unwrap();
        assert!(exact.optimal);
        for backend in SolverBackend::ALL {
            let ans = run_backend(backend, &sc, &cands, &Budget::unlimited()).unwrap();
            assert!(is_feasible(&sc, &ans.solution), "{backend:?}");
            assert!(
                ans.solution.n_relays() >= exact.solution.n_relays(),
                "{backend:?} beat the proven optimum"
            );
        }
    }

    #[test]
    fn local_search_never_worse_than_greedy() {
        let (sc, cands) = probe();
        let greedy = run_backend(SolverBackend::Greedy, &sc, &cands, &Budget::unlimited()).unwrap();
        let ls = run_backend(
            SolverBackend::LocalSearch,
            &sc,
            &cands,
            &Budget::unlimited(),
        )
        .unwrap();
        assert!(ls.solution.n_relays() <= greedy.solution.n_relays());
    }

    #[test]
    fn adaptive_picks_exact_on_small_zone_and_greedy_under_tiny_cap() {
        let policy = SelectionPolicy::default();
        let (b, r) = policy.select(10, &Budget::unlimited());
        assert_eq!(
            (b, r),
            (SolverBackend::ExactIlp, SelectionReason::SmallZone)
        );
        let (b, r) = policy.select(100, &Budget::unlimited());
        assert_eq!(
            (b, r),
            (SolverBackend::LpRound, SelectionReason::MediumZone)
        );
        let (b, r) = policy.select(300, &Budget::unlimited());
        assert_eq!(
            (b, r),
            (SolverBackend::LocalSearch, SelectionReason::LargeZone)
        );
        let (b, r) = policy.select(10_000, &Budget::unlimited());
        assert_eq!((b, r), (SolverBackend::Greedy, SelectionReason::HugeZone));
        let (b, r) = policy.select(10, &Budget::unlimited().with_node_limit(0));
        assert_eq!(
            (b, r),
            (SolverBackend::Greedy, SelectionReason::BudgetCapped)
        );
    }

    #[test]
    fn fixed_exact_exhaustion_degrades_to_greedy_on_the_ladder() {
        let (sc, cands) = probe();
        let out = SolverBuilder::fixed(SolverBackend::ExactIlp)
            .solve_zone(&sc, &cands, &Budget::unlimited().with_node_limit(0))
            .unwrap();
        assert_eq!(out.backend, SolverBackend::Greedy);
        assert_eq!(out.reason, SelectionReason::FallbackRung);
        assert!(is_feasible(&sc, &out.solution));
    }

    #[test]
    fn strict_exact_surfaces_budget_exceeded() {
        let (sc, cands) = probe();
        let err = SolverBuilder::fixed(SolverBackend::ExactIlp)
            .strict_exact()
            .solve_zone(&sc, &cands, &Budget::unlimited().with_node_limit(0))
            .unwrap_err();
        assert!(matches!(
            err,
            SagError::BudgetExceeded { stage: "ilpqc", .. }
        ));
    }

    #[test]
    fn portfolio_commits_the_primary_by_rank_not_arrival() {
        let (sc, cands) = probe();
        // Greedy finishes far sooner than exact, but exact outranks it
        // and must win every replay.
        for _ in 0..3 {
            let out = SolverBuilder::portfolio(SolverBackend::Greedy, SolverBackend::ExactIlp)
                .solve_zone(&sc, &cands, &Budget::unlimited())
                .unwrap();
            assert_eq!(out.backend, SolverBackend::ExactIlp);
            assert_eq!(out.reason, SelectionReason::PortfolioRank);
            assert!(out.optimal);
        }
    }

    #[test]
    fn portfolio_falls_to_secondary_when_primary_fails() {
        let (sc, cands) = probe();
        // node_limit(0) kills the exact arm before any incumbent, but
        // the greedy arm ignores node caps and answers.
        let out = SolverBuilder::portfolio(SolverBackend::ExactIlp, SolverBackend::Greedy)
            .solve_zone(&sc, &cands, &Budget::unlimited().with_node_limit(0))
            .unwrap();
        assert_eq!(out.backend, SolverBackend::Greedy);
        assert!(is_feasible(&sc, &out.solution));
    }

    #[test]
    fn portfolio_loser_panic_and_hang_never_corrupt_the_winner() {
        let (sc, cands) = probe();
        for fault in [LoserFault::Panic, LoserFault::Hang] {
            let out = SolverBuilder::portfolio(SolverBackend::ExactIlp, SolverBackend::LpRound)
                .with_loser_fault(fault)
                .solve_zone(&sc, &cands, &Budget::unlimited())
                .unwrap();
            assert_eq!(out.backend, SolverBackend::ExactIlp, "{fault:?}");
            assert!(is_feasible(&sc, &out.solution), "{fault:?}");
        }
    }

    #[test]
    fn greedy_rescue_reuses_the_shared_rung() {
        let (sc, _) = probe();
        let builder = SolverBuilder::adaptive();
        let (sol, rescued) = builder
            .primary_or_greedy_rescue(&sc, || Err(SagError::Infeasible("primary declined".into())))
            .unwrap();
        assert!(rescued);
        assert!(is_feasible(&sc, &sol));
        // Non-Infeasible errors must propagate untouched.
        let err = builder
            .primary_or_greedy_rescue(&sc, || {
                Err(SagError::LedgerDesync(sag_radio::DesyncError {
                    subscriber: 0,
                    ledger: 0.0,
                    oracle: 1.0,
                }))
            })
            .unwrap_err();
        assert!(matches!(err, SagError::LedgerDesync(_)));
    }

    #[test]
    fn choice_parsing_roundtrips() {
        assert_eq!(
            SolverChoice::parse("adaptive"),
            Some(SolverChoice::Adaptive)
        );
        assert_eq!(
            SolverChoice::parse("lp_round"),
            Some(SolverChoice::Fixed(SolverBackend::LpRound))
        );
        assert_eq!(
            SolverChoice::parse("portfolio"),
            Some(SolverChoice::Portfolio(
                SolverBackend::ExactIlp,
                SolverBackend::LpRound
            ))
        );
        assert_eq!(
            SolverChoice::parse("portfolio:greedy+local_search"),
            Some(SolverChoice::Portfolio(
                SolverBackend::Greedy,
                SolverBackend::LocalSearch
            ))
        );
        assert_eq!(SolverChoice::parse("simulated_annealing"), None);
        for backend in SolverBackend::ALL {
            assert_eq!(SolverBackend::parse(backend.name()), Some(backend));
        }
    }

    #[test]
    fn lp_round_respects_an_expired_deadline() {
        let (sc, cands) = probe();
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        match LpRound.solve(&sc, &cands, &budget) {
            Err(SagError::BudgetExceeded {
                stage: "lp_round", ..
            }) => {}
            other => panic!("expected lp_round budget exhaustion, got {other:?}"),
        }
    }
}
