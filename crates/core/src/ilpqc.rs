//! The ILPQC benchmark solver (§III-A.1) over a finite candidate set —
//! the role Gurobi 5.0 plays in the paper for IAC and GAC.
//!
//! Objective (3.1) minimises the number of chosen candidate positions
//! subject to: each relay covers ≥ 1 subscriber (3.2), each subscriber
//! has exactly one access link (3.3) within its feasible distance (3.4),
//! and the quadratic SNR constraint (3.5). The quadratic constraint is
//! handled *exactly* without a QP solver: for a fixed chosen set at
//! `Pmax`, each subscriber's best SNR is achieved by its nearest chosen
//! relay (the interference sum is assignment-independent), so SNR
//! feasibility of a node is a closed-form check.
//!
//! The search is branch-and-bound over candidate subsets:
//!
//! * branch on the first distance-uncovered subscriber, trying each
//!   eligible candidate (every cover contains one of them, so the search
//!   is exhaustive over covers);
//! * at a distance-complete node with SNR violations, branch on
//!   candidates *closer to a violated subscriber than its current
//!   server* — the only additions that can repair that subscriber (any
//!   other addition strictly worsens its SNR), mirroring the ILP's
//!   freedom to place "extra" relays for SNR;
//! * prune with the incumbent and with the LP relaxation of the
//!   set-cover subproblem (a valid lower bound because dropping (3.5)
//!   only enlarges the feasible region), computed by `sag-lp`.

use std::time::Instant;

use sag_geom::Point;
use sag_lp::{Budget, CscMatrix, LpProblem, Relation, Spent, WarmStart};
use sag_radio::InterferenceLedger;

use crate::coverage::{interference_ledger, CoverageSolution};
use crate::error::{SagError, SagResult};
use crate::model::Scenario;

/// How often (in nodes) the wall-clock/cancellation state is polled.
const BUDGET_POLL_MASK: usize = 63;

/// SNR evaluations between full ledger rebuilds. Incremental push/pop
/// drift is ~1 ulp per mutation; rebuilding every few hundred
/// evaluations keeps worst-case accumulated drift far below the 1e-12
/// feasibility margins at negligible cost.
const LEDGER_REBUILD_PERIOD: usize = 256;

/// Configuration of the ILPQC branch-and-bound.
#[derive(Debug, Clone)]
pub struct IlpqcConfig {
    /// Node budget; when exhausted the best incumbent is returned with
    /// `optimal = false` (Gurobi's time-limit behaviour).
    pub node_limit: usize,
    /// Cooperative budget (deadline / node cap / cancellation). A node
    /// cap here tightens `node_limit`; a deadline or raised flag stops
    /// the search at the next poll, returning the incumbent if one
    /// exists and [`SagError::BudgetExceeded`] otherwise.
    pub budget: Budget,
    /// Minimum candidate count before per-node LP completion bounds
    /// kick in. Each incomplete node then re-solves the cover LP with
    /// its selection forced to 1 — warm-started by the dual simplex
    /// from the previous node's basis, so the marginal cost is a
    /// handful of pivots. Small instances (golden tests, hand-laid
    /// scenarios) stay on the pure combinatorial search.
    pub lp_bound_min_cands: usize,
}

impl Default for IlpqcConfig {
    fn default() -> Self {
        IlpqcConfig {
            node_limit: 200_000,
            budget: Budget::unlimited(),
            lp_bound_min_cands: 24,
        }
    }
}

/// Outcome of an ILPQC solve.
#[derive(Debug, Clone)]
pub struct IlpqcOutcome {
    /// The best placement found.
    pub solution: CoverageSolution,
    /// `true` when the search proved optimality (no node-limit hit).
    pub optimal: bool,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Resources the search consumed (nodes + wall clock).
    pub spent: Spent,
}

/// Solves the ILPQC over `candidates` for the scenario.
///
/// # Errors
/// [`SagError::Infeasible`] when no subset of the candidates yields
/// feasible coverage (distance or SNR), or some subscriber has no
/// eligible candidate at all; [`SagError::BudgetExceeded`] when the
/// node cap, deadline, or cancellation flag stops the search before
/// *any* feasible incumbent was found (with an incumbent in hand the
/// solve instead returns it with `optimal = false`).
pub fn solve_ilpqc(
    scenario: &Scenario,
    candidates: &[Point],
    config: IlpqcConfig,
) -> SagResult<IlpqcOutcome> {
    let _stage = sag_obs::span("ilpqc");
    let started = Instant::now();
    let n_subs = scenario.n_subscribers();
    let n_cands = candidates.len();

    // eligible[j] = candidate indices within subscriber j's distance
    // (the shared helper every backend builds its lists with).
    let eligible = crate::fallback::eligibility(scenario, candidates, "ilpqc")?;

    // Root lower bound: LP relaxation of the set cover.
    let root_lb = set_cover_lp_bound(n_cands, &eligible, &config.budget).map_err(|e| {
        if e == SagError::Lp(sag_lp::LpError::Cancelled) {
            SagError::BudgetExceeded {
                stage: "ilpqc",
                spent: Spent {
                    nodes: 0,
                    elapsed: started.elapsed(),
                },
            }
        } else {
            e
        }
    })?;

    // The budget's node cap tightens the configured limit.
    let node_cap = config
        .budget
        .node_limit()
        .map_or(config.node_limit, |b| b.min(config.node_limit));

    let mut best: Option<Vec<usize>> = None;
    let mut nodes = 0usize;
    let mut truncated = false;

    // Per-node LP completion bounds (large instances only): the cover
    // LP with the node's selection forced to 1 lower-bounds every
    // completion of that node. Consecutive nodes share a matrix shape
    // (only bounds change), so each solve warm-starts from the previous
    // one's basis via the dual simplex.
    let use_lp_bounds = n_cands >= config.lp_bound_min_cands;
    let cover_lp = if use_lp_bounds {
        Some(build_cover_lp(n_cands, &eligible))
    } else {
        None
    };
    let mut lp_warm: Option<WarmStart> = None;
    let mut lp_prunes = 0u64;

    // One interference ledger for the whole search, synced to each
    // distance-complete node by a push/pop symmetric diff against the
    // previously evaluated selection — sibling nodes share most of
    // their relays, so the per-node SNR evaluation drops from
    // O(S·R²) to O(Δ·S + S).
    let beta = scenario.params.link.beta();
    let mut ledger = interference_ledger(scenario, &[]);
    let mut slot_of: Vec<Option<usize>> = vec![None; n_cands];
    let mut synced: Vec<usize> = Vec::new();
    let mut evals = 0usize;

    // Depth-first stack of candidate selections (sorted, deduped). The
    // same subset is reachable through every insertion order; memoise to
    // expand each at most once.
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut visited: std::collections::HashSet<Vec<usize>> = Default::default();
    while let Some(selected) = stack.pop() {
        if !visited.insert(selected.clone()) {
            continue;
        }
        nodes += 1;
        // Under a shared pool (parallel zone solves) the cap bounds the
        // combined node count of every worker drawing on this budget.
        let cap_nodes = config.budget.charge_nodes(1).unwrap_or(nodes);
        if cap_nodes > node_cap {
            truncated = true;
            break;
        }
        if (nodes - 1) & BUDGET_POLL_MASK == 0 && config.budget.check_interrupt().is_err() {
            truncated = true;
            break;
        }
        if let Some(b) = &best {
            if selected.len() >= b.len() {
                continue;
            }
            if b.len() == root_lb {
                break; // incumbent provably optimal
            }
        }
        // First subscriber not distance-covered.
        let uncovered = (0..n_subs).find(|&j| {
            !eligible[j]
                .iter()
                .any(|c| selected.binary_search(c).is_ok())
        });
        match uncovered {
            Some(j) => {
                if let Some(b) = &best {
                    if selected.len() + 1 >= b.len() {
                        continue;
                    }
                    // LP completion bound: fix this node's selection to 1
                    // and relax the rest; the cover LP optimum lower-bounds
                    // every completion. Only worth the solve once an
                    // incumbent exists to prune against.
                    if let Some(template) = &cover_lp {
                        let mut lp = template.clone();
                        for &c in &selected {
                            lp.set_bounds(c, 1.0, 1.0);
                        }
                        lp.set_budget(config.budget.clone());
                        match lp.solve_with_warm_start(lp_warm.as_ref()) {
                            Ok(out) => {
                                lp_warm = out.warm;
                                let bound =
                                    round_lp_lower_bound(out.solution.objective, n_cands + n_subs);
                                if bound >= b.len() {
                                    lp_prunes += 1;
                                    continue;
                                }
                            }
                            Err(sag_lp::LpError::Cancelled) => {
                                truncated = true;
                                break;
                            }
                            // Infeasible/Numerical relaxations yield no
                            // usable bound; keep branching combinatorially.
                            Err(_) => {}
                        }
                    }
                }
                // Push branches in reverse so nearer candidates pop first.
                let mut options: Vec<usize> = eligible[j]
                    .iter()
                    .copied()
                    .filter(|c| selected.binary_search(c).is_err())
                    .collect();
                options.sort_by(|&a, &b| {
                    sag_geom::float::total_cmp(
                        &candidates[b].distance(scenario.subscribers[j].position),
                        &candidates[a].distance(scenario.subscribers[j].position),
                    )
                });
                for c in options {
                    let mut next = selected.clone();
                    // `c` was filtered to be absent; either arm is the
                    // correct insertion point.
                    let pos = match next.binary_search(&c) {
                        Ok(p) | Err(p) => p,
                    };
                    next.insert(pos, c);
                    stack.push(next);
                }
            }
            None => {
                // Distance-complete: evaluate SNR with nearest assignment.
                sync_ledger(
                    &mut ledger,
                    &mut slot_of,
                    &mut synced,
                    &selected,
                    candidates,
                );
                evals += 1;
                if evals.is_multiple_of(LEDGER_REBUILD_PERIOD) {
                    ledger.rebuild();
                }
                let assignment = nearest_assignment(scenario, candidates, &eligible, &selected);
                let violated: Vec<usize> = (0..n_subs)
                    .filter(|&j| {
                        let slot = slot_of[selected[assignment[j]]]
                            .expect("every selected candidate is synced into the ledger");
                        ledger.snr(j, slot) < beta - 1e-12
                    })
                    .collect();
                if violated.is_empty() {
                    if best.as_ref().is_none_or(|b| selected.len() < b.len()) {
                        best = Some(selected);
                    }
                    continue;
                }
                // SNR-repair branching: only candidates closer to a
                // violated subscriber than its current server can help it.
                if let Some(b) = &best {
                    if selected.len() + 1 >= b.len() {
                        continue;
                    }
                }
                let j = violated[0];
                let spos = scenario.subscribers[j].position;
                let cur_d = candidates[selected[assignment[j]]].distance(spos);
                let mut options: Vec<usize> = eligible[j]
                    .iter()
                    .copied()
                    .filter(|&c| {
                        selected.binary_search(&c).is_err()
                            && candidates[c].distance(spos) < cur_d - 1e-9
                    })
                    .collect();
                options.sort_by(|&a, &b| {
                    sag_geom::float::total_cmp(
                        &candidates[b].distance(spos),
                        &candidates[a].distance(spos),
                    )
                });
                for c in options {
                    let mut next = selected.clone();
                    let pos = match next.binary_search(&c) {
                        Ok(p) | Err(p) => p,
                    };
                    next.insert(pos, c);
                    stack.push(next);
                }
            }
        }
    }

    // One flush per solve: node/eval counting stayed in plain locals.
    if sag_obs::enabled() {
        sag_obs::counter("ilpqc.nodes", nodes as u64);
        sag_obs::counter("ilpqc.ledger_rebuilds", ledger.stats().rebuilds);
        if lp_prunes > 0 {
            sag_obs::counter("ilpqc.lp_prunes", lp_prunes);
        }
        if truncated {
            sag_obs::counter("ilpqc.budget_exhausted", 1);
        }
    }
    crate::coverage::flush_ledger_stats(&ledger);
    let spent = Spent {
        nodes,
        elapsed: started.elapsed(),
    };
    match best {
        Some(selected) => {
            let relays: Vec<Point> = selected.iter().map(|&c| candidates[c]).collect();
            let assignment = nearest_assignment(scenario, candidates, &eligible, &selected);
            let solution = CoverageSolution { relays, assignment };
            Ok(IlpqcOutcome {
                solution,
                optimal: !truncated,
                nodes,
                spent,
            })
        }
        None if truncated => Err(SagError::BudgetExceeded {
            stage: "ilpqc",
            spent,
        }),
        None => Err(SagError::Infeasible(
            "ilpqc: no SNR-feasible cover exists over the candidates".into(),
        )),
    }
}

/// Syncs the search ledger to `selected` with a two-pointer symmetric
/// diff against the previously synced (sorted) selection: candidates
/// that left are popped, candidates that joined are pushed. `slot_of`
/// maps candidate index → live ledger slot.
fn sync_ledger(
    ledger: &mut InterferenceLedger,
    slot_of: &mut [Option<usize>],
    synced: &mut Vec<usize>,
    selected: &[usize],
    candidates: &[Point],
) {
    let (mut i, mut k) = (0usize, 0usize);
    while i < synced.len() || k < selected.len() {
        match (synced.get(i), selected.get(k)) {
            (Some(&old), Some(&new)) if old == new => {
                i += 1;
                k += 1;
            }
            (Some(&old), opt) if opt.is_none_or(|&new| old < new) => {
                let slot = slot_of[old].take().expect("synced candidate has a slot");
                ledger.remove_relay(slot);
                i += 1;
            }
            (_, Some(&new)) => {
                slot_of[new] = Some(ledger.add_relay(candidates[new], 1.0));
                k += 1;
            }
            _ => unreachable!("loop condition guarantees one side is non-empty"),
        }
    }
    synced.clear();
    synced.extend_from_slice(selected);
}

/// Nearest-eligible assignment: for each subscriber, the position (index
/// into `selected`) of its closest selected eligible candidate. With all
/// relays at `Pmax` this is the SNR-optimal assignment, because the total
/// received power is assignment-independent.
fn nearest_assignment(
    scenario: &Scenario,
    candidates: &[Point],
    eligible: &[Vec<usize>],
    selected: &[usize],
) -> Vec<usize> {
    let mut out = Vec::with_capacity(scenario.n_subscribers());
    for (j, e) in eligible.iter().enumerate() {
        let spos = scenario.subscribers[j].position;
        let best = e
            .iter()
            .filter_map(|c| selected.binary_search(c).ok())
            .min_by(|&a, &b| {
                sag_geom::float::total_cmp(
                    &candidates[selected[a]].distance(spos),
                    &candidates[selected[b]].distance(spos),
                )
            })
            .expect("distance-complete selection covers every subscriber");
        out.push(best);
    }
    out
}

/// Builds the set-cover relaxation: minimise Σx over x ∈ [0,1] subject
/// to one `≥ 1` coverage row per subscriber. Rows are assembled as one
/// canonical [`CscMatrix`] block (subscribers × candidates) and
/// bulk-added — the sparse backend consumes the same structure, so
/// nothing is densified on the way in. Shared with the `LpRound`
/// backend in [`crate::solver`], which rounds this relaxation instead
/// of branching on it.
pub(crate) fn build_cover_lp(n_cands: usize, eligible: &[Vec<usize>]) -> LpProblem {
    let mut lp = LpProblem::minimize(n_cands);
    lp.set_objective(&vec![1.0; n_cands]);
    for c in 0..n_cands {
        lp.set_bounds(c, 0.0, 1.0);
    }
    let triplets: Vec<(usize, usize, f64)> = eligible
        .iter()
        .enumerate()
        .flat_map(|(j, e)| e.iter().map(move |&c| (j, c, 1.0)))
        .collect();
    let cover = CscMatrix::from_triplets(eligible.len(), n_cands, &triplets)
        .expect("eligibility indices are in range and finite");
    lp.add_rows_from_csc(&cover, Relation::Ge, 1.0);
    lp
}

/// LP relaxation of the set-cover part: a valid lower bound on the ILPQC
/// optimum (dropping (3.5) relaxes the problem).
fn set_cover_lp_bound(
    n_cands: usize,
    eligible: &[Vec<usize>],
    budget: &Budget,
) -> SagResult<usize> {
    let mut lp = build_cover_lp(n_cands, eligible);
    lp.set_budget(budget.clone());
    let sol = lp.solve()?;
    Ok(round_lp_lower_bound(
        sol.objective,
        n_cands + eligible.len(),
    ))
}

/// Rounds an LP-relaxation objective up to a valid integer lower bound.
///
/// The simplex answer is exact only up to its feasibility tolerance
/// ([`sag_lp::SIMPLEX_TOL`]), and accumulated pivot error grows with
/// the tableau, so the slack subtracted before the `ceil` is that
/// tolerance scaled by the instance dimension (variables + constraints)
/// and the objective's magnitude — not a magic constant. Under-rounding
/// here is unsound: lifting a `3−ε` relaxation to 4 would prune an
/// optimal 3-relay cover out of the search.
fn round_lp_lower_bound(objective: f64, dimension: usize) -> usize {
    let slack = sag_lp::SIMPLEX_TOL * (dimension as f64 + 1.0) * objective.abs().max(1.0);
    (objective - slack).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::iac_candidates;
    use crate::coverage::is_feasible;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::Rect;
    use sag_radio::{units::Db, LinkBudget};
    use sag_testkit::prelude::*;

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::new(
                LinkBudget::builder()
                    .snr_threshold(Db::new(beta_db))
                    .build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    #[test]
    fn single_subscriber_one_candidate() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let cands = vec![Point::new(10.0, 0.0)];
        let out = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).unwrap();
        assert!(out.optimal);
        assert_eq!(out.solution.n_relays(), 1);
        assert!(is_feasible(&sc, &out.solution));
    }

    #[test]
    fn shared_candidate_preferred() {
        // One candidate covers both subscribers; two others cover one each.
        let sc = scenario(vec![(0.0, 0.0, 30.0), (40.0, 0.0, 30.0)], -15.0);
        let cands = vec![
            Point::new(20.0, 0.0), // covers both
            Point::new(0.0, 0.0),  // covers SS0
            Point::new(40.0, 0.0), // covers SS1
        ];
        let out = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).unwrap();
        assert!(out.optimal);
        assert_eq!(out.solution.n_relays(), 1);
        assert!(out.solution.relays[0].approx_eq(Point::new(20.0, 0.0)));
    }

    #[test]
    fn no_candidate_in_range_is_infeasible() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let cands = vec![Point::new(100.0, 0.0)];
        assert!(matches!(
            solve_ilpqc(&sc, &cands, IlpqcConfig::default()),
            Err(SagError::Infeasible(_))
        ));
    }

    #[test]
    fn snr_forces_extra_relay() {
        // Two subscribers 60 apart; a mid candidate covers both at
        // distance 30 — a single relay is SNR-trivial (no interference).
        // Force a strict threshold plus per-subscriber candidates: the
        // solver must still find a feasible configuration.
        let sc = scenario(vec![(0.0, 0.0, 32.0), (60.0, 0.0, 32.0)], -15.0);
        let cands = vec![
            Point::new(30.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(59.0, 0.0),
        ];
        let out = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).unwrap();
        assert!(is_feasible(&sc, &out.solution));
        assert_eq!(out.solution.n_relays(), 1, "single shared relay is optimal");
    }

    #[test]
    fn snr_repair_branching_adds_closer_relay() {
        // Strict +5 dB threshold: the shared mid-candidate at distance 30
        // from both has no interference (one relay → infinite SNR), so
        // still one relay. To exercise the repair branch, forbid the mid
        // candidate: the two remaining candidates serve one SS each and
        // at +5 dB the geometry decides.
        let sc = scenario(vec![(0.0, 0.0, 32.0), (60.0, 0.0, 32.0)], 5.0);
        let cands = vec![
            Point::new(5.0, 0.0),
            Point::new(55.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(60.0, 0.0),
        ];
        let out = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).unwrap();
        assert!(is_feasible(&sc, &out.solution));
        // SNR at SS0 with servers at 5 and interferer at 55:
        // (55/5)³ = 1331 ≫ 3.16 — fine with two relays.
        assert_eq!(out.solution.n_relays(), 2);
    }

    #[test]
    fn iac_candidates_end_to_end() {
        let sc = scenario(
            vec![
                (0.0, 0.0, 35.0),
                (40.0, 0.0, 35.0),
                (150.0, 10.0, 30.0),
                (180.0, -10.0, 30.0),
            ],
            -15.0,
        );
        let cands = iac_candidates(&sc);
        let out = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).unwrap();
        assert!(out.optimal);
        assert!(is_feasible(&sc, &out.solution));
        assert_eq!(out.solution.n_relays(), 2);
    }

    #[test]
    fn node_limit_reports_non_optimal_or_budget_exceeded() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (20.0, 0.0, 30.0)], -15.0);
        let cands = iac_candidates(&sc);
        let config = IlpqcConfig {
            node_limit: 1,
            ..Default::default()
        };
        match solve_ilpqc(&sc, &cands, config) {
            Ok(out) => assert!(!out.optimal),
            Err(SagError::BudgetExceeded { stage, spent }) => {
                assert_eq!(stage, "ilpqc");
                assert!(spent.nodes >= 1);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn budget_node_cap_tightens_config_limit() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (20.0, 0.0, 30.0)], -15.0);
        let cands = iac_candidates(&sc);
        let config = IlpqcConfig {
            node_limit: usize::MAX,
            budget: Budget::unlimited().with_node_limit(1),
            ..Default::default()
        };
        match solve_ilpqc(&sc, &cands, config) {
            Ok(out) => assert!(!out.optimal),
            Err(SagError::BudgetExceeded { stage, .. }) => assert_eq!(stage, "ilpqc"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn expired_deadline_stops_the_search() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (20.0, 0.0, 30.0)], -15.0);
        let cands = iac_candidates(&sc);
        let config = IlpqcConfig {
            budget: Budget::unlimited().with_deadline(std::time::Duration::ZERO),
            ..Default::default()
        };
        match solve_ilpqc(&sc, &cands, config) {
            Ok(out) => assert!(!out.optimal, "expired deadline must not prove optimality"),
            Err(SagError::BudgetExceeded { stage, .. }) => assert_eq!(stage, "ilpqc"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn successful_solve_reports_spent() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let cands = vec![Point::new(10.0, 0.0)];
        let out = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).unwrap();
        assert_eq!(out.spent.nodes, out.nodes);
        assert!(out.spent.nodes >= 1);
    }

    #[test]
    fn lp_bound_is_valid() {
        // Two disjoint clusters: LP bound must be ≥ 2 and the optimum is 2.
        let sc = scenario(vec![(0.0, 0.0, 30.0), (200.0, 0.0, 30.0)], -15.0);
        let cands = vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0)];
        let out = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).unwrap();
        assert_eq!(out.solution.n_relays(), 2);
        assert!(out.optimal);
    }

    #[test]
    fn bound_rounding_tracks_the_simplex_tolerance() {
        // An objective sitting one simplex-tolerance below an integer
        // must round up to it; the pre-fix magic 1e-6 is not special.
        let dim = 50;
        assert_eq!(round_lp_lower_bound(3.0, dim), 3);
        assert_eq!(
            round_lp_lower_bound(3.0 - 10.0 * sag_lp::SIMPLEX_TOL, dim),
            3
        );
        assert_eq!(round_lp_lower_bound(2.5, dim), 3);
        // Degenerate objectives still yield the trivial bound of 1.
        assert_eq!(round_lp_lower_bound(0.0, dim), 1);
        assert_eq!(round_lp_lower_bound(-1.0, dim), 1);
    }

    prop! {
        /// Soundness of the pruning bound (the S4 regression): over
        /// random set-cover instances, the rounded LP lower bound never
        /// exceeds the brute-forced integer optimum — an over-rounded
        /// bound would prune optimal covers out of the B&B.
        #[cases(64)]
        fn rounded_lp_bound_never_exceeds_integer_optimum(seed in 0u64..100_000) {
            let mut rng = Rng::seed_from_u64(seed);
            let n_cands = rng.gen_range(2..8usize);
            let n_subs = rng.gen_range(1..6usize);
            let eligible: Vec<Vec<usize>> = (0..n_subs)
                .map(|_| {
                    let mut e: Vec<usize> =
                        (0..n_cands).filter(|_| rng.gen_bool(0.4)).collect();
                    if e.is_empty() {
                        e.push(rng.gen_range(0..n_cands));
                    }
                    e
                })
                .collect();
            // Brute-force integer optimum over all candidate subsets.
            let opt = (1u32..1 << n_cands)
                .filter(|mask| {
                    eligible
                        .iter()
                        .all(|e| e.iter().any(|&c| mask & (1 << c) != 0))
                })
                .map(u32::count_ones)
                .min()
                .expect("every subscriber has an eligible candidate");
            let bound = set_cover_lp_bound(n_cands, &eligible, &Budget::unlimited())
                .expect("feasible LP");
            prop_assert!(
                bound as u32 <= opt,
                "LP bound {bound} exceeds integer optimum {opt} (eligible: {eligible:?})"
            );
        }
    }
}
