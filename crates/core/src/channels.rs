//! Channel assignment — frequency reuse against co-channel interference.
//!
//! **Extension beyond the paper.** The paper keeps every relay on one
//! shared channel and repairs SNR by *moving* relays. Real small-cell
//! deployments also get to split relays across orthogonal channels: a
//! subscriber then only hears interference from relays on its server's
//! channel. This module computes a small channel plan that makes a
//! placement SNR-feasible:
//!
//! 1. build a *conflict graph* over the coverage relays — an edge joins
//!    `r` and `k` when co-channel operation at `Pmax` would break the
//!    pairwise SNR of one of their subscribers;
//! 2. color it with DSATUR (`sag-graph`);
//! 3. verify the *full* (not just pairwise) SNR per channel and add
//!    conflict edges for any residual violation, recoloring until clean —
//!    the loop terminates because each round adds an edge and the
//!    all-distinct-channels coloring is always feasible.

use sag_graph::{coloring, Graph};

use crate::coverage::CoverageSolution;
use crate::model::Scenario;

/// A channel plan for the coverage relays.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPlan {
    /// Channel index per relay (channels are `0..n_channels`).
    pub channel: Vec<usize>,
    /// Number of orthogonal channels used.
    pub n_channels: usize,
    /// Conflict-resolution rounds the verifier needed.
    pub rounds: usize,
}

/// SNR of subscriber `j` when interference comes only from the relays
/// sharing its server's channel (all at `Pmax`).
pub fn co_channel_snr(
    scenario: &Scenario,
    sol: &CoverageSolution,
    channel: &[usize],
    j: usize,
) -> f64 {
    let model = scenario.params.link.model();
    let pmax = scenario.params.link.pmax();
    let r = sol.assignment[j];
    let spos = scenario.subscribers[j].position;
    let signal = model.received_power(pmax, sol.relays[r].distance(spos));
    let interference: f64 = sol
        .relays
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != r && channel[k] == channel[r])
        .map(|(_, &rp)| model.received_power(pmax, rp.distance(spos)))
        .sum();
    if interference <= 0.0 {
        f64::INFINITY
    } else {
        signal / interference
    }
}

/// Computes a channel plan making every subscriber's SNR feasible under
/// `Pmax` operation. Always succeeds: in the worst case every relay gets
/// its own channel, which removes all interference.
///
/// # Panics
/// Panics if the solution's assignment is inconsistent with the scenario.
pub fn assign_channels(scenario: &Scenario, sol: &CoverageSolution) -> ChannelPlan {
    assert_eq!(
        sol.assignment.len(),
        scenario.n_subscribers(),
        "assignment length mismatch"
    );
    let model = scenario.params.link.model();
    let beta = scenario.params.link.beta();
    let pmax = scenario.params.link.pmax();
    let n = sol.n_relays();

    // Pairwise conflicts: relay k alone would push subscriber j of relay
    // r below β.
    let mut g = Graph::new(n);
    let mut edges: std::collections::HashSet<(usize, usize)> = Default::default();
    let add_edge = |g: &mut Graph,
                    a: usize,
                    b: usize,
                    edges: &mut std::collections::HashSet<(usize, usize)>| {
        let key = (a.min(b), a.max(b));
        if a != b && edges.insert(key) {
            g.add_edge(key.0, key.1, 1.0);
        }
    };
    for (j, &r) in sol.assignment.iter().enumerate() {
        let spos = scenario.subscribers[j].position;
        let signal = model.received_power(pmax, sol.relays[r].distance(spos));
        for (k, &kp) in sol.relays.iter().enumerate() {
            if k == r {
                continue;
            }
            let interference = model.received_power(pmax, kp.distance(spos));
            if signal < beta * interference {
                add_edge(&mut g, r, k, &mut edges);
            }
        }
    }

    // Color, verify aggregate SNR, tighten, repeat.
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let channel = coloring::dsatur(&g);
        debug_assert!(coloring::is_proper(&g, &channel));
        let mut clean = true;
        for (j, &r) in sol.assignment.iter().enumerate() {
            if co_channel_snr(scenario, sol, &channel, j) >= beta - 1e-12 {
                continue;
            }
            clean = false;
            // Separate the server from its strongest same-channel
            // interferer for this subscriber.
            let spos = scenario.subscribers[j].position;
            let worst = sol
                .relays
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != r && channel[k] == channel[r])
                .max_by(|a, b| {
                    sag_geom::float::total_cmp(
                        &model.received_power(pmax, a.1.distance(spos)),
                        &model.received_power(pmax, b.1.distance(spos)),
                    )
                })
                .map(|(k, _)| k)
                .expect("a violated subscriber has a same-channel interferer");
            add_edge(&mut g, r, worst, &mut edges);
        }
        if clean {
            let n_channels = coloring::color_count(&channel);
            return ChannelPlan {
                channel,
                n_channels,
                rounds,
            };
        }
        // Termination: at most C(n,2) edges can ever be added, and the
        // complete graph's coloring (all distinct) is trivially clean.
    }
}

/// Returns `true` if the plan clears every subscriber's SNR threshold.
pub fn plan_is_feasible(scenario: &Scenario, sol: &CoverageSolution, plan: &ChannelPlan) -> bool {
    let beta = scenario.params.link.beta();
    (0..scenario.n_subscribers())
        .all(|j| co_channel_snr(scenario, sol, &plan.channel, j) >= beta - 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use crate::samc::samc;
    use sag_geom::{Point, Rect};
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::new(
                LinkBudget::builder()
                    .snr_threshold(Db::new(beta_db))
                    .build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    #[test]
    fn benign_placement_uses_one_channel() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (200.0, 0.0, 30.0)], -15.0);
        let sol = samc(&sc).unwrap();
        let plan = assign_channels(&sc, &sol);
        assert_eq!(plan.n_channels, 1);
        assert!(plan_is_feasible(&sc, &sol, &plan));
    }

    #[test]
    fn impossible_co_channel_case_splits_channels() {
        // The double-cluster trap that sliding cannot fix at +20 dB:
        // channel separation fixes it with two channels.
        let sc = scenario(
            vec![
                (0.0, -6.0, 6.5),
                (0.0, 6.0, 6.5),
                (12.0, -6.0, 6.5),
                (12.0, 6.0, 6.5),
            ],
            20.0,
        );
        let sol = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0), Point::new(12.0, 0.0)],
            assignment: vec![0, 0, 1, 1],
        };
        let plan = assign_channels(&sc, &sol);
        assert_eq!(plan.n_channels, 2);
        assert_ne!(plan.channel[0], plan.channel[1]);
        assert!(plan_is_feasible(&sc, &sol, &plan));
    }

    #[test]
    fn aggregate_violations_fixed_by_verifier_rounds() {
        // Several relays each individually tolerable but collectively
        // violating at a strict threshold: the pairwise graph alone may
        // be edgeless, forcing the verification loop to do the work.
        let sc = scenario(
            vec![
                (0.0, 0.0, 20.0),
                (60.0, 0.0, 20.0),
                (0.0, 60.0, 20.0),
                (60.0, 60.0, 20.0),
            ],
            8.0,
        );
        let sol = CoverageSolution {
            relays: vec![
                Point::new(18.0, 0.0),
                Point::new(42.0, 0.0),
                Point::new(0.0, 42.0),
                Point::new(60.0, 42.0),
            ],
            assignment: vec![0, 1, 2, 3],
        };
        let plan = assign_channels(&sc, &sol);
        assert!(plan_is_feasible(&sc, &sol, &plan));
        assert!(plan.n_channels <= sol.n_relays());
    }

    #[test]
    fn channels_never_exceed_relays() {
        for seed_subs in [
            vec![(0.0, 0.0, 35.0), (10.0, 0.0, 35.0), (20.0, 0.0, 35.0)],
            vec![
                (0.0, 0.0, 30.0),
                (100.0, 0.0, 30.0),
                (0.0, 100.0, 30.0),
                (100.0, 100.0, 30.0),
            ],
        ] {
            let sc = scenario(seed_subs, 3.0);
            if let Ok(sol) = samc(&sc) {
                let plan = assign_channels(&sc, &sol);
                assert!(plan.n_channels <= sol.n_relays().max(1));
                assert!(plan_is_feasible(&sc, &sol, &plan));
            }
        }
    }

    #[test]
    fn co_channel_snr_single_relay_infinite() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let sol = CoverageSolution {
            relays: vec![Point::new(1.0, 0.0)],
            assignment: vec![0],
        };
        assert!(co_channel_snr(&sc, &sol, &[0], 0).is_infinite());
    }
}
