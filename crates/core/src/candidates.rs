//! Candidate relay positions: *IAC* (Intersections As Candidates) and
//! *GAC* (Grids As Candidates), §III-A of the paper.
//!
//! Both constructions feed the exact ILPQC coverage solver
//! ([`crate::ilpqc`]). IAC collects the pairwise intersection points of
//! subscriber feasible circles (Fig. 2(a)); GAC uses the centres of a
//! uniform grid over the field (Fig. 2(b)), trading accuracy against
//! candidate count through the grid size.

use sag_geom::{GridSpec, Point};

use crate::model::Scenario;

/// IAC: all pairwise intersection points of subscriber feasible circles,
/// restricted to the field.
///
/// A subscriber whose circle intersects no other circle contributes its
/// own centre — otherwise an isolated subscriber would have no candidate
/// that can cover it (the paper implicitly assumes coverability).
///
/// Duplicate candidates (within `1e-9`) are merged.
pub fn iac_candidates(scenario: &Scenario) -> Vec<Point> {
    let circles = scenario.feasible_circles();
    let mut cands: Vec<Point> = Vec::new();
    let mut isolated = vec![true; circles.len()];
    for (i, a) in circles.iter().enumerate() {
        for (jo, b) in circles.iter().enumerate().skip(i + 1) {
            let pts = a.intersection_points(b);
            if !pts.is_empty() {
                isolated[i] = false;
                isolated[jo] = false;
            }
            cands.extend(pts.into_iter().filter(|p| scenario.field.contains(*p)));
        }
    }
    for (i, a) in circles.iter().enumerate() {
        // Nested circles have no boundary intersection but do overlap:
        // treat as non-isolated only if another circle's centre region
        // overlaps; simplest robust rule — a subscriber also counts as
        // non-isolated when some candidate already covers it.
        if isolated[i] || !cands.iter().any(|p| a.contains(*p)) {
            cands.push(scenario.field.clamp(a.center));
        }
    }
    dedup_points(cands)
}

/// GAC: the centres of a uniform grid of cell side `grid_size` over the
/// field.
///
/// # Panics
/// Panics unless `grid_size > 0` and finite.
pub fn gac_candidates(scenario: &Scenario, grid_size: f64) -> Vec<Point> {
    GridSpec::new(scenario.field, grid_size).centers().collect()
}

/// Removes near-duplicate points (within `1e-9`), preserving first
/// occurrence order, in expected linear time (grid hashing).
pub fn dedup_points(points: Vec<Point>) -> Vec<Point> {
    sag_geom::point::dedup_points_grid(points, 1e-9)
}

/// Filters candidates to those that cover at least one subscriber
/// (within some feasible circle); positions covering nothing can never
/// appear in a minimal solution.
pub fn prune_useless(scenario: &Scenario, candidates: Vec<Point>) -> Vec<Point> {
    let circles = scenario.feasible_circles();
    candidates
        .into_iter()
        .filter(|p| circles.iter().any(|c| c.contains(*p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::Rect;

    fn scenario(subs: Vec<(f64, f64, f64)>) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn iac_crossing_pair_yields_two_points() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (40.0, 0.0, 30.0)]);
        let c = iac_candidates(&sc);
        assert_eq!(c.len(), 2);
        let circles = sc.feasible_circles();
        for p in &c {
            assert!(circles[0].contains(*p) && circles[1].contains(*p));
        }
    }

    #[test]
    fn iac_isolated_subscriber_gets_centre() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (200.0, 0.0, 30.0)]);
        let c = iac_candidates(&sc);
        assert_eq!(c.len(), 2);
        assert!(c.iter().any(|p| p.approx_eq(Point::new(0.0, 0.0))));
        assert!(c.iter().any(|p| p.approx_eq(Point::new(200.0, 0.0))));
    }

    #[test]
    fn iac_every_subscriber_coverable() {
        let sc = scenario(vec![
            (0.0, 0.0, 30.0),
            (40.0, 0.0, 35.0),
            (-100.0, 50.0, 32.0),
            (-100.0, 110.0, 31.0),
            (240.0, 240.0, 30.0),
        ]);
        let cands = iac_candidates(&sc);
        for circle in sc.feasible_circles() {
            assert!(
                cands.iter().any(|p| circle.contains(*p)),
                "no candidate covers subscriber at {}",
                circle.center
            );
        }
    }

    #[test]
    fn iac_candidates_inside_field() {
        // Subscriber near the field edge: intersections outside are cut.
        let sc = scenario(vec![(245.0, 0.0, 30.0), (245.0, 20.0, 30.0)]);
        for p in iac_candidates(&sc) {
            assert!(sc.field.contains(p));
        }
    }

    #[test]
    fn gac_count_scales_with_grid() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)]);
        let coarse = gac_candidates(&sc, 50.0);
        let fine = gac_candidates(&sc, 20.0);
        assert!(fine.len() > coarse.len());
        assert_eq!(coarse.len(), 100); // (500/50)²
    }

    #[test]
    fn prune_keeps_only_covering() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)]);
        let cands = vec![Point::new(0.0, 10.0), Point::new(200.0, 200.0)];
        let kept = prune_useless(&sc, cands);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].approx_eq(Point::new(0.0, 10.0)));
    }

    #[test]
    fn dedup_removes_close_duplicates() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1e-12),
            Point::new(1.0, 0.0),
        ];
        assert_eq!(dedup_points(pts).len(), 2);
    }
}
