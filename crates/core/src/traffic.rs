//! Data-rate-driven modelling: build subscribers from bandwidth demands.
//!
//! §II of the paper reduces each subscriber's data-rate request `b_i`
//! (bps) to a feasible distance `d_i` through the Shannon relation under
//! the two-ray model. [`crate::model::Subscriber`] stores the reduced
//! distance; this module provides the front door that starts from the
//! rate itself, so applications can speak in megabits rather than
//! metres.

use sag_geom::Point;
use sag_radio::LinkBudget;

use crate::error::{SagError, SagResult};
use crate::model::Subscriber;

/// A subscriber demand expressed as a data rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateDemand {
    /// Location of the subscriber.
    pub position: Point,
    /// Requested data rate in bits per second.
    pub rate_bps: f64,
}

impl RateDemand {
    /// Creates a demand.
    ///
    /// # Panics
    /// Panics unless `rate_bps > 0` and finite and the position is
    /// finite.
    pub fn new(position: Point, rate_bps: f64) -> Self {
        assert!(position.is_finite(), "demand position must be finite");
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "rate must be > 0 bps, got {rate_bps}"
        );
        RateDemand { position, rate_bps }
    }

    /// Reduces the demand to a [`Subscriber`] under `link`: the feasible
    /// distance is the farthest point at which a `Pmax` transmitter still
    /// delivers `rate_bps` over the link's bandwidth and noise floor.
    ///
    /// # Errors
    /// [`SagError::Infeasible`] when the rate is undeliverable at any
    /// positive distance (rate above the near-field channel capacity).
    pub fn to_subscriber(&self, link: &LinkBudget) -> SagResult<Subscriber> {
        let d = link.feasible_distance(self.rate_bps);
        if !d.is_finite() || d <= sag_radio::TwoRay::NEAR_FIELD {
            return Err(SagError::Infeasible(format!(
                "rate {:.3e} bps is undeliverable under this link budget (d = {d:.3e})",
                self.rate_bps
            )));
        }
        Ok(Subscriber::new(self.position, d))
    }
}

/// Reduces a batch of rate demands to subscribers, failing on the first
/// undeliverable one.
///
/// # Errors
/// Propagates the first [`SagError::Infeasible`]; the message names the
/// failing demand index.
pub fn subscribers_from_rates(
    demands: &[RateDemand],
    link: &LinkBudget,
) -> SagResult<Vec<Subscriber>> {
    demands
        .iter()
        .enumerate()
        .map(|(i, d)| {
            d.to_subscriber(link).map_err(|e| match e {
                SagError::Infeasible(msg) => SagError::Infeasible(format!("demand {i}: {msg}")),
                other => other,
            })
        })
        .collect()
}

/// The inverse view: the rate a subscriber's reduced distance supports
/// at `Pmax` (diagnostics / round-trip checks).
pub fn supported_rate(sub: &Subscriber, link: &LinkBudget) -> f64 {
    link.capacity(link.pmax(), sub.distance_req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_radio::LinkBudget;

    fn link() -> LinkBudget {
        // A noise floor high enough that feasible distances are tens of
        // metres for Mbps-scale rates.
        LinkBudget::builder().noise(1e-7).build()
    }

    #[test]
    fn rate_round_trips_through_distance() {
        let lb = link();
        let demand = RateDemand::new(Point::new(10.0, -5.0), 2.0e6);
        let sub = demand.to_subscriber(&lb).unwrap();
        assert!(sub.distance_req > 0.0);
        let back = supported_rate(&sub, &lb);
        assert!((back - 2.0e6).abs() / 2.0e6 < 1e-9);
    }

    #[test]
    fn higher_rate_means_shorter_distance() {
        let lb = link();
        let slow = RateDemand::new(Point::ORIGIN, 1.0e6)
            .to_subscriber(&lb)
            .unwrap();
        let fast = RateDemand::new(Point::ORIGIN, 4.0e6)
            .to_subscriber(&lb)
            .unwrap();
        assert!(fast.distance_req < slow.distance_req);
    }

    #[test]
    fn batch_reduction_preserves_order() {
        let lb = link();
        let demands = vec![
            RateDemand::new(Point::new(0.0, 0.0), 1.0e6),
            RateDemand::new(Point::new(50.0, 0.0), 3.0e6),
        ];
        let subs = subscribers_from_rates(&demands, &lb).unwrap();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].position, Point::new(0.0, 0.0));
        assert!(subs[1].distance_req < subs[0].distance_req);
    }

    #[test]
    fn impossible_rate_is_infeasible() {
        let lb = link();
        // Terabit demands over a 1 MHz channel need astronomic SNR; the
        // feasible distance collapses below the near field.
        let demand = RateDemand::new(Point::ORIGIN, 1.0e13);
        match demand.to_subscriber(&lb) {
            Err(SagError::Infeasible(msg)) => assert!(msg.contains("undeliverable")),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn batch_error_names_index() {
        let lb = link();
        let demands = vec![
            RateDemand::new(Point::ORIGIN, 1.0e6),
            RateDemand::new(Point::ORIGIN, 1.0e13),
        ];
        match subscribers_from_rates(&demands, &lb) {
            Err(SagError::Infeasible(msg)) => assert!(msg.contains("demand 1")),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        RateDemand::new(Point::ORIGIN, 0.0);
    }
}
