//! Upper-tier resilience analysis: single points of failure.
//!
//! **Extension beyond the paper.** MBMC's steinerized spanning tree is
//! power-minimal but fragile — on a tree, *every* internal relay is a
//! single point of failure. In the field, however, relays can often
//! reach more neighbours than the tree uses: this module builds the
//! *reachability graph* over base stations, coverage relays and
//! connectivity relays (edges wherever a link of feasible length exists)
//! and reports which relays are true articulation points separating some
//! coverage relay from every base station, and how much slack the
//! topology has.

use sag_geom::Point;
use sag_graph::{articulation, components, Graph};

use crate::coverage::CoverageSolution;
use crate::mbmc::ConnectivityPlan;
use crate::model::Scenario;

/// Resilience report for one deployment.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// Positions of relays whose single failure cuts some coverage relay
    /// off from every base station.
    pub critical_relays: Vec<Point>,
    /// Total relays analysed (coverage + connectivity).
    pub n_relays: usize,
    /// Fraction of relays that are critical (`0.0` = fully redundant).
    pub fragility: f64,
    /// `true` when every coverage relay can reach a BS in the
    /// reachability graph at all (sanity: MBMC guarantees it).
    pub connected: bool,
}

/// Analyses the deployment's reachability graph.
///
/// Vertices: base stations, coverage relays, connectivity relays. Edges:
/// any pair within `link_range(child)` of each other, where a node's
/// link range is the effective feasible distance MBMC computed for its
/// chain (BSs accept any in-range link). A relay is *critical* when it
/// is an articulation point whose removal separates a coverage relay
/// from every base station.
pub fn analyze(
    scenario: &Scenario,
    coverage: &CoverageSolution,
    plan: &ConnectivityPlan,
) -> ResilienceReport {
    let bs: Vec<Point> = scenario.base_station_positions();
    let n_bs = bs.len();
    let n_cov = coverage.relays.len();

    // Vertex layout: [BSs | coverage relays | connectivity relays].
    let mut positions: Vec<Point> = bs.clone();
    positions.extend(coverage.relays.iter().copied());
    // Each connectivity relay inherits its chain's feasible distance.
    let mut ranges: Vec<f64> = vec![f64::INFINITY; n_bs];
    ranges.extend(plan.effective_distance.iter().copied());
    for chain in &plan.chains {
        for &p in &chain.relays {
            positions.push(p);
            ranges.push(plan.effective_distance[chain.child]);
        }
    }
    let n = positions.len();

    // Reachability edges: both endpoints must support the link length
    // (a link is usable at min of the two ranges; BSs are unconstrained).
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            let d = positions[i].distance(positions[j]);
            if d <= ranges[i].min(ranges[j]) + 1e-9 {
                g.add_edge(i, j, d);
            }
        }
    }

    // Sanity: every coverage relay reaches some BS.
    let comp = components::connected_components(&g);
    let comp_of = |v: usize| comp.iter().position(|c| c.binary_search(&v).is_ok());
    let connected = (n_bs..n_bs + n_cov).all(|v| {
        let cv = comp_of(v);
        (0..n_bs).any(|b| comp_of(b) == cv)
    });

    // Critical relays: articulation points (excluding BSs) whose removal
    // actually severs a coverage relay from all BSs.
    let cuts = articulation::articulation_points(&g);
    let mut critical = Vec::new();
    for &cut in &cuts {
        if cut < n_bs {
            continue; // base stations are infrastructure, not relays
        }
        // Re-check with the vertex removed: any coverage relay stranded?
        let mut g2 = Graph::new(n);
        for e in g.edges() {
            if e.u != cut && e.v != cut {
                g2.add_edge(e.u, e.v, e.weight);
            }
        }
        let comp2 = components::connected_components(&g2);
        let comp2_of = |v: usize| comp2.iter().position(|c| c.binary_search(&v).is_ok());
        let stranded = (n_bs..n_bs + n_cov).filter(|&v| v != cut).any(|v| {
            let cv = comp2_of(v);
            !(0..n_bs).any(|b| comp2_of(b) == cv)
        });
        if stranded {
            critical.push(positions[cut]);
        }
    }

    let n_relays = n - n_bs;
    let fragility = if n_relays == 0 {
        0.0
    } else {
        critical.len() as f64 / n_relays as f64
    };
    ResilienceReport {
        critical_relays: critical,
        n_relays,
        fragility,
        connected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbmc::mbmc;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use crate::samc::samc;
    use sag_geom::Rect;

    fn scenario(subs: Vec<(f64, f64, f64)>, bss: Vec<(f64, f64)>) -> Scenario {
        Scenario::new(
            Rect::centered_square(600.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            bss.into_iter()
                .map(|(x, y)| BaseStation::new(Point::new(x, y)))
                .collect(),
            NetworkParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn long_chain_is_fragile() {
        // One coverage relay far from the lone BS: a pure chain, every
        // steiner relay critical.
        let sc = scenario(vec![(0.0, 0.0, 30.0)], vec![(200.0, 0.0)]);
        let cov = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0)],
            assignment: vec![0],
        };
        let plan = mbmc(&sc, &cov).unwrap();
        assert!(plan.n_relays() >= 5);
        let rep = analyze(&sc, &cov, &plan);
        assert!(rep.connected);
        // Every steiner relay on the single chain is critical; the
        // coverage relay itself is an endpoint (not critical).
        assert_eq!(rep.critical_relays.len(), plan.n_relays());
        assert!(rep.fragility > 0.5);
    }

    #[test]
    fn close_bs_means_no_critical_relays() {
        // Coverage relay adjacent to the BS: direct link, nothing to cut.
        let sc = scenario(vec![(0.0, 0.0, 30.0)], vec![(20.0, 0.0)]);
        let cov = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0)],
            assignment: vec![0],
        };
        let plan = mbmc(&sc, &cov).unwrap();
        let rep = analyze(&sc, &cov, &plan);
        assert!(rep.connected);
        assert!(rep.critical_relays.is_empty());
        assert_eq!(rep.fragility, 0.0);
    }

    #[test]
    fn parallel_chains_reduce_fragility() {
        // Two coverage relays whose chains run close together toward the
        // same BS: cross-links between the chains give reroute options,
        // so fragility must be below the single-chain worst case.
        let sc = scenario(
            vec![(0.0, 0.0, 40.0), (0.0, 30.0, 40.0)],
            vec![(150.0, 15.0)],
        );
        let sol = samc(&sc).unwrap();
        let plan = mbmc(&sc, &sol).unwrap();
        let rep = analyze(&sc, &sol, &plan);
        assert!(rep.connected);
        assert!(rep.fragility <= 1.0);
    }

    #[test]
    fn report_counts_are_consistent() {
        let sc = scenario(
            vec![(0.0, 0.0, 35.0), (100.0, 50.0, 30.0)],
            vec![(250.0, 250.0), (-250.0, -250.0)],
        );
        let sol = samc(&sc).unwrap();
        let plan = mbmc(&sc, &sol).unwrap();
        let rep = analyze(&sc, &sol, &plan);
        assert_eq!(rep.n_relays, sol.n_relays() + plan.n_relays());
        assert!(rep.critical_relays.len() <= rep.n_relays);
        assert!((0.0..=1.0).contains(&rep.fragility));
    }
}
