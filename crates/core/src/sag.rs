//! The full SNR-aware Green relay pipeline — SAG (Algorithm 9).
//!
//! `SAG = SAMC → PRO → MBMC → UCPO`: place the minimum coverage relays
//! under SNR, reduce their powers, connect them to base stations with a
//! steinerized multi-BS spanning tree, and power the relay chains at
//! their per-hop minimum. The report carries every intermediate artefact
//! so the experiment harness can reproduce each figure from one run.

use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use sag_lp::{Budget, Spent};
use sag_obs::{Collector, StageMetrics};
use sag_radio::ledger::LedgerMode;

use crate::candidates::iac_candidates;
use crate::coverage::{interference_ledger, push_ledger_mode_override, CoverageSolution};
use crate::engine;
use crate::error::SagResult;
use crate::mbmc::{mbmc, ConnectivityPlan};
use crate::model::{Relay, RelayRole, Scenario};
use crate::pro::{pro_with_budget, PowerAllocation};
use crate::samc::{samc_with_budget_threads, SamcConfig};
use crate::solver::{SelectionReason, SolveOutcome, SolverBackend, SolverBuilder};
use crate::ucpo::{ucpo, UpperTierPower};
use crate::zone::{observed_zone_partition, zone_scenario};

/// Which algorithm solves the lower tier (coverage placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LowerSolver {
    /// The paper's polynomial SAMC (Algorithm 1) — the default.
    #[default]
    Samc,
    /// Exact ILPQC branch-and-bound over IAC candidates; when its
    /// [`Budget`] runs out before any incumbent exists, degrade to the
    /// greedy set-cover fallback instead of failing.
    IlpqcWithGreedyFallback,
    /// Exact ILPQC with no fallback: budget exhaustion without an
    /// incumbent surfaces as [`SagError::BudgetExceeded`].
    IlpqcStrict,
}

/// Which solver actually produced the coverage in a [`SagReport`].
///
/// On the candidate-set path the report records the *weakest* backend
/// that answered any zone (by [`SolverBackend::rank`]); the full
/// per-zone provenance is in [`SagReport::zone_solvers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnsweringSolver {
    /// SAMC answered.
    Samc,
    /// The exact ILPQC answered (check the budget spent and the
    /// configured node limit to judge whether it proved optimality).
    Ilpqc,
    /// The LP-rounding backend answered — feasible, no optimality
    /// certificate, but LP-informed.
    LpRound,
    /// The local-search backend answered — feasible, no certificate.
    LocalSearch,
    /// The greedy set cover answered (chosen by policy or reached as
    /// the last rung of the ladder) — feasible, no certificate.
    GreedyFallback,
}

impl AnsweringSolver {
    /// Maps a committed backend identity onto the report enum.
    pub fn from_backend(backend: SolverBackend) -> AnsweringSolver {
        match backend {
            SolverBackend::ExactIlp => AnsweringSolver::Ilpqc,
            SolverBackend::LpRound => AnsweringSolver::LpRound,
            SolverBackend::LocalSearch => AnsweringSolver::LocalSearch,
            SolverBackend::Greedy => AnsweringSolver::GreedyFallback,
        }
    }
}

/// Per-zone solver provenance recorded in [`SagReport::zone_solvers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneSolverRecord {
    /// Zone index (partition order).
    pub zone: usize,
    /// Backend whose answer was committed for the zone.
    pub backend: SolverBackend,
    /// Why that backend answered.
    pub reason: SelectionReason,
    /// Whether the zone's answer carries an optimality certificate.
    pub optimal: bool,
}

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct SagPipelineConfig {
    /// Lower-tier SAMC options.
    pub samc: SamcConfig,
    /// Lower-tier solver selection (default: SAMC).
    pub lower_solver: LowerSolver,
    /// Backend selection front for the candidate-set lower tier
    /// (ILPQC variants): fixed, adaptive, or portfolio choice plus the
    /// degradation ladder. Defaults to the `SAG_SOLVER` environment
    /// variable (read once per process), else adaptive selection.
    /// Ignored by [`LowerSolver::Samc`]; [`LowerSolver::IlpqcStrict`]
    /// forces the strict-exact variant regardless of the choice here.
    pub solver: SolverBuilder,
    /// Cooperative budget threaded through every stage (default:
    /// unlimited). See [`Budget`].
    pub budget: Budget,
    /// Collect per-stage spans and work counters into
    /// [`SagReport::metrics`] (default: `true`). Disable for
    /// benchmark baselines that want the bare disabled-path cost; any
    /// process-wide sink installed via [`sag_obs::install`] still
    /// receives events either way.
    pub collect_metrics: bool,
    /// Worker threads for the zone-parallel lower tier: `1` solves
    /// zones sequentially on the calling thread, `N > 1` solves up to
    /// `N` zones concurrently, `0` uses every available hardware
    /// thread. `threads = 1` and `threads = N` produce byte-identical
    /// reports (see [`crate::engine`]). Defaults to the `SAG_THREADS`
    /// environment variable (read once per process), or `1` when unset
    /// or unparsable.
    pub threads: usize,
    /// Explicit override of the `SAG_SNR_ORACLE` debug switch:
    /// `Some(true)` forces the O(R)-per-query oracle ledger,
    /// `Some(false)` forces the incremental ledger, `None` (the
    /// default) defers to the environment variable, which is read once
    /// per process and cached. The override is installed for the
    /// duration of the run on the calling thread and propagated to
    /// zone workers.
    pub snr_oracle: Option<bool>,
}

/// The `SAG_THREADS` default, read once per process.
fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("SAG_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1)
    })
}

impl Default for SagPipelineConfig {
    fn default() -> Self {
        SagPipelineConfig {
            samc: SamcConfig::default(),
            lower_solver: LowerSolver::default(),
            solver: SolverBuilder::default(),
            budget: Budget::unlimited(),
            collect_metrics: true,
            threads: default_threads(),
            snr_oracle: None,
        }
    }
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct SagReport {
    /// Lower-tier placement (SAMC).
    pub coverage: CoverageSolution,
    /// Lower-tier powers (PRO).
    pub lower_power: PowerAllocation,
    /// Upper-tier plan (MBMC).
    pub plan: ConnectivityPlan,
    /// Upper-tier powers (UCPO).
    pub upper_power: UpperTierPower,
    /// The solver that produced `coverage` (records degradation; the
    /// weakest rung across zones on the candidate-set path).
    pub solver: AnsweringSolver,
    /// Per-zone backend + selection-reason records from the
    /// candidate-set lower tier, in zone index order (empty on the
    /// SAMC path, which has no backend choice).
    pub zone_solvers: Vec<ZoneSolverRecord>,
    /// Budget the lower-tier solve consumed before answering.
    pub budget_spent: Spent,
    /// Per-stage spans and work counters collected during the run
    /// (empty when [`SagPipelineConfig::collect_metrics`] is off).
    pub metrics: StageMetrics,
}

/// Compact power summary of a report (serializable for the harness).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct PowerSummary {
    /// `P_L`: total lower-tier power after PRO.
    pub lower: f64,
    /// `P_H`: total upper-tier power after UCPO.
    pub upper: f64,
    /// `P_total = P_L + P_H` (Algorithm 9's return value).
    pub total: f64,
}

impl SagReport {
    /// Power totals.
    pub fn power_summary(&self) -> PowerSummary {
        let lower = self.lower_power.total();
        let upper = self.upper_power.total();
        PowerSummary {
            lower,
            upper,
            total: lower + upper,
        }
    }

    /// Number of coverage relays placed.
    pub fn n_coverage_relays(&self) -> usize {
        self.coverage.n_relays()
    }

    /// Number of connectivity relays placed.
    pub fn n_connectivity_relays(&self) -> usize {
        self.plan.n_relays()
    }

    /// Materialises every placed relay with role and power (coverage
    /// relays first, then connectivity relays in chain order).
    pub fn relays(&self) -> Vec<Relay> {
        let mut out: Vec<Relay> = self
            .coverage
            .relays
            .iter()
            .zip(&self.lower_power.powers)
            .map(|(&position, &power)| Relay {
                position,
                role: RelayRole::Coverage,
                power,
            })
            .collect();
        for (chain, &hp) in self.plan.chains.iter().zip(&self.upper_power.hop_power) {
            for &position in &chain.relays {
                out.push(Relay {
                    position,
                    role: RelayRole::Connectivity,
                    power: hp,
                });
            }
        }
        out
    }
}

impl fmt::Display for SagReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.power_summary();
        writeln!(
            f,
            "solver: {:?} ({} nodes, {:.1?})",
            self.solver, self.budget_spent.nodes, self.budget_spent.elapsed
        )?;
        writeln!(
            f,
            "relays: {} coverage + {} connectivity",
            self.n_coverage_relays(),
            self.n_connectivity_relays()
        )?;
        write!(
            f,
            "power: lower {:.3} + upper {:.3} = {:.3}",
            p.lower, p.upper, p.total
        )?;
        if !self.metrics.is_empty() {
            write!(f, "\n{}", self.metrics)?;
        }
        Ok(())
    }
}

/// Runs the full SAG pipeline (Algorithm 9) with default configuration.
///
/// # Errors
/// Propagates [`crate::error::SagError::Infeasible`] from SAMC and any
/// connectivity error from MBMC.
///
/// # Example
/// ```
/// use sag_core::{model::*, sag::run_sag};
/// use sag_geom::{Point, Rect};
///
/// let scenario = Scenario::new(
///     Rect::centered_square(500.0),
///     vec![
///         Subscriber::new(Point::new(0.0, 0.0), 35.0),
///         Subscriber::new(Point::new(120.0, 40.0), 30.0),
///     ],
///     vec![BaseStation::new(Point::new(200.0, 200.0))],
///     NetworkParams::default(),
/// )?;
/// let report = run_sag(&scenario)?;
/// let p = report.power_summary();
/// assert!(p.total > 0.0 && p.total == p.lower + p.upper);
/// # Ok::<(), sag_core::error::SagError>(())
/// ```
pub fn run_sag(scenario: &Scenario) -> SagResult<SagReport> {
    run_sag_with(scenario, SagPipelineConfig::default())
}

/// Runs SAG with explicit configuration.
///
/// The scenario is deep-validated first ([`Scenario::validate`]), so a
/// report is only ever produced from well-formed input. The lower tier
/// is solved per `config.lower_solver`; with
/// [`LowerSolver::IlpqcWithGreedyFallback`] an exhausted budget degrades
/// to the greedy set cover and the report's `solver` field records the
/// rung of the ladder that answered.
///
/// # Errors
/// [`SagError::InvalidScenario`] on malformed input,
/// [`SagError::BudgetExceeded`] when a stage runs out of budget with no
/// fallback available; otherwise see [`run_sag`].
pub fn run_sag_with(scenario: &Scenario, config: SagPipelineConfig) -> SagResult<SagReport> {
    // The pipeline's root span: every stage span links under it, so a
    // JSONL capture of one run reassembles into a single tree. This is
    // also the dump-on-failure boundary — any typed error leaving the
    // pipeline emits exactly one post-mortem frame while the root span
    // is still open.
    let run = || {
        let _root = sag_obs::span("run_sag");
        run_sag_inner(scenario, &config).inspect_err(|e| {
            e.emit_post_mortem();
        })
    };
    if !config.collect_metrics {
        return run();
    }
    let collector = Arc::new(Collector::default());
    let result = sag_obs::with_local(collector.clone(), run);
    result.map(|mut report| {
        report.metrics = collector.summary();
        report
    })
}

fn run_sag_inner(scenario: &Scenario, config: &SagPipelineConfig) -> SagResult<SagReport> {
    let _mode = config.snr_oracle.map(|oracle| {
        push_ledger_mode_override(Some(if oracle {
            LedgerMode::Oracle
        } else {
            LedgerMode::Incremental
        }))
    });
    scenario.validate()?; // Step 1: ingress gate
    let (coverage, solver, budget_spent, zone_solvers) = solve_lower_tier(scenario, config)?;
    // The lower tier answered, so whatever it legitimately consumed
    // must not be double-billed to the polynomial tail: rebudget the
    // tail from what actually remains on *every* rung.
    let tail = tail_budget(&config.budget);
    let lower_power = pro_with_budget(scenario, &coverage, &tail)?; // Step 3
    let plan = mbmc(scenario, &coverage)?; // Step 4
    let upper_power = ucpo(scenario, &coverage, &plan); // Step 5
    if sag_obs::enabled() {
        sag_obs::gauge("coverage.relays", coverage.n_relays() as f64);
        sag_obs::gauge(
            "coverage.one_on_one",
            coverage.served_index().one_on_one() as f64,
        );
        sag_obs::gauge("connectivity.relays", plan.n_relays() as f64);
        sag_obs::gauge(
            "connectivity.hops",
            plan.chains.iter().map(|c| c.hops).sum::<usize>() as f64,
        );
        let mut bs_used = plan.serving_bs.clone();
        bs_used.sort_unstable();
        bs_used.dedup();
        sag_obs::gauge("connectivity.bs_used", bs_used.len() as f64);
    }
    Ok(SagReport {
        coverage,
        lower_power,
        plan,
        upper_power,
        solver,
        zone_solvers,
        budget_spent,
        metrics: StageMetrics::default(),
    })
}

/// Budget for the polynomial tail stages (PRO → MBMC → UCPO) after a
/// successful lower-tier solve.
///
/// The node cap is a lower-tier (branch-and-bound) resource and never
/// carries over. A still-live deadline is kept at the same absolute
/// cutoff; an already-spent deadline is dropped rather than inherited —
/// the expensive search has answered, and failing the cheap tail over
/// time the lower tier legitimately consumed would turn a successful
/// solve (or degradation) into [`SagError::BudgetExceeded`] — the
/// shared-deadline double-spend bug. External cancellation is always
/// preserved.
fn tail_budget(budget: &Budget) -> Budget {
    let mut tail = Budget::unlimited();
    if let Some(flag) = budget.cancel_flag() {
        tail = tail.with_cancel_flag(flag);
    }
    if let Some(at) = budget.deadline() {
        if Instant::now() < at {
            tail = tail.with_deadline_until(at);
        }
    }
    tail
}

/// Step 2 with backend selection: SAMC runs as-is; the candidate-set
/// path routes every zone through [`SolverBuilder::solve_zone`], which
/// owns adaptive selection, portfolio racing, and the degradation
/// ladder (budget-exhausted → greedy). Both paths run on the
/// zone-parallel engine with `config.threads` workers; the returned
/// [`Spent`] is stage-local (this stage's wall time and node count, not
/// pipeline-so-far) on every arm.
fn solve_lower_tier(
    scenario: &Scenario,
    config: &SagPipelineConfig,
) -> SagResult<(
    CoverageSolution,
    AnsweringSolver,
    Spent,
    Vec<ZoneSolverRecord>,
)> {
    let stage_started = Instant::now();
    match config.lower_solver {
        LowerSolver::Samc => {
            let coverage =
                samc_with_budget_threads(scenario, config.samc, &config.budget, config.threads)?;
            let spent = Spent {
                nodes: 0,
                elapsed: stage_started.elapsed(),
            };
            Ok((coverage, AnsweringSolver::Samc, spent, Vec::new()))
        }
        LowerSolver::IlpqcWithGreedyFallback | LowerSolver::IlpqcStrict => {
            let zones = observed_zone_partition(scenario);
            let base = interference_ledger(scenario, &[]);
            // One pool across all zone solves: the node cap bounds the
            // *combined* branch-and-bound effort, so N workers cannot
            // multiply the configured budget by N.
            let shared = config.budget.clone().with_shared_node_pool();
            let builder = match config.lower_solver {
                LowerSolver::IlpqcStrict => config.solver.strict_exact(),
                _ => config.solver,
            };
            let outcomes = engine::run_zones("ilpqc", zones.len(), config.threads, |zi| {
                let (zsc, _back_map) = zone_scenario(scenario, &zones[zi]);
                let cands = iac_candidates(&zsc);
                let SolveOutcome {
                    solution,
                    backend,
                    reason,
                    optimal,
                    spent,
                } = builder.solve_zone(&zsc, &cands, &shared)?;
                Ok((
                    engine::zone_outcome(&base, &zones[zi], solution),
                    backend,
                    reason,
                    optimal,
                    spent,
                ))
            })?;
            let mut nodes = 0;
            let mut weakest = SolverBackend::ExactIlp;
            let mut zone_solvers = Vec::with_capacity(outcomes.len());
            let mut parts = Vec::with_capacity(outcomes.len());
            for (zone, (part, backend, reason, optimal, zone_spent)) in
                outcomes.into_iter().enumerate()
            {
                nodes += zone_spent.nodes;
                // The report's summary field records the weakest rung
                // that answered any zone.
                if backend.rank() > weakest.rank() {
                    weakest = backend;
                }
                zone_solvers.push(ZoneSolverRecord {
                    zone,
                    backend,
                    reason,
                    optimal,
                });
                parts.push(part);
            }
            let coverage = engine::merge_zone_outcomes(scenario, &zones, parts, &base, "ilpqc")?;
            let spent = Spent {
                nodes,
                elapsed: stage_started.elapsed(),
            };
            Ok((
                coverage,
                AnsweringSolver::from_backend(weakest),
                spent,
                zone_solvers,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::is_feasible;
    use crate::error::SagError;
    use crate::model::{BaseStation, NetworkParams, Subscriber};
    use crate::pro::{allocation_is_feasible, baseline_power};
    use sag_geom::{Point, Rect};
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(n_bs: usize) -> Scenario {
        let bss = [
            (250.0, 250.0),
            (-250.0, 250.0),
            (250.0, -250.0),
            (-250.0, -250.0),
        ];
        Scenario::new(
            Rect::centered_square(600.0),
            vec![
                Subscriber::new(Point::new(0.0, 0.0), 35.0),
                Subscriber::new(Point::new(30.0, 10.0), 32.0),
                Subscriber::new(Point::new(150.0, -60.0), 30.0),
                Subscriber::new(Point::new(-170.0, 100.0), 38.0),
            ],
            bss[..n_bs]
                .iter()
                .map(|&(x, y)| BaseStation::new(Point::new(x, y)))
                .collect(),
            NetworkParams::new(
                LinkBudget::builder().snr_threshold(Db::new(-15.0)).build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    #[test]
    fn pipeline_end_to_end() {
        let sc = scenario(4);
        let report = run_sag(&sc).unwrap();
        assert!(is_feasible(&sc, &report.coverage));
        assert!(allocation_is_feasible(
            &sc,
            &report.coverage,
            &report.lower_power
        ));
        let p = report.power_summary();
        assert!(p.lower > 0.0 && p.upper > 0.0);
        assert!((p.total - p.lower - p.upper).abs() < 1e-12);
        // PRO must beat the all-Pmax lower tier.
        assert!(p.lower <= baseline_power(&sc, &report.coverage).total());
    }

    #[test]
    fn relays_roundtrip_roles_and_counts() {
        let sc = scenario(2);
        let report = run_sag(&sc).unwrap();
        let relays = report.relays();
        let n_cov = relays
            .iter()
            .filter(|r| r.role == RelayRole::Coverage)
            .count();
        let n_con = relays
            .iter()
            .filter(|r| r.role == RelayRole::Connectivity)
            .count();
        assert_eq!(n_cov, report.n_coverage_relays());
        assert_eq!(n_con, report.n_connectivity_relays());
        for r in &relays {
            assert!(r.power <= sc.params.link.pmax() + 1e-9);
            assert!(r.power >= 0.0);
        }
    }

    #[test]
    fn more_base_stations_never_need_more_connectivity() {
        let one = run_sag(&scenario(1)).unwrap();
        let four = run_sag(&scenario(4)).unwrap();
        assert!(four.n_connectivity_relays() <= one.n_connectivity_relays());
    }

    #[test]
    fn default_pipeline_records_samc_as_answering_solver() {
        let report = run_sag(&scenario(2)).unwrap();
        assert_eq!(report.solver, AnsweringSolver::Samc);
    }

    #[test]
    fn ilpqc_solver_records_ilpqc() {
        let sc = scenario(2);
        let config = SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcWithGreedyFallback,
            ..Default::default()
        };
        let report = run_sag_with(&sc, config).unwrap();
        assert_eq!(report.solver, AnsweringSolver::Ilpqc);
        assert!(report.budget_spent.nodes >= 1);
        assert!(is_feasible(&sc, &report.coverage));
        // Small zones: adaptive selection must have picked the exact
        // backend for every zone and recorded why.
        assert!(!report.zone_solvers.is_empty());
        for (i, rec) in report.zone_solvers.iter().enumerate() {
            assert_eq!(rec.zone, i);
            assert_eq!(rec.backend, SolverBackend::ExactIlp);
            assert_eq!(rec.reason, SelectionReason::SmallZone);
            assert!(rec.optimal);
        }
    }

    #[test]
    fn tiny_budget_falls_back_to_greedy() {
        let sc = scenario(2);
        let config = SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcWithGreedyFallback,
            budget: Budget::unlimited().with_node_limit(0),
            ..Default::default()
        };
        let report = run_sag_with(&sc, config).unwrap();
        assert_eq!(report.solver, AnsweringSolver::GreedyFallback);
        assert!(is_feasible(&sc, &report.coverage));
        assert!(allocation_is_feasible(
            &sc,
            &report.coverage,
            &report.lower_power
        ));
        // A node cap this small routes straight to the greedy rung.
        assert!(report.zone_solvers.iter().all(
            |r| r.backend == SolverBackend::Greedy && r.reason == SelectionReason::BudgetCapped
        ));
    }

    #[test]
    fn fixed_and_portfolio_overrides_reach_the_zone_workers() {
        let sc = scenario(2);
        let fixed = run_sag_with(
            &sc,
            SagPipelineConfig {
                lower_solver: LowerSolver::IlpqcWithGreedyFallback,
                solver: SolverBuilder::fixed(crate::solver::SolverBackend::LpRound),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(fixed.solver, AnsweringSolver::LpRound);
        assert!(is_feasible(&sc, &fixed.coverage));
        assert!(fixed
            .zone_solvers
            .iter()
            .all(|r| r.reason == SelectionReason::Forced));

        let raced = run_sag_with(
            &sc,
            SagPipelineConfig {
                lower_solver: LowerSolver::IlpqcWithGreedyFallback,
                solver: SolverBuilder::portfolio(
                    crate::solver::SolverBackend::ExactIlp,
                    crate::solver::SolverBackend::Greedy,
                ),
                ..Default::default()
            },
        )
        .unwrap();
        // Rank arbitration: the exact arm wins whenever it answers.
        assert_eq!(raced.solver, AnsweringSolver::Ilpqc);
        assert!(raced
            .zone_solvers
            .iter()
            .all(|r| r.reason == SelectionReason::PortfolioRank));
        assert!(raced.metrics.counter("portfolio.races") >= 1);
    }

    #[test]
    fn tiny_budget_strict_surfaces_budget_exceeded() {
        let sc = scenario(2);
        let config = SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcStrict,
            budget: Budget::unlimited().with_node_limit(0),
            ..Default::default()
        };
        assert!(matches!(
            run_sag_with(&sc, config),
            Err(SagError::BudgetExceeded { stage: "ilpqc", .. })
        ));
    }

    #[test]
    fn invalid_scenario_is_rejected_at_ingress() {
        let mut sc = scenario(1);
        sc.subscribers[0].position.x = f64::NAN;
        assert!(matches!(run_sag(&sc), Err(SagError::InvalidScenario(_))));
    }

    // --- S1: the tail never inherits a spent budget -------------------

    #[test]
    fn tail_budget_drops_an_expired_deadline() {
        let spent = Budget::unlimited().with_deadline(std::time::Duration::from_millis(1));
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(spent.check_interrupt().is_err(), "precondition: expired");
        let tail = tail_budget(&spent);
        assert!(tail.deadline().is_none());
        assert!(tail.check_interrupt().is_ok());
    }

    #[test]
    fn tail_budget_keeps_a_live_deadline_at_the_same_cutoff() {
        let live = Budget::unlimited().with_deadline(std::time::Duration::from_secs(3600));
        let at = live.deadline().unwrap();
        let tail = tail_budget(&live);
        assert_eq!(tail.deadline(), Some(at));
    }

    #[test]
    fn tail_budget_drops_the_node_cap_and_keeps_the_cancel_flag() {
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let b = Budget::unlimited()
            .with_node_limit(7)
            .with_cancel_flag(flag.clone());
        let tail = tail_budget(&b);
        assert!(tail.node_limit().is_none());
        assert!(tail.check_interrupt().is_ok());
        flag.store(true, std::sync::atomic::Ordering::SeqCst);
        assert!(tail.check_interrupt().is_err(), "cancellation still bites");
    }

    #[test]
    fn exhausted_node_budget_no_longer_starves_the_tail() {
        // The lower tier burns its node budget, degrades to greedy, and
        // the polynomial tail must still complete: the regression was
        // handing PRO the same exhausted budget.
        let sc = scenario(2);
        let config = SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcWithGreedyFallback,
            budget: Budget::unlimited().with_node_limit(1),
            ..Default::default()
        };
        let report = run_sag_with(&sc, config).unwrap();
        assert!(is_feasible(&sc, &report.coverage));
    }

    // --- Zone-parallel engine plumbing --------------------------------

    #[test]
    fn thread_counts_produce_identical_reports() {
        let sc = scenario(3);
        for solver in [LowerSolver::Samc, LowerSolver::IlpqcWithGreedyFallback] {
            let run = |threads: usize| {
                run_sag_with(
                    &sc,
                    SagPipelineConfig {
                        lower_solver: solver,
                        threads,
                        ..Default::default()
                    },
                )
                .unwrap()
            };
            let seq = run(1);
            let par = run(4);
            assert_eq!(seq.coverage, par.coverage, "{solver:?}");
            assert_eq!(seq.lower_power.powers, par.lower_power.powers);
            assert_eq!(seq.upper_power.hop_power, par.upper_power.hop_power);
            assert_eq!(seq.solver, par.solver);
        }
    }

    #[test]
    fn snr_oracle_override_matches_the_default_ledger() {
        let sc = scenario(2);
        let run = |snr_oracle: Option<bool>| {
            run_sag_with(
                &sc,
                SagPipelineConfig {
                    snr_oracle,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let by_env = run(None);
        let oracle = run(Some(true));
        let incremental = run(Some(false));
        // Oracle and incremental ledgers agree on every decision here;
        // the override only swaps the evaluation strategy.
        assert_eq!(oracle.coverage, incremental.coverage);
        assert_eq!(by_env.coverage, incremental.coverage);
    }

    #[test]
    fn worker_panic_surfaces_as_a_typed_error() {
        let sc = scenario(2);
        crate::engine::inject_zone_worker_panic(true);
        let out = run_sag_with(
            &sc,
            SagPipelineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        crate::engine::inject_zone_worker_panic(false);
        assert!(matches!(
            out,
            Err(SagError::WorkerPanic { stage: "samc", .. })
        ));
    }
}
