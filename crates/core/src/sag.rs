//! The full SNR-aware Green relay pipeline — SAG (Algorithm 9).
//!
//! `SAG = SAMC → PRO → MBMC → UCPO`: place the minimum coverage relays
//! under SNR, reduce their powers, connect them to base stations with a
//! steinerized multi-BS spanning tree, and power the relay chains at
//! their per-hop minimum. The report carries every intermediate artefact
//! so the experiment harness can reproduce each figure from one run.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use sag_lp::{Budget, Spent};
use sag_obs::{Collector, StageMetrics};

use crate::candidates::iac_candidates;
use crate::coverage::CoverageSolution;
use crate::error::{SagError, SagResult};
use crate::fallback::greedy_cover;
use crate::ilpqc::{solve_ilpqc, IlpqcConfig};
use crate::mbmc::{mbmc, ConnectivityPlan};
use crate::model::{Relay, RelayRole, Scenario};
use crate::pro::{pro_with_budget, PowerAllocation};
use crate::samc::{samc_with_budget, SamcConfig};
use crate::ucpo::{ucpo, UpperTierPower};

/// Which algorithm solves the lower tier (coverage placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LowerSolver {
    /// The paper's polynomial SAMC (Algorithm 1) — the default.
    #[default]
    Samc,
    /// Exact ILPQC branch-and-bound over IAC candidates; when its
    /// [`Budget`] runs out before any incumbent exists, degrade to the
    /// greedy set-cover fallback instead of failing.
    IlpqcWithGreedyFallback,
    /// Exact ILPQC with no fallback: budget exhaustion without an
    /// incumbent surfaces as [`SagError::BudgetExceeded`].
    IlpqcStrict,
}

/// Which solver actually produced the coverage in a [`SagReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnsweringSolver {
    /// SAMC answered.
    Samc,
    /// The exact ILPQC answered (check the budget spent and the
    /// configured node limit to judge whether it proved optimality).
    Ilpqc,
    /// The ILPQC ran out of budget and the greedy fallback answered —
    /// feasible, but with no optimality certificate.
    GreedyFallback,
}

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct SagPipelineConfig {
    /// Lower-tier SAMC options.
    pub samc: SamcConfig,
    /// Lower-tier solver selection (default: SAMC).
    pub lower_solver: LowerSolver,
    /// Cooperative budget threaded through every stage (default:
    /// unlimited). See [`Budget`].
    pub budget: Budget,
    /// Collect per-stage spans and work counters into
    /// [`SagReport::metrics`] (default: `true`). Disable for
    /// benchmark baselines that want the bare disabled-path cost; any
    /// process-wide sink installed via [`sag_obs::install`] still
    /// receives events either way.
    pub collect_metrics: bool,
}

impl Default for SagPipelineConfig {
    fn default() -> Self {
        SagPipelineConfig {
            samc: SamcConfig::default(),
            lower_solver: LowerSolver::default(),
            budget: Budget::unlimited(),
            collect_metrics: true,
        }
    }
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct SagReport {
    /// Lower-tier placement (SAMC).
    pub coverage: CoverageSolution,
    /// Lower-tier powers (PRO).
    pub lower_power: PowerAllocation,
    /// Upper-tier plan (MBMC).
    pub plan: ConnectivityPlan,
    /// Upper-tier powers (UCPO).
    pub upper_power: UpperTierPower,
    /// The solver that produced `coverage` (records degradation).
    pub solver: AnsweringSolver,
    /// Budget the lower-tier solve consumed before answering.
    pub budget_spent: Spent,
    /// Per-stage spans and work counters collected during the run
    /// (empty when [`SagPipelineConfig::collect_metrics`] is off).
    pub metrics: StageMetrics,
}

/// Compact power summary of a report (serializable for the harness).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct PowerSummary {
    /// `P_L`: total lower-tier power after PRO.
    pub lower: f64,
    /// `P_H`: total upper-tier power after UCPO.
    pub upper: f64,
    /// `P_total = P_L + P_H` (Algorithm 9's return value).
    pub total: f64,
}

impl SagReport {
    /// Power totals.
    pub fn power_summary(&self) -> PowerSummary {
        let lower = self.lower_power.total();
        let upper = self.upper_power.total();
        PowerSummary {
            lower,
            upper,
            total: lower + upper,
        }
    }

    /// Number of coverage relays placed.
    pub fn n_coverage_relays(&self) -> usize {
        self.coverage.n_relays()
    }

    /// Number of connectivity relays placed.
    pub fn n_connectivity_relays(&self) -> usize {
        self.plan.n_relays()
    }

    /// Materialises every placed relay with role and power (coverage
    /// relays first, then connectivity relays in chain order).
    pub fn relays(&self) -> Vec<Relay> {
        let mut out: Vec<Relay> = self
            .coverage
            .relays
            .iter()
            .zip(&self.lower_power.powers)
            .map(|(&position, &power)| Relay {
                position,
                role: RelayRole::Coverage,
                power,
            })
            .collect();
        for (chain, &hp) in self.plan.chains.iter().zip(&self.upper_power.hop_power) {
            for &position in &chain.relays {
                out.push(Relay {
                    position,
                    role: RelayRole::Connectivity,
                    power: hp,
                });
            }
        }
        out
    }
}

impl fmt::Display for SagReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.power_summary();
        writeln!(
            f,
            "solver: {:?} ({} nodes, {:.1?})",
            self.solver, self.budget_spent.nodes, self.budget_spent.elapsed
        )?;
        writeln!(
            f,
            "relays: {} coverage + {} connectivity",
            self.n_coverage_relays(),
            self.n_connectivity_relays()
        )?;
        write!(
            f,
            "power: lower {:.3} + upper {:.3} = {:.3}",
            p.lower, p.upper, p.total
        )?;
        if !self.metrics.is_empty() {
            write!(f, "\n{}", self.metrics)?;
        }
        Ok(())
    }
}

/// Runs the full SAG pipeline (Algorithm 9) with default configuration.
///
/// # Errors
/// Propagates [`crate::error::SagError::Infeasible`] from SAMC and any
/// connectivity error from MBMC.
///
/// # Example
/// ```
/// use sag_core::{model::*, sag::run_sag};
/// use sag_geom::{Point, Rect};
///
/// let scenario = Scenario::new(
///     Rect::centered_square(500.0),
///     vec![
///         Subscriber::new(Point::new(0.0, 0.0), 35.0),
///         Subscriber::new(Point::new(120.0, 40.0), 30.0),
///     ],
///     vec![BaseStation::new(Point::new(200.0, 200.0))],
///     NetworkParams::default(),
/// )?;
/// let report = run_sag(&scenario)?;
/// let p = report.power_summary();
/// assert!(p.total > 0.0 && p.total == p.lower + p.upper);
/// # Ok::<(), sag_core::error::SagError>(())
/// ```
pub fn run_sag(scenario: &Scenario) -> SagResult<SagReport> {
    run_sag_with(scenario, SagPipelineConfig::default())
}

/// Runs SAG with explicit configuration.
///
/// The scenario is deep-validated first ([`Scenario::validate`]), so a
/// report is only ever produced from well-formed input. The lower tier
/// is solved per `config.lower_solver`; with
/// [`LowerSolver::IlpqcWithGreedyFallback`] an exhausted budget degrades
/// to the greedy set cover and the report's `solver` field records the
/// rung of the ladder that answered.
///
/// # Errors
/// [`SagError::InvalidScenario`] on malformed input,
/// [`SagError::BudgetExceeded`] when a stage runs out of budget with no
/// fallback available; otherwise see [`run_sag`].
pub fn run_sag_with(scenario: &Scenario, config: SagPipelineConfig) -> SagResult<SagReport> {
    if !config.collect_metrics {
        return run_sag_inner(scenario, &config);
    }
    let collector = Arc::new(Collector::default());
    let result = sag_obs::with_local(collector.clone(), || run_sag_inner(scenario, &config));
    result.map(|mut report| {
        report.metrics = collector.summary();
        report
    })
}

fn run_sag_inner(scenario: &Scenario, config: &SagPipelineConfig) -> SagResult<SagReport> {
    scenario.validate()?; // Step 1: ingress gate
    let started = Instant::now();
    let (coverage, solver, budget_spent) = solve_lower_tier(scenario, config, started)?;
    // On the fallback rung the budget is already exhausted; the
    // remaining polynomial stages run unbudgeted so degradation still
    // yields a complete report.
    let tail_budget = if solver == AnsweringSolver::GreedyFallback {
        Budget::unlimited()
    } else {
        config.budget.clone()
    };
    let lower_power = pro_with_budget(scenario, &coverage, &tail_budget)?; // Step 3
    let plan = mbmc(scenario, &coverage)?; // Step 4
    let upper_power = ucpo(scenario, &coverage, &plan); // Step 5
    if sag_obs::enabled() {
        sag_obs::gauge("coverage.relays", coverage.n_relays() as f64);
        sag_obs::gauge(
            "coverage.one_on_one",
            coverage.served_index().one_on_one() as f64,
        );
        sag_obs::gauge("connectivity.relays", plan.n_relays() as f64);
        sag_obs::gauge(
            "connectivity.hops",
            plan.chains.iter().map(|c| c.hops).sum::<usize>() as f64,
        );
        let mut bs_used = plan.serving_bs.clone();
        bs_used.sort_unstable();
        bs_used.dedup();
        sag_obs::gauge("connectivity.bs_used", bs_used.len() as f64);
    }
    Ok(SagReport {
        coverage,
        lower_power,
        plan,
        upper_power,
        solver,
        budget_spent,
        metrics: StageMetrics::default(),
    })
}

/// Step 2 with the degradation ladder: configured solver first, greedy
/// fallback when an ILPQC budget exhaustion permits it.
fn solve_lower_tier(
    scenario: &Scenario,
    config: &SagPipelineConfig,
    started: Instant,
) -> SagResult<(CoverageSolution, AnsweringSolver, Spent)> {
    match config.lower_solver {
        LowerSolver::Samc => {
            let coverage = samc_with_budget(scenario, config.samc, &config.budget)?;
            let spent = Spent {
                nodes: 0,
                elapsed: started.elapsed(),
            };
            Ok((coverage, AnsweringSolver::Samc, spent))
        }
        LowerSolver::IlpqcWithGreedyFallback | LowerSolver::IlpqcStrict => {
            let cands = iac_candidates(scenario);
            let ilpqc_config = IlpqcConfig {
                budget: config.budget.clone(),
                ..Default::default()
            };
            match solve_ilpqc(scenario, &cands, ilpqc_config) {
                Ok(out) => Ok((out.solution, AnsweringSolver::Ilpqc, out.spent)),
                Err(SagError::BudgetExceeded { spent, .. })
                    if config.lower_solver == LowerSolver::IlpqcWithGreedyFallback =>
                {
                    // Last rung: the greedy cover does no LP work and
                    // ignores the (already exhausted) deadline.
                    let coverage = greedy_cover(scenario, &cands)?;
                    Ok((coverage, AnsweringSolver::GreedyFallback, spent))
                }
                Err(e) => Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::is_feasible;
    use crate::model::{BaseStation, NetworkParams, Subscriber};
    use crate::pro::{allocation_is_feasible, baseline_power};
    use sag_geom::{Point, Rect};
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(n_bs: usize) -> Scenario {
        let bss = [
            (250.0, 250.0),
            (-250.0, 250.0),
            (250.0, -250.0),
            (-250.0, -250.0),
        ];
        Scenario::new(
            Rect::centered_square(600.0),
            vec![
                Subscriber::new(Point::new(0.0, 0.0), 35.0),
                Subscriber::new(Point::new(30.0, 10.0), 32.0),
                Subscriber::new(Point::new(150.0, -60.0), 30.0),
                Subscriber::new(Point::new(-170.0, 100.0), 38.0),
            ],
            bss[..n_bs]
                .iter()
                .map(|&(x, y)| BaseStation::new(Point::new(x, y)))
                .collect(),
            NetworkParams::new(
                LinkBudget::builder().snr_threshold(Db::new(-15.0)).build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    #[test]
    fn pipeline_end_to_end() {
        let sc = scenario(4);
        let report = run_sag(&sc).unwrap();
        assert!(is_feasible(&sc, &report.coverage));
        assert!(allocation_is_feasible(
            &sc,
            &report.coverage,
            &report.lower_power
        ));
        let p = report.power_summary();
        assert!(p.lower > 0.0 && p.upper > 0.0);
        assert!((p.total - p.lower - p.upper).abs() < 1e-12);
        // PRO must beat the all-Pmax lower tier.
        assert!(p.lower <= baseline_power(&sc, &report.coverage).total());
    }

    #[test]
    fn relays_roundtrip_roles_and_counts() {
        let sc = scenario(2);
        let report = run_sag(&sc).unwrap();
        let relays = report.relays();
        let n_cov = relays
            .iter()
            .filter(|r| r.role == RelayRole::Coverage)
            .count();
        let n_con = relays
            .iter()
            .filter(|r| r.role == RelayRole::Connectivity)
            .count();
        assert_eq!(n_cov, report.n_coverage_relays());
        assert_eq!(n_con, report.n_connectivity_relays());
        for r in &relays {
            assert!(r.power <= sc.params.link.pmax() + 1e-9);
            assert!(r.power >= 0.0);
        }
    }

    #[test]
    fn more_base_stations_never_need_more_connectivity() {
        let one = run_sag(&scenario(1)).unwrap();
        let four = run_sag(&scenario(4)).unwrap();
        assert!(four.n_connectivity_relays() <= one.n_connectivity_relays());
    }

    #[test]
    fn default_pipeline_records_samc_as_answering_solver() {
        let report = run_sag(&scenario(2)).unwrap();
        assert_eq!(report.solver, AnsweringSolver::Samc);
    }

    #[test]
    fn ilpqc_solver_records_ilpqc() {
        let sc = scenario(2);
        let config = SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcWithGreedyFallback,
            ..Default::default()
        };
        let report = run_sag_with(&sc, config).unwrap();
        assert_eq!(report.solver, AnsweringSolver::Ilpqc);
        assert!(report.budget_spent.nodes >= 1);
        assert!(is_feasible(&sc, &report.coverage));
    }

    #[test]
    fn tiny_budget_falls_back_to_greedy() {
        let sc = scenario(2);
        let config = SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcWithGreedyFallback,
            budget: Budget::unlimited().with_node_limit(0),
            ..Default::default()
        };
        let report = run_sag_with(&sc, config).unwrap();
        assert_eq!(report.solver, AnsweringSolver::GreedyFallback);
        assert!(is_feasible(&sc, &report.coverage));
        assert!(allocation_is_feasible(
            &sc,
            &report.coverage,
            &report.lower_power
        ));
    }

    #[test]
    fn tiny_budget_strict_surfaces_budget_exceeded() {
        let sc = scenario(2);
        let config = SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcStrict,
            budget: Budget::unlimited().with_node_limit(0),
            ..Default::default()
        };
        assert!(matches!(
            run_sag_with(&sc, config),
            Err(SagError::BudgetExceeded { stage: "ilpqc", .. })
        ));
    }

    #[test]
    fn invalid_scenario_is_rejected_at_ingress() {
        let mut sc = scenario(1);
        sc.subscribers[0].position.x = f64::NAN;
        assert!(matches!(run_sag(&sc), Err(SagError::InvalidScenario(_))));
    }
}
