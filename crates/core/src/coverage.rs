//! Feasible coverage: assignment, SNR checks, and the
//! [`CoverageSolution`] type shared by all lower-tier algorithms.
//!
//! Definition 1 (feasible coverage): relay `r` feasibly covers subscriber
//! `s_j` when `d(r, s_j) ≤ d_j` (capacity) **and** the SNR received at
//! `s_j` clears the threshold β (Definition 2, with every placed relay as
//! an interferer). With all relays at equal power the SNR depends only on
//! distances — the form used during placement; per-relay powers enter
//! later through PRO.

use std::sync::OnceLock;

use sag_geom::Point;
use sag_radio::ledger::{InterferenceLedger, LedgerMode};
use sag_radio::snr;

use crate::model::Scenario;

thread_local! {
    /// Scoped override of the ledger query mode, installed by
    /// [`push_ledger_mode_override`]. Thread-local so concurrent
    /// pipelines (sweep workers, parallel tests) cannot race each
    /// other; the zone engine re-installs the coordinator's override on
    /// its workers explicitly.
    static MODE_OVERRIDE: std::cell::Cell<Option<LedgerMode>> =
        const { std::cell::Cell::new(None) };
}

/// The environment's ledger query mode: incremental by default, the
/// exact brute-force oracle when `SAG_SNR_ORACLE=1` is set. Read once
/// per process — never a per-call `env::var` syscall on the hot path.
fn env_ledger_mode() -> LedgerMode {
    static MODE: OnceLock<LedgerMode> = OnceLock::new();
    *MODE.get_or_init(|| {
        if std::env::var("SAG_SNR_ORACLE").is_ok_and(|v| v == "1") {
            LedgerMode::Oracle
        } else {
            LedgerMode::Incremental
        }
    })
}

/// The ledger query mode the pipeline runs with: the scoped override
/// when one is installed (an explicit
/// [`crate::sag::SagPipelineConfig::snr_oracle`] choice), the cached
/// `SAG_SNR_ORACLE` environment switch otherwise.
fn ledger_mode() -> LedgerMode {
    MODE_OVERRIDE
        .with(std::cell::Cell::get)
        .unwrap_or_else(env_ledger_mode)
}

/// The currently installed scoped override, if any (what the zone
/// engine copies onto its workers).
pub(crate) fn ledger_mode_override() -> Option<LedgerMode> {
    MODE_OVERRIDE.with(std::cell::Cell::get)
}

/// Installs a scoped ledger-mode override on this thread; the previous
/// value is restored when the returned guard drops. `None` clears any
/// outer override back to the environment default for the scope.
pub(crate) fn push_ledger_mode_override(mode: Option<LedgerMode>) -> LedgerModeGuard {
    let previous = MODE_OVERRIDE.with(|c| c.replace(mode));
    LedgerModeGuard { previous }
}

/// Restores the previous ledger-mode override on drop (returned by
/// [`push_ledger_mode_override`]).
pub(crate) struct LedgerModeGuard {
    previous: Option<LedgerMode>,
}

impl Drop for LedgerModeGuard {
    fn drop(&mut self) {
        MODE_OVERRIDE.with(|c| c.set(self.previous));
    }
}

/// Builds an [`InterferenceLedger`] over the scenario's subscribers with
/// the given relays at uniform (unit) power — the placement-time view
/// where the power level cancels out of every SNR. Relay ids coincide
/// with indices into `relays`. Honours the `SAG_SNR_ORACLE` debug
/// switch.
pub fn interference_ledger(scenario: &Scenario, relays: &[Point]) -> InterferenceLedger {
    let mut ledger = InterferenceLedger::new(
        *scenario.params.link.model(),
        scenario.subscribers.iter().map(|s| s.position).collect(),
    )
    .with_mode(ledger_mode());
    for &r in relays {
        ledger.add_relay(r, 1.0);
    }
    ledger
}

/// Builds an [`InterferenceLedger`] with explicit per-relay powers —
/// the PRO-time view. Relay ids coincide with indices into `relays`.
///
/// # Panics
/// Panics if `relays` and `powers` differ in length.
pub fn powered_ledger(scenario: &Scenario, relays: &[Point], powers: &[f64]) -> InterferenceLedger {
    assert_eq!(
        relays.len(),
        powers.len(),
        "one power per relay ({} relays, {} powers)",
        relays.len(),
        powers.len()
    );
    let mut ledger = InterferenceLedger::new(
        *scenario.params.link.model(),
        scenario.subscribers.iter().map(|s| s.position).collect(),
    )
    .with_mode(ledger_mode());
    for (&r, &p) in relays.iter().zip(powers) {
        ledger.add_relay(r, p);
    }
    ledger
}

/// Flushes a ledger's accumulated [`sag_radio::LedgerStats`] into the
/// observability counters (`ledger.delta_ops`, `ledger.cancel_refreshes`,
/// `ledger.guard_activations`, `ledger.rebuilds`). Stages call this once
/// at the end of a solve so the per-mutation hot paths stay
/// uninstrumented; a no-op while recording is disabled.
pub(crate) fn flush_ledger_stats(ledger: &InterferenceLedger) {
    if !sag_obs::enabled() {
        return;
    }
    let s = ledger.stats();
    sag_obs::counter("ledger.delta_ops", s.delta_ops);
    sag_obs::counter("ledger.cancel_refreshes", s.cancel_refreshes);
    sag_obs::counter("ledger.guard_activations", s.guard_activations);
    sag_obs::counter("ledger.rebuilds", s.rebuilds);
}

/// A reverse relay→subscribers index over an assignment, in CSR form:
/// `of(r)` is the slice of subscribers served by relay `r`, in
/// subscriber order. Built once in `O(S + R)` by counting sort, so
/// stage loops stop paying `O(S)` per relay for
/// [`CoverageSolution::subscribers_of`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedIndex {
    starts: Vec<usize>,
    subs: Vec<usize>,
}

impl ServedIndex {
    /// Builds the index for `n_relays` relays from `assignment`.
    ///
    /// # Panics
    /// Panics if some assignment entry is `≥ n_relays`.
    pub fn build(n_relays: usize, assignment: &[usize]) -> Self {
        let mut counts = vec![0usize; n_relays];
        for &r in assignment {
            assert!(
                r < n_relays,
                "assignment references relay {r} of {n_relays}"
            );
            counts[r] += 1;
        }
        let mut starts = Vec::with_capacity(n_relays + 1);
        let mut acc = 0usize;
        starts.push(0);
        for &c in &counts {
            acc += c;
            starts.push(acc);
        }
        let mut cursor = starts.clone();
        let mut subs = vec![0usize; assignment.len()];
        for (j, &r) in assignment.iter().enumerate() {
            subs[cursor[r]] = j;
            cursor[r] += 1;
        }
        ServedIndex { starts, subs }
    }

    /// Number of relays the index covers.
    pub fn n_relays(&self) -> usize {
        self.starts.len() - 1
    }

    /// Subscribers served by relay `r`, in subscriber order.
    pub fn of(&self, r: usize) -> &[usize] {
        &self.subs[self.starts[r]..self.starts[r + 1]]
    }

    /// Number of relays serving exactly one subscriber (the
    /// one-on-one relays of the Sliding-Movement stage).
    pub fn one_on_one(&self) -> usize {
        (0..self.n_relays())
            .filter(|&r| self.of(r).len() == 1)
            .count()
    }
}

/// A lower-tier placement: relay positions plus the SS→relay assignment.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoverageSolution {
    /// Positions of the placed coverage relays.
    pub relays: Vec<Point>,
    /// `assignment[j]` = index into `relays` serving subscriber `j`.
    pub assignment: Vec<usize>,
}

impl CoverageSolution {
    /// Number of placed relays.
    pub fn n_relays(&self) -> usize {
        self.relays.len()
    }

    /// Subscribers assigned to relay `r`, in subscriber order.
    ///
    /// `O(S)` per call; stage loops that query every relay should build
    /// a [`ServedIndex`] via
    /// [`served_index`](CoverageSolution::served_index) once instead.
    pub fn subscribers_of(&self, r: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(j, &a)| (a == r).then_some(j))
            .collect()
    }

    /// Builds the reverse relay→subscribers index for this solution
    /// (`O(S + R)` once, then `O(1)` slice access per relay).
    pub fn served_index(&self) -> ServedIndex {
        ServedIndex::build(self.relays.len(), &self.assignment)
    }
}

/// SNR at subscriber `j` when served by `relays[serving]`, all relays
/// transmitting at the same power (placement-time check; the power level
/// cancels).
pub fn placement_snr(scenario: &Scenario, relays: &[Point], j: usize, serving: usize) -> f64 {
    snr::placement_snr_uniform(
        scenario.params.link.model(),
        scenario.subscribers[j].position,
        relays,
        serving,
    )
}

/// SNR at subscriber `j` when served by `relays[serving]` with explicit
/// per-relay powers (PRO-time check).
pub fn powered_snr(
    scenario: &Scenario,
    relays: &[Point],
    powers: &[f64],
    j: usize,
    serving: usize,
) -> f64 {
    snr::placement_snr(
        scenario.params.link.model(),
        scenario.subscribers[j].position,
        relays,
        powers,
        serving,
    )
}

/// Greedy feasibility-maximising assignment: each subscriber is served by
/// its **nearest** relay within its feasible distance.
///
/// With equal relay powers the nearest in-range relay maximises the SNR
/// (the interference term is the same whichever relay serves), so this
/// assignment is feasible whenever *any* assignment is.
///
/// Returns `None` if some subscriber has no relay within distance.
pub fn assign_nearest(scenario: &Scenario, relays: &[Point]) -> Option<Vec<usize>> {
    let mut assignment = Vec::with_capacity(scenario.n_subscribers());
    for sub in &scenario.subscribers {
        let best = relays
            .iter()
            .enumerate()
            .filter(|(_, r)| r.distance(sub.position) <= sub.distance_req + 1e-9)
            .min_by(|a, b| {
                sag_geom::float::total_cmp(&a.1.distance(sub.position), &b.1.distance(sub.position))
            })
            .map(|(i, _)| i)?;
        assignment.push(best);
    }
    Some(assignment)
}

/// Indices of subscribers whose SNR constraint is violated under the
/// given placement and assignment (uniform powers).
///
/// Goes through a freshly built [`InterferenceLedger`], which is
/// bit-identical to the brute-force sum
/// ([`snr_violations_brute`]); callers that already hold a ledger
/// should use [`snr_violations_ledger`] and skip the rebuild.
pub fn snr_violations(scenario: &Scenario, relays: &[Point], assignment: &[usize]) -> Vec<usize> {
    let ledger = interference_ledger(scenario, relays);
    snr_violations_ledger(scenario, &ledger, assignment)
}

/// [`snr_violations`] against an existing ledger: `O(S)` total instead
/// of `O(S·R)`. The ledger's relay ids must coincide with the
/// assignment's relay indices (true for ledgers built by
/// [`interference_ledger`] / [`powered_ledger`]).
pub fn snr_violations_ledger(
    scenario: &Scenario,
    ledger: &InterferenceLedger,
    assignment: &[usize],
) -> Vec<usize> {
    let beta = scenario.params.link.beta();
    (0..scenario.n_subscribers())
        .filter(|&j| ledger.snr(j, assignment[j]) < beta - 1e-12)
        .collect()
}

/// The original ad-hoc `O(S·R²)` violation scan, recomputing every SNR
/// from scratch via [`placement_snr`]. Kept as the reference
/// implementation for parity tests and benchmarks; production paths use
/// the ledger.
pub fn snr_violations_brute(
    scenario: &Scenario,
    relays: &[Point],
    assignment: &[usize],
) -> Vec<usize> {
    let beta = scenario.params.link.beta();
    (0..scenario.n_subscribers())
        .filter(|&j| placement_snr(scenario, relays, j, assignment[j]) < beta - 1e-12)
        .collect()
}

/// Full feasibility check of a coverage solution under uniform powers:
/// every subscriber in distance range of its relay and above the SNR
/// threshold.
pub fn is_feasible(scenario: &Scenario, sol: &CoverageSolution) -> bool {
    if sol.assignment.len() != scenario.n_subscribers() {
        return false;
    }
    for (j, sub) in scenario.subscribers.iter().enumerate() {
        let r = sol.assignment[j];
        if r >= sol.relays.len() {
            return false;
        }
        if sol.relays[r].distance(sub.position) > sub.distance_req + 1e-9 {
            return false;
        }
    }
    snr_violations(scenario, &sol.relays, &sol.assignment).is_empty()
}

/// Builds a [`CoverageSolution`] from bare relay positions via
/// [`assign_nearest`], requiring full feasibility (distance + SNR).
///
/// Returns `None` when the positions cannot feasibly cover the scenario.
pub fn solution_from_positions(
    scenario: &Scenario,
    relays: Vec<Point>,
) -> Option<CoverageSolution> {
    let assignment = assign_nearest(scenario, &relays)?;
    let sol = CoverageSolution { relays, assignment };
    is_feasible(scenario, &sol).then_some(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Subscriber};
    use sag_geom::Rect;
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        let params = NetworkParams::new(
            LinkBudget::builder()
                .snr_threshold(Db::new(beta_db))
                .build(),
            1e-9,
        );
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            params,
        )
        .unwrap()
    }

    #[test]
    fn assignment_prefers_nearest_in_range() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let relays = vec![Point::new(20.0, 0.0), Point::new(5.0, 0.0)];
        let a = assign_nearest(&sc, &relays).unwrap();
        assert_eq!(a, vec![1]);
    }

    #[test]
    fn assignment_none_when_out_of_range() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        assert!(assign_nearest(&sc, &[Point::new(100.0, 0.0)]).is_none());
    }

    #[test]
    fn single_relay_always_meets_snr() {
        // One relay → no interference → infinite SNR.
        let sc = scenario(vec![(0.0, 0.0, 30.0), (10.0, 0.0, 30.0)], -10.0);
        let sol = solution_from_positions(&sc, vec![Point::new(5.0, 0.0)]).unwrap();
        assert!(is_feasible(&sc, &sol));
        assert_eq!(sol.n_relays(), 1);
        assert_eq!(sol.subscribers_of(0), vec![0, 1]);
    }

    #[test]
    fn close_interferer_violates_snr() {
        // Two subscribers, each with its own relay; SS0's interferer sits
        // close enough that a strict threshold fails while a lenient one
        // passes.
        let subs = vec![(0.0, 0.0, 30.0), (60.0, 0.0, 30.0)];
        // SS0: serving at 25, interferer at 40 → SNR = (40/25)³ ≈ 4.10
        // (6.1 dB). SS1: serving at 20, interferer at 35 → (35/20)³ ≈
        // 5.36 (7.3 dB).
        let relays = vec![Point::new(25.0, 0.0), Point::new(40.0, 0.0)];
        let lenient = scenario(subs.clone(), -15.0);
        let a = assign_nearest(&lenient, &relays).unwrap();
        assert_eq!(a, vec![0, 1]);
        assert!(snr_violations(&lenient, &relays, &a).is_empty());
        // 6.5 dB (4.47): SS0 violated (4.10), SS1 fine (5.36).
        let strict = scenario(subs, 6.5);
        let a = assign_nearest(&strict, &relays).unwrap();
        assert_eq!(snr_violations(&strict, &relays, &a), vec![0]);
    }

    #[test]
    fn feasibility_rejects_malformed() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        // Assignment out of bounds.
        let sol = CoverageSolution {
            relays: vec![Point::ORIGIN],
            assignment: vec![3],
        };
        assert!(!is_feasible(&sc, &sol));
        // Wrong assignment length.
        let sol = CoverageSolution {
            relays: vec![Point::ORIGIN],
            assignment: vec![],
        };
        assert!(!is_feasible(&sc, &sol));
    }

    #[test]
    fn ledger_and_brute_violations_agree() {
        let subs = vec![(0.0, 0.0, 30.0), (60.0, 0.0, 30.0)];
        let relays = vec![Point::new(25.0, 0.0), Point::new(40.0, 0.0)];
        let sc = scenario(subs, 6.5);
        let a = assign_nearest(&sc, &relays).unwrap();
        assert_eq!(
            snr_violations(&sc, &relays, &a),
            snr_violations_brute(&sc, &relays, &a)
        );
        let ledger = interference_ledger(&sc, &relays);
        assert_eq!(
            snr_violations_ledger(&sc, &ledger, &a),
            snr_violations_brute(&sc, &relays, &a)
        );
        // Per-subscriber parity with the uniform brute helper.
        for j in 0..sc.n_subscribers() {
            for r in 0..relays.len() {
                assert_eq!(ledger.snr(j, r), placement_snr(&sc, &relays, j, r));
            }
        }
    }

    #[test]
    fn powered_ledger_matches_powered_snr() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let relays = vec![Point::new(10.0, 0.0), Point::new(30.0, 0.0)];
        let powers = [1.0, 0.1];
        let ledger = powered_ledger(&sc, &relays, &powers);
        assert_eq!(ledger.snr(0, 0), powered_snr(&sc, &relays, &powers, 0, 0));
    }

    #[test]
    fn served_index_matches_subscribers_of() {
        let sol = CoverageSolution {
            relays: vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(2.0, 0.0)],
            assignment: vec![2, 0, 2, 0, 0],
        };
        let idx = sol.served_index();
        assert_eq!(idx.n_relays(), 3);
        for r in 0..3 {
            assert_eq!(idx.of(r), sol.subscribers_of(r).as_slice());
        }
        assert!(idx.of(1).is_empty());
        assert_eq!(idx.one_on_one(), 0);
        let idx = ServedIndex::build(2, &[0, 1, 0]);
        assert_eq!(idx.one_on_one(), 1);
    }

    #[test]
    fn powered_snr_tracks_power_changes() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let relays = vec![Point::new(10.0, 0.0), Point::new(30.0, 0.0)];
        let hi = powered_snr(&sc, &relays, &[1.0, 1.0], 0, 0);
        let better = powered_snr(&sc, &relays, &[1.0, 0.1], 0, 0);
        assert!(better > hi);
    }

    #[test]
    fn ledger_mode_override_scopes_and_restores() {
        // Regression for the SAG_SNR_ORACLE plumbing: the explicit
        // override must reach every ledger built in its scope, nest
        // properly, and restore the environment default when dropped.
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let relays = [Point::new(10.0, 0.0)];
        let ambient = interference_ledger(&sc, &relays).mode();
        {
            let _g = push_ledger_mode_override(Some(LedgerMode::Oracle));
            assert_eq!(ledger_mode_override(), Some(LedgerMode::Oracle));
            assert_eq!(interference_ledger(&sc, &relays).mode(), LedgerMode::Oracle);
            assert_eq!(
                powered_ledger(&sc, &relays, &[1.0]).mode(),
                LedgerMode::Oracle
            );
            {
                let _inner = push_ledger_mode_override(Some(LedgerMode::Incremental));
                assert_eq!(
                    interference_ledger(&sc, &relays).mode(),
                    LedgerMode::Incremental
                );
            }
            // The inner guard restored the outer override.
            assert_eq!(interference_ledger(&sc, &relays).mode(), LedgerMode::Oracle);
        }
        assert_eq!(ledger_mode_override(), None);
        assert_eq!(interference_ledger(&sc, &relays).mode(), ambient);
    }
}
