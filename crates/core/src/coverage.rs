//! Feasible coverage: assignment, SNR checks, and the
//! [`CoverageSolution`] type shared by all lower-tier algorithms.
//!
//! Definition 1 (feasible coverage): relay `r` feasibly covers subscriber
//! `s_j` when `d(r, s_j) ≤ d_j` (capacity) **and** the SNR received at
//! `s_j` clears the threshold β (Definition 2, with every placed relay as
//! an interferer). With all relays at equal power the SNR depends only on
//! distances — the form used during placement; per-relay powers enter
//! later through PRO.

use sag_geom::Point;
use sag_radio::snr;

use crate::model::Scenario;

/// A lower-tier placement: relay positions plus the SS→relay assignment.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoverageSolution {
    /// Positions of the placed coverage relays.
    pub relays: Vec<Point>,
    /// `assignment[j]` = index into `relays` serving subscriber `j`.
    pub assignment: Vec<usize>,
}

impl CoverageSolution {
    /// Number of placed relays.
    pub fn n_relays(&self) -> usize {
        self.relays.len()
    }

    /// Subscribers assigned to relay `r`, in subscriber order.
    pub fn subscribers_of(&self, r: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(j, &a)| (a == r).then_some(j))
            .collect()
    }
}

/// SNR at subscriber `j` when served by `relays[serving]`, all relays
/// transmitting at the same power (placement-time check; the power level
/// cancels).
pub fn placement_snr(scenario: &Scenario, relays: &[Point], j: usize, serving: usize) -> f64 {
    snr::placement_snr_uniform(
        scenario.params.link.model(),
        scenario.subscribers[j].position,
        relays,
        serving,
    )
}

/// SNR at subscriber `j` when served by `relays[serving]` with explicit
/// per-relay powers (PRO-time check).
pub fn powered_snr(
    scenario: &Scenario,
    relays: &[Point],
    powers: &[f64],
    j: usize,
    serving: usize,
) -> f64 {
    snr::placement_snr(
        scenario.params.link.model(),
        scenario.subscribers[j].position,
        relays,
        powers,
        serving,
    )
}

/// Greedy feasibility-maximising assignment: each subscriber is served by
/// its **nearest** relay within its feasible distance.
///
/// With equal relay powers the nearest in-range relay maximises the SNR
/// (the interference term is the same whichever relay serves), so this
/// assignment is feasible whenever *any* assignment is.
///
/// Returns `None` if some subscriber has no relay within distance.
pub fn assign_nearest(scenario: &Scenario, relays: &[Point]) -> Option<Vec<usize>> {
    let mut assignment = Vec::with_capacity(scenario.n_subscribers());
    for sub in &scenario.subscribers {
        let best = relays
            .iter()
            .enumerate()
            .filter(|(_, r)| r.distance(sub.position) <= sub.distance_req + 1e-9)
            .min_by(|a, b| {
                sag_geom::float::total_cmp(&a.1.distance(sub.position), &b.1.distance(sub.position))
            })
            .map(|(i, _)| i)?;
        assignment.push(best);
    }
    Some(assignment)
}

/// Indices of subscribers whose SNR constraint is violated under the
/// given placement and assignment (uniform powers).
pub fn snr_violations(scenario: &Scenario, relays: &[Point], assignment: &[usize]) -> Vec<usize> {
    let beta = scenario.params.link.beta();
    (0..scenario.n_subscribers())
        .filter(|&j| placement_snr(scenario, relays, j, assignment[j]) < beta - 1e-12)
        .collect()
}

/// Full feasibility check of a coverage solution under uniform powers:
/// every subscriber in distance range of its relay and above the SNR
/// threshold.
pub fn is_feasible(scenario: &Scenario, sol: &CoverageSolution) -> bool {
    if sol.assignment.len() != scenario.n_subscribers() {
        return false;
    }
    for (j, sub) in scenario.subscribers.iter().enumerate() {
        let r = sol.assignment[j];
        if r >= sol.relays.len() {
            return false;
        }
        if sol.relays[r].distance(sub.position) > sub.distance_req + 1e-9 {
            return false;
        }
    }
    snr_violations(scenario, &sol.relays, &sol.assignment).is_empty()
}

/// Builds a [`CoverageSolution`] from bare relay positions via
/// [`assign_nearest`], requiring full feasibility (distance + SNR).
///
/// Returns `None` when the positions cannot feasibly cover the scenario.
pub fn solution_from_positions(
    scenario: &Scenario,
    relays: Vec<Point>,
) -> Option<CoverageSolution> {
    let assignment = assign_nearest(scenario, &relays)?;
    let sol = CoverageSolution { relays, assignment };
    is_feasible(scenario, &sol).then_some(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Subscriber};
    use sag_geom::Rect;
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        let params = NetworkParams::new(
            LinkBudget::builder()
                .snr_threshold(Db::new(beta_db))
                .build(),
            1e-9,
        );
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            params,
        )
        .unwrap()
    }

    #[test]
    fn assignment_prefers_nearest_in_range() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let relays = vec![Point::new(20.0, 0.0), Point::new(5.0, 0.0)];
        let a = assign_nearest(&sc, &relays).unwrap();
        assert_eq!(a, vec![1]);
    }

    #[test]
    fn assignment_none_when_out_of_range() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        assert!(assign_nearest(&sc, &[Point::new(100.0, 0.0)]).is_none());
    }

    #[test]
    fn single_relay_always_meets_snr() {
        // One relay → no interference → infinite SNR.
        let sc = scenario(vec![(0.0, 0.0, 30.0), (10.0, 0.0, 30.0)], -10.0);
        let sol = solution_from_positions(&sc, vec![Point::new(5.0, 0.0)]).unwrap();
        assert!(is_feasible(&sc, &sol));
        assert_eq!(sol.n_relays(), 1);
        assert_eq!(sol.subscribers_of(0), vec![0, 1]);
    }

    #[test]
    fn close_interferer_violates_snr() {
        // Two subscribers, each with its own relay; SS0's interferer sits
        // close enough that a strict threshold fails while a lenient one
        // passes.
        let subs = vec![(0.0, 0.0, 30.0), (60.0, 0.0, 30.0)];
        // SS0: serving at 25, interferer at 40 → SNR = (40/25)³ ≈ 4.10
        // (6.1 dB). SS1: serving at 20, interferer at 35 → (35/20)³ ≈
        // 5.36 (7.3 dB).
        let relays = vec![Point::new(25.0, 0.0), Point::new(40.0, 0.0)];
        let lenient = scenario(subs.clone(), -15.0);
        let a = assign_nearest(&lenient, &relays).unwrap();
        assert_eq!(a, vec![0, 1]);
        assert!(snr_violations(&lenient, &relays, &a).is_empty());
        // 6.5 dB (4.47): SS0 violated (4.10), SS1 fine (5.36).
        let strict = scenario(subs, 6.5);
        let a = assign_nearest(&strict, &relays).unwrap();
        assert_eq!(snr_violations(&strict, &relays, &a), vec![0]);
    }

    #[test]
    fn feasibility_rejects_malformed() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        // Assignment out of bounds.
        let sol = CoverageSolution {
            relays: vec![Point::ORIGIN],
            assignment: vec![3],
        };
        assert!(!is_feasible(&sc, &sol));
        // Wrong assignment length.
        let sol = CoverageSolution {
            relays: vec![Point::ORIGIN],
            assignment: vec![],
        };
        assert!(!is_feasible(&sc, &sol));
    }

    #[test]
    fn powered_snr_tracks_power_changes() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let relays = vec![Point::new(10.0, 0.0), Point::new(30.0, 0.0)];
        let hi = powered_snr(&sc, &relays, &[1.0, 1.0], 0, 0);
        let better = powered_snr(&sc, &relays, &[1.0, 0.1], 0, 0);
        assert!(better > hi);
    }
}
