//! Stage-by-stage pipeline tracing.
//!
//! Operating a placement pipeline means answering "why did this
//! deployment come out this way?" — how many zones the field split into,
//! how large the hitting sets were, how many repairs the sliding stage
//! needed, how much power each stage shaved. [`run_sag_traced`] runs the
//! standard pipeline once and derives a [`PipelineTrace`] of typed
//! events from the run's own [`sag_obs::StageMetrics`] stream plus the
//! report artefacts — no stage is re-executed and no SNR is recomputed.

use std::fmt;

use crate::error::SagResult;
use crate::model::Scenario;
use crate::sag::{run_sag_with, SagPipelineConfig, SagReport};

/// One recorded pipeline event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Zone Partition produced this many zones with the given sizes.
    Zones {
        /// Subscribers per zone.
        sizes: Vec<usize>,
    },
    /// The lower tier placed this many coverage relays.
    CoveragePlaced {
        /// Relay count.
        relays: usize,
        /// Subscribers in one-on-one coverage (their relay serves only
        /// them — the quantity Coverage Link Escape maximises).
        one_on_one: usize,
        /// Residual SNR violations the merged-zone check surfaced
        /// before the global repair round (0 when the zones were truly
        /// interference-independent; the final output is always
        /// violation-free).
        violations: usize,
    },
    /// PRO reduced the lower tier from `before` to `after` total power.
    LowerPower {
        /// All-`Pmax` total.
        before: f64,
        /// Post-PRO total.
        after: f64,
        /// Sum of the coverage-power floors (the unreachable ideal).
        floor: f64,
    },
    /// MBMC built the upper tier.
    ConnectivityPlaced {
        /// Steiner relays placed.
        relays: usize,
        /// Total hops across all chains.
        hops: usize,
        /// Distinct base stations used.
        base_stations_used: usize,
    },
    /// UCPO reduced the upper tier from `before` to `after`.
    UpperPower {
        /// All-`Pmax` total.
        before: f64,
        /// Post-UCPO total.
        after: f64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Zones { sizes } => {
                write!(f, "zones: {} ({:?} subscribers)", sizes.len(), sizes)
            }
            TraceEvent::CoveragePlaced {
                relays,
                one_on_one,
                violations,
            } => write!(
                f,
                "coverage: {relays} relays, {one_on_one} one-on-one, {violations} SNR violations"
            ),
            TraceEvent::LowerPower {
                before,
                after,
                floor,
            } => write!(
                f,
                "lower power: {before:.3} -> {after:.3} (floor {floor:.3})"
            ),
            TraceEvent::ConnectivityPlaced {
                relays,
                hops,
                base_stations_used,
            } => write!(
                f,
                "connectivity: {relays} relays over {hops} hops to {base_stations_used} BS(s)"
            ),
            TraceEvent::UpperPower { before, after } => {
                write!(f, "upper power: {before:.3} -> {after:.3}")
            }
        }
    }
}

/// The ordered event log of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    /// Events in stage order.
    pub events: Vec<TraceEvent>,
}

impl PipelineTrace {
    /// Total power saved versus running every transmitter at `Pmax`.
    pub fn total_saving(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::LowerPower { before, after, .. }
                | TraceEvent::UpperPower { before, after } => before - after,
                _ => 0.0,
            })
            .sum()
    }
}

impl fmt::Display for PipelineTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "  {e}")?;
        }
        write!(f, "  total saving vs all-Pmax: {:.3}", self.total_saving())
    }
}

/// Runs the SAG pipeline and returns the report together with its trace.
///
/// # Errors
/// Exactly those of [`crate::sag::run_sag`].
pub fn run_sag_traced(scenario: &Scenario) -> SagResult<(SagReport, PipelineTrace)> {
    let report = run_sag_with(scenario, SagPipelineConfig::default())?;
    let trace = trace_from_report(scenario, &report);
    Ok((report, trace))
}

/// Derives the stage trace from a finished report: zone sizes and
/// residual violations come from the run's recorded metrics, power and
/// topology figures from the report artefacts. Nothing is re-solved.
pub fn trace_from_report(scenario: &Scenario, report: &SagReport) -> PipelineTrace {
    let mut trace = PipelineTrace::default();
    let m = &report.metrics;

    // `zone.size` is observed once per zone, in partition order, by the
    // SAMC stage; the retained raw samples reconstruct the event. The
    // ILPQC/fallback solvers do not partition, so the event is omitted
    // for their runs (as it is when metrics collection is disabled).
    if let Some(h) = m.histogram("zone.size") {
        trace.events.push(TraceEvent::Zones {
            sizes: h.samples.iter().map(|&s| s as usize).collect(),
        });
    }

    trace.events.push(TraceEvent::CoveragePlaced {
        relays: report.coverage.n_relays(),
        one_on_one: report.coverage.served_index().one_on_one(),
        violations: m.gauge("coverage.snr_violations").unwrap_or(0.0) as usize,
    });

    // PRO records its own baseline and floor; fall back to the closed
    // forms (`R · Pmax`, Σ coverage floors would need a re-solve, so the
    // floor defaults to the recorded value or 0) when metrics are off.
    let pmax = scenario.params.link.pmax();
    trace.events.push(TraceEvent::LowerPower {
        before: m
            .gauge("pro.baseline_total")
            .unwrap_or(report.n_coverage_relays() as f64 * pmax),
        after: report.lower_power.total(),
        floor: m.gauge("pro.floor_total").unwrap_or(0.0),
    });

    let mut bs_used: Vec<usize> = report.plan.serving_bs.clone();
    bs_used.sort_unstable();
    bs_used.dedup();
    trace.events.push(TraceEvent::ConnectivityPlaced {
        relays: report.plan.n_relays(),
        hops: report.plan.chains.iter().map(|c| c.hops).sum(),
        base_stations_used: bs_used.len(),
    });

    let upper_before: f64 = report
        .plan
        .chains
        .iter()
        .map(|c| c.hops as f64 * pmax)
        .sum();
    trace.events.push(TraceEvent::UpperPower {
        before: upper_before,
        after: report.upper_power.total(),
    });

    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::{Point, Rect};

    fn scenario() -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            vec![
                Subscriber::new(Point::new(0.0, 0.0), 35.0),
                Subscriber::new(Point::new(30.0, 10.0), 35.0),
                Subscriber::new(Point::new(-150.0, 90.0), 32.0),
            ],
            vec![
                BaseStation::new(Point::new(200.0, 200.0)),
                BaseStation::new(Point::new(-200.0, 200.0)),
            ],
            NetworkParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn trace_records_every_stage() {
        let sc = scenario();
        let (report, trace) = run_sag_traced(&sc).unwrap();
        assert_eq!(trace.events.len(), 5);
        assert!(matches!(trace.events[0], TraceEvent::Zones { .. }));
        assert!(matches!(trace.events[4], TraceEvent::UpperPower { .. }));
        // Zone sizes partition the subscribers.
        if let TraceEvent::Zones { sizes } = &trace.events[0] {
            assert_eq!(sizes.iter().sum::<usize>(), sc.n_subscribers());
        }
        // Coverage counts agree with the report.
        if let TraceEvent::CoveragePlaced {
            relays, violations, ..
        } = trace.events[1]
        {
            assert_eq!(relays, report.n_coverage_relays());
            assert_eq!(violations, 0);
        }
    }

    #[test]
    fn savings_are_consistent() {
        let sc = scenario();
        let (report, trace) = run_sag_traced(&sc).unwrap();
        let saving = trace.total_saving();
        assert!(saving >= 0.0);
        // Savings equal (baseline totals) − (report totals).
        let lower_base = report.n_coverage_relays() as f64;
        let upper_base: f64 = report.plan.chains.iter().map(|c| c.hops as f64).sum();
        let expected = lower_base + upper_base - report.power_summary().total;
        assert!((saving - expected).abs() < 1e-9);
    }

    #[test]
    fn floor_below_after_below_before() {
        let sc = scenario();
        let (_, trace) = run_sag_traced(&sc).unwrap();
        if let TraceEvent::LowerPower {
            before,
            after,
            floor,
        } = trace.events[2]
        {
            assert!(floor <= after + 1e-12);
            assert!(after <= before + 1e-12);
        } else {
            panic!("event order changed");
        }
    }

    #[test]
    fn display_renders() {
        let sc = scenario();
        let (_, trace) = run_sag_traced(&sc).unwrap();
        let s = format!("{trace}");
        assert!(s.contains("zones:"));
        assert!(s.contains("total saving"));
        for e in &trace.events {
            assert!(!format!("{e}").is_empty());
        }
    }
}
