//! Multiple Base-station Minimum Connectivity — MBMC (Algorithm 7) and
//! the single-BS MUST baseline of \[1\].
//!
//! The upper tier must carry every coverage relay's traffic to a base
//! station over multi-hop relay links. MBMC:
//!
//! 1. builds a complete graph over the coverage relays, plus one edge per
//!    relay to its **nearest** base station (the multi-BS generalisation
//!    over MUST);
//! 2. weighs every edge `e` with `w1 = ceil(‖e‖ / d_min) − 1` — the
//!    number of relays a steinerized edge of that length would need at
//!    the most conservative feasible distance;
//! 3. takes a minimum spanning tree rooted at the base stations (all BSs
//!    are contracted into one virtual root, which realises "find an MST
//!    with BS as the root" for multiple BSs);
//! 4. computes each node's *effective feasible distance* — the minimum
//!    of its own subscribers' distances and its tree children's
//!    effective distances (the paper's "equals the minimum feasible
//!    distance of all its children", which guarantees every relay link
//!    supports the capacity of the traffic it aggregates);
//! 5. steinerizes every tree edge `(parent, child)` with
//!    `w2 = ceil(‖e‖ / d_child) − 1` equally spaced connectivity relays.
//!
//! MUST is the same pipeline restricted to a single designated base
//! station — the baseline of Fig. 6(d) / Table II.

// Tree bookkeeping over parallel per-vertex arrays reads best indexed.
#![allow(clippy::needless_range_loop)]

use sag_geom::Point;
use sag_graph::{mst, Graph, RootedTree};

use crate::coverage::CoverageSolution;
use crate::error::{SagError, SagResult};
use crate::model::Scenario;

/// One steinerized tree edge: the chain of relay-link transmitters from a
/// child node up to its parent.
#[derive(Debug, Clone)]
pub struct EdgeChain {
    /// Index of the child node (a coverage relay) in the coverage
    /// solution.
    pub child: usize,
    /// Position of the child endpoint.
    pub child_pos: Point,
    /// Position of the parent endpoint (a coverage relay or a BS).
    pub parent_pos: Point,
    /// Number of hops (segments) on the edge; `hops − 1` connectivity
    /// relays are placed.
    pub hops: usize,
    /// Length of each hop `D_i = ‖e‖ / hops`.
    pub hop_length: f64,
    /// Positions of the placed connectivity relays (empty for a direct
    /// single-hop edge).
    pub relays: Vec<Point>,
}

/// The upper-tier plan: steinerized tree + bookkeeping for UCPO.
#[derive(Debug, Clone)]
pub struct ConnectivityPlan {
    /// All placed connectivity (steiner) relays.
    pub relays: Vec<Point>,
    /// One chain per coverage relay (its edge toward its tree parent).
    pub chains: Vec<EdgeChain>,
    /// For each coverage relay, the index of the base station its tree
    /// path ultimately reaches.
    pub serving_bs: Vec<usize>,
    /// Effective feasible distance of each coverage relay (min over its
    /// subtree), used to steinerize and exposed for diagnostics.
    pub effective_distance: Vec<f64>,
}

impl ConnectivityPlan {
    /// Number of placed connectivity relays (the paper's Fig. 4(c)/5(c)
    /// and Table II metric).
    pub fn n_relays(&self) -> usize {
        self.relays.len()
    }

    /// All links of the steinerized topology as point pairs (for the
    /// Fig. 6 style topology dumps).
    pub fn links(&self) -> Vec<(Point, Point)> {
        let mut out = Vec::new();
        for chain in &self.chains {
            let mut prev = chain.child_pos;
            for &r in &chain.relays {
                out.push((prev, r));
                prev = r;
            }
            out.push((prev, chain.parent_pos));
        }
        out
    }
}

/// Edge-weight rule for the spanning tree (an ablation axis; the paper
/// uses [`WeightRule::HopCountDmin`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WeightRule {
    /// The paper's `w1 = ceil(len / d_min) − 1`: pessimistic hop counts
    /// using the global minimum feasible distance.
    #[default]
    HopCountDmin,
    /// Plain Euclidean length — the geometric MST, ignoring hop
    /// granularity entirely.
    Euclidean,
    /// Hop counts using the *child endpoint's own* feasible distance —
    /// a sharper estimate of the relays an edge will actually need
    /// (still an estimate: the effective distance after subtree
    /// propagation can be smaller).
    HopCountOwn,
}

/// Runs MBMC (Algorithm 7) over the coverage solution.
///
/// # Errors
/// [`SagError::NoBaseStations`] if the scenario has none (checked at
/// scenario construction, double-checked here).
pub fn mbmc(scenario: &Scenario, coverage: &CoverageSolution) -> SagResult<ConnectivityPlan> {
    mbmc_with_weights(scenario, coverage, WeightRule::default())
}

/// Runs MBMC with an explicit edge-weight rule (ablation entry point).
///
/// # Errors
/// See [`mbmc`].
pub fn mbmc_with_weights(
    scenario: &Scenario,
    coverage: &CoverageSolution,
    rule: WeightRule,
) -> SagResult<ConnectivityPlan> {
    let _stage = sag_obs::span("mbmc");
    let bs_choice: Vec<usize> = coverage
        .relays
        .iter()
        .map(|r| nearest_bs(scenario, *r))
        .collect();
    build_plan(scenario, coverage, &bs_choice, rule)
}

/// Runs MUST: every coverage relay connects (via the spanning tree) to
/// the single base station `bs_index` — the baseline of \[1\].
///
/// # Errors
/// [`SagError::NoBaseStations`] when `bs_index` is out of range.
pub fn must(
    scenario: &Scenario,
    coverage: &CoverageSolution,
    bs_index: usize,
) -> SagResult<ConnectivityPlan> {
    if bs_index >= scenario.base_stations.len() {
        return Err(SagError::NoBaseStations);
    }
    let bs_choice = vec![bs_index; coverage.n_relays()];
    build_plan(scenario, coverage, &bs_choice, WeightRule::default())
}

fn nearest_bs(scenario: &Scenario, p: Point) -> usize {
    scenario
        .base_stations
        .iter()
        .enumerate()
        .min_by(|a, b| {
            sag_geom::float::total_cmp(&a.1.position.distance(p), &b.1.position.distance(p))
        })
        .map(|(i, _)| i)
        .expect("scenario construction guarantees ≥ 1 BS")
}

/// Shared MBMC/MUST core, parameterised by each relay's candidate BS.
fn build_plan(
    scenario: &Scenario,
    coverage: &CoverageSolution,
    bs_choice: &[usize],
    rule: WeightRule,
) -> SagResult<ConnectivityPlan> {
    if scenario.base_stations.is_empty() {
        return Err(SagError::NoBaseStations);
    }
    let m = coverage.n_relays();
    let dmin = scenario.dmin();
    // Own feasible distance of each coverage relay: min over its
    // subscribers' distance requests (via the reverse relay→subscriber
    // index).
    let served = coverage.served_index();
    let mut own_dist = vec![f64::INFINITY; m];
    for (r, dist) in own_dist.iter_mut().enumerate() {
        for &j in served.of(r) {
            *dist = dist.min(scenario.subscribers[j].distance_req);
        }
    }
    // Constraint (3.2): every placed relay covers at least one subscriber.
    // A relay with no subscribers would get an infinite feasible distance
    // and silently produce an arbitrary-length single-hop chain.
    assert!(
        own_dist.iter().all(|d| d.is_finite()),
        "every coverage relay must serve at least one subscriber (constraint 3.2)"
    );

    // Graph: vertices = coverage relays [0, m) ∪ virtual root {m}.
    // Relay–relay edges are complete with w1 weights; each relay also
    // gets an edge to the virtual root weighted by its chosen BS.
    let weight = |len: f64, child: usize| -> f64 {
        match rule {
            WeightRule::HopCountDmin => ((len / dmin).ceil() - 1.0).max(0.0),
            WeightRule::Euclidean => len,
            WeightRule::HopCountOwn => {
                let d = own_dist[child].min(dmin * 32.0); // guard ∞ for isolated data
                ((len / d).ceil() - 1.0).max(0.0)
            }
        }
    };
    let mut g = Graph::new(m + 1);
    for i in 0..m {
        for j in i + 1..m {
            let len = coverage.relays[i].distance(coverage.relays[j]);
            // For relay–relay edges either endpoint may end up the child;
            // use the tighter of the two own-distances.
            let child = if own_dist[i] <= own_dist[j] { i } else { j };
            g.add_edge(i, j, weight(len, child));
        }
        let bs_pos = scenario.base_stations[bs_choice[i]].position;
        g.add_edge(i, m, weight(coverage.relays[i].distance(bs_pos), i));
    }
    let tree = mst::prim(&g, m).expect("graph is complete, hence connected");
    let rooted = RootedTree::from_spanning_tree(&tree, m, m + 1);

    // Effective feasible distance: min of own and children's, bottom-up.
    let order = rooted.bfs_order();
    let mut eff = own_dist.clone();
    for &v in order.iter().rev() {
        if v == m {
            continue;
        }
        for &c in rooted.children(v) {
            eff[v] = eff[v].min(eff[c]);
        }
    }

    // Which BS anchors each relay: the bs_choice of the subtree's
    // root-adjacent ancestor.
    let mut serving = vec![0usize; m];
    for v in 0..m {
        let path = rooted.path_to_root(v);
        // path = [v, …, top, m]; `top` is the relay attached to the root.
        let top = path[path.len() - 2];
        serving[v] = bs_choice[top];
    }

    // Steinerize each edge (parent(child) → child).
    let mut relays = Vec::new();
    let mut chains = Vec::with_capacity(m);
    for v in 0..m {
        let parent = rooted.parent(v).expect("non-root vertices have parents");
        let child_pos = coverage.relays[v];
        let parent_pos = if parent == m {
            scenario.base_stations[serving[v]].position
        } else {
            coverage.relays[parent]
        };
        let len = child_pos.distance(parent_pos);
        let d = eff[v];
        assert!(d > 0.0, "effective feasible distance must be positive");
        let hops = (len / d).ceil().max(1.0) as usize;
        let hop_length = len / hops as f64;
        let mut placed = Vec::with_capacity(hops - 1);
        for k in 1..hops {
            placed.push(child_pos.lerp(parent_pos, k as f64 / hops as f64));
        }
        relays.extend(placed.iter().copied());
        chains.push(EdgeChain {
            child: v,
            child_pos,
            parent_pos,
            hops,
            hop_length,
            relays: placed,
        });
    }

    Ok(ConnectivityPlan {
        relays,
        chains,
        serving_bs: serving,
        effective_distance: eff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::Rect;

    fn scenario(subs: Vec<(f64, f64, f64)>, bss: Vec<(f64, f64)>) -> Scenario {
        Scenario::new(
            Rect::centered_square(600.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            bss.into_iter()
                .map(|(x, y)| BaseStation::new(Point::new(x, y)))
                .collect(),
            NetworkParams::default(),
        )
        .unwrap()
    }

    fn one_relay_solution(sc: &Scenario) -> CoverageSolution {
        CoverageSolution {
            relays: vec![sc.subscribers[0].position],
            assignment: vec![0; sc.n_subscribers()],
        }
    }

    #[test]
    fn direct_edge_when_close() {
        // Relay 20 from the BS with feasible distance 30: single hop, no
        // steiner relays.
        let sc = scenario(vec![(0.0, 0.0, 30.0)], vec![(20.0, 0.0)]);
        let plan = mbmc(&sc, &one_relay_solution(&sc)).unwrap();
        assert_eq!(plan.n_relays(), 0);
        assert_eq!(plan.chains[0].hops, 1);
        assert!((plan.chains[0].hop_length - 20.0).abs() < 1e-9);
    }

    #[test]
    fn steinerization_counts() {
        // Distance 100, feasible 30 → ceil(100/30) = 4 hops → 3 relays.
        let sc = scenario(vec![(0.0, 0.0, 30.0)], vec![(100.0, 0.0)]);
        let plan = mbmc(&sc, &one_relay_solution(&sc)).unwrap();
        assert_eq!(plan.chains[0].hops, 4);
        assert_eq!(plan.n_relays(), 3);
        assert!((plan.chains[0].hop_length - 25.0).abs() < 1e-9);
        // Relays equally spaced on the segment.
        assert!(plan.relays[0].approx_eq(Point::new(25.0, 0.0)));
        assert!(plan.relays[2].approx_eq(Point::new(75.0, 0.0)));
    }

    #[test]
    fn nearest_bs_chosen() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], vec![(300.0, 0.0), (-60.0, 0.0)]);
        let plan = mbmc(&sc, &one_relay_solution(&sc)).unwrap();
        assert_eq!(plan.serving_bs[0], 1);
        // ceil(60/30) = 2 hops → 1 relay.
        assert_eq!(plan.n_relays(), 1);
    }

    #[test]
    fn must_forces_far_bs() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], vec![(300.0, 0.0), (-60.0, 0.0)]);
        let near = mbmc(&sc, &one_relay_solution(&sc)).unwrap();
        let far = must(&sc, &one_relay_solution(&sc), 0).unwrap();
        assert_eq!(far.serving_bs[0], 0);
        assert!(far.n_relays() > near.n_relays());
    }

    #[test]
    fn must_rejects_bad_bs_index() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], vec![(0.0, 50.0)]);
        assert!(must(&sc, &one_relay_solution(&sc), 3).is_err());
    }

    #[test]
    fn relay_chaining_through_other_relay() {
        // Two coverage relays in a line before the BS: the MST should
        // chain them (relay0 → relay1 → BS) rather than both going direct.
        let sc = scenario(
            vec![(0.0, 0.0, 30.0), (80.0, 0.0, 30.0)],
            vec![(160.0, 0.0)],
        );
        let coverage = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0), Point::new(80.0, 0.0)],
            assignment: vec![0, 1],
        };
        let plan = mbmc(&sc, &coverage).unwrap();
        // Chain of relay 0 should end at relay 1, not the BS.
        let chain0 = &plan.chains[0];
        assert!(chain0.parent_pos.approx_eq(Point::new(80.0, 0.0)));
        // Total: 80/30→3 hops ×2 edges → 2+2 steiner relays.
        assert_eq!(plan.n_relays(), 4);
        assert_eq!(plan.links().len(), 6);
    }

    #[test]
    fn effective_distance_propagates_to_ancestors() {
        // Child relay has a tighter feasible distance than its parent;
        // the parent's uplink must honour the child's distance.
        let sc = scenario(
            vec![(0.0, 0.0, 10.0), (80.0, 0.0, 40.0)],
            vec![(160.0, 0.0)],
        );
        let coverage = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0), Point::new(80.0, 0.0)],
            assignment: vec![0, 1],
        };
        let plan = mbmc(&sc, &coverage).unwrap();
        // Relay 0 (d=10) hangs under relay 1 (d=40): eff(1) = 10.
        assert!((plan.effective_distance[1] - 10.0).abs() < 1e-9);
        let chain1 = plan.chains.iter().find(|c| c.child == 1).unwrap();
        assert_eq!(chain1.hops, 8); // ceil(80/10)
    }

    #[test]
    fn links_are_contiguous() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], vec![(100.0, 0.0)]);
        let plan = mbmc(&sc, &one_relay_solution(&sc)).unwrap();
        let links = plan.links();
        assert_eq!(links.len(), 4);
        for w in links.windows(2) {
            assert!(w[0].1.approx_eq(w[1].0), "chain must be contiguous");
        }
        assert!(links.last().unwrap().1.approx_eq(Point::new(100.0, 0.0)));
    }
}

#[cfg(test)]
mod weight_rule_tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::Rect;

    fn scenario() -> (Scenario, CoverageSolution) {
        let sc = Scenario::new(
            Rect::centered_square(600.0),
            vec![
                Subscriber::new(Point::new(0.0, 0.0), 30.0),
                Subscriber::new(Point::new(100.0, 20.0), 40.0),
                Subscriber::new(Point::new(-80.0, -120.0), 35.0),
            ],
            vec![BaseStation::new(Point::new(250.0, 250.0))],
            NetworkParams::default(),
        )
        .unwrap();
        let cov = CoverageSolution {
            relays: vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 20.0),
                Point::new(-80.0, -120.0),
            ],
            assignment: vec![0, 1, 2],
        };
        (sc, cov)
    }

    #[test]
    fn all_rules_produce_valid_plans() {
        let (sc, cov) = scenario();
        for rule in [
            WeightRule::HopCountDmin,
            WeightRule::Euclidean,
            WeightRule::HopCountOwn,
        ] {
            let plan = mbmc_with_weights(&sc, &cov, rule).unwrap();
            assert_eq!(plan.chains.len(), cov.n_relays());
            for chain in &plan.chains {
                let eff = plan.effective_distance[chain.child];
                assert!(chain.hop_length <= eff + 1e-9, "{rule:?} broke hop bound");
            }
        }
    }

    #[test]
    fn default_rule_is_papers() {
        let (sc, cov) = scenario();
        let default_plan = mbmc(&sc, &cov).unwrap();
        let paper_plan = mbmc_with_weights(&sc, &cov, WeightRule::HopCountDmin).unwrap();
        assert_eq!(default_plan.n_relays(), paper_plan.n_relays());
    }

    #[test]
    fn rules_may_differ_but_stay_close() {
        let (sc, cov) = scenario();
        let counts: Vec<usize> = [
            WeightRule::HopCountDmin,
            WeightRule::Euclidean,
            WeightRule::HopCountOwn,
        ]
        .into_iter()
        .map(|r| mbmc_with_weights(&sc, &cov, r).unwrap().n_relays())
        .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // Alternative weightings reshuffle the tree but cannot blow up the
        // steiner count arbitrarily on such a small instance.
        assert!(max <= min * 2 + 2, "counts diverged: {counts:?}");
    }
}
