//! Relay sleep scheduling under time-varying demand.
//!
//! **Extension beyond the paper.** The paper minimises transmit power for
//! an always-on subscriber population; the natural next step for a
//! *green* deployment is to exploit demand variation: in a time slot
//! where some subscribers are idle, their relays can sleep — and awake
//! relays can absorb the remaining active subscribers when distance and
//! SNR allow, letting even more relays sleep.
//!
//! [`schedule_slot`] computes, for one slot's active set, a minimal-ish
//! awake relay subset (greedy set cover over the *already placed* relays
//! — no repositioning at runtime) with a feasible reassignment, and
//! [`energy_over_horizon`] integrates PRO-style powers over a slot
//! sequence.

use sag_geom::Point;

use crate::coverage::{snr_violations, CoverageSolution};
use crate::error::{SagError, SagResult};
use crate::model::Scenario;
use crate::pro::{pro, PowerAllocation};

/// One slot's awake set and per-subscriber assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotPlan {
    /// Indices (into the placement's relay list) of relays kept awake.
    pub awake: Vec<usize>,
    /// For each *active* subscriber (in the order given to
    /// [`schedule_slot`]), the serving relay index.
    pub assignment: Vec<usize>,
    /// Total transmit power of the awake relays for this slot.
    pub power: f64,
}

/// Computes a sleep schedule for one slot.
///
/// `active` lists the subscriber indices with traffic this slot. Sleeping
/// relays transmit nothing (and so add no interference); the awake set is
/// chosen greedily (fewest relays covering all active subscribers by
/// distance), then verified against the SNR threshold and powered by PRO
/// on the reduced sub-problem.
///
/// # Errors
/// [`SagError::Infeasible`] when no awake subset of the placed relays can
/// serve the active set (cannot happen if `active` ⊆ the placement's
/// subscribers and the placement was feasible — the full awake set always
/// works — so this signals an inconsistent input).
///
/// # Panics
/// Panics if `active` contains an out-of-range subscriber index.
pub fn schedule_slot(
    scenario: &Scenario,
    placement: &CoverageSolution,
    active: &[usize],
) -> SagResult<SlotPlan> {
    for &j in active {
        assert!(
            j < scenario.n_subscribers(),
            "active subscriber {j} out of range"
        );
    }
    if active.is_empty() {
        return Ok(SlotPlan {
            awake: Vec::new(),
            assignment: Vec::new(),
            power: 0.0,
        });
    }

    // Greedy cover of the active set by placed relays (distance only),
    // then fall back to waking more relays while SNR fails.
    let eligible: Vec<Vec<usize>> = active
        .iter()
        .map(|&j| {
            let sub = &scenario.subscribers[j];
            (0..placement.relays.len())
                .filter(|&r| placement.relays[r].distance(sub.position) <= sub.distance_req + 1e-9)
                .collect()
        })
        .collect();
    if eligible.iter().any(Vec::is_empty) {
        return Err(SagError::Infeasible(
            "sleep: an active subscriber is out of range of every placed relay".into(),
        ));
    }

    // Candidate awake sets in increasing size: greedy cover first, then
    // progressively add the original servers until feasible.
    let mut awake = greedy_cover(placement.relays.len(), &eligible);
    loop {
        match try_slot(scenario, placement, active, &eligible, &awake) {
            Some(plan) => return Ok(plan),
            None => {
                // Wake the paper-assigned server of the worst subscriber
                // still violated; terminates because the full original
                // awake set reproduces the feasible placement.
                let mut grew = false;
                for &j in active {
                    let orig = placement.assignment[j];
                    if !awake.contains(&orig) {
                        awake.push(orig);
                        awake.sort_unstable();
                        grew = true;
                        break;
                    }
                }
                if !grew {
                    return Err(SagError::Infeasible(
                        "sleep: even the full original awake set fails (inconsistent input)".into(),
                    ));
                }
            }
        }
    }
}

fn greedy_cover(n_relays: usize, eligible: &[Vec<usize>]) -> Vec<usize> {
    let mut covered = vec![false; eligible.len()];
    let mut awake: Vec<usize> = Vec::new();
    while covered.iter().any(|&c| !c) {
        let best = (0..n_relays)
            .filter(|r| !awake.contains(r))
            .max_by_key(|&r| {
                eligible
                    .iter()
                    .enumerate()
                    .filter(|(i, e)| !covered[*i] && e.contains(&r))
                    .count()
            })
            .expect("eligibility pre-checked");
        awake.push(best);
        for (i, e) in eligible.iter().enumerate() {
            if e.contains(&best) {
                covered[i] = true;
            }
        }
    }
    awake.sort_unstable();
    awake
}

/// Attempts one awake set: nearest-awake assignment, SNR check on the
/// reduced network, PRO powers. Returns `None` when SNR fails.
fn try_slot(
    scenario: &Scenario,
    placement: &CoverageSolution,
    active: &[usize],
    eligible: &[Vec<usize>],
    awake: &[usize],
) -> Option<SlotPlan> {
    // Build the reduced scenario: only active subscribers; only awake
    // relays transmit.
    let sub_scenario = Scenario {
        field: scenario.field,
        subscribers: active.iter().map(|&j| scenario.subscribers[j]).collect(),
        base_stations: scenario.base_stations.clone(),
        params: scenario.params,
    };
    let awake_pos: Vec<Point> = awake.iter().map(|&r| placement.relays[r]).collect();
    // Nearest awake eligible relay per active subscriber.
    let mut assignment = Vec::with_capacity(active.len());
    for (i, &_j) in active.iter().enumerate() {
        let spos = sub_scenario.subscribers[i].position;
        let best = eligible[i]
            .iter()
            .filter_map(|r| awake.iter().position(|&a| a == *r))
            .min_by(|&a, &b| {
                sag_geom::float::total_cmp(
                    &awake_pos[a].distance(spos),
                    &awake_pos[b].distance(spos),
                )
            })?;
        assignment.push(best);
    }
    if !snr_violations(&sub_scenario, &awake_pos, &assignment).is_empty() {
        return None;
    }
    let reduced = CoverageSolution {
        relays: awake_pos,
        assignment: assignment.clone(),
    };
    let powers: PowerAllocation = pro(&sub_scenario, &reduced);
    Some(SlotPlan {
        awake: awake.to_vec(),
        assignment,
        power: powers.total(),
    })
}

/// Integrates slot powers over a horizon of active sets; returns
/// `(per-slot plans, total energy)` with one energy unit = power × slot.
///
/// # Errors
/// Propagates the first infeasible slot.
pub fn energy_over_horizon(
    scenario: &Scenario,
    placement: &CoverageSolution,
    slots: &[Vec<usize>],
) -> SagResult<(Vec<SlotPlan>, f64)> {
    let mut plans = Vec::with_capacity(slots.len());
    let mut energy = 0.0;
    for active in slots {
        let plan = schedule_slot(scenario, placement, active)?;
        energy += plan.power;
        plans.push(plan);
    }
    Ok((plans, energy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use crate::samc::samc;
    use sag_geom::Rect;

    fn scenario() -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            vec![
                Subscriber::new(Point::new(0.0, 0.0), 35.0),
                Subscriber::new(Point::new(30.0, 5.0), 35.0),
                Subscriber::new(Point::new(180.0, -60.0), 30.0),
                Subscriber::new(Point::new(-160.0, 120.0), 38.0),
            ],
            vec![BaseStation::new(Point::new(220.0, 220.0))],
            NetworkParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn empty_slot_sleeps_everything() {
        let sc = scenario();
        let placement = samc(&sc).unwrap();
        let plan = schedule_slot(&sc, &placement, &[]).unwrap();
        assert!(plan.awake.is_empty());
        assert_eq!(plan.power, 0.0);
    }

    #[test]
    fn full_slot_keeps_service() {
        let sc = scenario();
        let placement = samc(&sc).unwrap();
        let all: Vec<usize> = (0..sc.n_subscribers()).collect();
        let plan = schedule_slot(&sc, &placement, &all).unwrap();
        assert!(!plan.awake.is_empty());
        assert_eq!(plan.assignment.len(), all.len());
        // Every active subscriber served within distance.
        for (i, &j) in all.iter().enumerate() {
            let r = plan.awake[plan.assignment[i]];
            let d = placement.relays[r].distance(sc.subscribers[j].position);
            assert!(d <= sc.subscribers[j].distance_req + 1e-9);
        }
    }

    #[test]
    fn partial_slot_sleeps_unneeded_relays() {
        let sc = scenario();
        let placement = samc(&sc).unwrap();
        // Only the far-flung subscriber 2 is active: a single relay
        // suffices, everything else sleeps.
        let plan = schedule_slot(&sc, &placement, &[2]).unwrap();
        assert_eq!(plan.awake.len(), 1);
        assert!(plan.power <= sc.params.link.pmax());
    }

    #[test]
    fn slot_power_never_exceeds_full_pro_power() {
        let sc = scenario();
        let placement = samc(&sc).unwrap();
        let full = pro(&sc, &placement).total();
        let all: Vec<usize> = (0..sc.n_subscribers()).collect();
        let plan = schedule_slot(&sc, &placement, &all).unwrap();
        // Serving everyone with possibly fewer relays can shift power
        // around, but sleeping none of them reproduces PRO exactly —
        // the scheduler must never do worse than a small factor of it.
        assert!(
            plan.power <= full * 1.5 + 1e-9,
            "slot {} vs PRO {full}",
            plan.power
        );
    }

    #[test]
    fn horizon_energy_tracks_activity() {
        let sc = scenario();
        let placement = samc(&sc).unwrap();
        let busy: Vec<usize> = (0..sc.n_subscribers()).collect();
        let quiet: Vec<usize> = vec![0];
        let (plans, energy) =
            energy_over_horizon(&sc, &placement, &[busy.clone(), quiet.clone(), vec![]]).unwrap();
        assert_eq!(plans.len(), 3);
        assert!(plans[0].power >= plans[1].power);
        assert_eq!(plans[2].power, 0.0);
        assert!((energy - (plans[0].power + plans[1].power)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn out_of_range_active_panics() {
        let sc = scenario();
        let placement = samc(&sc).unwrap();
        let _ = schedule_slot(&sc, &placement, &[99]);
    }
}
