//! Error types for the SAG algorithms.

use std::error::Error;
use std::fmt;

use sag_lp::Spent;

/// Failure modes of the SAG pipeline and its stages.
#[derive(Debug, Clone, PartialEq)]
pub enum SagError {
    /// No feasible relay placement satisfies the coverage + SNR
    /// constraints (SAMC's "return infeasible", or an exhausted ILPQC
    /// search). The payload names the stage that gave up.
    Infeasible(String),
    /// The scenario has no subscribers; nothing to place.
    NoSubscribers,
    /// The scenario has no base stations; the upper tier cannot anchor.
    NoBaseStations,
    /// The scenario failed ingress validation ([`crate::model::Scenario::validate`]):
    /// non-finite coordinates, non-positive radii/powers, a degenerate
    /// field, or stations outside the field. The payload describes the
    /// first defect found.
    InvalidScenario(String),
    /// A stage exhausted its [`sag_lp::Budget`] (deadline, node cap, or
    /// cancellation) before producing any usable answer. `stage` names
    /// the stage that ran out; `spent` records what it consumed.
    BudgetExceeded {
        /// Pipeline stage that exhausted the budget (`"ilpqc"`,
        /// `"samc"`, `"pro"`, ...).
        stage: &'static str,
        /// Resources the stage consumed before giving up.
        spent: Spent,
    },
    /// A zone worker thread panicked during a parallel solve. The
    /// panic is caught at the zone-engine boundary and surfaced as this
    /// typed error instead of poisoning the run or hanging the merge;
    /// `stage` names the solve that lost the worker and `zone` the zone
    /// index it was processing.
    WorkerPanic {
        /// Pipeline stage whose zone worker died (`"samc"`, `"ilpqc"`).
        stage: &'static str,
        /// Index of the zone the worker was solving.
        zone: usize,
    },
    /// The incremental interference ledger diverged from its exact
    /// oracle recompute: a churn-repair audit (or an SNR cross-check)
    /// caught a stale accumulator. State corruption surfaces as this
    /// typed error instead of a silently wrong placement; the payload
    /// pinpoints the first skewed subscriber.
    LedgerDesync(sag_radio::DesyncError),
    /// An embedded LP/ILP solve failed unexpectedly.
    Lp(sag_lp::LpError),
}

impl SagError {
    /// The stable post-mortem class name of this failure (what the
    /// forensics dump frame and the trace analyzer key on).
    pub fn forensics_class(&self) -> &'static str {
        match self {
            SagError::Infeasible(_) => "infeasible",
            SagError::NoSubscribers => "no_subscribers",
            SagError::NoBaseStations => "no_base_stations",
            SagError::InvalidScenario(_) => "invalid_scenario",
            SagError::BudgetExceeded { .. } => "budget_exceeded",
            SagError::WorkerPanic { .. } => "worker_panic",
            SagError::LedgerDesync(_) => "ledger_desync",
            SagError::Lp(_) => "lp_error",
        }
    }

    /// Emits one structured post-mortem dump frame for this error
    /// (ring timeline + span stack + whatever the variant knows about
    /// stage, zone and budget spend). Called exactly once per failure,
    /// at the boundary that owns the error — the pipeline entry point
    /// and the churn engine's public methods — never from inner
    /// layers, so a propagating error cannot double-dump.
    pub fn emit_post_mortem(&self) {
        let detail = self.to_string();
        let mut dump = sag_obs::Dump {
            class: self.forensics_class(),
            detail: &detail,
            ..sag_obs::Dump::default()
        };
        match self {
            SagError::BudgetExceeded { stage, spent } => {
                dump.stage = Some(stage);
                dump.nodes_spent = Some(spent.nodes as u64);
                dump.elapsed_ns = Some(spent.elapsed.as_nanos() as u64);
            }
            SagError::WorkerPanic { stage, zone } => {
                dump.stage = Some(stage);
                dump.zone = Some(*zone as u64);
            }
            _ => {}
        }
        sag_obs::post_mortem(&dump);
    }
}

impl fmt::Display for SagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SagError::Infeasible(stage) => write!(f, "no feasible solution ({stage})"),
            SagError::NoSubscribers => write!(f, "scenario has no subscribers"),
            SagError::NoBaseStations => write!(f, "scenario has no base stations"),
            SagError::InvalidScenario(why) => write!(f, "invalid scenario: {why}"),
            SagError::BudgetExceeded { stage, spent } => {
                write!(f, "budget exceeded in {stage} after {spent}")
            }
            SagError::WorkerPanic { stage, zone } => {
                write!(
                    f,
                    "zone worker panicked in {stage} while solving zone {zone}"
                )
            }
            SagError::LedgerDesync(e) => write!(f, "state audit failed: {e}"),
            SagError::Lp(e) => write!(f, "embedded LP failed: {e}"),
        }
    }
}

impl Error for SagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SagError::Lp(e) => Some(e),
            SagError::LedgerDesync(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sag_lp::LpError> for SagError {
    fn from(e: sag_lp::LpError) -> Self {
        SagError::Lp(e)
    }
}

impl From<sag_radio::DesyncError> for SagError {
    fn from(e: sag_radio::DesyncError) -> Self {
        SagError::LedgerDesync(e)
    }
}

/// Convenience result alias used across the crate.
pub type SagResult<T> = Result<T, SagError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SagError::Infeasible("samc".into())
            .to_string()
            .contains("samc"));
        assert!(!SagError::NoSubscribers.to_string().is_empty());
        assert!(!SagError::NoBaseStations.to_string().is_empty());
        let e = SagError::from(sag_lp::LpError::Infeasible);
        assert!(e.to_string().contains("LP"));
        assert!(SagError::InvalidScenario("NaN coordinate".into())
            .to_string()
            .contains("NaN"));
        let b = SagError::BudgetExceeded {
            stage: "ilpqc",
            spent: Spent::default(),
        };
        assert!(b.to_string().contains("ilpqc"));
        assert!(b.to_string().contains("budget"));
        let w = SagError::WorkerPanic {
            stage: "samc",
            zone: 3,
        };
        assert!(w.to_string().contains("samc"));
        assert!(w.to_string().contains("zone 3"));
        let d = SagError::from(sag_radio::DesyncError {
            subscriber: 7,
            ledger: 1.0,
            oracle: 2.0,
        });
        assert!(d.to_string().contains("subscriber 7"));
    }

    #[test]
    fn source_chains() {
        let e = SagError::Lp(sag_lp::LpError::Unbounded);
        assert!(e.source().is_some());
        let d = SagError::LedgerDesync(sag_radio::DesyncError {
            subscriber: 0,
            ledger: 0.0,
            oracle: 1.0,
        });
        assert!(d.source().is_some());
        assert!(SagError::NoSubscribers.source().is_none());
    }
}
