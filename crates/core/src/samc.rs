//! SNR Aware Minimum Coverage — SAMC (Algorithm 1).
//!
//! The paper's polynomial-time lower-tier solver:
//!
//! 1. **Zone Partition** (Algorithm 2) splits subscribers into
//!    interference-independent zones;
//! 2. per zone, a **minimum hitting set** over the feasible circles
//!    places the coverage relays (the Mustafa–Ray (1+ε) PTAS, so a
//!    feasible SAMC answer inherits the (1+ε) bound — no relay is ever
//!    added or removed afterwards);
//! 3. **Coverage Link Escape** (Algorithm 3) assigns subscribers to
//!    relay points, maximising one-on-one coverages;
//! 4. **RS Sliding Movement** (Algorithms 4–5) repairs SNR violations by
//!    moving relays without changing the coverage topology.
//!
//! If any zone cannot be repaired, SAMC reports infeasibility, exactly
//! like the paper's Step 5.

use std::time::Instant;

use sag_geom::Point;
use sag_hitting::{exact, greedy, local_search, DiskInstance};
use sag_lp::{Budget, Spent};

use crate::coverage::{interference_ledger, CoverageSolution};
use crate::engine;
use crate::error::{SagError, SagResult};
use crate::escape::coverage_link_escape;
use crate::model::Scenario;
use crate::sliding::rs_sliding_movement;
use crate::zone::{observed_zone_partition, zone_scenario};

/// Which hitting-set solver Step 4 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HittingStrategy {
    /// Mustafa–Ray-style local search — the paper's choice.
    #[default]
    LocalSearch,
    /// Plain greedy (ln n): faster, slightly larger answers.
    Greedy,
    /// Exact branch-and-bound: for small zones / ablations.
    Exact,
}

/// SAMC configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SamcConfig {
    /// Hitting-set solver for Step 4.
    pub hitting: HittingStrategy,
}

/// Runs SAMC with the default configuration.
///
/// # Errors
/// [`SagError::Infeasible`] when some zone's SNR violations cannot be
/// repaired by sliding (the paper's `return infeasible`).
pub fn samc(scenario: &Scenario) -> SagResult<CoverageSolution> {
    samc_with(scenario, SamcConfig::default())
}

/// Runs SAMC with an explicit configuration.
///
/// # Errors
/// See [`samc`].
pub fn samc_with(scenario: &Scenario, config: SamcConfig) -> SagResult<CoverageSolution> {
    samc_with_budget(scenario, config, &Budget::unlimited())
}

/// Runs SAMC under a cooperative [`Budget`], checked between zones and
/// before the global repair round.
///
/// # Errors
/// [`SagError::BudgetExceeded`] (stage `"samc"`) when the deadline
/// passes or the cancellation flag is raised between zones; otherwise
/// see [`samc`].
pub fn samc_with_budget(
    scenario: &Scenario,
    config: SamcConfig,
    budget: &Budget,
) -> SagResult<CoverageSolution> {
    samc_with_budget_threads(scenario, config, budget, 1)
}

/// Runs SAMC on the zone-parallel engine: up to `threads` zones are
/// solved concurrently, each against a private zone ledger, and merged
/// in zone index order — so `threads = 1` and `threads = N` return
/// byte-identical solutions (see [`crate::engine`]).
///
/// # Errors
/// See [`samc_with_budget`]; additionally
/// [`SagError::WorkerPanic`] when a zone worker dies.
pub fn samc_with_budget_threads(
    scenario: &Scenario,
    config: SamcConfig,
    budget: &Budget,
    threads: usize,
) -> SagResult<CoverageSolution> {
    let _stage = sag_obs::span("samc");
    let started = Instant::now();
    let exceeded = |started: Instant| SagError::BudgetExceeded {
        stage: "samc",
        spent: Spent {
            nodes: 0,
            elapsed: started.elapsed(),
        },
    };
    let zones = observed_zone_partition(scenario);
    // Relay-free global ledger: workers split it down to their zone,
    // the merge replays the zone ledgers onto a clone of it.
    let base = interference_ledger(scenario, &[]);
    let outcomes = engine::run_zones("samc", zones.len(), threads, |zi| {
        budget.check_interrupt().map_err(|_| exceeded(started))?;
        let (zsc, _back_map) = zone_scenario(scenario, &zones[zi]);
        let zone_sol = solve_zone(&zsc, config)?;
        Ok(engine::zone_outcome(&base, &zones[zi], zone_sol))
    })?;

    // Zones are interference-independent only up to N_max; the merge
    // re-checks the combined placement and runs one global repair round
    // if the residual inter-zone noise still trips someone.
    budget.check_interrupt().map_err(|_| exceeded(started))?;
    engine::merge_zone_outcomes(scenario, &zones, outcomes, &base, "samc")
}

/// Solves one zone: hitting set → escape → sliding. Different hitting
/// sets induce different coverage topologies, and a topology that fails
/// SNR repair is not proof of infeasibility — so on failure the other
/// solvers' topologies are tried before giving up (the "SAMC stably
/// finds solutions where IAC/GAC fail" behaviour of §IV-B). The first
/// strategy is the configured one, so the (1+ε) size guarantee of the
/// preferred solver still applies whenever it succeeds.
pub(crate) fn solve_zone(zsc: &Scenario, config: SamcConfig) -> SagResult<CoverageSolution> {
    let order: [HittingStrategy; 3] = match config.hitting {
        HittingStrategy::LocalSearch => [
            HittingStrategy::LocalSearch,
            HittingStrategy::Greedy,
            HittingStrategy::Exact,
        ],
        HittingStrategy::Greedy => [
            HittingStrategy::Greedy,
            HittingStrategy::LocalSearch,
            HittingStrategy::Exact,
        ],
        HittingStrategy::Exact => [
            HittingStrategy::Exact,
            HittingStrategy::LocalSearch,
            HittingStrategy::Greedy,
        ],
    };
    let mut last_err = SagError::Infeasible("samc: zone never attempted".into());
    for strategy in order {
        // The exact solver is exponential; skip it as a fallback on
        // zones large enough to hurt.
        if strategy == HittingStrategy::Exact
            && config.hitting != HittingStrategy::Exact
            && zsc.n_subscribers() > 18
        {
            continue;
        }
        match solve_zone_with(zsc, strategy) {
            Ok(sol) => return Ok(sol),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn solve_zone_with(zsc: &Scenario, strategy: HittingStrategy) -> SagResult<CoverageSolution> {
    let instance = DiskInstance::new(zsc.feasible_circles());
    let points: Vec<Point> = match strategy {
        HittingStrategy::LocalSearch => local_search::local_search_hitting_set(&instance),
        HittingStrategy::Greedy => greedy::greedy_hitting_set(&instance),
        HittingStrategy::Exact => exact::exact_hitting_set(&instance),
    };
    let escape = {
        let _span = sag_obs::span("escape");
        coverage_link_escape(zsc, &points)
    };

    // Keep only the points the escape actually uses, remapping indices.
    let mut keep: Vec<usize> = Vec::new();
    let mut remap = vec![usize::MAX; points.len()];
    for (p, served) in escape.served.iter().enumerate() {
        if !served.is_empty() {
            remap[p] = keep.len();
            keep.push(p);
        }
    }
    let relays: Vec<Point> = keep.iter().map(|&p| points[p]).collect();
    let mut assignment = Vec::with_capacity(zsc.n_subscribers());
    for (j, asg) in escape.assignment.iter().enumerate() {
        match asg {
            Some(p) => assignment.push(remap[*p]),
            None => {
                return Err(SagError::Infeasible(format!(
                    "samc: subscriber {j} not covered by the hitting set"
                )))
            }
        }
    }

    rs_sliding_movement(zsc, relays, assignment)
        .ok_or_else(|| SagError::Infeasible("samc: zone SNR repair failed".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::is_feasible;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::Rect;
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::new(
                LinkBudget::builder()
                    .snr_threshold(Db::new(beta_db))
                    .build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    #[test]
    fn single_subscriber_single_relay() {
        let sc = scenario(vec![(10.0, 10.0, 30.0)], -15.0);
        let sol = samc(&sc).unwrap();
        assert_eq!(sol.n_relays(), 1);
        assert!(is_feasible(&sc, &sol));
        // One-on-one snap puts the relay on the subscriber.
        assert!(sol.relays[0].approx_eq(Point::new(10.0, 10.0)));
    }

    #[test]
    fn overlapping_cluster_shares_one_relay() {
        let sc = scenario(
            vec![(0.0, 0.0, 40.0), (30.0, 0.0, 40.0), (15.0, 20.0, 40.0)],
            -15.0,
        );
        let sol = samc(&sc).unwrap();
        assert_eq!(sol.n_relays(), 1, "one point hits all three disks");
        assert!(is_feasible(&sc, &sol));
    }

    #[test]
    fn spread_subscribers_feasible() {
        let sc = scenario(
            vec![
                (-200.0, -200.0, 35.0),
                (-150.0, -180.0, 32.0),
                (0.0, 0.0, 30.0),
                (40.0, 10.0, 38.0),
                (200.0, 200.0, 31.0),
                (180.0, 150.0, 36.0),
            ],
            -15.0,
        );
        let sol = samc(&sc).unwrap();
        assert!(is_feasible(&sc, &sol));
        assert!(sol.n_relays() <= 6);
        assert!(sol.n_relays() >= 2);
    }

    #[test]
    fn strategies_all_feasible() {
        let sc = scenario(
            vec![
                (-100.0, 0.0, 35.0),
                (-60.0, 10.0, 35.0),
                (100.0, 0.0, 30.0),
                (130.0, -20.0, 30.0),
            ],
            -15.0,
        );
        for strategy in [
            HittingStrategy::LocalSearch,
            HittingStrategy::Greedy,
            HittingStrategy::Exact,
        ] {
            let sol = samc_with(&sc, SamcConfig { hitting: strategy }).unwrap();
            assert!(
                is_feasible(&sc, &sol),
                "strategy {strategy:?} produced infeasible"
            );
        }
    }

    #[test]
    fn exact_never_more_relays_than_greedy() {
        let sc = scenario(
            vec![
                (0.0, 0.0, 35.0),
                (50.0, 0.0, 35.0),
                (100.0, 0.0, 35.0),
                (150.0, 0.0, 35.0),
                (25.0, 40.0, 35.0),
            ],
            -15.0,
        );
        let e = samc_with(
            &sc,
            SamcConfig {
                hitting: HittingStrategy::Exact,
            },
        )
        .unwrap();
        let g = samc_with(
            &sc,
            SamcConfig {
                hitting: HittingStrategy::Greedy,
            },
        )
        .unwrap();
        assert!(e.n_relays() <= g.n_relays());
    }

    #[test]
    fn impossible_threshold_reports_infeasible() {
        // One-on-one relays snap onto their subscriber (near-zero serving
        // distance), so pairs of isolated subscribers are always
        // SNR-feasible. Genuine infeasibility needs *shared* relays that
        // cannot snap: two clusters of two subscribers each. A relay
        // covering a cluster sits ≥ 6 from both its subscribers (they are
        // 12 apart vertically); the other cluster's relay is ≈ 12 away,
        // so the SNR tops out near (13.4/6)³ ≈ 11 (10.4 dB) — far below
        // the +20 dB threshold, and no sliding can help.
        let hard = scenario(
            vec![
                (0.0, -6.0, 6.5),
                (0.0, 6.0, 6.5),
                (12.0, -6.0, 6.5),
                (12.0, 6.0, 6.5),
            ],
            20.0,
        );
        assert!(matches!(samc(&hard), Err(SagError::Infeasible(_))));
        // The same geometry at a lenient threshold is fine.
        let easy = scenario(
            vec![
                (0.0, -6.0, 6.5),
                (0.0, 6.0, 6.5),
                (12.0, -6.0, 6.5),
                (12.0, 6.0, 6.5),
            ],
            -15.0,
        );
        assert!(samc(&easy).is_ok());
    }

    #[test]
    fn expired_budget_reports_budget_exceeded() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let err = samc_with_budget(
            &sc,
            SamcConfig::default(),
            &Budget::unlimited().with_deadline(std::time::Duration::ZERO),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SagError::BudgetExceeded { stage: "samc", .. }
        ));
        // An unlimited budget is transparent.
        assert!(samc_with_budget(&sc, SamcConfig::default(), &Budget::unlimited()).is_ok());
    }

    #[test]
    fn far_zones_solved_independently() {
        // Two clusters far outside each other's interference reach (use a
        // small Nmax to force multiple zones).
        let params = NetworkParams::new(
            LinkBudget::builder().snr_threshold(Db::new(-15.0)).build(),
            1e-3, // dmax = 10
        );
        let sc = Scenario::new(
            Rect::centered_square(500.0),
            vec![
                Subscriber::new(Point::new(0.0, 0.0), 5.0),
                Subscriber::new(Point::new(3.0, 0.0), 5.0),
                Subscriber::new(Point::new(200.0, 0.0), 5.0),
            ],
            vec![BaseStation::new(Point::new(0.0, 200.0))],
            params,
        )
        .unwrap();
        let zones = crate::zone::zone_partition(&sc);
        assert_eq!(zones.len(), 2);
        let sol = samc(&sc).unwrap();
        assert!(is_feasible(&sc, &sol));
        assert_eq!(sol.n_relays(), 2);
    }
}
