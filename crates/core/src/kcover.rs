//! k-coverage relay placement — the dual-relay MMR architecture.
//!
//! **Extension beyond the paper.** The paper's related work (\[8\], \[9\]:
//! Lin et al., IEEE 802.16j dual-relay MMR networks) covers every
//! subscriber by *two* relay stations for resilience. This module
//! generalises the lower tier to `k`-coverage: place a minimum set of
//! relay positions such that every subscriber has at least `k` distinct
//! relays inside its feasible circle, then derive primary/backup
//! assignments (primary = nearest, backups in distance order).
//!
//! Solvers: a greedy set-multicover heuristic (ln-factor approximation)
//! and an exact ILP via `sag-lp` for small instances. The candidate set
//! extends the hitting-set normalisation with per-disk auxiliary rings,
//! because a disk that intersects no other disk still needs `k` distinct
//! in-disk candidates.

use sag_geom::{arc, Point};
use sag_lp::{IlpProblem, LpProblem, Relation};

use crate::coverage::{interference_ledger, snr_violations_ledger};
use crate::error::{SagError, SagResult};
use crate::model::Scenario;

/// A k-coverage placement.
#[derive(Debug, Clone, PartialEq)]
pub struct KCoverageSolution {
    /// Placed relay positions.
    pub relays: Vec<Point>,
    /// For each subscriber, the serving relays in increasing distance
    /// (length ≥ `k`; `[0]` is the primary).
    pub servers: Vec<Vec<usize>>,
    /// The coverage multiplicity that was requested.
    pub k: usize,
}

impl KCoverageSolution {
    /// Number of placed relays.
    pub fn n_relays(&self) -> usize {
        self.relays.len()
    }

    /// The primary assignment (nearest server per subscriber), in the
    /// shape the single-coverage pipeline expects.
    pub fn primary_assignment(&self) -> Vec<usize> {
        self.servers.iter().map(|s| s[0]).collect()
    }
}

/// Which solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KCoverStrategy {
    /// Greedy set multicover: pick the candidate covering the most
    /// still-deficient subscribers. `H_n`-approximate, fast.
    #[default]
    Greedy,
    /// Exact ILP (branch-and-bound over the LP relaxation) — small
    /// instances only.
    Exact,
}

/// Candidate positions for k-coverage: disk centres, pairwise circle
/// intersections, plus an auxiliary ring of `2k` points at half-radius
/// inside every disk (guaranteeing `k` distinct in-disk candidates even
/// for isolated subscribers).
pub fn k_cover_candidates(scenario: &Scenario, k: usize) -> Vec<Point> {
    let circles = scenario.feasible_circles();
    let mut cands: Vec<Point> = circles.iter().map(|c| c.center).collect();
    for (i, a) in circles.iter().enumerate() {
        for b in circles.iter().skip(i + 1) {
            cands.extend(a.intersection_points(b));
        }
    }
    for c in &circles {
        let ring = sag_geom::Circle::new(c.center, c.radius / 2.0);
        cands.extend(arc::sample_circle(&ring, (2 * k).max(4), 0.0));
    }
    crate::candidates::dedup_points(cands)
        .into_iter()
        .filter(|p| scenario.field.contains(*p))
        .collect()
}

/// Solves the k-coverage placement.
///
/// # Errors
/// [`SagError::Infeasible`] when some subscriber cannot reach `k`
/// distinct candidates (never happens for `k ≤ 2·k` ring sizes unless
/// the field clips the ring), or the exact solver proves infeasibility.
///
/// # Panics
/// Panics if `k == 0`.
pub fn solve_k_coverage(
    scenario: &Scenario,
    k: usize,
    strategy: KCoverStrategy,
) -> SagResult<KCoverageSolution> {
    assert!(k >= 1, "coverage multiplicity must be ≥ 1");
    let candidates = k_cover_candidates(scenario, k);
    let circles = scenario.feasible_circles();
    // hits[j] = candidates inside subscriber j's circle.
    let hits: Vec<Vec<usize>> = circles
        .iter()
        .map(|c| {
            (0..candidates.len())
                .filter(|&i| c.contains(candidates[i]))
                .collect::<Vec<_>>()
        })
        .collect();
    for (j, h) in hits.iter().enumerate() {
        if h.len() < k {
            return Err(SagError::Infeasible(format!(
                "k-coverage: subscriber {j} reaches only {} candidates (< {k})",
                h.len()
            )));
        }
    }

    let chosen: Vec<usize> = match strategy {
        KCoverStrategy::Greedy => greedy_multicover(candidates.len(), &hits, k),
        KCoverStrategy::Exact => exact_multicover(candidates.len(), &hits, k)?,
    };

    let relays: Vec<Point> = chosen.iter().map(|&c| candidates[c]).collect();
    let servers = server_lists(scenario, &relays, k)?;
    Ok(KCoverageSolution { relays, servers, k })
}

/// Greedy set multicover: each round picks the candidate reducing the
/// total residual demand the most.
fn greedy_multicover(n_cands: usize, hits: &[Vec<usize>], k: usize) -> Vec<usize> {
    let n_subs = hits.len();
    let mut deficit: Vec<usize> = vec![k; n_subs];
    // covers[c] = subscribers candidate c helps.
    let mut covers: Vec<Vec<usize>> = vec![Vec::new(); n_cands];
    for (j, h) in hits.iter().enumerate() {
        for &c in h {
            covers[c].push(j);
        }
    }
    let mut chosen = Vec::new();
    let mut taken = vec![false; n_cands];
    while deficit.iter().any(|&d| d > 0) {
        let (best, gain) = (0..n_cands)
            .filter(|&c| !taken[c])
            .map(|c| (c, covers[c].iter().filter(|&&j| deficit[j] > 0).count()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("feasibility pre-checked: some candidate still helps");
        debug_assert!(gain > 0, "progress must be possible");
        taken[best] = true;
        chosen.push(best);
        for &j in &covers[best] {
            deficit[j] = deficit[j].saturating_sub(1);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Exact set multicover via binary ILP: `min Σ T_i` s.t.
/// `Σ_{i ∈ hits(j)} T_i ≥ k` for all `j`.
fn exact_multicover(n_cands: usize, hits: &[Vec<usize>], k: usize) -> SagResult<Vec<usize>> {
    let mut lp = LpProblem::minimize(n_cands);
    lp.set_objective(&vec![1.0; n_cands]);
    for h in hits {
        let row: Vec<(usize, f64)> = h.iter().map(|&c| (c, 1.0)).collect();
        lp.add_constraint(&row, Relation::Ge, k as f64);
    }
    let mut ilp = IlpProblem::new(lp);
    for c in 0..n_cands {
        ilp.set_binary(c);
    }
    let sol = ilp.solve().map_err(SagError::from)?;
    Ok((0..n_cands).filter(|&c| sol.x[c] > 0.5).collect())
}

/// Builds the per-subscriber server lists (distance order), verifying
/// the multiplicity.
fn server_lists(scenario: &Scenario, relays: &[Point], k: usize) -> SagResult<Vec<Vec<usize>>> {
    let mut out = Vec::with_capacity(scenario.n_subscribers());
    for (j, sub) in scenario.subscribers.iter().enumerate() {
        let mut in_range: Vec<usize> = (0..relays.len())
            .filter(|&r| relays[r].distance(sub.position) <= sub.distance_req + 1e-9)
            .collect();
        in_range.sort_by(|&a, &b| {
            sag_geom::float::total_cmp(
                &relays[a].distance(sub.position),
                &relays[b].distance(sub.position),
            )
        });
        if in_range.len() < k {
            return Err(SagError::Infeasible(format!(
                "k-coverage: subscriber {j} ended with {} servers (< {k})",
                in_range.len()
            )));
        }
        out.push(in_range);
    }
    Ok(out)
}

/// Validates a k-coverage solution: every subscriber's first `k` servers
/// are distinct relays within its feasible distance.
pub fn is_k_feasible(scenario: &Scenario, sol: &KCoverageSolution) -> bool {
    if sol.servers.len() != scenario.n_subscribers() {
        return false;
    }
    for (j, servers) in sol.servers.iter().enumerate() {
        if servers.len() < sol.k {
            return false;
        }
        let sub = &scenario.subscribers[j];
        let mut seen = std::collections::HashSet::new();
        for &r in &servers[..sol.k] {
            if r >= sol.relays.len() || !seen.insert(r) {
                return false;
            }
            if sol.relays[r].distance(sub.position) > sub.distance_req + 1e-9 {
                return false;
            }
        }
    }
    true
}

/// Subscribers whose SNR constraint is violated under the *primary*
/// assignment of a k-coverage solution (uniform powers, every placed
/// relay interfering) — the signal-aware diagnostic the k-cover ILP
/// itself does not enforce. Goes through the shared interference
/// ledger.
pub fn primary_snr_violations(scenario: &Scenario, sol: &KCoverageSolution) -> Vec<usize> {
    let ledger = interference_ledger(scenario, &sol.relays);
    snr_violations_ledger(scenario, &ledger, &sol.primary_assignment())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use crate::samc::samc;
    use sag_geom::Rect;

    fn scenario(subs: Vec<(f64, f64, f64)>) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn single_subscriber_dual_coverage() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)]);
        let sol = solve_k_coverage(&sc, 2, KCoverStrategy::Greedy).unwrap();
        assert!(is_k_feasible(&sc, &sol));
        assert_eq!(sol.n_relays(), 2);
        assert_eq!(sol.servers[0].len(), 2);
    }

    #[test]
    fn primary_snr_violations_match_single_coverage_check() {
        let sc = scenario(vec![
            (0.0, 0.0, 35.0),
            (40.0, 0.0, 35.0),
            (150.0, 0.0, 30.0),
        ]);
        let sol = solve_k_coverage(&sc, 2, KCoverStrategy::Greedy).unwrap();
        let primary = sol.primary_assignment();
        assert_eq!(
            primary_snr_violations(&sc, &sol),
            crate::coverage::snr_violations_brute(&sc, &sol.relays, &primary)
        );
    }

    #[test]
    fn k1_matches_plain_coverage_size_loosely() {
        let sc = scenario(vec![
            (0.0, 0.0, 35.0),
            (30.0, 0.0, 35.0),
            (150.0, 0.0, 30.0),
        ]);
        let k1 = solve_k_coverage(&sc, 1, KCoverStrategy::Exact).unwrap();
        assert!(is_k_feasible(&sc, &k1));
        // k = 1 exact multicover is exactly minimum hitting set: 2 here.
        assert_eq!(k1.n_relays(), 2);
        let samc_sol = samc(&sc).unwrap();
        assert_eq!(samc_sol.n_relays(), k1.n_relays());
    }

    #[test]
    fn dual_needs_no_more_than_double() {
        let sc = scenario(vec![
            (0.0, 0.0, 35.0),
            (30.0, 0.0, 35.0),
            (150.0, 40.0, 30.0),
            (-120.0, -90.0, 32.0),
        ]);
        let k1 = solve_k_coverage(&sc, 1, KCoverStrategy::Exact).unwrap();
        let k2 = solve_k_coverage(&sc, 2, KCoverStrategy::Exact).unwrap();
        assert!(is_k_feasible(&sc, &k2));
        assert!(k2.n_relays() >= k1.n_relays());
        assert!(k2.n_relays() <= 2 * k1.n_relays());
    }

    #[test]
    fn greedy_at_least_exact() {
        let sc = scenario(vec![
            (0.0, 0.0, 35.0),
            (40.0, 0.0, 35.0),
            (20.0, 35.0, 35.0),
        ]);
        let g = solve_k_coverage(&sc, 2, KCoverStrategy::Greedy).unwrap();
        let e = solve_k_coverage(&sc, 2, KCoverStrategy::Exact).unwrap();
        assert!(is_k_feasible(&sc, &g));
        assert!(is_k_feasible(&sc, &e));
        assert!(e.n_relays() <= g.n_relays());
    }

    #[test]
    fn primary_assignment_is_nearest() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (100.0, 0.0, 30.0)]);
        let sol = solve_k_coverage(&sc, 2, KCoverStrategy::Greedy).unwrap();
        let primary = sol.primary_assignment();
        for (j, &r) in primary.iter().enumerate() {
            let dp = sol.relays[r].distance(sc.subscribers[j].position);
            for &other in &sol.servers[j] {
                let d = sol.relays[other].distance(sc.subscribers[j].position);
                assert!(dp <= d + 1e-9);
            }
        }
    }

    #[test]
    fn shared_dual_relays_across_overlap() {
        // Two heavily-overlapping subscribers: two shared relays cover
        // both twice.
        let sc = scenario(vec![(0.0, 0.0, 40.0), (10.0, 0.0, 40.0)]);
        let sol = solve_k_coverage(&sc, 2, KCoverStrategy::Exact).unwrap();
        assert_eq!(sol.n_relays(), 2);
    }

    #[test]
    fn validation_catches_duplicates() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)]);
        let bogus = KCoverageSolution {
            relays: vec![Point::new(1.0, 0.0)],
            servers: vec![vec![0, 0]],
            k: 2,
        };
        assert!(!is_k_feasible(&sc, &bogus));
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)]);
        let _ = solve_k_coverage(&sc, 0, KCoverStrategy::Greedy);
    }
}
