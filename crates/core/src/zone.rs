//! Zone Partition (Algorithm 2).
//!
//! Partitions subscribers into zones such that stations in different
//! zones cannot meaningfully interfere: an edge joins `s_i` and `s_j`
//! when the *effective* distance `d_eff = dist(s_i, s_j) − max(d_i, d_j)`
//! — the closest two relays serving them could come — is within the
//! ignorable-noise distance `d_max` (where `Pmax·G·d_max^{-α} = N_max`).
//! Connected components of that graph are the zones; SAMC then solves
//! each zone independently.
//!
//! Note the paper's Step 3 writes `d_eff = min{dist−d_i, dist−d_j}`;
//! `min` over subtracted radii equals subtracting the `max` radius, as
//! implemented here.

use sag_graph::{components, Graph};

use crate::model::Scenario;

/// A zone: indices of the subscribers it contains (sorted ascending).
pub type Zone = Vec<usize>;

/// Runs Zone Partition and returns the zones (ordered by smallest
/// subscriber index).
///
/// # Example
/// ```
/// # use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
/// # use sag_geom::{Point, Rect};
/// # use sag_radio::LinkBudget;
/// let params = NetworkParams::new(LinkBudget::default(), 1e-3); // dmax = 10
/// let scenario = Scenario::new(
///     Rect::centered_square(500.0),
///     vec![
///         Subscriber::new(Point::new(0.0, 0.0), 3.0),
///         Subscriber::new(Point::new(5.0, 0.0), 3.0),   // near the first
///         Subscriber::new(Point::new(200.0, 0.0), 3.0), // far away
///     ],
///     vec![BaseStation::new(Point::new(0.0, 200.0))],
///     params,
/// ).unwrap();
/// let zones = sag_core::zone::zone_partition(&scenario);
/// assert_eq!(zones, vec![vec![0, 1], vec![2]]);
/// ```
pub fn zone_partition(scenario: &Scenario) -> Vec<Zone> {
    let dmax = scenario.params.dmax();
    zone_partition_with_dmax(scenario, dmax)
}

/// As [`zone_partition`] with an explicit `d_max` (used by tests and the
/// ablation bench to sweep zone granularity).
///
/// # Panics
/// Panics unless `dmax` is non-negative and finite.
pub fn zone_partition_with_dmax(scenario: &Scenario, dmax: f64) -> Vec<Zone> {
    assert!(
        dmax.is_finite() && dmax >= 0.0,
        "dmax must be ≥ 0, got {dmax}"
    );
    let n = scenario.n_subscribers();
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            let si = &scenario.subscribers[i];
            let sj = &scenario.subscribers[j];
            let dist = si.position.distance(sj.position);
            let deff = (dist - si.distance_req).min(dist - sj.distance_req);
            if deff <= dmax {
                g.add_edge(i, j, deff.max(0.0));
            }
        }
    }
    components::connected_components(&g)
}

/// Runs [`zone_partition`] under the `zone_partition` span and records
/// every zone's size in the `zone.size` histogram — the shared entry
/// point of both lower-tier solvers, so the partition is instrumented
/// identically whichever one runs.
pub fn observed_zone_partition(scenario: &Scenario) -> Vec<Zone> {
    let _zp = sag_obs::span("zone_partition");
    let zones = zone_partition(scenario);
    if sag_obs::enabled() {
        for zone in &zones {
            sag_obs::observe("zone.size", zone.len() as u64);
        }
    }
    zones
}

/// The sub-scenario induced by one zone: the zone's subscribers with the
/// original field, base stations and parameters. Returned together with
/// the mapping back to original subscriber indices.
pub fn zone_scenario(scenario: &Scenario, zone: &Zone) -> (Scenario, Vec<usize>) {
    let subs = zone.iter().map(|&j| scenario.subscribers[j]).collect();
    let sub_scenario = Scenario {
        field: scenario.field,
        subscribers: subs,
        base_stations: scenario.base_stations.clone(),
        params: scenario.params,
    };
    (sub_scenario, zone.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Subscriber};
    use sag_geom::{Point, Rect};
    use sag_radio::LinkBudget;

    fn scenario_with_nmax(subs: Vec<(f64, f64, f64)>, nmax: f64) -> Scenario {
        Scenario::new(
            Rect::centered_square(800.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(0.0, 300.0))],
            NetworkParams::new(LinkBudget::default(), nmax),
        )
        .unwrap()
    }

    #[test]
    fn far_groups_split() {
        // nmax = 1e-3 → dmax = 10 (G=1, α=3, Pmax=1).
        let sc = scenario_with_nmax(
            vec![
                (0.0, 0.0, 5.0),
                (12.0, 0.0, 5.0),  // deff = 7 ≤ 10 → same zone
                (300.0, 0.0, 5.0), // far → own zone
                (310.0, 0.0, 5.0), // deff = 5 → joins previous
            ],
            1e-3,
        );
        let zones = zone_partition(&sc);
        assert_eq!(zones, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn default_nmax_keeps_everything_together() {
        // Default Nmax gives dmax = 1000, larger than any field distance.
        let sc = Scenario::new(
            Rect::centered_square(800.0),
            vec![
                Subscriber::new(Point::new(-250.0, -250.0), 30.0),
                Subscriber::new(Point::new(250.0, 250.0), 30.0),
            ],
            vec![BaseStation::new(Point::ORIGIN)],
            NetworkParams::default(),
        )
        .unwrap();
        // Separation ≈ 707 − 30 < dmax = 1000 → single zone.
        assert_eq!(zone_partition(&sc).len(), 1);
    }

    #[test]
    fn transitive_zoning() {
        // Chain: A—B and B—C within reach, A—C not: still one zone.
        let sc = scenario_with_nmax(
            vec![(0.0, 0.0, 5.0), (14.0, 0.0, 5.0), (28.0, 0.0, 5.0)],
            1e-3,
        );
        assert_eq!(zone_partition(&sc), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn effective_distance_uses_larger_radius() {
        // dist = 20, radii 15 and 2 → deff = 5; with dmax = 4 they are
        // split, with dmax = 6 they join.
        let subs = vec![(0.0, 0.0, 15.0), (20.0, 0.0, 2.0)];
        let sc = scenario_with_nmax(subs, 1e-3);
        assert_eq!(zone_partition_with_dmax(&sc, 4.0).len(), 2);
        assert_eq!(zone_partition_with_dmax(&sc, 6.0).len(), 1);
    }

    #[test]
    fn zone_scenario_extracts_subscribers() {
        let sc = scenario_with_nmax(vec![(0.0, 0.0, 5.0), (300.0, 0.0, 5.0)], 1e-3);
        let zones = zone_partition(&sc);
        let (zsc, map) = zone_scenario(&sc, &zones[1]);
        assert_eq!(zsc.n_subscribers(), 1);
        assert_eq!(map, vec![1]);
        assert_eq!(zsc.subscribers[0].position, Point::new(300.0, 0.0));
        assert_eq!(zsc.base_stations.len(), 1);
    }

    #[test]
    fn zones_partition_everything() {
        let sc = scenario_with_nmax(
            vec![
                (0.0, 0.0, 5.0),
                (100.0, 0.0, 5.0),
                (200.0, 0.0, 5.0),
                (13.0, 0.0, 5.0),
            ],
            1e-3,
        );
        let zones = zone_partition(&sc);
        let mut all: Vec<usize> = zones.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }
}
