//! The network model: subscribers, base stations, relays, scenarios.
//!
//! Mirrors §II of the paper. A [`Scenario`] is the immutable problem
//! input — subscriber stations with per-SS feasible distances `d_i`, base
//! stations, a playing field and the physical parameters. Algorithm
//! outputs (relay placements, power allocations) live in the stage
//! modules.

use sag_geom::{Circle, Point, Rect};
use sag_radio::LinkBudget;

use crate::error::{SagError, SagResult};

/// A fixed subscriber station (`s_i` with distance request `d_i`).
///
/// The paper's SSs are static, high-traffic sites (retail stores, gas
/// stations); their data-rate request `b_i` is pre-reduced to the feasible
/// distance `d_i` via the capacity↔distance equivalence of §II.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Subscriber {
    /// Location of the subscriber.
    pub position: Point,
    /// Feasible coverage distance `d_i` (derived from the data rate).
    pub distance_req: f64,
}

impl Subscriber {
    /// Creates a subscriber.
    ///
    /// # Panics
    /// Panics unless `distance_req > 0` and finite and the position is
    /// finite.
    pub fn new(position: Point, distance_req: f64) -> Self {
        assert!(position.is_finite(), "subscriber position must be finite");
        assert!(
            distance_req.is_finite() && distance_req > 0.0,
            "distance requirement must be > 0, got {distance_req}"
        );
        Subscriber {
            position,
            distance_req,
        }
    }

    /// The feasible coverage circle `c_i` (centre = position, radius =
    /// `d_i`): a relay anywhere in this disk satisfies the distance/
    /// capacity constraint.
    pub fn feasible_circle(&self) -> Circle {
        Circle::new(self.position, self.distance_req)
    }
}

/// A base station (macro cell anchor of the upper tier).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BaseStation {
    /// Location of the base station.
    pub position: Point,
}

impl BaseStation {
    /// Creates a base station.
    ///
    /// # Panics
    /// Panics if the position is not finite.
    pub fn new(position: Point) -> Self {
        assert!(position.is_finite(), "base station position must be finite");
        BaseStation { position }
    }
}

/// Role of a placed relay station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RelayRole {
    /// Lower-tier relay serving subscribers over access links.
    Coverage,
    /// Upper-tier relay forwarding traffic toward a base station.
    Connectivity,
}

/// A placed relay station with its allocated transmit power.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Relay {
    /// Location of the relay.
    pub position: Point,
    /// Tier of the relay.
    pub role: RelayRole,
    /// Allocated transmit power (`≤ Pmax`).
    pub power: f64,
}

/// Physical parameters shared by all algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkParams {
    /// Propagation model, max power, SNR threshold β, noise, bandwidth.
    pub link: LinkBudget,
    /// `N_max` of Zone Partition: the largest received power that can be
    /// ignored as noise. Determines the zone radius `d_max`.
    pub nmax: f64,
}

impl NetworkParams {
    /// Creates parameters.
    ///
    /// # Panics
    /// Panics unless `nmax > 0` and finite.
    pub fn new(link: LinkBudget, nmax: f64) -> Self {
        assert!(
            nmax.is_finite() && nmax > 0.0,
            "nmax must be > 0, got {nmax}"
        );
        NetworkParams { link, nmax }
    }

    /// The Zone Partition distance `d_max`: beyond it, a `Pmax`
    /// transmitter contributes ignorable noise.
    pub fn dmax(&self) -> f64 {
        self.link
            .model()
            .ignorable_noise_distance(self.link.pmax(), self.nmax)
    }

    /// `P_ss^j` for a subscriber with feasible distance `d`: the minimum
    /// received power implied by its data-rate request (constraint (3.8)).
    pub fn pss_for(&self, sub: &Subscriber) -> f64 {
        self.link.min_received_power_for_distance(sub.distance_req)
    }
}

impl Default for NetworkParams {
    /// Reproduction defaults: [`LinkBudget::default`], `nmax = 1e-9`
    /// (zone radius 1000 under `G=1, α=3, Pmax=1`).
    fn default() -> Self {
        NetworkParams::new(LinkBudget::default(), 1e-9)
    }
}

/// An immutable problem instance.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scenario {
    /// The playing field.
    pub field: Rect,
    /// Subscriber stations.
    pub subscribers: Vec<Subscriber>,
    /// Base stations.
    pub base_stations: Vec<BaseStation>,
    /// Physical parameters.
    pub params: NetworkParams,
}

impl Scenario {
    /// Creates and validates a scenario.
    ///
    /// # Errors
    /// [`SagError::NoSubscribers`] / [`SagError::NoBaseStations`] when
    /// the respective list is empty.
    pub fn new(
        field: Rect,
        subscribers: Vec<Subscriber>,
        base_stations: Vec<BaseStation>,
        params: NetworkParams,
    ) -> SagResult<Self> {
        if subscribers.is_empty() {
            return Err(SagError::NoSubscribers);
        }
        if base_stations.is_empty() {
            return Err(SagError::NoBaseStations);
        }
        Ok(Scenario {
            field,
            subscribers,
            base_stations,
            params,
        })
    }

    /// Number of subscribers `n`.
    pub fn n_subscribers(&self) -> usize {
        self.subscribers.len()
    }

    /// The subscribers' feasible circles, in subscriber order.
    pub fn feasible_circles(&self) -> Vec<Circle> {
        self.subscribers
            .iter()
            .map(Subscriber::feasible_circle)
            .collect()
    }

    /// Subscriber positions, in order.
    pub fn subscriber_positions(&self) -> Vec<Point> {
        self.subscribers.iter().map(|s| s.position).collect()
    }

    /// Base station positions, in order.
    pub fn base_station_positions(&self) -> Vec<Point> {
        self.base_stations.iter().map(|b| b.position).collect()
    }

    /// The smallest feasible distance `d_min` (used by MBMC's edge
    /// weights).
    pub fn dmin(&self) -> f64 {
        self.subscribers
            .iter()
            .map(|s| s.distance_req)
            .fold(f64::INFINITY, f64::min)
    }

    /// Deep ingress validation, beyond the structural checks of
    /// [`Scenario::new`].
    ///
    /// `Scenario::new` only rejects empty station lists; scenarios built
    /// from untrusted bytes (snapshots, fuzzers) or via direct struct
    /// literals can still carry poisoned values. This walks every field
    /// and rejects:
    ///
    /// * non-finite (NaN/∞) field corners, or a field with
    ///   non-positive width/height;
    /// * non-finite subscriber/base-station coordinates;
    /// * non-finite or non-positive subscriber distance requests;
    /// * stations lying outside the playing field;
    /// * non-finite or out-of-range physical parameters (gain, path-loss
    ///   exponent, `Pmax`, β, noise, bandwidth, `N_max`).
    ///
    /// # Errors
    /// [`SagError::InvalidScenario`] describing the first defect found;
    /// [`SagError::NoSubscribers`] / [`SagError::NoBaseStations`] for
    /// empty lists (possible when the struct was built literally).
    pub fn validate(&self) -> SagResult<()> {
        fn bad(why: String) -> SagResult<()> {
            Err(SagError::InvalidScenario(why))
        }
        if !self.field.min().is_finite() || !self.field.max().is_finite() {
            return bad("field corners must be finite".into());
        }
        // NaN-safe: `<= 0.0` alone would wave a NaN width through.
        if self.field.width() <= 0.0
            || self.field.height() <= 0.0
            || self.field.width().is_nan()
            || self.field.height().is_nan()
        {
            return bad(format!(
                "field must have positive area, got {}x{}",
                self.field.width(),
                self.field.height()
            ));
        }
        if self.subscribers.is_empty() {
            return Err(SagError::NoSubscribers);
        }
        if self.base_stations.is_empty() {
            return Err(SagError::NoBaseStations);
        }
        for (i, s) in self.subscribers.iter().enumerate() {
            if !s.position.is_finite() {
                return bad(format!("subscriber {i} has a non-finite position"));
            }
            if !s.distance_req.is_finite() || s.distance_req <= 0.0 {
                return bad(format!(
                    "subscriber {i} distance request must be finite and > 0, got {}",
                    s.distance_req
                ));
            }
            if !self.field.contains(s.position) {
                return bad(format!("subscriber {i} lies outside the field"));
            }
        }
        for (i, b) in self.base_stations.iter().enumerate() {
            if !b.position.is_finite() {
                return bad(format!("base station {i} has a non-finite position"));
            }
            if !self.field.contains(b.position) {
                return bad(format!("base station {i} lies outside the field"));
            }
        }
        let link = &self.params.link;
        let model = link.model();
        if !model.gain().is_finite() || model.gain() <= 0.0 {
            return bad(format!(
                "link gain must be finite and > 0, got {}",
                model.gain()
            ));
        }
        if !model.alpha().is_finite() || model.alpha() < 1.0 {
            return bad(format!(
                "path-loss exponent must be finite and >= 1, got {}",
                model.alpha()
            ));
        }
        if !link.pmax().is_finite() || link.pmax() <= 0.0 {
            return bad(format!("Pmax must be finite and > 0, got {}", link.pmax()));
        }
        if !link.beta().is_finite() || link.beta() < 0.0 {
            return bad(format!(
                "SNR threshold beta must be finite and >= 0, got {}",
                link.beta()
            ));
        }
        if !link.noise().is_finite() || link.noise() < 0.0 {
            return bad(format!(
                "noise must be finite and >= 0, got {}",
                link.noise()
            ));
        }
        if !link.bandwidth().is_finite() || link.bandwidth() <= 0.0 {
            return bad(format!(
                "bandwidth must be finite and > 0, got {}",
                link.bandwidth()
            ));
        }
        if !self.params.nmax.is_finite() || self.params.nmax <= 0.0 {
            return bad(format!(
                "nmax must be finite and > 0, got {}",
                self.params.nmax
            ));
        }
        // Numerical conditioning. Every individual field can be a legal
        // float while their *combination* still drives the pipeline's
        // arithmetic to inf or into subnormal territory (MBMC divides
        // edge lengths by `dmin` and exponentiates distances; PRO scales
        // delivered powers by `gain·d^-α`). Bound the dynamic range here
        // so downstream stages never see it.
        let diag = (self.field.width().powi(2) + self.field.height().powi(2)).sqrt();
        let max_dreq = self
            .subscribers
            .iter()
            .map(|s| s.distance_req)
            .fold(0.0, f64::max);
        // The farthest distance any stage ever exponentiates: relay
        // candidates lie within a coverage radius of some subscriber, so
        // every pairwise distance is ≤ field diagonal + 2·max radius.
        let reach = diag + 2.0 * max_dreq;
        if !reach.is_finite() {
            return bad(format!(
                "scenario reach (field diagonal + coverage radii) overflows: {reach}"
            ));
        }
        let spread = reach.powf(link.model().alpha());
        if !spread.is_finite() {
            return bad(format!(
                "reach^alpha overflows f64 (reach {reach}, alpha {})",
                link.model().alpha()
            ));
        }
        // MBMC hop-count weights divide edge lengths by `dmin`.
        if !(reach / self.dmin()).is_finite() {
            return bad(format!(
                "reach/dmin overflows (reach {reach}, dmin {})",
                self.dmin()
            ));
        }
        // Weakest delivered power must stay a *normal* float, or power
        // feasibility margins drown in subnormal rounding error.
        let weakest_rx = link.pmax() * link.model().gain() / spread;
        if weakest_rx < f64::MIN_POSITIVE {
            return bad(format!(
                "weakest delivered power {weakest_rx:e} is subnormal; \
                 Pmax/gain/alpha are numerically degenerate"
            ));
        }
        // Strongest required transmit power must stay finite.
        let worst_tx = link.beta() * link.noise() / link.model().gain() * spread;
        if !worst_tx.is_finite() {
            return bad(format!(
                "worst-case required transmit power overflows: {worst_tx}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(x: f64, y: f64, d: f64) -> Subscriber {
        Subscriber::new(Point::new(x, y), d)
    }

    #[test]
    fn subscriber_circle() {
        let s = sub(1.0, 2.0, 35.0);
        let c = s.feasible_circle();
        assert_eq!(c.center, Point::new(1.0, 2.0));
        assert_eq!(c.radius, 35.0);
    }

    #[test]
    fn scenario_validation() {
        let field = Rect::centered_square(500.0);
        let params = NetworkParams::default();
        assert_eq!(
            Scenario::new(field, vec![], vec![BaseStation::new(Point::ORIGIN)], params)
                .unwrap_err(),
            SagError::NoSubscribers
        );
        assert_eq!(
            Scenario::new(field, vec![sub(0.0, 0.0, 30.0)], vec![], params).unwrap_err(),
            SagError::NoBaseStations
        );
        let sc = Scenario::new(
            field,
            vec![sub(0.0, 0.0, 30.0), sub(50.0, 0.0, 40.0)],
            vec![BaseStation::new(Point::new(100.0, 100.0))],
            params,
        )
        .unwrap();
        assert_eq!(sc.n_subscribers(), 2);
        assert_eq!(sc.dmin(), 30.0);
        assert_eq!(sc.feasible_circles().len(), 2);
    }

    #[test]
    fn params_dmax_matches_model() {
        let p = NetworkParams::default();
        // G=1, α=3, Pmax=1, Nmax=1e-9 → dmax = (1/1e-9)^(1/3) = 1000.
        assert!((p.dmax() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn pss_is_boundary_received_power() {
        let p = NetworkParams::default();
        let s = sub(0.0, 0.0, 10.0);
        // Pmax·G·10⁻³ = 1e-3.
        assert!((p.pss_for(&s) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_well_formed_scenario() {
        let sc = Scenario::new(
            Rect::centered_square(500.0),
            vec![sub(0.0, 0.0, 30.0)],
            vec![BaseStation::new(Point::new(100.0, 100.0))],
            NetworkParams::default(),
        )
        .unwrap();
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn validate_rejects_poisoned_fields() {
        let good = Scenario::new(
            Rect::centered_square(500.0),
            vec![sub(0.0, 0.0, 30.0)],
            vec![BaseStation::new(Point::new(100.0, 100.0))],
            NetworkParams::default(),
        )
        .unwrap();

        // NaN subscriber coordinate (bypassing the constructor).
        let mut sc = good.clone();
        sc.subscribers[0].position.x = f64::NAN;
        assert!(matches!(sc.validate(), Err(SagError::InvalidScenario(_))));

        // Non-positive distance request.
        let mut sc = good.clone();
        sc.subscribers[0].distance_req = -1.0;
        assert!(matches!(sc.validate(), Err(SagError::InvalidScenario(_))));

        // Station outside the field.
        let mut sc = good.clone();
        sc.base_stations[0].position = Point::new(1e6, 0.0);
        assert!(matches!(sc.validate(), Err(SagError::InvalidScenario(_))));

        // Degenerate (zero-width) field.
        let mut sc = good.clone();
        sc.field = Rect::from_corners(Point::ORIGIN, Point::new(0.0, 100.0));
        assert!(matches!(sc.validate(), Err(SagError::InvalidScenario(_))));

        // Poisoned parameter.
        let mut sc = good.clone();
        sc.params.nmax = f64::INFINITY;
        assert!(matches!(sc.validate(), Err(SagError::InvalidScenario(_))));

        // Emptied list after construction.
        let mut sc = good.clone();
        sc.subscribers.clear();
        assert_eq!(sc.validate(), Err(SagError::NoSubscribers));
    }

    #[test]
    #[should_panic]
    fn zero_distance_req_panics() {
        sub(0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_nmax_panics() {
        NetworkParams::new(LinkBudget::default(), 0.0);
    }
}
