//! The network model: subscribers, base stations, relays, scenarios.
//!
//! Mirrors §II of the paper. A [`Scenario`] is the immutable problem
//! input — subscriber stations with per-SS feasible distances `d_i`, base
//! stations, a playing field and the physical parameters. Algorithm
//! outputs (relay placements, power allocations) live in the stage
//! modules.

use sag_geom::{Circle, Point, Rect};
use sag_radio::LinkBudget;

use crate::error::{SagError, SagResult};

/// A fixed subscriber station (`s_i` with distance request `d_i`).
///
/// The paper's SSs are static, high-traffic sites (retail stores, gas
/// stations); their data-rate request `b_i` is pre-reduced to the feasible
/// distance `d_i` via the capacity↔distance equivalence of §II.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Subscriber {
    /// Location of the subscriber.
    pub position: Point,
    /// Feasible coverage distance `d_i` (derived from the data rate).
    pub distance_req: f64,
}

impl Subscriber {
    /// Creates a subscriber.
    ///
    /// # Panics
    /// Panics unless `distance_req > 0` and finite and the position is
    /// finite.
    pub fn new(position: Point, distance_req: f64) -> Self {
        assert!(position.is_finite(), "subscriber position must be finite");
        assert!(
            distance_req.is_finite() && distance_req > 0.0,
            "distance requirement must be > 0, got {distance_req}"
        );
        Subscriber {
            position,
            distance_req,
        }
    }

    /// The feasible coverage circle `c_i` (centre = position, radius =
    /// `d_i`): a relay anywhere in this disk satisfies the distance/
    /// capacity constraint.
    pub fn feasible_circle(&self) -> Circle {
        Circle::new(self.position, self.distance_req)
    }
}

/// A base station (macro cell anchor of the upper tier).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BaseStation {
    /// Location of the base station.
    pub position: Point,
}

impl BaseStation {
    /// Creates a base station.
    ///
    /// # Panics
    /// Panics if the position is not finite.
    pub fn new(position: Point) -> Self {
        assert!(position.is_finite(), "base station position must be finite");
        BaseStation { position }
    }
}

/// Role of a placed relay station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RelayRole {
    /// Lower-tier relay serving subscribers over access links.
    Coverage,
    /// Upper-tier relay forwarding traffic toward a base station.
    Connectivity,
}

/// A placed relay station with its allocated transmit power.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Relay {
    /// Location of the relay.
    pub position: Point,
    /// Tier of the relay.
    pub role: RelayRole,
    /// Allocated transmit power (`≤ Pmax`).
    pub power: f64,
}

/// Physical parameters shared by all algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkParams {
    /// Propagation model, max power, SNR threshold β, noise, bandwidth.
    pub link: LinkBudget,
    /// `N_max` of Zone Partition: the largest received power that can be
    /// ignored as noise. Determines the zone radius `d_max`.
    pub nmax: f64,
}

impl NetworkParams {
    /// Creates parameters.
    ///
    /// # Panics
    /// Panics unless `nmax > 0` and finite.
    pub fn new(link: LinkBudget, nmax: f64) -> Self {
        assert!(
            nmax.is_finite() && nmax > 0.0,
            "nmax must be > 0, got {nmax}"
        );
        NetworkParams { link, nmax }
    }

    /// The Zone Partition distance `d_max`: beyond it, a `Pmax`
    /// transmitter contributes ignorable noise.
    pub fn dmax(&self) -> f64 {
        self.link
            .model()
            .ignorable_noise_distance(self.link.pmax(), self.nmax)
    }

    /// `P_ss^j` for a subscriber with feasible distance `d`: the minimum
    /// received power implied by its data-rate request (constraint (3.8)).
    pub fn pss_for(&self, sub: &Subscriber) -> f64 {
        self.link.min_received_power_for_distance(sub.distance_req)
    }
}

impl Default for NetworkParams {
    /// Reproduction defaults: [`LinkBudget::default`], `nmax = 1e-9`
    /// (zone radius 1000 under `G=1, α=3, Pmax=1`).
    fn default() -> Self {
        NetworkParams::new(LinkBudget::default(), 1e-9)
    }
}

/// An immutable problem instance.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scenario {
    /// The playing field.
    pub field: Rect,
    /// Subscriber stations.
    pub subscribers: Vec<Subscriber>,
    /// Base stations.
    pub base_stations: Vec<BaseStation>,
    /// Physical parameters.
    pub params: NetworkParams,
}

impl Scenario {
    /// Creates and validates a scenario.
    ///
    /// # Errors
    /// [`SagError::NoSubscribers`] / [`SagError::NoBaseStations`] when
    /// the respective list is empty.
    pub fn new(
        field: Rect,
        subscribers: Vec<Subscriber>,
        base_stations: Vec<BaseStation>,
        params: NetworkParams,
    ) -> SagResult<Self> {
        if subscribers.is_empty() {
            return Err(SagError::NoSubscribers);
        }
        if base_stations.is_empty() {
            return Err(SagError::NoBaseStations);
        }
        Ok(Scenario {
            field,
            subscribers,
            base_stations,
            params,
        })
    }

    /// Number of subscribers `n`.
    pub fn n_subscribers(&self) -> usize {
        self.subscribers.len()
    }

    /// The subscribers' feasible circles, in subscriber order.
    pub fn feasible_circles(&self) -> Vec<Circle> {
        self.subscribers
            .iter()
            .map(Subscriber::feasible_circle)
            .collect()
    }

    /// Subscriber positions, in order.
    pub fn subscriber_positions(&self) -> Vec<Point> {
        self.subscribers.iter().map(|s| s.position).collect()
    }

    /// Base station positions, in order.
    pub fn base_station_positions(&self) -> Vec<Point> {
        self.base_stations.iter().map(|b| b.position).collect()
    }

    /// The smallest feasible distance `d_min` (used by MBMC's edge
    /// weights).
    pub fn dmin(&self) -> f64 {
        self.subscribers
            .iter()
            .map(|s| s.distance_req)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(x: f64, y: f64, d: f64) -> Subscriber {
        Subscriber::new(Point::new(x, y), d)
    }

    #[test]
    fn subscriber_circle() {
        let s = sub(1.0, 2.0, 35.0);
        let c = s.feasible_circle();
        assert_eq!(c.center, Point::new(1.0, 2.0));
        assert_eq!(c.radius, 35.0);
    }

    #[test]
    fn scenario_validation() {
        let field = Rect::centered_square(500.0);
        let params = NetworkParams::default();
        assert_eq!(
            Scenario::new(field, vec![], vec![BaseStation::new(Point::ORIGIN)], params)
                .unwrap_err(),
            SagError::NoSubscribers
        );
        assert_eq!(
            Scenario::new(field, vec![sub(0.0, 0.0, 30.0)], vec![], params).unwrap_err(),
            SagError::NoBaseStations
        );
        let sc = Scenario::new(
            field,
            vec![sub(0.0, 0.0, 30.0), sub(50.0, 0.0, 40.0)],
            vec![BaseStation::new(Point::new(100.0, 100.0))],
            params,
        )
        .unwrap();
        assert_eq!(sc.n_subscribers(), 2);
        assert_eq!(sc.dmin(), 30.0);
        assert_eq!(sc.feasible_circles().len(), 2);
    }

    #[test]
    fn params_dmax_matches_model() {
        let p = NetworkParams::default();
        // G=1, α=3, Pmax=1, Nmax=1e-9 → dmax = (1/1e-9)^(1/3) = 1000.
        assert!((p.dmax() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn pss_is_boundary_received_power() {
        let p = NetworkParams::default();
        let s = sub(0.0, 0.0, 10.0);
        // Pmax·G·10⁻³ = 1e-3.
        assert!((p.pss_for(&s) - 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_distance_req_panics() {
        sub(0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_nmax_panics() {
        NetworkParams::new(LinkBudget::default(), 0.0);
    }
}
