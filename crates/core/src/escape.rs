//! Coverage Link Escape (Algorithm 3).
//!
//! Given the hitting-set relay points of a zone, build the bipartite
//! graph between subscribers (side A) and relay points (side B) with an
//! edge whenever the point lies in the subscriber's feasible circle, then
//! peel by decreasing point degree so that every subscriber ends up
//! assigned to exactly one point and *one-on-one* coverages are maximised
//! — a relay serving exactly one subscriber can later be slid right onto
//! it, raising its signal and lowering everyone else's interference.

use sag_geom::Point;
use sag_graph::BipartiteGraph;

use crate::model::Scenario;

/// The coverage link pair `G_i` of Algorithm 1 Step 4: the bipartite
/// structure plus the escape assignment.
#[derive(Debug, Clone)]
pub struct EscapeResult {
    /// `assignment[j]` = index into the relay points serving subscriber
    /// `j` (guaranteed `Some` when every subscriber is coverable by some
    /// point).
    pub assignment: Vec<Option<usize>>,
    /// For each relay point, the subscribers assigned to it.
    pub served: Vec<Vec<usize>>,
}

impl EscapeResult {
    /// Indices of relay points serving exactly one subscriber
    /// (one-on-one coverage).
    pub fn one_on_one_points(&self) -> Vec<usize> {
        self.served
            .iter()
            .enumerate()
            .filter_map(|(p, subs)| (subs.len() == 1).then_some(p))
            .collect()
    }

    /// Indices of relay points serving no subscriber after the escape
    /// (possible when another point absorbed all their candidates).
    pub fn unused_points(&self) -> Vec<usize> {
        self.served
            .iter()
            .enumerate()
            .filter_map(|(p, subs)| subs.is_empty().then_some(p))
            .collect()
    }
}

/// Builds the subscriber×point bipartite graph of Algorithm 3 Steps 1–2.
pub fn coverage_bipartite(scenario: &Scenario, points: &[Point]) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(scenario.n_subscribers(), points.len());
    for (j, sub) in scenario.subscribers.iter().enumerate() {
        let circle = sub.feasible_circle();
        for (p, &pt) in points.iter().enumerate() {
            if circle.contains(pt) {
                g.add_edge(j, p);
            }
        }
    }
    g
}

/// Runs Coverage Link Escape over the zone's subscribers and hitting-set
/// points.
pub fn coverage_link_escape(scenario: &Scenario, points: &[Point]) -> EscapeResult {
    let g = coverage_bipartite(scenario, points);
    let assignment = g.escape_assignment();
    let mut served = vec![Vec::new(); points.len()];
    for (j, asg) in assignment.iter().enumerate() {
        if let Some(p) = asg {
            served[*p].push(j);
        }
    }
    EscapeResult { assignment, served }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::Rect;

    fn scenario(subs: Vec<(f64, f64, f64)>) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn bipartite_edges_follow_circles() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (100.0, 0.0, 30.0)]);
        let pts = vec![Point::new(10.0, 0.0), Point::new(100.0, 10.0)];
        let g = coverage_bipartite(&sc, &pts);
        assert_eq!(g.neighbors_of_left(0), &[0]);
        assert_eq!(g.neighbors_of_left(1), &[1]);
    }

    #[test]
    fn every_coverable_subscriber_assigned() {
        let sc = scenario(vec![
            (0.0, 0.0, 30.0),
            (20.0, 0.0, 30.0),
            (100.0, 0.0, 30.0),
        ]);
        let pts = vec![Point::new(10.0, 0.0), Point::new(100.0, 0.0)];
        let r = coverage_link_escape(&sc, &pts);
        assert_eq!(r.assignment, vec![Some(0), Some(0), Some(1)]);
        assert_eq!(r.served[0], vec![0, 1]);
        assert_eq!(r.one_on_one_points(), vec![1]);
        assert!(r.unused_points().is_empty());
    }

    #[test]
    fn absorbed_point_becomes_unused() {
        // Point 1 only covers a subscriber that point 0 (higher degree)
        // absorbs.
        let sc = scenario(vec![(0.0, 0.0, 30.0), (20.0, 0.0, 30.0)]);
        let pts = vec![Point::new(10.0, 0.0), Point::new(30.0, 0.0)];
        let r = coverage_link_escape(&sc, &pts);
        assert_eq!(r.assignment, vec![Some(0), Some(0)]);
        assert_eq!(r.unused_points(), vec![1]);
    }

    #[test]
    fn uncoverable_subscriber_is_none() {
        let sc = scenario(vec![(0.0, 0.0, 30.0), (200.0, 0.0, 30.0)]);
        let pts = vec![Point::new(0.0, 0.0)];
        let r = coverage_link_escape(&sc, &pts);
        assert_eq!(r.assignment[0], Some(0));
        assert_eq!(r.assignment[1], None);
    }
}
