//! Structured end-to-end validation of a SAG deployment.
//!
//! The boolean checks scattered through the stage modules answer "is it
//! feasible?"; operators debugging a deployment need "*what exactly* is
//! wrong and by how much". [`validate_report`] audits a full
//! [`SagReport`] against its scenario and returns every violation as a
//! typed finding with its margin, so the `plan` CLI and the test-suite
//! can print actionable diagnostics.

use std::fmt;

use crate::coverage::powered_snr;
use crate::model::Scenario;
use crate::sag::SagReport;

/// One audited constraint with its margin.
///
/// `margin ≥ 0` means satisfied (with that much slack, in the
/// constraint's natural relative units); `margin < 0` is a violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which constraint was audited.
    pub kind: FindingKind,
    /// Relative slack: `actual/required − 1` for ≥-constraints,
    /// `1 − actual/limit` for ≤-constraints.
    pub margin: f64,
}

/// The constraint classes audited by [`validate_report`].
#[derive(Debug, Clone, PartialEq)]
pub enum FindingKind {
    /// Subscriber `ss` vs its serving relay's distance.
    AccessDistance {
        /// Subscriber index.
        ss: usize,
    },
    /// Subscriber `ss`'s delivered power vs its `P_ss` floor.
    AccessPower {
        /// Subscriber index.
        ss: usize,
    },
    /// Subscriber `ss`'s SNR vs β under the PRO powers.
    AccessSnr {
        /// Subscriber index.
        ss: usize,
    },
    /// Relay `relay`'s power vs `Pmax`.
    PowerCap {
        /// Relay index (coverage relays first, then chain transmitters).
        relay: usize,
    },
    /// Chain `chain`'s hop length vs its effective feasible distance.
    HopLength {
        /// Chain index in the connectivity plan.
        chain: usize,
    },
    /// Chain `chain`'s delivered per-hop power vs its `P_rs` requirement.
    ChainPower {
        /// Chain index in the connectivity plan.
        chain: usize,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = if self.margin >= 0.0 { "ok" } else { "VIOLATED" };
        match &self.kind {
            FindingKind::AccessDistance { ss } => {
                write!(
                    f,
                    "[{state}] SS{ss} access distance (margin {:+.2e})",
                    self.margin
                )
            }
            FindingKind::AccessPower { ss } => {
                write!(
                    f,
                    "[{state}] SS{ss} delivered power (margin {:+.2e})",
                    self.margin
                )
            }
            FindingKind::AccessSnr { ss } => {
                write!(f, "[{state}] SS{ss} SNR (margin {:+.2e})", self.margin)
            }
            FindingKind::PowerCap { relay } => {
                write!(
                    f,
                    "[{state}] relay {relay} power cap (margin {:+.2e})",
                    self.margin
                )
            }
            FindingKind::HopLength { chain } => {
                write!(
                    f,
                    "[{state}] chain {chain} hop length (margin {:+.2e})",
                    self.margin
                )
            }
            FindingKind::ChainPower { chain } => {
                write!(
                    f,
                    "[{state}] chain {chain} relay-link power (margin {:+.2e})",
                    self.margin
                )
            }
        }
    }
}

/// The complete audit of one deployment.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Every audited constraint, violations first (most negative margin
    /// leading).
    pub findings: Vec<Finding>,
}

impl ValidationReport {
    /// `true` when no constraint is violated.
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.margin >= 0.0)
    }

    /// The violations only.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.margin < 0.0)
    }

    /// The tightest margin across all constraints (the deployment's
    /// robustness figure).
    pub fn worst_margin(&self) -> f64 {
        self.findings
            .iter()
            .map(|f| f.margin)
            .fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let violations = self.violations().count();
        writeln!(
            f,
            "validation: {} findings, {} violations, worst margin {:+.3e}",
            self.findings.len(),
            violations,
            self.worst_margin()
        )?;
        for finding in self.findings.iter().take(20) {
            writeln!(f, "  {finding}")?;
        }
        if self.findings.len() > 20 {
            writeln!(f, "  … {} more", self.findings.len() - 20)?;
        }
        Ok(())
    }
}

/// Small relative tolerance so boundary-tight optima (PRO/UCPO sit on
/// their constraints by construction) audit as exactly satisfied.
const REL_TOL: f64 = 1e-6;

/// Audits a full pipeline report. See the module docs.
pub fn validate_report(scenario: &Scenario, report: &SagReport) -> ValidationReport {
    let mut findings = Vec::new();
    let model = scenario.params.link.model();
    let beta = scenario.params.link.beta();
    let pmax = scenario.params.link.pmax();

    // Lower tier, per subscriber.
    for (j, sub) in scenario.subscribers.iter().enumerate() {
        let r = report.coverage.assignment[j];
        let d = report.coverage.relays[r].distance(sub.position);
        findings.push(Finding {
            kind: FindingKind::AccessDistance { ss: j },
            margin: 1.0 - d / sub.distance_req + REL_TOL,
        });
        let delivered = model.received_power(report.lower_power.powers[r], d);
        let pss = scenario.params.pss_for(sub);
        findings.push(Finding {
            kind: FindingKind::AccessPower { ss: j },
            margin: delivered / pss - 1.0 + REL_TOL,
        });
        let snr = powered_snr(
            scenario,
            &report.coverage.relays,
            &report.lower_power.powers,
            j,
            r,
        );
        let snr_margin = if snr.is_infinite() {
            1.0
        } else {
            snr / beta - 1.0 + REL_TOL
        };
        findings.push(Finding {
            kind: FindingKind::AccessSnr { ss: j },
            margin: snr_margin,
        });
    }

    // Power caps over every materialised relay.
    for (i, relay) in report.relays().iter().enumerate() {
        findings.push(Finding {
            kind: FindingKind::PowerCap { relay: i },
            margin: 1.0 - relay.power / pmax + REL_TOL,
        });
    }

    // Upper tier, per chain.
    let mut prs = vec![0.0f64; report.coverage.n_relays()];
    for (j, &r) in report.coverage.assignment.iter().enumerate() {
        prs[r] = prs[r].max(scenario.params.pss_for(&scenario.subscribers[j]));
    }
    for (ci, chain) in report.plan.chains.iter().enumerate() {
        let eff = report.plan.effective_distance[chain.child];
        findings.push(Finding {
            kind: FindingKind::HopLength { chain: ci },
            margin: 1.0 - chain.hop_length / eff + REL_TOL,
        });
        let hop_power = report.upper_power.hop_power[ci];
        let delivered = model.received_power(hop_power, chain.hop_length);
        findings.push(Finding {
            kind: FindingKind::ChainPower { chain: ci },
            margin: delivered / prs[chain.child] - 1.0 + REL_TOL,
        });
    }

    findings.sort_by(|a, b| sag_geom::float::total_cmp(&a.margin, &b.margin));
    ValidationReport { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use crate::sag::run_sag;
    use sag_geom::{Point, Rect};

    fn scenario() -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            vec![
                Subscriber::new(Point::new(0.0, 0.0), 35.0),
                Subscriber::new(Point::new(40.0, 10.0), 32.0),
                Subscriber::new(Point::new(-120.0, 80.0), 38.0),
            ],
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn pipeline_output_audits_clean() {
        let sc = scenario();
        let report = run_sag(&sc).unwrap();
        let audit = validate_report(&sc, &report);
        assert!(audit.is_clean(), "violations: {audit}");
        assert!(audit.worst_margin() >= 0.0);
        // Counts: 3 constraints per SS + 1 per relay + 2 per chain.
        let expected =
            3 * sc.n_subscribers() + report.relays().len() + 2 * report.plan.chains.len();
        assert_eq!(audit.findings.len(), expected);
    }

    #[test]
    fn corrupted_power_is_flagged() {
        let sc = scenario();
        let mut report = run_sag(&sc).unwrap();
        // Starve the first relay.
        report.lower_power.powers[0] = 0.0;
        let audit = validate_report(&sc, &report);
        assert!(!audit.is_clean());
        let has_power_violation = audit
            .violations()
            .any(|f| matches!(f.kind, FindingKind::AccessPower { .. }));
        assert!(has_power_violation, "{audit}");
        // Violations sort first.
        assert!(audit.findings[0].margin < 0.0);
    }

    #[test]
    fn over_cap_power_is_flagged() {
        let sc = scenario();
        let mut report = run_sag(&sc).unwrap();
        report.lower_power.powers[0] = sc.params.link.pmax() * 2.0;
        let audit = validate_report(&sc, &report);
        assert!(audit
            .violations()
            .any(|f| matches!(f.kind, FindingKind::PowerCap { .. })));
    }

    #[test]
    fn display_is_informative() {
        let sc = scenario();
        let report = run_sag(&sc).unwrap();
        let audit = validate_report(&sc, &report);
        let text = format!("{audit}");
        assert!(text.contains("validation:"));
        assert!(text.contains("worst margin"));
    }
}
