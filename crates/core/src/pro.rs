//! Power Reduction Optimization — PRO (Algorithm 6), the LPQC optimal
//! benchmark (§III-A.2) and the all-`Pmax` baseline.
//!
//! Given the fixed coverage topology found by SAMC (relay positions +
//! SS→relay assignment), reduce relay transmit powers while keeping
//! every subscriber's data-rate (coverage) and SNR constraints:
//!
//! * **coverage power** `P_c^i` — the smallest power at which relay `i`
//!   still delivers `P_ss^j` to each of its subscribers `j`
//!   (constraint (3.8));
//! * **SNR power** `P_snr^i` — the smallest power that additionally
//!   clears `β ×` the *current* interference at each of its subscribers
//!   (constraint (3.9), evaluated against the other relays' present
//!   powers).
//!
//! PRO repeatedly tries to drop relays straight to `P_c` (checking SNR),
//! and when stuck, commits the relay with the smallest gap
//! `ΔP = P_snr − P_c` at `P_snr` — exactly the loop of Algorithm 6. Since
//! every later change only *reduces* other relays' powers (reducing
//! interference), constraints verified at commit time stay satisfied:
//! Theorem 1's (1+φ) bound applies.

// Per-relay power vectors are manipulated as parallel indexed arrays.
#![allow(clippy::needless_range_loop)]

use std::time::Instant;

use sag_lp::{Budget, LpProblem, Relation, Spent};
use sag_radio::InterferenceLedger;

use crate::coverage::{powered_ledger, CoverageSolution, ServedIndex};
use crate::error::{SagError, SagResult};
use crate::model::Scenario;

/// How often (in loop iterations) budgets poll the wall clock.
const BUDGET_POLL_MASK: usize = 63;

/// Fixed-point iterations between full ledger rebuilds (drift hygiene
/// over long `set_power` sequences; see the ledger docs).
const LEDGER_REBUILD_PERIOD: usize = 256;

/// A power allocation for the coverage relays, in relay order.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerAllocation {
    /// Per-relay transmit powers.
    pub powers: Vec<f64>,
}

impl PowerAllocation {
    /// Total transmit power `P_L` (the paper's lower-tier metric).
    pub fn total(&self) -> f64 {
        self.powers.iter().sum()
    }
}

/// The all-`Pmax` baseline the paper compares against.
pub fn baseline_power(scenario: &Scenario, sol: &CoverageSolution) -> PowerAllocation {
    PowerAllocation {
        powers: vec![scenario.params.link.pmax(); sol.n_relays()],
    }
}

/// Coverage power `P_c` for every relay: `max_j P_ss^j · d_ij^α / G`
/// over its assigned subscribers (relays with no subscribers — which a
/// valid [`CoverageSolution`] never contains — would get 0).
pub fn coverage_powers(scenario: &Scenario, sol: &CoverageSolution) -> Vec<f64> {
    let model = scenario.params.link.model();
    let mut pc = vec![0.0; sol.n_relays()];
    for (j, &r) in sol.assignment.iter().enumerate() {
        let sub = &scenario.subscribers[j];
        let d = sol.relays[r].distance(sub.position);
        let need = model.required_tx_power(scenario.params.pss_for(sub), d);
        if need > pc[r] {
            pc[r] = need;
        }
    }
    pc
}

/// SNR power `P_snr` for relay `r` given the other relays' current
/// powers (read from the ledger — `interference_at(j, r)` excludes `r`
/// entirely, so `r`'s own registered power is irrelevant): the smallest
/// power clearing `β · I_j` *and* `P_ss^j` at every assigned subscriber
/// `j`.
fn snr_power(
    scenario: &Scenario,
    sol: &CoverageSolution,
    ledger: &InterferenceLedger,
    served: &ServedIndex,
    r: usize,
    pc_r: f64,
) -> f64 {
    let model = scenario.params.link.model();
    let beta = scenario.params.link.beta();
    let mut need = pc_r;
    for &j in served.of(r) {
        let spos = scenario.subscribers[j].position;
        let interference = ledger.interference_at(j, r);
        let d = sol.relays[r].distance(spos);
        let tx = model.required_tx_power(beta * interference, d);
        if tx > need {
            need = tx;
        }
    }
    need
}

/// Checks every subscriber of relay `r` against coverage + SNR with `r`
/// transmitting at `power_r` and every other relay at its power in the
/// ledger, with a small relative slack (`1e-6`) so that allocations
/// sitting exactly on a constraint boundary — the LP optimum always
/// does — verify cleanly.
fn relay_constraints_ok(
    scenario: &Scenario,
    sol: &CoverageSolution,
    ledger: &InterferenceLedger,
    served: &ServedIndex,
    r: usize,
    power_r: f64,
) -> bool {
    const REL_TOL: f64 = 1e-6;
    let model = scenario.params.link.model();
    let beta = scenario.params.link.beta();
    for &j in served.of(r) {
        let sub = &scenario.subscribers[j];
        let d = sol.relays[r].distance(sub.position);
        let signal = model.received_power(power_r, d);
        if signal < scenario.params.pss_for(sub) * (1.0 - REL_TOL) {
            return false;
        }
        let interference = ledger.interference_at(j, r);
        if signal < beta * interference * (1.0 - REL_TOL) {
            return false;
        }
    }
    true
}

/// Runs PRO (Algorithm 6). Returns the reduced power allocation.
///
/// The input must be a feasible coverage solution (as produced by SAMC or
/// the ILPQC); PRO never returns powers above `Pmax` and never breaks a
/// constraint that held at `Pmax`.
///
/// # Panics
/// Panics if the solution's assignment is inconsistent with the scenario
/// (kept: a mismatched assignment is a caller bug, not an input-data
/// condition — validated ingress paths use [`pro_with_budget`]).
pub fn pro(scenario: &Scenario, sol: &CoverageSolution) -> PowerAllocation {
    assert_eq!(
        sol.assignment.len(),
        scenario.n_subscribers(),
        "assignment length mismatch"
    );
    match pro_with_budget(scenario, sol, &Budget::unlimited()) {
        Ok(alloc) => alloc,
        // Unreachable: the length was checked and the budget is
        // unlimited, so no error path remains.
        Err(e) => unreachable!("pro with unlimited budget cannot fail: {e}"),
    }
}

/// Runs PRO under a cooperative [`Budget`], with typed errors instead of
/// panics.
///
/// # Errors
/// [`SagError::Infeasible`] (stage message `"pro"`) when the solution's
/// assignment length does not match the scenario;
/// [`SagError::BudgetExceeded`] (stage `"pro"`) when the deadline passes
/// or the cancellation flag is raised between commit rounds.
pub fn pro_with_budget(
    scenario: &Scenario,
    sol: &CoverageSolution,
    budget: &Budget,
) -> SagResult<PowerAllocation> {
    let _stage = sag_obs::span("pro");
    let started = Instant::now();
    if sol.assignment.len() != scenario.n_subscribers() {
        return Err(SagError::Infeasible(format!(
            "pro: assignment length {} does not match {} subscribers",
            sol.assignment.len(),
            scenario.n_subscribers()
        )));
    }
    let pmax = scenario.params.link.pmax();
    let n = sol.n_relays();
    let pc = coverage_powers(scenario, sol);
    if sag_obs::enabled() {
        sag_obs::gauge("pro.baseline_total", pmax * n as f64);
        sag_obs::gauge("pro.floor_total", pc.iter().sum());
    }
    let served = sol.served_index();
    let mut powers = vec![pmax; n]; // P1, committed state
                                    // The ledger tracks the committed powers; every commit is a
                                    // `set_power` delta and every trial reads `interference_at` in O(1)
                                    // instead of re-summing over all relays.
    let mut ledger = powered_ledger(scenario, &sol.relays, &powers);
    let mut pending: Vec<usize> = (0..n).collect(); // K

    while !pending.is_empty() {
        budget
            .check_interrupt()
            .map_err(|_| SagError::BudgetExceeded {
                stage: "pro",
                spent: Spent {
                    nodes: 0,
                    elapsed: started.elapsed(),
                },
            })?;
        // Pass 1 (Steps 5–9): tentatively drop each pending relay to its
        // coverage power; commit those whose own subscribers stay happy.
        // A trial power for `r` needs no ledger mutation — the
        // interference at `r`'s subscribers excludes `r` by definition.
        let mut committed_any = false;
        let mut still_pending = Vec::new();
        for &r in &pending {
            let trial = pc[r].min(pmax);
            if relay_constraints_ok(scenario, sol, &ledger, &served, r, trial) {
                powers[r] = trial;
                ledger.set_power(r, trial);
                committed_any = true;
            } else {
                still_pending.push(r);
            }
        }
        pending = still_pending;
        if pending.is_empty() {
            break;
        }
        if !committed_any {
            // Steps 10–13: commit the relay with minimal ΔP = P_snr − P_c
            // at its SNR power.
            let (r_min, p_snr) = pending
                .iter()
                .map(|&r| {
                    (
                        r,
                        snr_power(scenario, sol, &ledger, &served, r, pc[r]).min(pmax),
                    )
                })
                .min_by(|a, b| sag_geom::float::total_cmp(&(a.1 - pc[a.0]), &(b.1 - pc[b.0])))
                .expect("pending not empty");
            powers[r_min] = p_snr;
            ledger.set_power(r_min, p_snr);
            pending.retain(|&r| r != r_min);
        }
    }
    crate::coverage::flush_ledger_stats(&ledger);
    Ok(PowerAllocation { powers })
}

/// The LPQC optimum (§III-A.2) for the *fixed* assignment of `sol`,
/// computed as the minimal fixed point of the power-control map.
///
/// With `T_ij` fixed, every constraint has the form
/// `P_r ≥ f_r(P_other)` with `f_r` monotone non-decreasing (coverage
/// floor is constant; the SNR floor is `β/g_rj · Σ_{k≠r} P_k g_kj`).
/// Such a system has a unique coordinatewise-minimal solution — the
/// fixed point of `P ← max(P_c, SNR floors)` — and that point minimises
/// `Σ P_r` (it is ≤ every feasible point in every coordinate). This is
/// the classic standard-interference-function result from power-control
/// theory; the iteration from `P = P_c` converges monotonically and is
/// numerically robust where a simplex tableau (mixing path-loss gains
/// across ~14 orders of magnitude) loses precision.
/// [`optimal_power_lp`] keeps the direct LP formulation for
/// cross-validation on well-conditioned instances.
///
/// # Errors
/// [`SagError::Infeasible`] when the minimal fixed point exceeds `Pmax`
/// (the fixed assignment admits no feasible power vector).
pub fn optimal_power(scenario: &Scenario, sol: &CoverageSolution) -> SagResult<PowerAllocation> {
    optimal_power_with_budget(scenario, sol, &Budget::unlimited())
}

/// [`optimal_power`] under a cooperative [`Budget`], polled every 64
/// fixed-point iterations.
///
/// # Errors
/// [`SagError::BudgetExceeded`] (stage `"pro"`) on deadline or
/// cancellation; otherwise see [`optimal_power`].
pub fn optimal_power_with_budget(
    scenario: &Scenario,
    sol: &CoverageSolution,
    budget: &Budget,
) -> SagResult<PowerAllocation> {
    let started = Instant::now();
    let model = scenario.params.link.model();
    let beta = scenario.params.link.beta();
    let pmax = scenario.params.link.pmax();
    let pc = coverage_powers(scenario, sol);
    let mut powers = pc.clone();
    let mut ledger = powered_ledger(scenario, &sol.relays, &powers);
    // Geometric convergence: iterate the monotone map until stationary.
    // The update stays a Jacobi sweep: every `need` is computed from the
    // *current* ledger state, and only then is the whole `next` vector
    // committed via `set_power` deltas (no-ops once coordinates settle).
    for iter in 0..100_000 {
        if iter & BUDGET_POLL_MASK == 0 && budget.check_interrupt().is_err() {
            return Err(SagError::BudgetExceeded {
                stage: "pro",
                spent: Spent {
                    nodes: 0,
                    elapsed: started.elapsed(),
                },
            });
        }
        if iter > 0 && iter.is_multiple_of(LEDGER_REBUILD_PERIOD) {
            ledger.rebuild();
        }
        let mut next = pc.clone();
        for (j, &r) in sol.assignment.iter().enumerate() {
            let spos = scenario.subscribers[j].position;
            let interference = ledger.interference_at(j, r);
            let d = sol.relays[r].distance(spos);
            let need = model.required_tx_power(beta * interference, d);
            if need > next[r] {
                next[r] = need;
            }
        }
        let max_rel_step = powers
            .iter()
            .zip(&next)
            .map(|(&a, &b)| (b - a).abs() / b.max(1e-300))
            .fold(0.0f64, f64::max);
        for (r, &p) in next.iter().enumerate() {
            ledger.set_power(r, p);
        }
        powers = next;
        if powers.iter().any(|&p| p > pmax * (1.0 + 1e-9)) {
            return Err(SagError::Infeasible(
                "optimal_power: fixed point exceeds Pmax".into(),
            ));
        }
        if max_rel_step < 1e-14 {
            return Ok(PowerAllocation { powers });
        }
    }
    // The map contracts whenever the spectral radius of the β-weighted
    // gain matrix is < 1, which feasibility at Pmax guarantees; hitting
    // the iteration cap means the instance sits exactly at the
    // feasibility boundary — return the (feasible) iterate.
    Ok(PowerAllocation { powers })
}

/// The LPQC optimum via the explicit LP formulation (`sag-lp` simplex).
///
/// Kept as an independently-derived benchmark: tests assert it matches
/// [`optimal_power`] on instances whose gain spread stays within the
/// dense tableau's precision.
///
/// # Errors
/// [`SagError::Lp`] if the LP solve fails (including numerically — see
/// [`optimal_power`] for the robust route).
pub fn optimal_power_lp(scenario: &Scenario, sol: &CoverageSolution) -> SagResult<PowerAllocation> {
    let model = scenario.params.link.model();
    let beta = scenario.params.link.beta();
    let pmax = scenario.params.link.pmax();
    let n = sol.n_relays();
    // Column scaling: relay powers span many orders of magnitude (a relay
    // sitting on its subscriber needs ~d^α less power than one at the
    // circle edge), which would swamp the simplex tolerances. Solve in
    // units of each relay's coverage power: P_r = s_r · y_r with
    // s_r = P_c^r, so y ≈ 1 at the optimum for coverage-bound relays.
    let scale = coverage_powers(scenario, sol);
    let mut lp = LpProblem::minimize(n);
    lp.set_objective(&scale);
    for r in 0..n {
        assert!(
            scale[r] > 0.0,
            "every relay serves a subscriber, so P_c > 0"
        );
        lp.set_bounds(r, 0.0, pmax / scale[r]);
    }
    for (j, &r) in sol.assignment.iter().enumerate() {
        let sub = &scenario.subscribers[j];
        let d = sol.relays[r].distance(sub.position);
        // Gain of relay k toward subscriber j per unit of y_k.
        let gain =
            |k: usize| scale[k] * model.received_power(1.0, sol.relays[k].distance(sub.position));
        // (3.8) coverage: s_r·y_r·g_rj ≥ P_ss^j.
        lp.add_constraint(
            &[(r, scale[r] * model.received_power(1.0, d))],
            Relation::Ge,
            scenario.params.pss_for(sub),
        );
        // (3.9) SNR (linear with fixed assignment):
        // s_r·y_r·g_rj − β·Σ_{k≠r} s_k·y_k·g_kj ≥ 0.
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(n);
        for k in 0..n {
            if k == r {
                row.push((k, gain(k)));
            } else {
                row.push((k, -beta * gain(k)));
            }
        }
        lp.add_constraint(&row, Relation::Ge, 0.0);
    }
    let lp_sol = lp.solve().map_err(SagError::from)?;
    let powers: Vec<f64> = lp_sol.x.iter().zip(&scale).map(|(&y, &s)| y * s).collect();
    Ok(PowerAllocation { powers })
}

/// Verifies a power allocation against every coverage + SNR constraint
/// (used by tests and the experiment harness to validate PRO and the LP).
pub fn allocation_is_feasible(
    scenario: &Scenario,
    sol: &CoverageSolution,
    alloc: &PowerAllocation,
) -> bool {
    if alloc.powers.len() != sol.n_relays() {
        return false;
    }
    if alloc
        .powers
        .iter()
        .any(|&p| !(0.0..=scenario.params.link.pmax() + 1e-9).contains(&p))
    {
        return false;
    }
    let ledger = powered_ledger(scenario, &sol.relays, &alloc.powers);
    let served = sol.served_index();
    (0..sol.n_relays())
        .all(|r| relay_constraints_ok(scenario, sol, &ledger, &served, r, alloc.powers[r]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use crate::samc::samc;
    use sag_geom::{Point, Rect};
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::new(
                LinkBudget::builder()
                    .snr_threshold(Db::new(beta_db))
                    .build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    fn sample_solution(beta_db: f64) -> (Scenario, CoverageSolution) {
        let sc = scenario(
            vec![
                (0.0, 0.0, 35.0),
                (20.0, 10.0, 35.0),
                (120.0, 0.0, 30.0),
                (-150.0, -80.0, 40.0),
            ],
            beta_db,
        );
        let sol = samc(&sc).expect("feasible scenario");
        (sc, sol)
    }

    #[test]
    fn pro_never_exceeds_baseline_and_stays_feasible() {
        let (sc, sol) = sample_solution(-15.0);
        let base = baseline_power(&sc, &sol);
        let reduced = pro(&sc, &sol);
        assert!(reduced.total() <= base.total() + 1e-12);
        assert!(allocation_is_feasible(&sc, &sol, &reduced));
        assert!(allocation_is_feasible(&sc, &sol, &base));
    }

    #[test]
    fn pro_beats_baseline_substantially() {
        // Relays snapped onto subscribers need far less than Pmax.
        let (sc, sol) = sample_solution(-15.0);
        let base = baseline_power(&sc, &sol).total();
        let reduced = pro(&sc, &sol).total();
        assert!(
            reduced < base * 0.8,
            "expected large savings, got {reduced} vs baseline {base}"
        );
    }

    #[test]
    fn lp_optimal_lower_bounds_pro() {
        let (sc, sol) = sample_solution(-15.0);
        let reduced = pro(&sc, &sol);
        let opt = optimal_power_lp(&sc, &sol).unwrap();
        assert!(allocation_is_feasible(&sc, &sol, &opt));
        assert!(
            opt.total() <= reduced.total() + 1e-6,
            "LP optimum {} must not exceed PRO {}",
            opt.total(),
            reduced.total()
        );
    }

    #[test]
    fn coverage_power_at_boundary_equals_pmax() {
        // A relay exactly at the feasible-distance boundary needs Pmax.
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let sol = CoverageSolution {
            relays: vec![Point::new(30.0, 0.0)],
            assignment: vec![0],
        };
        let pc = coverage_powers(&sc, &sol);
        assert!((pc[0] - sc.params.link.pmax()).abs() < 1e-9);
    }

    #[test]
    fn coverage_power_scales_with_distance() {
        // At half the feasible distance, Pc = Pmax · (1/2)^α = 1/8 (α=3).
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let sol = CoverageSolution {
            relays: vec![Point::new(15.0, 0.0)],
            assignment: vec![0],
        };
        let pc = coverage_powers(&sc, &sol);
        assert!((pc[0] - 0.125).abs() < 1e-9);
    }

    #[test]
    fn single_relay_drops_to_coverage_power() {
        // No interference: PRO should land exactly on Pc.
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let sol = CoverageSolution {
            relays: vec![Point::new(15.0, 0.0)],
            assignment: vec![0],
        };
        let reduced = pro(&sc, &sol);
        assert!((reduced.powers[0] - 0.125).abs() < 1e-9);
        let opt = optimal_power_lp(&sc, &sol).unwrap();
        assert!((opt.total() - reduced.total()).abs() < 1e-9);
    }

    #[test]
    fn strict_beta_keeps_powers_feasible() {
        let (sc, sol) = sample_solution(-10.0);
        let reduced = pro(&sc, &sol);
        assert!(allocation_is_feasible(&sc, &sol, &reduced));
    }

    #[test]
    fn pro_with_budget_rejects_length_mismatch() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let sol = CoverageSolution {
            relays: vec![Point::new(15.0, 0.0)],
            assignment: vec![0, 0], // one subscriber, two assignments
        };
        assert!(matches!(
            pro_with_budget(&sc, &sol, &Budget::unlimited()),
            Err(SagError::Infeasible(_))
        ));
    }

    #[test]
    fn pro_with_expired_budget_reports_budget_exceeded() {
        let (sc, sol) = sample_solution(-15.0);
        let err = pro_with_budget(
            &sc,
            &sol,
            &Budget::unlimited().with_deadline(std::time::Duration::ZERO),
        )
        .unwrap_err();
        assert!(matches!(err, SagError::BudgetExceeded { stage: "pro", .. }));
        let err = optimal_power_with_budget(
            &sc,
            &sol,
            &Budget::unlimited().with_deadline(std::time::Duration::ZERO),
        )
        .unwrap_err();
        assert!(matches!(err, SagError::BudgetExceeded { stage: "pro", .. }));
    }

    #[test]
    fn baseline_total_counts_relays() {
        let (sc, sol) = sample_solution(-15.0);
        let base = baseline_power(&sc, &sol);
        assert_eq!(base.powers.len(), sol.n_relays());
        assert!((base.total() - sol.n_relays() as f64 * sc.params.link.pmax()).abs() < 1e-12);
    }
}

#[cfg(test)]
mod fixed_point_tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use crate::samc::samc;
    use sag_geom::{Point, Rect};
    use sag_radio::{units::Db, LinkBudget};

    fn scenario(subs: Vec<(f64, f64, f64)>, beta_db: f64) -> Scenario {
        Scenario::new(
            Rect::centered_square(500.0),
            subs.into_iter()
                .map(|(x, y, d)| Subscriber::new(Point::new(x, y), d))
                .collect(),
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::new(
                LinkBudget::builder()
                    .snr_threshold(Db::new(beta_db))
                    .build(),
                1e-9,
            ),
        )
        .unwrap()
    }

    #[test]
    fn fixed_point_matches_lp_when_lp_succeeds() {
        // Relays at moderate distances (no snap): well-conditioned LP.
        let sc = scenario(vec![(0.0, 0.0, 35.0), (80.0, 0.0, 35.0)], -15.0);
        let sol = CoverageSolution {
            relays: vec![Point::new(20.0, 0.0), Point::new(60.0, 0.0)],
            assignment: vec![0, 1],
        };
        let fp = optimal_power(&sc, &sol).unwrap();
        let lp = optimal_power_lp(&sc, &sol).unwrap();
        assert!(
            (fp.total() - lp.total()).abs() / fp.total().max(1e-12) < 1e-6,
            "fixed point {} vs LP {}",
            fp.total(),
            lp.total()
        );
        assert!(allocation_is_feasible(&sc, &sol, &fp));
    }

    #[test]
    fn fixed_point_lower_bounds_pro_on_samc_output() {
        let sc = scenario(
            vec![
                (0.0, 0.0, 35.0),
                (20.0, 10.0, 35.0),
                (120.0, 0.0, 30.0),
                (-150.0, -80.0, 40.0),
            ],
            -15.0,
        );
        let sol = samc(&sc).unwrap();
        let fp = optimal_power(&sc, &sol).unwrap();
        let reduced = pro(&sc, &sol);
        assert!(allocation_is_feasible(&sc, &sol, &fp));
        assert!(fp.total() <= reduced.total() + 1e-9);
        // And PRO's ratio to optimal obeys Theorem 1's (1+φ) with the
        // computed φ.
        let pc = coverage_powers(&sc, &sol);
        let phi: f64 = reduced
            .powers
            .iter()
            .zip(&pc)
            .map(|(&p, &c)| (p - c).max(0.0))
            .sum::<f64>()
            / fp.total().max(1e-300);
        assert!(reduced.total() <= (1.0 + phi) * fp.total() + 1e-9);
    }

    #[test]
    fn fixed_point_infeasible_when_snr_unreachable() {
        // Two shared relays pinned ≈ 6 from their subscribers with the
        // interferer ≈ 12 away: +20 dB is unreachable at any power.
        let sc = scenario(
            vec![
                (0.0, -6.0, 6.5),
                (0.0, 6.0, 6.5),
                (12.0, -6.0, 6.5),
                (12.0, 6.0, 6.5),
            ],
            20.0,
        );
        let sol = CoverageSolution {
            relays: vec![Point::new(0.0, 0.0), Point::new(12.0, 0.0)],
            assignment: vec![0, 0, 1, 1],
        };
        assert!(matches!(
            optimal_power(&sc, &sol),
            Err(SagError::Infeasible(_))
        ));
    }

    #[test]
    fn single_relay_fixed_point_is_coverage_power() {
        let sc = scenario(vec![(0.0, 0.0, 30.0)], -15.0);
        let sol = CoverageSolution {
            relays: vec![Point::new(15.0, 0.0)],
            assignment: vec![0],
        };
        let fp = optimal_power(&sc, &sol).unwrap();
        assert!((fp.powers[0] - 0.125).abs() < 1e-12);
    }
}

/// Per-subscriber power sensitivity from the LPQC duals: how much the
/// total lower-tier power would grow per unit increase of subscriber
/// `j`'s received-power floor `P_ss^j` (the coverage row's shadow price).
///
/// Zero entries mark subscribers whose demands are slack at the optimum;
/// large entries mark the subscribers that pin the power budget — the
/// ones to renegotiate or re-home first.
///
/// # Errors
/// Propagates LP failures (see [`optimal_power_lp`] for conditioning
/// caveats; use on solutions whose relays are not all snapped to zero
/// distance).
pub fn power_sensitivity(scenario: &Scenario, sol: &CoverageSolution) -> SagResult<Vec<f64>> {
    let model = scenario.params.link.model();
    let beta = scenario.params.link.beta();
    let pmax = scenario.params.link.pmax();
    let n = sol.n_relays();
    let scale = coverage_powers(scenario, sol);
    let mut lp = LpProblem::minimize(n);
    lp.set_objective(&scale);
    for r in 0..n {
        lp.set_bounds(r, 0.0, pmax / scale[r]);
    }
    // Row order: for each subscriber, its coverage row then its SNR row.
    for (j, &r) in sol.assignment.iter().enumerate() {
        let sub = &scenario.subscribers[j];
        let d = sol.relays[r].distance(sub.position);
        let gain =
            |k: usize| scale[k] * model.received_power(1.0, sol.relays[k].distance(sub.position));
        lp.add_constraint(
            &[(r, scale[r] * model.received_power(1.0, d))],
            Relation::Ge,
            scenario.params.pss_for(sub),
        );
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(n);
        for k in 0..n {
            if k == r {
                row.push((k, gain(k)));
            } else {
                row.push((k, -beta * gain(k)));
            }
        }
        lp.add_constraint(&row, Relation::Ge, 0.0);
    }
    let detailed = lp.solve_detailed().map_err(SagError::from)?;
    Ok((0..scenario.n_subscribers())
        .map(|j| detailed.duals[2 * j].unwrap_or(0.0).max(0.0))
        .collect())
}

#[cfg(test)]
mod sensitivity_tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use sag_geom::{Point, Rect};

    #[test]
    fn far_subscriber_dominates_sensitivity() {
        // One relay, two subscribers: the far one sets P_c, so only its
        // coverage row is binding.
        let sc = Scenario::new(
            Rect::centered_square(500.0),
            vec![
                Subscriber::new(Point::new(30.0, 0.0), 35.0), // far (binding)
                Subscriber::new(Point::new(5.0, 0.0), 35.0),  // near (slack)
            ],
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::default(),
        )
        .unwrap();
        let sol = crate::coverage::CoverageSolution {
            relays: vec![Point::new(0.0, 0.0)],
            assignment: vec![0, 0],
        };
        let s = power_sensitivity(&sc, &sol).unwrap();
        assert!(
            s[0] > 0.0,
            "binding subscriber must have positive sensitivity"
        );
        assert!(
            s[1].abs() < 1e-9,
            "slack subscriber must have zero sensitivity"
        );
        // The dual equals dP/dPss = d^α / G = 30³.
        assert!((s[0] - 27000.0).abs() / 27000.0 < 1e-6, "got {}", s[0]);
    }

    #[test]
    fn sensitivity_matches_finite_difference() {
        // Two relays with interference; perturb one subscriber's distance
        // requirement (which moves its P_ss) and compare.
        let build = |d0: f64| {
            let sc = Scenario::new(
                Rect::centered_square(500.0),
                vec![
                    Subscriber::new(Point::new(20.0, 0.0), d0),
                    Subscriber::new(Point::new(80.0, 0.0), 35.0),
                ],
                vec![BaseStation::new(Point::new(200.0, 200.0))],
                NetworkParams::default(),
            )
            .unwrap();
            let sol = crate::coverage::CoverageSolution {
                relays: vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
                assignment: vec![0, 1],
            };
            (sc, sol)
        };
        let (sc, sol) = build(35.0);
        let s = power_sensitivity(&sc, &sol).unwrap();
        let base = optimal_power(&sc, &sol).unwrap().total();
        // Finite difference in P_ss via a slightly smaller feasible
        // distance (higher floor).
        let (sc2, sol2) = build(34.9);
        let bumped = optimal_power(&sc2, &sol2).unwrap().total();
        let dpss = sc2.params.pss_for(&sc2.subscribers[0]) - sc.params.pss_for(&sc.subscribers[0]);
        let fd = (bumped - base) / dpss;
        assert!(
            (fd - s[0]).abs() / fd.max(1e-12) < 0.05,
            "fd {fd} vs dual {}",
            s[0]
        );
    }
}
