//! Network-lifetime analysis under battery-powered relays.
//!
//! **Extension beyond the paper.** The related work the paper builds on
//! (\[12\] Hou et al., \[13\] Xu/Hassanein et al., \[14\] Pan et al.) studies
//! relay deployment for *network lifetime*. This module closes the loop:
//! given a power allocation (PRO, UCPO, or the all-`Pmax` baseline) and
//! per-relay battery capacities, it computes how long the network lives
//! and how much lifetime the green allocation buys.
//!
//! Lifetime here is the classic first-failure definition: the network is
//! alive while *every* relay is alive, so
//! `lifetime = min_i capacity_i / power_i` (a relay idling at zero power
//! never dies).

use crate::pro::PowerAllocation;

/// Battery capacities per relay, in energy units (power·time).
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryBank {
    capacities: Vec<f64>,
}

impl BatteryBank {
    /// Creates a bank from explicit capacities.
    ///
    /// # Panics
    /// Panics if any capacity is non-positive or not finite.
    pub fn new(capacities: Vec<f64>) -> Self {
        assert!(
            capacities.iter().all(|c| c.is_finite() && *c > 0.0),
            "battery capacities must be finite and > 0"
        );
        BatteryBank { capacities }
    }

    /// A uniform bank: `n` relays with equal `capacity`.
    ///
    /// # Panics
    /// Panics unless `capacity > 0` and finite.
    pub fn uniform(n: usize, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be > 0"
        );
        BatteryBank {
            capacities: vec![capacity; n],
        }
    }

    /// Number of batteries.
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Returns `true` for an empty bank.
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// Per-relay capacities.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }
}

/// Lifetime analysis of one power allocation against a battery bank.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// Time until the first relay battery dies (`f64::INFINITY` when
    /// every relay draws zero power).
    pub first_failure: f64,
    /// Index of the first relay to die (`None` when none ever does).
    pub bottleneck: Option<usize>,
    /// Per-relay time-to-death.
    pub per_relay: Vec<f64>,
}

/// Computes the lifetime of `alloc` on `bank`.
///
/// # Panics
/// Panics if the allocation and bank sizes differ, or any power is
/// negative.
pub fn lifetime(alloc: &PowerAllocation, bank: &BatteryBank) -> LifetimeReport {
    assert_eq!(
        alloc.powers.len(),
        bank.len(),
        "allocation ({}) and battery bank ({}) size mismatch",
        alloc.powers.len(),
        bank.len()
    );
    let per_relay: Vec<f64> = alloc
        .powers
        .iter()
        .zip(bank.capacities())
        .map(|(&p, &c)| {
            assert!(p >= 0.0, "negative power");
            if p <= 0.0 {
                f64::INFINITY
            } else {
                c / p
            }
        })
        .collect();
    let (bottleneck, first_failure) = per_relay
        .iter()
        .enumerate()
        .min_by(|a, b| sag_geom::float::total_cmp(a.1, b.1))
        .map(|(i, &t)| (Some(i).filter(|_| t.is_finite()), t))
        .unwrap_or((None, f64::INFINITY));
    LifetimeReport {
        first_failure,
        bottleneck,
        per_relay,
    }
}

/// The lifetime multiplier a green allocation buys over a reference
/// (e.g. PRO vs the all-`Pmax` baseline): `lifetime(green) /
/// lifetime(reference)`. Infinite lifetimes yield `f64::INFINITY`;
/// a zero reference lifetime cannot occur with positive capacities.
pub fn lifetime_gain(green: &LifetimeReport, reference: &LifetimeReport) -> f64 {
    if green.first_failure.is_infinite() {
        return f64::INFINITY;
    }
    green.first_failure / reference.first_failure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseStation, NetworkParams, Scenario, Subscriber};
    use crate::pro::{baseline_power, pro};
    use crate::samc::samc;
    use sag_geom::{Point, Rect};

    #[test]
    fn basic_lifetime_math() {
        let alloc = PowerAllocation {
            powers: vec![0.5, 1.0, 0.0],
        };
        let bank = BatteryBank::new(vec![10.0, 10.0, 10.0]);
        let r = lifetime(&alloc, &bank);
        assert_eq!(r.per_relay, vec![20.0, 10.0, f64::INFINITY]);
        assert_eq!(r.first_failure, 10.0);
        assert_eq!(r.bottleneck, Some(1));
    }

    #[test]
    fn all_idle_network_lives_forever() {
        let alloc = PowerAllocation {
            powers: vec![0.0, 0.0],
        };
        let bank = BatteryBank::uniform(2, 5.0);
        let r = lifetime(&alloc, &bank);
        assert!(r.first_failure.is_infinite());
        assert_eq!(r.bottleneck, None);
    }

    #[test]
    fn pro_extends_lifetime_over_baseline() {
        let sc = Scenario::new(
            Rect::centered_square(500.0),
            vec![
                Subscriber::new(Point::new(0.0, 0.0), 35.0),
                Subscriber::new(Point::new(25.0, 5.0), 35.0),
                Subscriber::new(Point::new(140.0, -30.0), 30.0),
            ],
            vec![BaseStation::new(Point::new(200.0, 200.0))],
            NetworkParams::default(),
        )
        .unwrap();
        let sol = samc(&sc).unwrap();
        let bank = BatteryBank::uniform(sol.n_relays(), 100.0);
        let base = lifetime(&baseline_power(&sc, &sol), &bank);
        let green = lifetime(&pro(&sc, &sol), &bank);
        assert!(green.first_failure >= base.first_failure);
        let gain = lifetime_gain(&green, &base);
        assert!(gain >= 1.0, "PRO must never shorten lifetime, gain {gain}");
        // Baseline lifetime with uniform batteries is exactly C / Pmax.
        assert!((base.first_failure - 100.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_batteries_shift_bottleneck() {
        let alloc = PowerAllocation {
            powers: vec![1.0, 1.0],
        };
        let bank = BatteryBank::new(vec![5.0, 50.0]);
        let r = lifetime(&alloc, &bank);
        assert_eq!(r.bottleneck, Some(0));
        assert_eq!(r.first_failure, 5.0);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        lifetime(
            &PowerAllocation { powers: vec![1.0] },
            &BatteryBank::uniform(2, 1.0),
        );
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        BatteryBank::new(vec![0.0]);
    }
}
