//! Zero-dependency wall-clock micro-benchmark harness.
//!
//! Not a Criterion replacement — no outlier rejection, no HTML reports —
//! but deterministic in *what* it measures (fixed warm-up, fixed
//! measured iteration count once calibrated) and entirely offline.
//!
//! ```
//! use sag_bench::harness::Bench;
//! let mut bench = Bench::new("demo");
//! bench.run("sum 1..1000", || (1..1000u64).sum::<u64>());
//! let report = bench.report();
//! assert!(report.contains("sum 1..1000"));
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark row.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// A group of wall-clock benchmarks sharing a target sample time.
#[derive(Debug)]
pub struct Bench {
    group: String,
    /// Samples collected per benchmark.
    samples: usize,
    /// Target wall-clock time per sample (calibration goal).
    sample_target: Duration,
    results: Vec<Measurement>,
}

impl Bench {
    /// A harness with the defaults used by the smoke benches: 15 samples
    /// of ~5 ms each.
    pub fn new(group: impl Into<String>) -> Self {
        Bench {
            group: group.into(),
            samples: 15,
            sample_target: Duration::from_millis(5),
            results: Vec::new(),
        }
    }

    /// Overrides the number of measured samples.
    pub fn samples(mut self, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        self.samples = samples;
        self
    }

    /// Overrides the per-sample time budget.
    pub fn sample_target(mut self, target: Duration) -> Self {
        self.sample_target = target;
        self
    }

    /// Measures `f`, appending a row to the report. The return value is
    /// routed through [`black_box`] so the closure is never optimised
    /// away.
    pub fn run<T>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> T) -> &Measurement {
        // Calibrate: how many iterations fit in one sample target?
        let once = Self::time(&mut f, 1);
        let iters = if once >= self.sample_target {
            1
        } else {
            let est = self.sample_target.as_nanos() / once.as_nanos().max(1);
            est.clamp(1, 1 << 24) as u64
        };
        // Warm-up sample, then measured samples.
        let _ = Self::time(&mut f, iters);
        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| Self::time(&mut f, iters) / iters as u32)
            .collect();
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        let min = per_iter[0];
        self.results.push(Measurement {
            name: name.into(),
            median,
            mean,
            min,
            iters,
        });
        self.results.last().expect("just pushed")
    }

    fn time<T>(f: &mut impl FnMut() -> T, iters: u64) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        start.elapsed()
    }

    /// All measurements so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders the aligned text report.
    pub fn report(&self) -> String {
        let mut out = format!("benchmark group: {}\n", self.group);
        let width = self
            .results
            .iter()
            .map(|m| m.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "{:<width$}  {:>12}  {:>12}  {:>12}  {:>9}\n",
            "name", "median", "mean", "min", "iters"
        ));
        for m in &self.results {
            out.push_str(&format!(
                "{:<width$}  {:>12}  {:>12}  {:>12}  {:>9}\n",
                m.name,
                fmt_duration(m.median),
                fmt_duration(m.mean),
                fmt_duration(m.min),
                m.iters
            ));
        }
        out
    }

    /// Prints the report to stdout (the default path `scripts/ci.sh`
    /// smoke-exercises).
    pub fn print(&self) {
        print!("{}", self.report());
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut b = Bench::new("unit")
            .samples(3)
            .sample_target(Duration::from_micros(200));
        let m = b.run("noop-ish", || 1 + 1);
        assert!(m.iters >= 1);
        let m = m.clone();
        assert!(m.median >= m.min);
        let report = b.report();
        assert!(report.contains("noop-ish"), "{report}");
        assert!(report.contains("median"), "{report}");
    }

    #[test]
    fn slow_closures_run_once_per_sample() {
        let mut b = Bench::new("unit")
            .samples(2)
            .sample_target(Duration::from_nanos(1));
        let m = b.run("sleepy", || std::thread::sleep(Duration::from_micros(50)));
        assert_eq!(m.iters, 1);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert!(fmt_duration(Duration::from_micros(2)).contains("µs"));
    }

    #[test]
    fn end_to_end_on_a_real_kernel() {
        // The harness must survive a real SAG workload: one small SAMC
        // solve, measured honestly.
        let sc = crate::bench_scenario(300.0, 6, 3);
        let mut b = Bench::new("smoke")
            .samples(2)
            .sample_target(Duration::from_millis(1));
        b.run("samc small", || sag_sim::experiments::run_samc(&sc));
        assert_eq!(b.measurements().len(), 1);
    }
}
