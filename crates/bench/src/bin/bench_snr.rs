//! Brute-force vs incremental-ledger SNR benchmark (`BENCH_snr.json`).
//!
//! Replays a fixed sequence of relay-move probes against a 100-subscriber
//! scenario twice: once recomputing every SNR from scratch with
//! [`sag_core::coverage::snr_violations_brute`] (the pre-ledger hot
//! path), and once applying each move as an `O(S)` delta to a shared
//! [`sag_radio::InterferenceLedger`]. Both paths are checked for parity
//! before timing, then the medians and their ratio are written as
//! hand-rolled JSON — the CI gate asserts the speedup floor.
//!
//! Usage: `bench_snr [--out PATH] [--min-speedup X]`

use std::time::Duration;

use sag_bench::bench_scenario;
use sag_bench::harness::Bench;
use sag_core::coverage::{interference_ledger, snr_violations_brute, snr_violations_ledger};
use sag_core::model::Scenario;
use sag_geom::Point;
use sag_radio::InterferenceLedger;

const SUBSCRIBERS: usize = 100;
const FIELD: f64 = 800.0;
const SEED: u64 = 4242;
const PROBES: usize = 32;

/// The benchmark workload: a placement, its nearest-relay assignment,
/// and a deterministic cycle of relay displacement probes.
struct Workload {
    scenario: Scenario,
    relays: Vec<Point>,
    assignment: Vec<usize>,
    /// `(relay, dx, dy)` displacement probes, applied then undone.
    probes: Vec<(usize, f64, f64)>,
}

fn build_workload() -> Workload {
    let scenario = bench_scenario(FIELD, SUBSCRIBERS, SEED);
    // A relay near every 2nd subscriber — dense enough that interference
    // sums are non-trivial at every subscriber. The offset keeps relays
    // off the exact subscriber positions: a co-located pair drives the
    // served SNR to ~1e10, where interference is pure cancellation
    // residue and parity is meaningless.
    let relays: Vec<Point> = scenario
        .subscribers
        .iter()
        .step_by(2)
        .map(|s| Point::new(s.position.x + 6.0, s.position.y + 4.5))
        .collect();
    let assignment: Vec<usize> = scenario
        .subscribers
        .iter()
        .map(|s| {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (r, p) in relays.iter().enumerate() {
                let d = s.position.distance(*p);
                if d < best_d {
                    best_d = d;
                    best = r;
                }
            }
            best
        })
        .collect();
    let probes: Vec<(usize, f64, f64)> = (0..PROBES)
        .map(|k| {
            let r = (k * 7) % relays.len();
            let angle = k as f64 * 0.61;
            (r, 15.0 * angle.cos(), 15.0 * angle.sin())
        })
        .collect();
    Workload {
        scenario,
        relays,
        assignment,
        probes,
    }
}

/// One full probe sweep via scratch recomputation: every probe mutates
/// the placement, recounts violations over all (subscriber, relay)
/// pairs, and reverts.
fn sweep_brute(w: &Workload) -> usize {
    let mut relays = w.relays.clone();
    let mut total = 0usize;
    for &(r, dx, dy) in &w.probes {
        let orig = relays[r];
        relays[r] = Point::new(orig.x + dx, orig.y + dy);
        total += snr_violations_brute(&w.scenario, &relays, &w.assignment).len();
        relays[r] = orig;
    }
    total
}

/// The same sweep as ledger deltas: each probe is a `move_relay` pair
/// around an `O(S)`-per-query violation count.
fn sweep_ledger(w: &Workload, ledger: &mut InterferenceLedger) -> usize {
    let mut total = 0usize;
    for &(r, dx, dy) in &w.probes {
        let orig = ledger.position(r);
        ledger.move_relay(r, Point::new(orig.x + dx, orig.y + dy));
        total += snr_violations_ledger(&w.scenario, ledger, &w.assignment).len();
        ledger.move_relay(r, orig);
    }
    total
}

/// Maximum relative SNR disagreement between the two paths across every
/// (subscriber, serving) pair at every probe position.
fn parity_check(w: &Workload) -> f64 {
    let mut ledger = interference_ledger(&w.scenario, &w.relays);
    let mut relays = w.relays.clone();
    let mut worst = 0.0f64;
    for &(r, dx, dy) in &w.probes {
        let orig = relays[r];
        let moved = Point::new(orig.x + dx, orig.y + dy);
        relays[r] = moved;
        ledger.move_relay(r, moved);
        for (j, &serving) in w.assignment.iter().enumerate() {
            let inc = ledger.snr(j, serving);
            let exact = sag_radio::snr::placement_snr_uniform(
                w.scenario.params.link.model(),
                w.scenario.subscribers[j].position,
                &relays,
                serving,
            );
            // Past saturation the two paths are equivalent by contract:
            // the guard clamps sub-ulp interference residue to ∞ where
            // brute may read a finite value above any usable threshold.
            if inc >= sag_radio::ledger::SNR_SATURATED || exact >= sag_radio::ledger::SNR_SATURATED
            {
                assert!(
                    inc >= sag_radio::ledger::SNR_SATURATED
                        && exact >= sag_radio::ledger::SNR_SATURATED,
                    "saturation mismatch at (j={j}, r={serving}): {inc} vs {exact}"
                );
                continue;
            }
            worst = worst.max((inc - exact).abs() / exact.abs().max(1e-300));
        }
        relays[r] = orig;
        ledger.move_relay(r, orig);
    }
    worst
}

fn json_escape_free(s: &str) -> &str {
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)),
        "bench labels stay in the JSON-safe subset"
    );
    s
}

fn emit_json(
    path: &str,
    brute_ns: u128,
    ledger_ns: u128,
    speedup: f64,
    parity: f64,
    gate: &str,
) -> std::io::Result<()> {
    let body = format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"subscribers\": {},\n  \"relays\": {},\n  \"probes\": {},\n  \"hardware_threads\": {},\n  {},\n  \"brute_median_ns\": {},\n  \"ledger_median_ns\": {},\n  \"speedup\": {:.3},\n  \"parity_max_rel_err\": {:.3e},\n  \"gate\": \"{}\"\n}}\n",
        json_escape_free("snr_move_probes"),
        SUBSCRIBERS,
        SUBSCRIBERS.div_ceil(2),
        PROBES,
        sag_bench::hardware_threads(),
        sag_bench::solver_fields_json(),
        brute_ns,
        ledger_ns,
        speedup,
        parity,
        gate,
    );
    std::fs::write(path, body)
}

fn main() {
    let mut out_path = String::from("BENCH_snr.json");
    let mut min_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--min-speedup" => {
                let v = args.next().expect("--min-speedup needs a number");
                min_speedup = Some(v.parse().expect("--min-speedup parses as f64"));
            }
            other => {
                panic!("unknown argument {other}; usage: bench_snr [--out PATH] [--min-speedup X]")
            }
        }
    }

    let w = build_workload();

    // Parity gate before any timing: a fast wrong answer is worthless.
    let parity = parity_check(&w);
    assert!(
        parity <= 1e-9,
        "ledger/brute parity broken before timing: max rel err {parity:.3e}"
    );
    let brute_count = sweep_brute(&w);
    let mut shared = interference_ledger(&w.scenario, &w.relays);
    let ledger_count = sweep_ledger(&w, &mut shared);
    assert_eq!(
        brute_count, ledger_count,
        "violation counts diverge between brute and ledger sweeps"
    );

    let mut bench = Bench::new("snr")
        .samples(11)
        .sample_target(Duration::from_millis(20));
    let brute_ns = bench
        .run("brute_sweep", || sweep_brute(&w))
        .median
        .as_nanos();
    let mut ledger = interference_ledger(&w.scenario, &w.relays);
    let ledger_ns = bench
        .run("ledger_sweep", || sweep_ledger(&w, &mut ledger))
        .median
        .as_nanos();
    bench.print();

    let speedup = brute_ns as f64 / ledger_ns.max(1) as f64;
    let (gate, enforce) =
        sag_bench::resolve_gate(min_speedup.is_some(), "no --min-speedup floor given");
    println!("speedup: {speedup:.2}x (parity max rel err {parity:.3e}) [{gate}]");
    emit_json(&out_path, brute_ns, ledger_ns, speedup, parity, &gate)
        .expect("write benchmark JSON");
    println!("wrote {out_path}");

    if enforce {
        let floor = min_speedup.unwrap_or_default();
        assert!(
            speedup >= floor,
            "speedup {speedup:.2}x is below the required {floor:.2}x floor"
        );
    }
}
