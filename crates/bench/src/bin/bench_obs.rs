//! Observability overhead benchmark (`BENCH_obs.json`) and JSONL
//! checker.
//!
//! Three variants of the same full-pipeline solve are timed:
//!
//! * **baseline** — the stages composed by hand with no recorder
//!   anywhere (validate → SAMC → PRO → MBMC → UCPO), the closest thing
//!   to an uninstrumented build the instrumented binary can offer;
//! * **disabled** — [`run_sag_with`] with `collect_metrics: false`, the
//!   production disabled path (every span/counter call short-circuits
//!   on the `enabled()` check);
//! * **collected** — the default [`run_sag`], which installs a
//!   thread-local [`sag_obs::Collector`] for the run (informational);
//! * **ring** — the disabled path with the flight recorder armed
//!   (`SAG_OBS_RING`-style), measuring what the always-on crash
//!   timeline costs (informational).
//!
//! All variants are checked for identical deployments before any
//! timing — instrumentation must never change results. The CI gate
//! asserts the disabled path (flight recorder compiled in but off)
//! stays within a few percent of the baseline.
//!
//! `--check-jsonl FILE` switches to validator mode: every line of a
//! `SAG_OBS_JSON` capture must parse as JSON, the header/trailer must
//! frame the run, the trailer must carry the `dropped_events` and
//! `ring_overflow` loss accounting, every pipeline stage must have a
//! span, and the solver work counters (`lp.*`, `ledger.*`) must be
//! present.
//!
//! Usage: `bench_obs [--out PATH] [--max-overhead X] [--check-jsonl FILE]`

use sag_bench::bench_scenario;
use sag_core::mbmc::mbmc;
use sag_core::model::Scenario;
use sag_core::pro::pro_with_budget;
use sag_core::sag::{run_sag, run_sag_with, SagPipelineConfig, SagReport};
use sag_core::samc::{samc_with_budget, SamcConfig};
use sag_core::ucpo::ucpo;
use sag_lp::Budget;
use sag_obs::json::{field_str, field_u64};

const SUBSCRIBERS: usize = 18;
const FIELD: f64 = 500.0;
const SEED: u64 = 4242;
/// Pipeline solves per timing sample.
const INNER_ITERS: u32 = 8;
/// Interleaved baseline/disabled/collected measurement rounds.
const ROUNDS: usize = 25;

/// Stage spans every full-pipeline run must emit.
const REQUIRED_STAGES: &[&str] = &["samc", "zone_partition", "pro", "mbmc", "ucpo"];

/// The hand-composed pipeline: the same stage sequence as
/// `run_sag_with`, minus any collector plumbing. Returns the total
/// power and relay count so parity against the real pipeline is
/// checkable.
fn baseline_pipeline(scenario: &Scenario) -> (f64, usize) {
    scenario.validate().expect("bench scenario is valid");
    let budget = Budget::unlimited();
    let coverage = samc_with_budget(scenario, SamcConfig::default(), &budget)
        .expect("bench scenario is coverable");
    let lower = pro_with_budget(scenario, &coverage, &budget).expect("PRO succeeds");
    let plan = mbmc(scenario, &coverage).expect("bench scenario is connectable");
    let upper = ucpo(scenario, &coverage, &plan);
    (
        lower.total() + upper.total(),
        coverage.n_relays() + plan.n_relays(),
    )
}

fn disabled_pipeline(scenario: &Scenario) -> SagReport {
    run_sag_with(
        scenario,
        SagPipelineConfig {
            collect_metrics: false,
            ..Default::default()
        },
    )
    .expect("pipeline succeeds")
}

fn parity_check(scenario: &Scenario) {
    let (base_power, base_relays) = baseline_pipeline(scenario);
    let disabled = disabled_pipeline(scenario);
    let collected = run_sag(scenario).expect("pipeline succeeds");
    for (label, report) in [("disabled", &disabled), ("collected", &collected)] {
        let power = report.power_summary().total;
        let relays = report.n_coverage_relays() + report.n_connectivity_relays();
        assert!(
            (power - base_power).abs() < 1e-12 && relays == base_relays,
            "{label} path diverged from baseline: power {power} vs {base_power}, \
             relays {relays} vs {base_relays}"
        );
    }
    assert!(
        disabled.metrics.is_empty(),
        "collect_metrics: false must leave the report metrics empty"
    );
    assert!(
        !collected.metrics.is_empty(),
        "the default pipeline must collect stage metrics"
    );
    for stage in REQUIRED_STAGES {
        assert!(
            collected.metrics.span(stage).is_some(),
            "collected run is missing the '{stage}' span"
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &str,
    baseline_ns: u128,
    disabled_ns: u128,
    collected_ns: u128,
    ring_ns: u128,
    overhead_disabled: f64,
    overhead_collected: f64,
    overhead_ring: f64,
    gate: &str,
) -> std::io::Result<()> {
    let hardware_threads = sag_bench::hardware_threads();
    let solver = sag_bench::solver_fields_json();
    let body = format!(
        "{{\n  \"benchmark\": \"obs_overhead\",\n  \"subscribers\": {SUBSCRIBERS},\n  \"hardware_threads\": {hardware_threads},\n  {solver},\n  \"baseline_min_ns\": {baseline_ns},\n  \"disabled_min_ns\": {disabled_ns},\n  \"collected_min_ns\": {collected_ns},\n  \"ring_min_ns\": {ring_ns},\n  \"overhead_disabled\": {overhead_disabled:.4},\n  \"overhead_collected\": {overhead_collected:.4},\n  \"overhead_ring\": {overhead_ring:.4},\n  \"gate\": \"{gate}\"\n}}\n",
    );
    std::fs::write(path, body)
}

fn check_jsonl(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read JSONL capture {path}: {e}"));
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(
        lines.len() >= 3,
        "capture {path} has only {} line(s); expected header, events, trailer",
        lines.len()
    );
    let mut enters = 0usize;
    let mut exits = 0usize;
    let mut stages_seen: Vec<&str> = Vec::new();
    let mut lp_counters = 0usize;
    let mut ledger_counters = 0usize;
    for (i, line) in lines.iter().enumerate() {
        sag_obs::json::validate(line)
            .unwrap_or_else(|e| panic!("{path}:{}: invalid JSON ({e}): {line}", i + 1));
        match field_str(line, "kind") {
            Some("run_start") => assert_eq!(i, 0, "run_start must be the first line"),
            Some("run_end") => {
                assert_eq!(i, lines.len() - 1, "run_end must be the last line");
                assert!(
                    field_u64(line, "dropped_events").is_some(),
                    "{path}:{}: run_end trailer lacks dropped_events",
                    i + 1
                );
                assert!(
                    field_u64(line, "ring_overflow").is_some(),
                    "{path}:{}: run_end trailer lacks ring_overflow",
                    i + 1
                );
            }
            Some("span_enter") => {
                enters += 1;
                if let Some(name) = field_str(line, "name") {
                    if !stages_seen.contains(&name) {
                        stages_seen.push(name);
                    }
                }
            }
            Some("span_exit") => {
                exits += 1;
                assert!(
                    line.contains("\"dur_ns\":"),
                    "{path}:{}: span_exit without dur_ns",
                    i + 1
                );
            }
            Some("counter") => match field_str(line, "name") {
                Some(name) if name.starts_with("lp.") => lp_counters += 1,
                Some(name) if name.starts_with("ledger.") => ledger_counters += 1,
                _ => {}
            },
            _ => {}
        }
    }
    assert!(
        field_str(lines[0], "kind") == Some("run_start"),
        "first line of {path} is not a run_start header"
    );
    assert!(
        field_str(lines[lines.len() - 1], "kind") == Some("run_end"),
        "last line of {path} is not a run_end trailer"
    );
    assert_eq!(
        enters, exits,
        "span enter/exit counts diverge in {path}: {enters} vs {exits}"
    );
    for stage in REQUIRED_STAGES {
        assert!(
            stages_seen.contains(stage),
            "capture {path} has no '{stage}' span (saw {stages_seen:?})"
        );
    }
    assert!(
        lp_counters > 0,
        "capture {path} has no lp.* solver counters"
    );
    assert!(
        ledger_counters > 0,
        "capture {path} has no ledger.* counters"
    );
    println!(
        "checked {path}: {} lines, {enters} spans, stages {stages_seen:?}, \
         {lp_counters} lp.* and {ledger_counters} ledger.* counter events",
        lines.len()
    );
}

fn main() {
    let mut out_path = String::from("BENCH_obs.json");
    let mut max_overhead: Option<f64> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--max-overhead" => {
                let v = args.next().expect("--max-overhead needs a number");
                max_overhead = Some(v.parse().expect("--max-overhead parses as f64"));
            }
            "--check-jsonl" => check_path = Some(args.next().expect("--check-jsonl needs a path")),
            other => panic!(
                "unknown argument {other}; usage: \
                 bench_obs [--out PATH] [--max-overhead X] [--check-jsonl FILE]"
            ),
        }
    }
    if let Some(path) = check_path {
        check_jsonl(&path);
        return;
    }

    let scenario = bench_scenario(FIELD, SUBSCRIBERS, SEED);

    // Parity gate before any timing: instrumentation that changes the
    // deployment would make the overhead number meaningless.
    parity_check(&scenario);

    // A ≤2% gate is below the run-to-run noise of timing the variants
    // back to back (clock ramp, scheduler interference): interleave
    // them instead, so every noise phase hits all three, and gate on
    // each variant's fastest round — the closest observable to the
    // true cost of its code path.
    let time_rounds = |f: &mut dyn FnMut()| -> u128 {
        let start = std::time::Instant::now();
        for _ in 0..INNER_ITERS {
            f();
        }
        (start.elapsed() / INNER_ITERS).as_nanos()
    };
    let mut baseline_f = || {
        std::hint::black_box(baseline_pipeline(&scenario));
    };
    let mut disabled_f = || {
        std::hint::black_box(disabled_pipeline(&scenario));
    };
    let mut collected_f = || {
        std::hint::black_box(run_sag(&scenario).expect("pipeline succeeds"));
    };
    // Disabled path with the flight recorder armed: what the crash
    // timeline costs when somebody sets SAG_OBS_RING. The ring is
    // re-disarmed after every sample so the other variants keep
    // measuring the truly-off path.
    let mut ring_f = || {
        sag_obs::ring::configure(256);
        std::hint::black_box(disabled_pipeline(&scenario));
        sag_obs::ring::configure(0);
    };
    // Warm-up round (not measured), then interleaved measured rounds.
    // Adjacent samples within one round share the same noise phase, so
    // the per-round ratio is far more stable than any absolute time;
    // the median over rounds discards the outliers entirely.
    time_rounds(&mut baseline_f);
    time_rounds(&mut disabled_f);
    time_rounds(&mut collected_f);
    time_rounds(&mut ring_f);
    /// One interleaved round: (baseline, disabled, collected, ring) ns.
    type Round = (u128, u128, u128, u128);
    let mut rounds: Vec<Round> = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        rounds.push((
            time_rounds(&mut baseline_f),
            time_rounds(&mut disabled_f),
            time_rounds(&mut collected_f),
            time_rounds(&mut ring_f),
        ));
    }
    let median_ratio = |pick: &dyn Fn(&Round) -> u128| -> f64 {
        let mut ratios: Vec<f64> = rounds
            .iter()
            .map(|r| pick(r) as f64 / r.0.max(1) as f64)
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        ratios[ratios.len() / 2]
    };
    let baseline_ns = rounds.iter().map(|r| r.0).min().unwrap_or(0);
    let disabled_ns = rounds.iter().map(|r| r.1).min().unwrap_or(0);
    let collected_ns = rounds.iter().map(|r| r.2).min().unwrap_or(0);
    let ring_ns = rounds.iter().map(|r| r.3).min().unwrap_or(0);
    println!("benchmark group: obs ({ROUNDS} interleaved rounds, min per-iter ns)");
    println!("baseline_pipeline   {baseline_ns:>12}");
    println!("disabled_pipeline   {disabled_ns:>12}");
    println!("collected_pipeline  {collected_ns:>12}");
    println!("ring_pipeline       {ring_ns:>12}");

    let overhead = median_ratio(&|r| r.1);
    let overhead_collected = median_ratio(&|r| r.2);
    let overhead_ring = median_ratio(&|r| r.3);
    let (gate, enforce) =
        sag_bench::resolve_gate(max_overhead.is_some(), "no --max-overhead ceiling given");
    println!(
        "disabled-path overhead: {overhead:.4}x (collected: {overhead_collected:.4}x, \
         ring: {overhead_ring:.4}x) [{gate}]"
    );
    emit_json(
        &out_path,
        baseline_ns,
        disabled_ns,
        collected_ns,
        ring_ns,
        overhead,
        overhead_collected,
        overhead_ring,
        &gate,
    )
    .expect("write benchmark JSON");
    println!("wrote {out_path}");

    if enforce {
        let ceiling = max_overhead.unwrap_or_default();
        assert!(
            overhead <= ceiling,
            "disabled-path overhead {overhead:.4}x exceeds the {ceiling:.2}x ceiling"
        );
    }
}
