//! Zone-parallel engine benchmark (`BENCH_par.json`).
//!
//! Times the lower-tier solve (where the zone engine lives) on a
//! clustered multi-zone probe at `threads = 1` versus `threads = N`
//! and gates on the median per-round speedup. The full pipeline is
//! timed as well, informationally: its tail stages (PRO → MBMC → UCPO)
//! are sequential by design, so Amdahl caps the end-to-end speedup
//! well below the lower tier's.
//!
//! Before any timing the two thread counts must produce byte-identical
//! deployments — a parallel engine that bought its speedup with
//! nondeterminism would be worthless.
//!
//! The speedup gate is only enforceable on hardware that can actually
//! run the workers concurrently: when the host exposes fewer hardware
//! threads than the benchmark requests, the gate is recorded as
//! skipped in the JSON (the parity check still runs), so CI on
//! single-core runners stays honest instead of red.
//!
//! Usage: `bench_par [--out PATH] [--min-speedup X] [--threads N]`

use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_core::sag::{run_sag_with, SagPipelineConfig, SagReport};
use sag_core::samc::{samc_with_budget_threads, SamcConfig};
use sag_core::zone::zone_partition;
use sag_geom::{Point, Rect};
use sag_lp::Budget;
use sag_radio::{units::Db, LinkBudget};

const FIELD: f64 = 800.0;
const CLUSTERS: usize = 8;
const SUBS_PER_CLUSTER: usize = 9;
/// Solves per timing sample.
const INNER_ITERS: u32 = 4;
/// Interleaved sequential/parallel measurement rounds.
const ROUNDS: usize = 15;

/// The multi-zone probe: eight tight clusters spread across the field,
/// with an ignorable-noise level whose `d_max` (10) links subscribers
/// within a cluster (intra-cluster `d_eff ≤ 5`) but never across
/// clusters (inter-cluster `d_eff ≥ 200`), so Zone Partition yields
/// eight equal-weight zones — the shape the zone-parallel engine
/// exists for. Deterministic sunflower placement, no RNG.
fn probe_scenario() -> Scenario {
    let centers = [
        (-300.0, -300.0),
        (0.0, -300.0),
        (300.0, -300.0),
        (-300.0, 0.0),
        (300.0, 0.0),
        (-300.0, 300.0),
        (0.0, 300.0),
        (300.0, 300.0),
    ];
    let golden = 2.399_963_229_728_653_f64; // radians
    let mut subs = Vec::with_capacity(CLUSTERS * SUBS_PER_CLUSTER);
    for (ci, &(cx, cy)) in centers.iter().enumerate() {
        for k in 0..SUBS_PER_CLUSTER {
            let ang = (ci * SUBS_PER_CLUSTER + k) as f64 * golden;
            let r = 20.0 * ((k as f64 + 0.5) / SUBS_PER_CLUSTER as f64).sqrt();
            subs.push(Subscriber::new(
                Point::new(cx + r * ang.cos(), cy + r * ang.sin()),
                35.0 + 5.0 * ((k as f64 * 0.37).fract()),
            ));
        }
    }
    Scenario::new(
        Rect::centered_square(FIELD),
        subs,
        vec![
            BaseStation::new(Point::new(-350.0, 350.0)),
            BaseStation::new(Point::new(350.0, -350.0)),
        ],
        NetworkParams::new(
            LinkBudget::builder().snr_threshold(Db::new(-15.0)).build(),
            1e-3, // d_max = 10
        ),
    )
    .expect("probe geometry is valid")
}

fn solve_pipeline(scenario: &Scenario, threads: usize) -> SagReport {
    run_sag_with(
        scenario,
        SagPipelineConfig {
            threads,
            collect_metrics: false,
            ..Default::default()
        },
    )
    .expect("probe scenario is solvable")
}

/// Everything in a report that must be identical across thread counts.
fn fingerprint(report: &SagReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        report.coverage, report.lower_power, report.plan, report.upper_power, report.solver,
    )
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &str,
    zones: usize,
    threads: usize,
    hardware_threads: usize,
    seq_ns: u128,
    par_ns: u128,
    speedup: f64,
    pipeline_speedup: f64,
    min_speedup: f64,
    gate: &str,
) -> std::io::Result<()> {
    let subscribers = CLUSTERS * SUBS_PER_CLUSTER;
    let solver = sag_bench::solver_fields_json();
    let body = format!(
        "{{\n  \"benchmark\": \"zone_parallel\",\n  \"subscribers\": {subscribers},\n  \"zones\": {zones},\n  \"threads\": {threads},\n  \"hardware_threads\": {hardware_threads},\n  {solver},\n  \"lower_tier_sequential_min_ns\": {seq_ns},\n  \"lower_tier_parallel_min_ns\": {par_ns},\n  \"lower_tier_speedup_median\": {speedup:.4},\n  \"pipeline_speedup_median\": {pipeline_speedup:.4},\n  \"min_speedup\": {min_speedup:.2},\n  \"gate\": \"{gate}\"\n}}\n",
    );
    std::fs::write(path, body)
}

/// Interleaved median-of-ratios between two timed closures: adjacent
/// samples share the same noise phase, so per-round ratios are stable
/// and the median discards outliers. Returns (min a ns, min b ns,
/// median of a/b per round).
fn measure(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (u128, u128, f64) {
    let time_rounds = |f: &mut dyn FnMut()| -> u128 {
        let start = std::time::Instant::now();
        for _ in 0..INNER_ITERS {
            f();
        }
        (start.elapsed() / INNER_ITERS).as_nanos()
    };
    // Warm-up round, not measured.
    time_rounds(a);
    time_rounds(b);
    let mut rounds: Vec<(u128, u128)> = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        rounds.push((time_rounds(a), time_rounds(b)));
    }
    let mut ratios: Vec<f64> = rounds
        .iter()
        .map(|&(s, p)| s as f64 / p.max(1) as f64)
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    (
        rounds.iter().map(|r| r.0).min().unwrap_or(0),
        rounds.iter().map(|r| r.1).min().unwrap_or(0),
        ratios[ratios.len() / 2],
    )
}

fn main() {
    let mut out_path = String::from("BENCH_par.json");
    let mut min_speedup = 2.0f64;
    let mut threads = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--min-speedup" => {
                let v = args.next().expect("--min-speedup needs a number");
                min_speedup = v.parse().expect("--min-speedup parses as f64");
            }
            "--threads" => {
                let v = args.next().expect("--threads needs a number");
                threads = v.parse().expect("--threads parses as usize");
                assert!(threads >= 2, "--threads below 2 measures nothing");
            }
            other => panic!(
                "unknown argument {other}; usage: \
                 bench_par [--out PATH] [--min-speedup X] [--threads N]"
            ),
        }
    }

    let scenario = probe_scenario();
    let zones = zone_partition(&scenario).len();
    assert_eq!(
        zones, CLUSTERS,
        "probe must partition into exactly one zone per cluster"
    );
    assert!(
        zones >= threads,
        "probe has only {zones} zones for {threads} workers; \
         the speedup would be partition-bound, not engine-bound"
    );

    // Determinism gate before any timing: the parallel engine must
    // reproduce the sequential deployment bit for bit.
    let seq_report = solve_pipeline(&scenario, 1);
    let par_report = solve_pipeline(&scenario, threads);
    assert_eq!(
        fingerprint(&seq_report),
        fingerprint(&par_report),
        "threads=1 and threads={threads} deployments diverged on the probe"
    );
    println!("parity: threads=1 == threads={threads} over {zones} zones");

    let budget = Budget::unlimited();
    let (seq_ns, par_ns, speedup) = measure(
        &mut || {
            std::hint::black_box(
                samc_with_budget_threads(&scenario, SamcConfig::default(), &budget, 1)
                    .expect("probe is coverable"),
            );
        },
        &mut || {
            std::hint::black_box(
                samc_with_budget_threads(&scenario, SamcConfig::default(), &budget, threads)
                    .expect("probe is coverable"),
            );
        },
    );
    let (pipe_seq_ns, pipe_par_ns, pipeline_speedup) = measure(
        &mut || {
            std::hint::black_box(solve_pipeline(&scenario, 1));
        },
        &mut || {
            std::hint::black_box(solve_pipeline(&scenario, threads));
        },
    );

    let hardware_threads = sag_bench::hardware_threads();
    // With fewer hardware threads than workers the wall-clock speedup
    // is capped by the hardware, not the engine (at 1 core it cannot
    // exceed 1.0); the gate needs real concurrency to mean anything.
    let (gate, enforce) = sag_bench::resolve_gate(
        hardware_threads >= threads,
        &format!("{hardware_threads} hardware thread(s) for {threads} workers"),
    );

    println!("benchmark group: zone_parallel ({ROUNDS} interleaved rounds, min per-iter ns)");
    println!("lower tier threads=1          {seq_ns:>12}");
    println!("lower tier threads={threads}          {par_ns:>12}");
    println!("pipeline   threads=1          {pipe_seq_ns:>12}");
    println!("pipeline   threads={threads}          {pipe_par_ns:>12}");
    println!(
        "median speedup: lower tier {speedup:.3}x, pipeline {pipeline_speedup:.3}x \
         over {zones} zones [{gate}]"
    );

    emit_json(
        &out_path,
        zones,
        threads,
        hardware_threads,
        seq_ns,
        par_ns,
        speedup,
        pipeline_speedup,
        min_speedup,
        &gate,
    )
    .expect("write benchmark JSON");
    println!("wrote {out_path}");

    if enforce {
        assert!(
            speedup >= min_speedup,
            "zone-parallel lower-tier speedup {speedup:.3}x at {threads} threads \
             is below the {min_speedup:.2}x floor"
        );
    }
}
