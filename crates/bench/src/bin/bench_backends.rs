//! Adaptive solver selection vs all-exact lower tier (`BENCH_backends.json`).
//!
//! The probe is the clustered multi-zone shape per-zone selection
//! exists for: a 4×4 grid of tight subscriber clusters, each its own
//! interference zone. Every cluster is dense enough that its candidate
//! set clears [`sag_core::SelectionPolicy`]'s `lp_round_max_cands`
//! threshold, so the adaptive builder routes the zone to the LP-free
//! local-search backend (greedy start, swap/drop improvement) while
//! the all-exact arm pays full branch-and-bound on every zone. Two
//! arms are timed interleaved over the same pipeline run:
//!
//! * **exact** — `SolverBuilder::fixed(ExactIlp)`: warm-started B&B in
//!   all sixteen zones, the pre-selection answer;
//! * **adaptive** — `SolverBuilder::adaptive()`: per-zone choice by
//!   candidate count and budget.
//!
//! Before any timing both arms must pass the independent report audit
//! — a fast heuristic that drops a subscriber is worthless — and the
//! adaptive arm must demonstrably route at least one zone away from
//! the exact backend (otherwise the ratio measures nothing). The
//! speedup gate needs headroom above timer noise to mean anything:
//! when the exact arm lands below the timing floor the gate is
//! recorded as skipped in the JSON (`SAG_BENCH_STRICT=1` turns that
//! skip into a failure).
//!
//! Usage: `bench_backends [--out PATH] [--min-speedup X]`

use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_core::sag::{run_sag_with, LowerSolver, SagPipelineConfig, SagReport};
use sag_core::validate::validate_report;
use sag_core::zone::zone_partition;
use sag_core::{SolverBackend, SolverBuilder};
use sag_geom::{Point, Rect};
use sag_radio::{units::Db, LinkBudget};

const FIELD: f64 = 1200.0;
const CLUSTERS: usize = 16;
const SUBS_PER_CLUSTER: usize = 16;
/// Interleaved exact/adaptive measurement rounds.
const ROUNDS: usize = 7;
/// Below this per-run exact time the speedup ratio is timer noise.
const TIMING_FLOOR_NS: u128 = 200_000;

/// The churn-bench cluster grid, densified: sixteen subscribers per
/// cluster so each zone's IAC candidate set (subscriber positions plus
/// pairwise circle intersections) lands well above the adaptive
/// policy's `lp_round_max_cands` threshold. Deterministic sunflower
/// placement, no RNG.
fn probe_scenario() -> Scenario {
    let centers = [
        (-450.0, -450.0),
        (-150.0, -450.0),
        (150.0, -450.0),
        (450.0, -450.0),
        (-450.0, -150.0),
        (-150.0, -150.0),
        (150.0, -150.0),
        (450.0, -150.0),
        (-450.0, 150.0),
        (-150.0, 150.0),
        (150.0, 150.0),
        (450.0, 150.0),
        (-450.0, 450.0),
        (-150.0, 450.0),
        (150.0, 450.0),
        (450.0, 450.0),
    ];
    let golden = 2.399_963_229_728_653_f64; // radians
    let mut subs = Vec::with_capacity(CLUSTERS * SUBS_PER_CLUSTER);
    for (ci, &(cx, cy)) in centers.iter().enumerate() {
        for k in 0..SUBS_PER_CLUSTER {
            let ang = (ci * SUBS_PER_CLUSTER + k) as f64 * golden;
            let r = 18.0 * ((k as f64 + 0.5) / SUBS_PER_CLUSTER as f64).sqrt();
            subs.push(Subscriber::new(
                Point::new(cx + r * ang.cos(), cy + r * ang.sin()),
                35.0 + 5.0 * ((k as f64 * 0.37).fract()),
            ));
        }
    }
    Scenario::new(
        Rect::centered_square(FIELD),
        subs,
        vec![
            BaseStation::new(Point::new(-550.0, 550.0)),
            BaseStation::new(Point::new(550.0, -550.0)),
        ],
        NetworkParams::new(
            LinkBudget::builder().snr_threshold(Db::new(-15.0)).build(),
            1e-3, // d_max = 10
        ),
    )
    .expect("probe geometry is valid")
}

fn run(sc: &Scenario, solver: SolverBuilder) -> SagReport {
    run_sag_with(
        sc,
        SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcWithGreedyFallback,
            solver,
            ..Default::default()
        },
    )
    .expect("probe scenario is solvable")
}

/// How many zones each backend answered, in `SolverBackend::ALL` order.
fn backend_mix(report: &SagReport) -> [usize; 4] {
    let mut mix = [0usize; 4];
    for rec in &report.zone_solvers {
        mix[rec.backend.rank()] += 1;
    }
    mix
}

/// Interleaved median-of-ratios between two timed closures, each
/// reporting its own lower-tier spend in nanoseconds (the polynomial
/// tail — PRO, MBMC, UCPO — is identical in both arms and would only
/// dilute the ratio the gate is about). Returns (min a ns, min b ns,
/// median of a/b per round).
fn measure(a: &mut dyn FnMut() -> u128, b: &mut dyn FnMut() -> u128) -> (u128, u128, f64) {
    // Warm-up round, not measured.
    a();
    b();
    let mut rounds: Vec<(u128, u128)> = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        rounds.push((a(), b()));
    }
    let mut ratios: Vec<f64> = rounds
        .iter()
        .map(|&(e, a)| e as f64 / a.max(1) as f64)
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    (
        rounds.iter().map(|r| r.0).min().unwrap_or(0),
        rounds.iter().map(|r| r.1).min().unwrap_or(0),
        ratios[ratios.len() / 2],
    )
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &str,
    zones: usize,
    exact_ns: u128,
    adaptive_ns: u128,
    speedup: f64,
    mix: [usize; 4],
    exact_relays: usize,
    adaptive_relays: usize,
    min_speedup: f64,
    gate: &str,
) -> std::io::Result<()> {
    let subscribers = CLUSTERS * SUBS_PER_CLUSTER;
    let hardware_threads = sag_bench::hardware_threads();
    let solver = sag_bench::solver_fields_json();
    let body = format!(
        "{{\n  \"benchmark\": \"solver_backends\",\n  \"subscribers\": {subscribers},\n  \"zones\": {zones},\n  \"hardware_threads\": {hardware_threads},\n  {solver},\n  \"exact_min_ns\": {exact_ns},\n  \"adaptive_min_ns\": {adaptive_ns},\n  \"speedup_median\": {speedup:.4},\n  \"adaptive_exact_zones\": {},\n  \"adaptive_lp_round_zones\": {},\n  \"adaptive_local_search_zones\": {},\n  \"adaptive_greedy_zones\": {},\n  \"exact_coverage_relays\": {exact_relays},\n  \"adaptive_coverage_relays\": {adaptive_relays},\n  \"min_speedup\": {min_speedup:.2},\n  \"gate\": \"{gate}\"\n}}\n",
        mix[0], mix[1], mix[2], mix[3],
    );
    std::fs::write(path, body)
}

fn main() {
    let mut out_path = String::from("BENCH_backends.json");
    let mut min_speedup = 1.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--min-speedup" => {
                let v = args.next().expect("--min-speedup needs a number");
                min_speedup = v.parse().expect("--min-speedup parses as f64");
            }
            other => panic!(
                "unknown argument {other}; usage: \
                 bench_backends [--out PATH] [--min-speedup X]"
            ),
        }
    }

    let sc = probe_scenario();
    let zones = zone_partition(&sc).len();
    assert_eq!(
        zones, CLUSTERS,
        "probe must fragment into one zone per cluster"
    );

    // Contract before stopwatch: both arms answer, both answers pass
    // the independent audit — equal feasibility, different work.
    let exact_report = run(&sc, SolverBuilder::fixed(SolverBackend::ExactIlp));
    let audit = validate_report(&sc, &exact_report);
    assert!(audit.is_clean(), "exact arm failed the audit:\n{audit}");
    let adaptive_report = run(&sc, SolverBuilder::adaptive());
    let audit = validate_report(&sc, &adaptive_report);
    assert!(audit.is_clean(), "adaptive arm failed the audit:\n{audit}");

    let mix = backend_mix(&adaptive_report);
    assert_eq!(
        mix.iter().sum::<usize>(),
        zones,
        "every zone must record its backend"
    );
    assert!(
        zones - mix[0] > 0,
        "adaptive routed no zone away from the exact backend; \
         the probe no longer exercises selection"
    );

    let (exact_ns, adaptive_ns, speedup) = measure(
        &mut || {
            run(&sc, SolverBuilder::fixed(SolverBackend::ExactIlp))
                .budget_spent
                .elapsed
                .as_nanos()
        },
        &mut || {
            run(&sc, SolverBuilder::adaptive())
                .budget_spent
                .elapsed
                .as_nanos()
        },
    );

    let (gate, enforce) = sag_bench::resolve_gate(
        exact_ns >= TIMING_FLOOR_NS,
        &format!("exact arm {exact_ns} ns below the {TIMING_FLOOR_NS} ns timing floor"),
    );
    if enforce {
        assert!(
            speedup >= min_speedup,
            "adaptive selection speedup {speedup:.2}x below the {min_speedup:.2}x floor \
             (exact {exact_ns} ns, adaptive {adaptive_ns} ns)"
        );
    }

    emit_json(
        &out_path,
        zones,
        exact_ns,
        adaptive_ns,
        speedup,
        mix,
        exact_report.n_coverage_relays(),
        adaptive_report.n_coverage_relays(),
        min_speedup,
        &gate,
    )
    .expect("write benchmark artefact");
    println!(
        "solver backends: exact {exact_ns} ns, adaptive {adaptive_ns} ns, \
         speedup {speedup:.2}x, mix {mix:?}, gate {gate}"
    );
}
