//! Dense-vs-sparse LP core benchmark (`BENCH_lp.json`).
//!
//! Two probes, both parity-checked before any timing:
//!
//! 1. **Cover LP, dense vs sparse.** A 64-zone block-structured
//!    set-cover relaxation (the exact row shape `ilpqc` feeds the LP
//!    layer) solved through [`LpProblem::solve`] under each
//!    [`LpBackend`]. The dense tableau touches `O(m·width)` per pivot;
//!    the revised simplex touches the nonzeros. The CI gate asserts the
//!    sparse floor.
//! 2. **Branch-and-bound, warm vs cold.** A chain of odd-cycle
//!    (triangle) covers whose LP relaxation is fractional at every
//!    node, so the search must branch; warm starts re-solve each child
//!    from its parent's basis via the dual simplex, cold starts solve
//!    every node from scratch. Gated on node *throughput* (nodes/s), so
//!    a warm run that explored a different tree still compares fairly.
//!
//! The dense-vs-sparse gate needs a large instance to mean anything:
//! below `MIN_GATE_ZONES` zones the probe is recorded as skipped in the
//! JSON instead of enforcing a floor on noise.
//!
//! Usage: `bench_lp [--out PATH] [--min-speedup X] [--min-warm-speedup X] [--zones N]`

use std::time::Instant;

use sag_lp::{push_backend_override, IlpProblem, LpBackend, LpProblem, Relation};

/// Zones in the cover probe (past the large end of the paper's sweeps:
/// the dense tableau's advantage shrinks as the block count grows, so
/// the gate probe sits where the asymptotics, not constants, decide).
const DEFAULT_ZONES: usize = 96;
/// Below this many zones the dense-vs-sparse gate is skipped.
const MIN_GATE_ZONES: usize = 16;
const ROWS_PER_ZONE: usize = 6;
const CANDS_PER_ZONE: usize = 8;
/// Triangles in the branch-and-bound probe.
const TRIANGLES: usize = 12;
/// Interleaved measurement rounds per probe.
const ROUNDS: usize = 9;

/// Deterministic splitmix64 stream (no RNG dependency).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Block-structured set-cover relaxation: each zone contributes
/// `CANDS_PER_ZONE` candidate columns and `ROWS_PER_ZONE` coverage rows
/// over 2–4 of its own candidates — the sparsity pattern `ilpqc`'s
/// coverage assembly produces, scaled up. Costs carry a deterministic
/// jitter so the optimum is unique and pivot paths are stable.
fn cover_probe(zones: usize) -> LpProblem {
    let n = zones * CANDS_PER_ZONE;
    let mut lp = LpProblem::minimize(n);
    let mut state = 0x5AB0_BE4C_u64;
    for j in 0..n {
        lp.set_objective_coeff(j, 1.0 + (next(&mut state) % 97) as f64 / 400.0);
        lp.set_bounds(j, 0.0, 1.0);
    }
    for z in 0..zones {
        let base = z * CANDS_PER_ZONE;
        for _ in 0..ROWS_PER_ZONE {
            let k = 2 + (next(&mut state) % 3) as usize;
            let mut cols: Vec<usize> = Vec::with_capacity(k);
            while cols.len() < k {
                let c = base + (next(&mut state) % CANDS_PER_ZONE as u64) as usize;
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            let coeffs: Vec<(usize, f64)> = cols.into_iter().map(|c| (c, 1.0)).collect();
            lp.add_constraint(&coeffs, Relation::Ge, 1.0);
        }
    }
    lp
}

/// Odd-cycle cover ILP: each triangle `{a,b},{b,c},{a,c}` relaxes to
/// `x = (½,½,½)` (objective ~1.5), forcing a branch per triangle.
fn triangle_ilp(warm: bool) -> IlpProblem {
    let n = 3 * TRIANGLES;
    let mut lp = LpProblem::minimize(n);
    for t in 0..TRIANGLES {
        let b = 3 * t;
        for k in 0..3 {
            lp.set_objective_coeff(b + k, 1.0 + ((3 * t + k) % 7) as f64 / 100.0);
        }
        lp.add_constraint(&[(b, 1.0), (b + 1, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(b + 1, 1.0), (b + 2, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(b, 1.0), (b + 2, 1.0)], Relation::Ge, 1.0);
    }
    let mut ilp = IlpProblem::new(lp);
    for v in 0..n {
        ilp.set_binary(v);
    }
    ilp.set_warm_start(warm);
    ilp
}

/// Interleaved median-of-ratios: adjacent samples share the same noise
/// phase, so per-round ratios are stable and the median discards
/// outliers. Returns (median a ns, median b ns, median a/b per round).
fn measure(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (u128, u128, f64) {
    let time_once = |f: &mut dyn FnMut()| -> u128 {
        let start = Instant::now();
        f();
        start.elapsed().as_nanos()
    };
    // Warm-up round, not measured.
    time_once(a);
    time_once(b);
    let mut rounds: Vec<(u128, u128)> = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        rounds.push((time_once(a), time_once(b)));
    }
    let median = |mut v: Vec<u128>| -> u128 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let mut ratios: Vec<f64> = rounds
        .iter()
        .map(|&(x, y)| x as f64 / y.max(1) as f64)
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    (
        median(rounds.iter().map(|r| r.0).collect()),
        median(rounds.iter().map(|r| r.1).collect()),
        ratios[ratios.len() / 2],
    )
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &str,
    zones: usize,
    rows: usize,
    cols: usize,
    dense_ns: u128,
    sparse_ns: u128,
    speedup: f64,
    gate: &str,
    cold_nodes_per_s: f64,
    warm_nodes_per_s: f64,
    warm_speedup: f64,
    parity: f64,
) -> std::io::Result<()> {
    let hardware_threads = sag_bench::hardware_threads();
    let solver = sag_bench::solver_fields_json();
    let body = format!(
        "{{\n  \"benchmark\": \"lp_core\",\n  \"zones\": {zones},\n  \"rows\": {rows},\n  \"cols\": {cols},\n  \"hardware_threads\": {hardware_threads},\n  {solver},\n  \"dense_median_ns\": {dense_ns},\n  \"sparse_median_ns\": {sparse_ns},\n  \"speedup\": {speedup:.3},\n  \"gate\": \"{gate}\",\n  \"bb_triangles\": {TRIANGLES},\n  \"cold_nodes_per_s\": {cold_nodes_per_s:.1},\n  \"warm_nodes_per_s\": {warm_nodes_per_s:.1},\n  \"warm_speedup\": {warm_speedup:.3},\n  \"parity_max_rel_err\": {parity:.3e}\n}}\n"
    );
    std::fs::write(path, body)
}

fn main() {
    let mut out_path = String::from("BENCH_lp.json");
    let mut min_speedup = 3.0f64;
    let mut min_warm_speedup = 1.5f64;
    let mut zones = DEFAULT_ZONES;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--min-speedup" => {
                let v = args.next().expect("--min-speedup needs a number");
                min_speedup = v.parse().expect("--min-speedup parses as f64");
            }
            "--min-warm-speedup" => {
                let v = args.next().expect("--min-warm-speedup needs a number");
                min_warm_speedup = v.parse().expect("--min-warm-speedup parses as f64");
            }
            "--zones" => {
                let v = args.next().expect("--zones needs a number");
                zones = v.parse().expect("--zones parses as usize");
                assert!(zones >= 1, "--zones must be at least 1");
            }
            other => panic!(
                "unknown argument {other}; usage: bench_lp [--out PATH] \
                 [--min-speedup X] [--min-warm-speedup X] [--zones N]"
            ),
        }
    }

    // ---- Probe 1: cover LP, dense vs sparse -------------------------
    let lp = cover_probe(zones);
    let (rows, cols) = (lp.num_constraints(), lp.num_vars());

    // Parity gate before any timing: a fast wrong answer is worthless.
    let sparse_sol = {
        let _g = push_backend_override(Some(LpBackend::Sparse));
        lp.solve().expect("cover probe is feasible (sparse)")
    };
    let dense_sol = {
        let _g = push_backend_override(Some(LpBackend::Dense));
        lp.solve().expect("cover probe is feasible (dense)")
    };
    let mut parity =
        (sparse_sol.objective - dense_sol.objective).abs() / (1.0 + dense_sol.objective.abs());
    assert!(
        parity <= 1e-6,
        "dense/sparse objective parity broken before timing: \
         sparse {} vs dense {}",
        sparse_sol.objective,
        dense_sol.objective
    );

    let (dense_ns, sparse_ns, speedup) = measure(
        &mut || {
            let _g = push_backend_override(Some(LpBackend::Dense));
            std::hint::black_box(lp.solve().expect("dense solve"));
        },
        &mut || {
            let _g = push_backend_override(Some(LpBackend::Sparse));
            std::hint::black_box(lp.solve().expect("sparse solve"));
        },
    );

    // The floor only means something on a large instance; a small probe
    // records the measurement but skips enforcement.
    let (gate, enforce) = sag_bench::resolve_gate(
        zones >= MIN_GATE_ZONES,
        &format!("{zones} zones below the {MIN_GATE_ZONES}-zone minimum"),
    );

    // ---- Probe 2: branch-and-bound, warm vs cold --------------------
    let cold_ilp = triangle_ilp(false);
    let warm_ilp = triangle_ilp(true);
    let cold_ref = cold_ilp.solve().expect("triangle probe is feasible");
    let warm_ref = warm_ilp.solve().expect("triangle probe is feasible");
    let bb_parity =
        (cold_ref.objective - warm_ref.objective).abs() / (1.0 + cold_ref.objective.abs());
    assert!(
        bb_parity <= 1e-9,
        "warm/cold incumbent parity broken before timing: \
         cold {} vs warm {}",
        cold_ref.objective,
        warm_ref.objective
    );
    parity = parity.max(bb_parity);

    let mut cold_nodes = 0usize;
    let mut warm_nodes = 0usize;
    let (cold_ns, warm_ns, _) = measure(
        &mut || {
            cold_nodes = std::hint::black_box(cold_ilp.solve().expect("cold solve")).nodes;
        },
        &mut || {
            warm_nodes = std::hint::black_box(warm_ilp.solve().expect("warm solve")).nodes;
        },
    );
    let cold_nodes_per_s = cold_nodes as f64 / (cold_ns.max(1) as f64 / 1e9);
    let warm_nodes_per_s = warm_nodes as f64 / (warm_ns.max(1) as f64 / 1e9);
    let warm_speedup = warm_nodes_per_s / cold_nodes_per_s;

    println!("benchmark group: lp_core ({ROUNDS} interleaved rounds, median ns)");
    println!("cover {rows}x{cols} dense      {dense_ns:>12}");
    println!("cover {rows}x{cols} sparse     {sparse_ns:>12}");
    println!("speedup: {speedup:.2}x [{gate}]");
    println!("b&b cold  {cold_nodes:>5} nodes  {cold_ns:>12} ns  ({cold_nodes_per_s:.0} nodes/s)");
    println!("b&b warm  {warm_nodes:>5} nodes  {warm_ns:>12} ns  ({warm_nodes_per_s:.0} nodes/s)");
    println!("warm node throughput: {warm_speedup:.2}x (parity max rel err {parity:.3e})");

    emit_json(
        &out_path,
        zones,
        rows,
        cols,
        dense_ns,
        sparse_ns,
        speedup,
        &gate,
        cold_nodes_per_s,
        warm_nodes_per_s,
        warm_speedup,
        parity,
    )
    .expect("write benchmark JSON");
    println!("wrote {out_path}");

    if enforce {
        assert!(
            speedup >= min_speedup,
            "dense-vs-sparse speedup {speedup:.2}x is below the required \
             {min_speedup:.2}x floor"
        );
        assert!(
            warm_speedup >= min_warm_speedup,
            "warm-vs-cold node throughput {warm_speedup:.2}x is below the \
             required {min_warm_speedup:.2}x floor"
        );
    }
}
