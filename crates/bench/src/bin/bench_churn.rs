//! Incremental churn repair vs from-scratch re-solve (`BENCH_churn.json`).
//!
//! The probe is the clustered multi-zone shape the dirty-zone repair
//! path exists for: a 4×4 grid of tight subscriber clusters, each its
//! own interference zone, so a mobility event dirties one zone while
//! the from-scratch baseline must re-solve all sixteen. Two arms are
//! timed
//! interleaved over the same stationary cycle of intra-cluster move
//! probes (each displacement is applied and then undone, so every
//! round sees the same workload):
//!
//! * **scratch** — mutate the subscriber position and run a full-field
//!   [`samc`] solve, the pre-churn-engine answer to every event;
//! * **repair** — feed the same move to a long-lived
//!   [`ChurnEngine`], which patches the interference ledger and
//!   re-solves only the dirtied zone.
//!
//! Before any timing the engine must survive a realistic seeded trace
//! (arrivals, departures, moves from [`churn_trace`]) with a clean
//! ledger audit and a feasible placement — a fast repair that corrupts
//! state is worthless. Per-event repair latency percentiles come from
//! the engine's own [`ChurnReport`] over every timed event.
//!
//! The speedup gate needs headroom above timer noise to mean anything:
//! when the repair path lands below the timing floor the gate is
//! recorded as skipped in the JSON (`SAG_BENCH_STRICT=1` turns that
//! skip into a failure).
//!
//! Usage: `bench_churn [--out PATH] [--min-speedup X] [--max-p99-us X]`

use sag_core::churn::{ChurnConfig, ChurnEngine, ChurnEvent, RepairRung};
use sag_core::coverage::is_feasible;
use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_core::samc::samc;
use sag_core::zone::zone_partition;
use sag_geom::{Point, Rect};
use sag_lp::Budget;
use sag_radio::{units::Db, LinkBudget};
use sag_sim::experiments::churn::{churn_trace, ChurnTraceSpec};

const FIELD: f64 = 1200.0;
const CLUSTERS: usize = 16;
const SUBS_PER_CLUSTER: usize = 9;
/// Move probes per round; each probe is two events (out and back).
const PROBES: usize = 8;
/// Interleaved scratch/repair measurement rounds.
const ROUNDS: usize = 9;
/// Contract-trace length replayed before any timing.
const TRACE_EVENTS: usize = 32;
/// Below this per-event repair time the speedup ratio is timer noise.
const TIMING_FLOOR_NS: u128 = 5_000;

/// A 4×4 grid of tight clusters spread across the field with an
/// ignorable-noise level whose `d_max` (10) links subscribers within a
/// cluster but never across clusters, so Zone Partition yields sixteen
/// zones and an intra-cluster move dirties exactly one of them.
/// Deterministic sunflower placement, no RNG.
fn probe_scenario() -> Scenario {
    let centers = [
        (-450.0, -450.0),
        (-150.0, -450.0),
        (150.0, -450.0),
        (450.0, -450.0),
        (-450.0, -150.0),
        (-150.0, -150.0),
        (150.0, -150.0),
        (450.0, -150.0),
        (-450.0, 150.0),
        (-150.0, 150.0),
        (150.0, 150.0),
        (450.0, 150.0),
        (-450.0, 450.0),
        (-150.0, 450.0),
        (150.0, 450.0),
        (450.0, 450.0),
    ];
    let golden = 2.399_963_229_728_653_f64; // radians
    let mut subs = Vec::with_capacity(CLUSTERS * SUBS_PER_CLUSTER);
    for (ci, &(cx, cy)) in centers.iter().enumerate() {
        for k in 0..SUBS_PER_CLUSTER {
            let ang = (ci * SUBS_PER_CLUSTER + k) as f64 * golden;
            let r = 18.0 * ((k as f64 + 0.5) / SUBS_PER_CLUSTER as f64).sqrt();
            subs.push(Subscriber::new(
                Point::new(cx + r * ang.cos(), cy + r * ang.sin()),
                35.0 + 5.0 * ((k as f64 * 0.37).fract()),
            ));
        }
    }
    Scenario::new(
        Rect::centered_square(FIELD),
        subs,
        vec![
            BaseStation::new(Point::new(-550.0, 550.0)),
            BaseStation::new(Point::new(550.0, -550.0)),
        ],
        NetworkParams::new(
            LinkBudget::builder().snr_threshold(Db::new(-15.0)).build(),
            1e-3, // d_max = 10
        ),
    )
    .expect("probe geometry is valid")
}

/// Deterministic intra-cluster displacement probes: `(slot, to, back)`.
fn move_probes(sc: &Scenario) -> Vec<(usize, Point, Point)> {
    let n = sc.subscribers.len();
    (0..PROBES)
        .map(|k| {
            let j = (k * 7) % n;
            let orig = sc.subscribers[j].position;
            let ang = k as f64 * 0.61 + 0.3;
            let to = Point::new(orig.x + 10.0 * ang.cos(), orig.y + 10.0 * ang.sin());
            (j, to, orig)
        })
        .collect()
}

/// Interleaved median-of-ratios between two timed closures (one round =
/// one full probe cycle). Returns (min a ns, min b ns, median of a/b
/// per round).
fn measure(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (u128, u128, f64) {
    let time_round = |f: &mut dyn FnMut()| -> u128 {
        let start = std::time::Instant::now();
        f();
        start.elapsed().as_nanos()
    };
    // Warm-up round, not measured.
    time_round(a);
    time_round(b);
    let mut rounds: Vec<(u128, u128)> = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        rounds.push((time_round(a), time_round(b)));
    }
    let mut ratios: Vec<f64> = rounds
        .iter()
        .map(|&(s, p)| s as f64 / p.max(1) as f64)
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    (
        rounds.iter().map(|r| r.0).min().unwrap_or(0),
        rounds.iter().map(|r| r.1).min().unwrap_or(0),
        ratios[ratios.len() / 2],
    )
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &str,
    zones: usize,
    events_per_round: usize,
    scratch_ns: u128,
    repair_ns: u128,
    speedup: f64,
    p50_ns: u64,
    p99_ns: u64,
    min_speedup: f64,
    gate: &str,
) -> std::io::Result<()> {
    let subscribers = CLUSTERS * SUBS_PER_CLUSTER;
    let hardware_threads = sag_bench::hardware_threads();
    let solver = sag_bench::solver_fields_json();
    let body = format!(
        "{{\n  \"benchmark\": \"churn_repair\",\n  \"subscribers\": {subscribers},\n  \"zones\": {zones},\n  \"events_per_round\": {events_per_round},\n  \"hardware_threads\": {hardware_threads},\n  {solver},\n  \"scratch_min_per_event_ns\": {scratch_ns},\n  \"repair_min_per_event_ns\": {repair_ns},\n  \"repair_speedup_median\": {speedup:.4},\n  \"p50_repair_ns\": {p50_ns},\n  \"p99_repair_ns\": {p99_ns},\n  \"min_speedup\": {min_speedup:.2},\n  \"gate\": \"{gate}\"\n}}\n",
    );
    std::fs::write(path, body)
}

fn main() {
    let mut out_path = String::from("BENCH_churn.json");
    let mut min_speedup = 5.0f64;
    let mut max_p99_us: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--min-speedup" => {
                let v = args.next().expect("--min-speedup needs a number");
                min_speedup = v.parse().expect("--min-speedup parses as f64");
            }
            "--max-p99-us" => {
                let v = args.next().expect("--max-p99-us needs a number");
                max_p99_us = Some(v.parse().expect("--max-p99-us parses as f64"));
            }
            other => panic!(
                "unknown argument {other}; usage: \
                 bench_churn [--out PATH] [--min-speedup X] [--max-p99-us X]"
            ),
        }
    }

    let scenario = probe_scenario();
    let zones = zone_partition(&scenario).len();
    assert_eq!(
        zones, CLUSTERS,
        "probe must partition into exactly one zone per cluster"
    );

    // Contract gate before any timing: the engine must digest a
    // realistic mixed trace (arrivals, departures, moves) and come out
    // audit-clean and feasible.
    let mut contract =
        ChurnEngine::new(&scenario, ChurnConfig::default()).expect("probe is coverable");
    let trace = churn_trace(
        &scenario,
        &ChurnTraceSpec {
            n_events: TRACE_EVENTS,
            ..Default::default()
        },
        4242,
    );
    contract
        .run(&trace, None)
        .expect("contract trace replays cleanly");
    contract.audit().expect("ledger audit clean after trace");
    let live = contract.scenario().expect("no backlog after final flush");
    let sol = contract.solution().expect("no backlog after final flush");
    assert!(
        is_feasible(&live, &sol),
        "engine placement infeasible after contract trace"
    );
    println!(
        "contract: {} trace events, audit clean, feasible ({} relays over {} live subscribers)",
        trace.len(),
        contract.n_relays(),
        contract.n_subscribers()
    );

    let probes = move_probes(&scenario);
    let events_per_round = 2 * PROBES;
    let budget = Budget::unlimited();
    // The timing engine amortises the exact-oracle ledger audit (an
    // O(S·R) radio-model recompute per audited event) over the probe
    // cycle; correctness is still gated by the default audit-every-event
    // contract engine above and the explicit audit after timing.
    let mut engine = ChurnEngine::new(
        &scenario,
        ChurnConfig {
            audit_every: 2 * PROBES as u64,
            ..Default::default()
        },
    )
    .expect("probe is coverable");
    let mut scratch_sc = scenario.clone();
    let (scratch_round_ns, repair_round_ns, speedup) = measure(
        &mut || {
            for &(j, to, back) in &probes {
                scratch_sc.subscribers[j].position = to;
                std::hint::black_box(samc(&scratch_sc).expect("scratch solve (out)"));
                scratch_sc.subscribers[j].position = back;
                std::hint::black_box(samc(&scratch_sc).expect("scratch solve (back)"));
            }
        },
        &mut || {
            for &(j, to, back) in &probes {
                engine
                    .apply_event(ChurnEvent::SsMove { subscriber: j, to }, &budget)
                    .expect("repair (out)");
                engine
                    .apply_event(
                        ChurnEvent::SsMove {
                            subscriber: j,
                            to: back,
                        },
                        &budget,
                    )
                    .expect("repair (back)");
            }
        },
    );
    engine.audit().expect("ledger audit clean after timing");
    assert_eq!(
        engine.report().rung_count(RepairRung::Deferred),
        0,
        "unlimited per-event budget must never defer"
    );

    let scratch_ns = scratch_round_ns / events_per_round as u128;
    let repair_ns = repair_round_ns / events_per_round as u128;
    let p50_ns = engine.report().p50_ns();
    let p99_ns = engine.report().p99_ns();

    // Below the floor the ratio measures the timer, not the engine.
    let (gate, enforce) = sag_bench::resolve_gate(
        repair_ns >= TIMING_FLOOR_NS,
        &format!("repair path {repair_ns} ns/event below the {TIMING_FLOOR_NS} ns timing floor"),
    );

    println!("benchmark group: churn_repair ({ROUNDS} interleaved rounds, min per-event ns)");
    println!("scratch samc per event        {scratch_ns:>12}");
    println!("dirty-zone repair per event   {repair_ns:>12}");
    println!("repair latency p50/p99        {p50_ns:>12} / {p99_ns} ns");
    println!("median speedup: {speedup:.3}x over {zones} zones [{gate}]");

    emit_json(
        &out_path,
        zones,
        events_per_round,
        scratch_ns,
        repair_ns,
        speedup,
        p50_ns,
        p99_ns,
        min_speedup,
        &gate,
    )
    .expect("write benchmark JSON");
    println!("wrote {out_path}");

    if enforce {
        assert!(
            speedup >= min_speedup,
            "dirty-zone repair speedup {speedup:.3}x is below the {min_speedup:.2}x floor"
        );
        if let Some(ceiling) = max_p99_us {
            let p99_us = p99_ns as f64 / 1e3;
            assert!(
                p99_us <= ceiling,
                "p99 repair latency {p99_us:.1}us exceeds the {ceiling:.1}us SLO ceiling"
            );
        }
    }
}
