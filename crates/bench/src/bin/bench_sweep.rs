//! Batched sweep engine benchmark (`BENCH_sweep.json`).
//!
//! Times a Fig. 3(e)-shaped parameter study — scenarios held fixed
//! while the GAC grid size marches across sixteen x positions — through
//! the batched, fingerprint-cached sweep engine versus the pre-existing
//! per-cell path (`sweep_multi_reference`), and gates the
//! sweep-cells-per-second improvement at a configurable floor.
//!
//! This is the workload the invariant cache exists for: the IAC and
//! SAMC reference lines, and the scenario geometry itself, are
//! invariant across the whole sweep row, so the per-cell path re-solves
//! them at every plotted point while the cached path builds each once
//! per seed and shares it across all lanes. The speedup is therefore
//! *cache-driven*, not parallelism-driven — it is enforceable on a
//! single hardware thread, and both arms run at the same thread count
//! so scheduling never biases the ratio.
//!
//! Before any timing, the batched path must reproduce the per-cell
//! path's `CellStats` byte-for-byte at threads=1 and threads=N, with a
//! cold and a warm cache, and under a seeded shuffle of the work queue
//! — a cache that bought throughput by changing results would be
//! worthless.
//!
//! The gate self-skips (machine-readably, honoring `SAG_BENCH_STRICT`)
//! only when the reference sweep is too fast for the timer to resolve.
//!
//! Usage: `bench_sweep [--out PATH] [--min-speedup X]`

use sag_sim::batch::{sweep_multi_reference, sweep_multi_with, JobOrder, SweepCache, SweepOptions};
use sag_sim::experiments::{relays_metric, run_gac_cached, run_iac_cached, run_samc_cached};
use sag_sim::gen::ScenarioSpec;
use sag_sim::runner::SweepConfig;
use sag_sim::stats::CellStats;

/// Swept GAC grid sizes (the x axis): coarse enough that each GAC
/// solve stays cheap next to the shared IAC solve, which is what makes
/// the per-cell path's redundant IAC/SAMC recomputes the bottleneck —
/// exactly the Fig. 3(e) cost shape at paper scale.
const GRIDS: [f64; 16] = [
    40.0, 42.0, 44.0, 46.0, 48.0, 50.0, 52.0, 54.0, 56.0, 58.0, 60.0, 62.0, 64.0, 66.0, 68.0, 70.0,
];
/// Sweeps per timing sample.
const INNER_ITERS: u32 = 2;
/// Interleaved reference/batched measurement rounds.
const ROUNDS: usize = 11;
/// Below this per-sweep reference time the ratio measures the timer,
/// not the engine.
const TIMING_FLOOR_NS: u128 = 2_000_000;

/// The probe scenario family: the paper's 500-field at −15 dB with a
/// user cluster large enough that IAC candidate generation and its
/// ILPQC solve dominate a cell.
fn probe_spec() -> ScenarioSpec {
    ScenarioSpec {
        field_size: 500.0,
        n_subscribers: 40,
        n_base_stations: 4,
        snr_db: -15.0,
        ..Default::default()
    }
}

/// The shared eval, identical for both arms: `seed % 1000` pins the
/// scenarios across x positions (the Fig. 3(d)/(e) idiom), so only the
/// grid size varies along the row.
fn eval(ctx: &sag_sim::batch::BatchCtx<'_>, grid: f64, seed: u64) -> Vec<Option<f64>> {
    let spec = probe_spec();
    let seed = seed % 1000;
    vec![
        relays_metric(&run_iac_cached(ctx, &spec, seed)),
        relays_metric(&run_gac_cached(ctx, &spec, seed, grid)),
        relays_metric(&run_samc_cached(ctx, &spec, seed)),
    ]
}

fn batched(config: SweepConfig, opts: SweepOptions) -> Vec<Vec<CellStats>> {
    sweep_multi_with(&GRIDS, 3, config, opts, eval)
}

/// A cold, explicitly-enabled cache per invocation: the bench measures
/// the engine (including its one-time builds), never the `SAG_SWEEP_*`
/// environment.
fn cold_opts() -> SweepOptions {
    SweepOptions {
        cache: Some(SweepCache::new()),
        ..Default::default()
    }
}

fn fingerprint(series: &[Vec<CellStats>]) -> String {
    format!("{series:?}")
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &str,
    cells: usize,
    threads: usize,
    hardware_threads: usize,
    ref_ns: u128,
    batched_ns: u128,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    min_speedup: f64,
    gate: &str,
) -> std::io::Result<()> {
    let xs = GRIDS.len();
    let solver = sag_bench::solver_fields_json();
    let ref_cps = cells as f64 / (ref_ns.max(1) as f64 / 1e9);
    let batched_cps = cells as f64 / (batched_ns.max(1) as f64 / 1e9);
    let body = format!(
        "{{\n  \"benchmark\": \"sweep_batch\",\n  \"xs\": {xs},\n  \"cells\": {cells},\n  \"threads\": {threads},\n  \"hardware_threads\": {hardware_threads},\n  {solver},\n  \"reference_min_ns\": {ref_ns},\n  \"batched_min_ns\": {batched_ns},\n  \"reference_cells_per_sec\": {ref_cps:.2},\n  \"batched_cells_per_sec\": {batched_cps:.2},\n  \"speedup_median\": {speedup:.4},\n  \"cache_hits\": {cache_hits},\n  \"cache_misses\": {cache_misses},\n  \"min_speedup\": {min_speedup:.2},\n  \"gate\": \"{gate}\"\n}}\n",
    );
    std::fs::write(path, body)
}

/// Interleaved median-of-ratios between two timed closures: adjacent
/// samples share the same noise phase, so per-round ratios are stable
/// and the median discards outliers. Returns (min a ns, min b ns,
/// median of a/b per round).
fn measure(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (u128, u128, f64) {
    let time_rounds = |f: &mut dyn FnMut()| -> u128 {
        let start = std::time::Instant::now();
        for _ in 0..INNER_ITERS {
            f();
        }
        (start.elapsed() / INNER_ITERS).as_nanos()
    };
    // Warm-up round, not measured.
    time_rounds(a);
    time_rounds(b);
    let mut rounds: Vec<(u128, u128)> = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        rounds.push((time_rounds(a), time_rounds(b)));
    }
    let mut ratios: Vec<f64> = rounds
        .iter()
        .map(|&(r, c)| r as f64 / c.max(1) as f64)
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    (
        rounds.iter().map(|r| r.0).min().unwrap_or(0),
        rounds.iter().map(|r| r.1).min().unwrap_or(0),
        ratios[ratios.len() / 2],
    )
}

fn main() {
    let mut out_path = String::from("BENCH_sweep.json");
    let mut min_speedup = 4.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--min-speedup" => {
                let v = args.next().expect("--min-speedup needs a number");
                min_speedup = v.parse().expect("--min-speedup parses as f64");
            }
            other => panic!(
                "unknown argument {other}; usage: \
                 bench_sweep [--out PATH] [--min-speedup X]"
            ),
        }
    }

    let config = sag_bench::bench_sweep();
    let threads = config.threads;
    let cells = GRIDS.len() * config.runs;

    // Determinism gates before any timing: batched/cached vs the
    // per-cell reference path, across thread counts, cache states and
    // work-queue interleavings.
    let reference = sweep_multi_reference(&GRIDS, 3, config, eval);
    let one_thread = SweepConfig {
        threads: 1,
        ..config
    };
    let want = fingerprint(&reference);
    let check = |label: &str, got: Vec<Vec<CellStats>>| {
        assert_eq!(
            fingerprint(&got),
            want,
            "batched sweep diverged from the per-cell reference path ({label})"
        );
    };
    check("threads=1 cold", batched(one_thread, cold_opts()));
    check("threads=N cold", batched(config, cold_opts()));
    check(
        "threads=N shuffled",
        batched(
            config,
            SweepOptions {
                order: JobOrder::Shuffled(0xC0FFEE),
                ..cold_opts()
            },
        ),
    );
    let warm = SweepCache::new();
    let warm_opts = || SweepOptions {
        cache: Some(warm.clone()),
        ..Default::default()
    };
    check("threads=N warm(1st)", batched(config, warm_opts()));
    // Stats of a single cold sweep: everything the second pass reuses.
    let cold_stats = warm.stats();
    check("threads=N warm(2nd)", batched(config, warm_opts()));
    println!(
        "parity: batched == per-cell reference over {cells} cells \
         (threads 1/{threads}, cold/warm cache, shuffled queue)"
    );

    let (ref_ns, batched_ns, speedup) = measure(
        &mut || {
            std::hint::black_box(sweep_multi_reference(&GRIDS, 3, config, eval));
        },
        &mut || {
            std::hint::black_box(batched(config, cold_opts()));
        },
    );

    let hardware_threads = sag_bench::hardware_threads();
    // The speedup is cache-driven (shared IAC/SAMC/geometry work), so
    // it is enforceable at any hardware thread count; only a sweep too
    // fast for the timer to resolve invalidates the ratio.
    let (gate, enforce) = sag_bench::resolve_gate(
        ref_ns >= TIMING_FLOOR_NS,
        &format!("reference sweep {ref_ns}ns below the {TIMING_FLOOR_NS}ns timing floor"),
    );

    let ref_cps = cells as f64 / (ref_ns.max(1) as f64 / 1e9);
    let batched_cps = cells as f64 / (batched_ns.max(1) as f64 / 1e9);
    println!("benchmark group: sweep_batch ({ROUNDS} interleaved rounds, min per-sweep ns)");
    println!("per-cell reference            {ref_ns:>12}  ({ref_cps:.1} cells/s)");
    println!("batched + cold cache          {batched_ns:>12}  ({batched_cps:.1} cells/s)");
    println!(
        "median speedup {speedup:.3}x over {cells} cells \
         (one cold sweep: {} hits / {} misses) [{gate}]",
        cold_stats.hits, cold_stats.misses
    );

    emit_json(
        &out_path,
        cells,
        threads,
        hardware_threads,
        ref_ns,
        batched_ns,
        speedup,
        cold_stats.hits,
        cold_stats.misses,
        min_speedup,
        &gate,
    )
    .expect("write benchmark JSON");
    println!("wrote {out_path}");

    if enforce {
        assert!(
            speedup >= min_speedup,
            "batched sweep speedup {speedup:.3}x is below the {min_speedup:.2}x floor"
        );
    }
}
