//! Shared scaffolding for the benchmarks: canonical scenario builders,
//! reduced sweep configurations, and a built-in wall-clock harness.
//!
//! The Criterion benches under `benches/` are reserved behind the
//! `criterion` feature (which needs registry access — see DESIGN.md
//! "Hermetic builds"). The default, zero-dependency path is the
//! [`harness`] module: seeded, warmed-up wall-clock timing that prints
//! a `name  median  mean  min  iters` row per benchmark, good enough to
//! catch order-of-magnitude regressions in CI without any external
//! crate.

use std::time::Instant;

use sag_core::model::Scenario;
use sag_sim::gen::{BsLayout, ScenarioSpec};
use sag_sim::runner::SweepConfig;

pub mod harness;

/// Hardware threads visible to this process (1 when the query fails).
/// Every `BENCH_*.json` emitter records this so a gate skipped on a
/// small runner is distinguishable from one skipped by a bug.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Whether `SAG_BENCH_STRICT` requests that benchmark self-skips fail
/// instead of recording `"gate": "skipped (…)"`. Any non-empty value
/// other than `0` turns it on.
pub fn strict() -> bool {
    matches!(std::env::var("SAG_BENCH_STRICT").as_deref(), Ok(v) if !v.is_empty() && v != "0")
}

/// Shared enforce-or-skip resolution for benchmark gates: returns the
/// machine-readable `gate` string for the JSON artefact and whether the
/// floor/ceiling assertions should run. Under [`strict`] a would-be
/// skip panics instead, so CI environments that must never silently
/// drop a gate (e.g. the release runner) turn self-skips into failures.
pub fn resolve_gate(enforce: bool, skip_reason: &str) -> (String, bool) {
    if enforce {
        ("enforced".to_string(), true)
    } else if strict() {
        panic!("SAG_BENCH_STRICT is set: refusing to skip benchmark gate ({skip_reason})")
    } else {
        (format!("skipped ({skip_reason})"), false)
    }
}

/// The solver-backend configuration active for this process, as a
/// ready-to-splice pair of JSON fields (`solver_backend`,
/// `solver_selection`). Every `BENCH_*.json` emitter records these so
/// a number produced under a `SAG_SOLVER` override is never mistaken
/// for a default-configuration baseline.
pub fn solver_fields_json() -> String {
    let choice = sag_core::SolverBuilder::default().choice;
    let selection = if sag_core::SolverBuilder::choice_from_env() {
        "env"
    } else {
        "default"
    };
    format!(
        "\"solver_backend\": \"{}\",\n  \"solver_selection\": \"{}\"",
        choice.label(),
        selection
    )
}

/// The sweep configuration benches use: few runs, deterministic seeds.
pub fn bench_sweep() -> SweepConfig {
    SweepConfig {
        runs: 2,
        base_seed: 77,
        threads: 4,
    }
}

/// A canonical benchmark scenario on the given field with `users`
/// subscribers (paper defaults: −15 dB, 4 BSs).
pub fn bench_scenario(field: f64, users: usize, seed: u64) -> Scenario {
    ScenarioSpec {
        field_size: field,
        n_subscribers: users,
        n_base_stations: 4,
        snr_db: -15.0,
        bs_layout: BsLayout::Uniform,
        ..Default::default()
    }
    .build(seed)
}

/// The Fig. 6 corner-BS scenario at benchmark scale.
pub fn bench_corner_scenario(users: usize, seed: u64) -> Scenario {
    ScenarioSpec {
        field_size: 600.0,
        n_subscribers: users,
        n_base_stations: 4,
        snr_db: -15.0,
        bs_layout: BsLayout::Corners,
        ..Default::default()
    }
    .build(seed)
}

/// Wall-clock seconds of one invocation (re-exported convenience for
/// ad-hoc timing in tests and examples).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic() {
        assert_eq!(bench_scenario(500.0, 10, 1), bench_scenario(500.0, 10, 1));
        assert_eq!(bench_corner_scenario(10, 1), bench_corner_scenario(10, 1));
        assert_eq!(bench_sweep().runs, 2);
    }

    #[test]
    fn time_once_reports_duration() {
        let (v, secs) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn hardware_threads_is_positive() {
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn gate_resolution() {
        let (gate, enforce) = resolve_gate(true, "unused");
        assert_eq!(gate, "enforced");
        assert!(enforce);
        // The skip branch panics under SAG_BENCH_STRICT by design, so
        // only exercise it when the knob is off in this environment.
        if !strict() {
            let (gate, enforce) = resolve_gate(false, "2 zones below the 16-zone minimum");
            assert_eq!(gate, "skipped (2 zones below the 16-zone minimum)");
            assert!(!enforce);
        }
    }
}
