//! Shared scaffolding for the Criterion benches: canonical scenario
//! builders and reduced sweep configurations so that `cargo bench`
//! regenerates every paper artefact's data path in bounded time.

use sag_core::model::Scenario;
use sag_sim::gen::{BsLayout, ScenarioSpec};
use sag_sim::runner::SweepConfig;

/// The sweep configuration benches use: few runs, deterministic seeds.
pub fn bench_sweep() -> SweepConfig {
    SweepConfig { runs: 2, base_seed: 77, threads: 4 }
}

/// A canonical benchmark scenario on the given field with `users`
/// subscribers (paper defaults: −15 dB, 4 BSs).
pub fn bench_scenario(field: f64, users: usize, seed: u64) -> Scenario {
    ScenarioSpec {
        field_size: field,
        n_subscribers: users,
        n_base_stations: 4,
        snr_db: -15.0,
        bs_layout: BsLayout::Uniform,
        ..Default::default()
    }
    .build(seed)
}

/// The Fig. 6 corner-BS scenario at benchmark scale.
pub fn bench_corner_scenario(users: usize, seed: u64) -> Scenario {
    ScenarioSpec {
        field_size: 600.0,
        n_subscribers: users,
        n_base_stations: 4,
        snr_db: -15.0,
        bs_layout: BsLayout::Corners,
        ..Default::default()
    }
    .build(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic() {
        assert_eq!(bench_scenario(500.0, 10, 1), bench_scenario(500.0, 10, 1));
        assert_eq!(bench_corner_scenario(10, 1), bench_corner_scenario(10, 1));
        assert_eq!(bench_sweep().runs, 2);
    }
}
