//! Fig. 6 bench: building the four topology panels (IAC+MBMC, GAC+MBMC,
//! SAMC+MBMC, SAMC+MUST) — regenerates the dumps once, then times the
//! SAMC+MBMC panel construction.

use criterion::{criterion_group, criterion_main, Criterion};

use sag_bench::bench_corner_scenario;
use sag_core::mbmc::{mbmc, must};
use sag_core::samc::samc;
use sag_sim::experiments::fig6;

fn topologies(c: &mut Criterion) {
    for dump in fig6::fig6(7) {
        println!(
            "{:<10}: {} cover, {} connect, {} links",
            dump.name,
            dump.coverage_relays.len(),
            dump.connectivity_relays.len(),
            dump.links.len()
        );
    }

    let sc = bench_corner_scenario(20, 7);
    let mut group = c.benchmark_group("fig6_topology");
    group.sample_size(10);
    group.bench_function("samc_plus_mbmc", |b| {
        b.iter(|| {
            let sol = samc(&sc).expect("feasible");
            mbmc(&sc, &sol).expect("connectable").n_relays()
        })
    });
    group.bench_function("samc_plus_must", |b| {
        b.iter(|| {
            let sol = samc(&sc).expect("feasible");
            must(&sc, &sol, 0).expect("connectable").n_relays()
        })
    });
    group.finish();
}

criterion_group!(benches, topologies);
criterion_main!(benches);
