//! Table II bench: MBMC vs MUST across base-station counts —
//! regenerates the table, then times both connectivity planners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sag_bench::{bench_scenario, bench_sweep};
use sag_core::mbmc::{mbmc, must};
use sag_core::samc::samc;
use sag_sim::experiments::table2;

fn mbmc_vs_must(c: &mut Criterion) {
    let table = table2::table2(bench_sweep());
    println!("{table}");

    let sc = bench_scenario(500.0, 30, 31);
    let sol = samc(&sc).expect("feasible at -15dB");
    let mut group = c.benchmark_group("table2_planners");
    group.sample_size(10);
    group.bench_function("mbmc", |b| {
        b.iter(|| mbmc(&sc, &sol).expect("ok").n_relays())
    });
    for bs in 0..sc.base_stations.len().min(2) {
        group.bench_with_input(BenchmarkId::new("must", bs), &bs, |b, &bs| {
            b.iter(|| must(&sc, &sol, bs).expect("ok").n_relays())
        });
    }
    group.finish();
}

criterion_group!(benches, mbmc_vs_must);
criterion_main!(benches);
