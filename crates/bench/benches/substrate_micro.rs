//! Micro-benchmarks of the substrates every pipeline stage leans on:
//! circle intersection, disk-family common points, spatial-hash queries,
//! simplex solves and MSTs.

use criterion::{criterion_group, criterion_main, Criterion};
use sag_testkit::rng::Rng;

use sag_geom::{disks, Circle, Point, SpatialHash};
use sag_graph::{mst, Graph};
use sag_lp::{LpProblem, Relation};

fn micro(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(2);

    let a = Circle::new(Point::new(0.0, 0.0), 35.0);
    let b = Circle::new(Point::new(40.0, 10.0), 38.0);
    c.bench_function("geom/circle_intersection", |bch| {
        bch.iter(|| a.intersection_points(&b))
    });

    let family: Vec<Circle> = (0..8)
        .map(|k| Circle::new(Point::new(k as f64 * 3.0, (k % 3) as f64 * 4.0), 30.0))
        .collect();
    c.bench_function("geom/disk_family_common_point", |bch| {
        bch.iter(|| disks::common_point(&family))
    });

    let pts: Vec<Point> = (0..500)
        .map(|_| Point::new(rng.gen_range(-400.0..400.0), rng.gen_range(-400.0..400.0)))
        .collect();
    let hash = SpatialHash::build(&pts, 40.0);
    c.bench_function("geom/spatial_hash_radius_query", |bch| {
        bch.iter(|| hash.query_radius(Point::new(10.0, -20.0), 60.0).len())
    });

    c.bench_function("lp/simplex_20x20", |bch| {
        bch.iter(|| {
            let mut lp = LpProblem::minimize(20);
            lp.set_objective(&[1.0; 20]);
            for i in 0..20 {
                lp.set_bounds(i, 0.0, 10.0);
                lp.add_constraint(&[(i, 1.0), ((i + 1) % 20, 0.5)], Relation::Ge, 1.0);
            }
            lp.solve().expect("feasible").objective
        })
    });

    let mut g = Graph::new(60);
    let mut rng2 = Rng::seed_from_u64(3);
    for v in 1..60 {
        let u = rng2.gen_range(0..v);
        g.add_edge(u, v, rng2.gen_range(0.1..10.0));
    }
    for _ in 0..120 {
        let u = rng2.gen_range(0..60);
        let v = rng2.gen_range(0..60);
        if u != v {
            g.add_edge(u, v, rng2.gen_range(0.1..10.0));
        }
    }
    c.bench_function("graph/kruskal_60v_180e", |bch| {
        bch.iter(|| mst::kruskal(&g).expect("connected").total_weight)
    });
    c.bench_function("graph/prim_60v_180e", |bch| {
        bch.iter(|| mst::prim(&g, 0).expect("connected").total_weight)
    });
}

criterion_group!(benches, micro);
criterion_main!(benches);
