//! Ablation: attenuation-exponent sensitivity. The paper bounds
//! `α ∈ [2, 4]` without fixing it; this bench regenerates the
//! `alpha_sweep` extension table and times the full SAMC+PRO lower tier
//! at the extreme exponents, quantifying how much the interference
//! regime (α = 2: far relays still matter) costs the repair loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sag_bench::bench_sweep;
use sag_core::model::{NetworkParams, Scenario};
use sag_core::pro::pro;
use sag_core::samc::samc;
use sag_radio::{units::Db, LinkBudget, TwoRay};
use sag_sim::experiments::alpha_sweep;
use sag_sim::gen::ScenarioSpec;

fn with_alpha(base: &Scenario, alpha: f64) -> Scenario {
    let link = LinkBudget::builder()
        .model(TwoRay::new(1.0, alpha))
        .max_power(base.params.link.pmax())
        .snr_threshold(Db::from_linear(base.params.link.beta()))
        .build();
    Scenario {
        params: NetworkParams::new(link, base.params.nmax),
        ..base.clone()
    }
}

fn alpha_ablation(c: &mut Criterion) {
    let table = alpha_sweep::alpha_sweep(bench_sweep());
    println!("{table}");

    let base = ScenarioSpec {
        field_size: 500.0,
        n_subscribers: 20,
        ..Default::default()
    }
    .build(3);
    let mut group = c.benchmark_group("ablation_alpha");
    group.sample_size(10);
    for &alpha in &[2.0f64, 3.0, 4.0] {
        let sc = with_alpha(&base, alpha);
        group.bench_with_input(
            BenchmarkId::new("samc_pro", format!("{alpha}")),
            &sc,
            |b, sc| {
                b.iter(|| {
                    let sol = samc(sc).expect("feasible at -15dB");
                    pro(sc, &sol).total()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, alpha_ablation);
criterion_main!(benches);
