//! Fig. 3 bench: regenerates the coverage-relay comparison (IAC vs GAC
//! vs SAMC) at reduced scale and times each solver per user count — the
//! performance story behind Fig. 3(a)/(b) and the running-time panels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sag_bench::{bench_scenario, bench_sweep};
use sag_sim::experiments::{fig3, gac_grid_for, run_gac, run_iac, run_samc};

fn regenerate_table(c: &mut Criterion) {
    // Print the actual Fig. 3(a) series once (reduced runs) so the bench
    // run leaves the paper's rows in its log.
    let table = fig3::fig3a(bench_sweep());
    println!("{table}");

    let mut group = c.benchmark_group("fig3_solvers");
    group.sample_size(10);
    for &users in &[10usize, 20, 30] {
        let sc = bench_scenario(500.0, users, 5);
        group.bench_with_input(BenchmarkId::new("samc", users), &sc, |b, sc| {
            b.iter(|| run_samc(sc))
        });
        group.bench_with_input(BenchmarkId::new("iac", users), &sc, |b, sc| {
            b.iter(|| run_iac(sc))
        });
        group.bench_with_input(BenchmarkId::new("gac", users), &sc, |b, sc| {
            b.iter(|| run_gac(sc, gac_grid_for(500.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_table);
criterion_main!(benches);
