//! Fig. 4 bench: the 500×500 lower-tier pipeline — PRO vs the LPQC
//! optimum (fixed point) vs baseline — regenerating panel (a)'s series
//! and timing each power stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sag_bench::{bench_scenario, bench_sweep};
use sag_core::pro::{baseline_power, optimal_power, pro};
use sag_core::samc::samc;
use sag_sim::experiments::fig45;

fn lower_tier(c: &mut Criterion) {
    let table = fig45::power_pro(500.0, bench_sweep());
    println!("{table}");

    let mut group = c.benchmark_group("fig4_power");
    group.sample_size(10);
    for &users in &[10usize, 25, 40] {
        let sc = bench_scenario(500.0, users, 9);
        let Ok(sol) = samc(&sc) else { continue };
        group.bench_with_input(BenchmarkId::new("pro", users), &users, |b, _| {
            b.iter(|| pro(&sc, &sol))
        });
        group.bench_with_input(
            BenchmarkId::new("optimal_fixed_point", users),
            &users,
            |b, _| b.iter(|| optimal_power(&sc, &sol).expect("feasible")),
        );
        group.bench_with_input(BenchmarkId::new("baseline", users), &users, |b, _| {
            b.iter(|| baseline_power(&sc, &sol))
        });
    }
    group.finish();
}

criterion_group!(benches, lower_tier);
criterion_main!(benches);
