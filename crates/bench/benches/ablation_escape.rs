//! Ablation: Coverage Link Escape (Algorithm 3's greedy degree peeling)
//! vs Hopcroft–Karp maximum matching as the one-on-one coverage
//! maximiser. Prints the one-on-one counts both achieve and times them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sag_testkit::rng::Rng;

use sag_graph::BipartiteGraph;

fn random_coverage_graph(n_ss: usize, n_rs: usize, seed: u64) -> BipartiteGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = BipartiteGraph::new(n_ss, n_rs);
    for l in 0..n_ss {
        // Every subscriber coverable by at least one point.
        g.add_edge(l, rng.gen_range(0..n_rs));
        for r in 0..n_rs {
            if rng.gen_bool(0.2) {
                g.add_edge(l, r);
            }
        }
    }
    g
}

fn one_on_one_of_escape(g: &BipartiteGraph) -> usize {
    let assignment = g.escape_assignment();
    let mut load = vec![0usize; g.n_right()];
    for a in assignment.iter().flatten() {
        load[*a] += 1;
    }
    load.iter().filter(|&&l| l == 1).count()
}

fn escape_ablation(c: &mut Criterion) {
    println!("one-on-one coverages (escape vs max-matching upper bound):");
    for &(n_ss, n_rs) in &[(20usize, 8usize), (40, 15), (60, 25)] {
        let g = random_coverage_graph(n_ss, n_rs, 9);
        let escape = one_on_one_of_escape(&g);
        let matching = g.max_matching().len();
        println!("  ss={n_ss:<3} rs={n_rs:<3} escape={escape:<3} matching={matching}");
        // A matched point serves exactly one SS, so the matching size
        // bounds what any one-on-one maximiser can reach.
        assert!(escape <= matching);
    }

    let mut group = c.benchmark_group("ablation_escape");
    group.sample_size(10);
    for &(n_ss, n_rs) in &[(30usize, 12usize), (60, 24)] {
        let g = random_coverage_graph(n_ss, n_rs, 4);
        group.bench_with_input(BenchmarkId::new("escape_peeling", n_ss), &g, |b, g| {
            b.iter(|| g.escape_assignment())
        });
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n_ss), &g, |b, g| {
            b.iter(|| g.max_matching().len())
        });
    }
    group.finish();
}

criterion_group!(benches, escape_ablation);
criterion_main!(benches);
