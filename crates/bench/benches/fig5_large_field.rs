//! Fig. 5 bench: the 800×800 field — end-to-end lower+upper tier at the
//! larger scale, regenerating panel (d)'s series and timing the full
//! chain per user count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sag_bench::{bench_scenario, bench_sweep};
use sag_core::mbmc::mbmc;
use sag_core::samc::samc;
use sag_core::ucpo::ucpo;
use sag_sim::experiments::fig45;

fn large_field(c: &mut Criterion) {
    let table = fig45::power_ucpo(800.0, bench_sweep());
    println!("{table}");

    let mut group = c.benchmark_group("fig5_800_field");
    group.sample_size(10);
    for &users in &[20usize, 40] {
        let sc = bench_scenario(800.0, users, 13);
        group.bench_with_input(BenchmarkId::new("samc_mbmc_ucpo", users), &users, |b, _| {
            b.iter(|| {
                let sol = samc(&sc).expect("feasible at -15dB");
                let plan = mbmc(&sc, &sol).expect("connectable");
                ucpo(&sc, &sol, &plan).total()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, large_field);
criterion_main!(benches);
