//! Fig. 7 bench: total power, SAG vs the DARP combinations —
//! regenerates the 300×300 panel and times the full SAG pipeline against
//! the DARP baseline per user count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sag_bench::{bench_scenario, bench_sweep};
use sag_core::darp::darp;
use sag_core::sag::run_sag;
use sag_core::samc::samc;
use sag_sim::experiments::fig7;

fn total_power(c: &mut Criterion) {
    let table = fig7::fig7(300.0, bench_sweep());
    println!("{table}");

    let mut group = c.benchmark_group("fig7_pipelines");
    group.sample_size(10);
    for &users in &[10usize, 20] {
        let sc = bench_scenario(300.0, users, 21);
        group.bench_with_input(BenchmarkId::new("sag_full", users), &users, |b, _| {
            b.iter(|| run_sag(&sc).map(|r| r.power_summary().total))
        });
        group.bench_with_input(BenchmarkId::new("samc_darp", users), &users, |b, _| {
            b.iter(|| {
                samc(&sc)
                    .ok()
                    .and_then(|s| darp(&sc, &s, 0).ok())
                    .map(|d| d.total_power())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, total_power);
criterion_main!(benches);
