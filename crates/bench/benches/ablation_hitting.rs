//! Ablation: the hitting-set solver behind SAMC Step 4. Times greedy vs
//! Mustafa–Ray local search vs exact branch-and-bound and prints their
//! solution-size gap — quantifying what the (1+ε) PTAS buys over greedy
//! and costs against the optimum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sag_testkit::rng::Rng;

use sag_geom::{Circle, Point};
use sag_hitting::{exact, greedy, local_search, DiskInstance};

fn random_instance(n: usize, seed: u64) -> DiskInstance {
    let mut rng = Rng::seed_from_u64(seed);
    let disks: Vec<Circle> = (0..n)
        .map(|_| {
            Circle::new(
                Point::new(rng.gen_range(-200.0..200.0), rng.gen_range(-200.0..200.0)),
                rng.gen_range(30.0..40.0),
            )
        })
        .collect();
    DiskInstance::new(disks)
}

fn hitting_ablation(c: &mut Criterion) {
    // Quality gap report.
    println!("hitting-set quality (disks: greedy / local-search / exact):");
    for &n in &[6usize, 10, 14] {
        let inst = random_instance(n, 3);
        let g = greedy::greedy_hitting_set(&inst).len();
        let l = local_search::local_search_hitting_set(&inst).len();
        let e = exact::exact_hitting_set(&inst).len();
        println!("  n={n:<3} greedy={g} local={l} exact={e}");
        assert!(e <= l && l <= g);
    }

    let mut group = c.benchmark_group("ablation_hitting");
    group.sample_size(10);
    for &n in &[8usize, 16, 24] {
        let inst = random_instance(n, 5);
        group.bench_with_input(BenchmarkId::new("greedy", n), &inst, |b, inst| {
            b.iter(|| greedy::greedy_hitting_set(inst).len())
        });
        group.bench_with_input(BenchmarkId::new("local_search", n), &inst, |b, inst| {
            b.iter(|| local_search::local_search_hitting_set(inst).len())
        });
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("exact", n), &inst, |b, inst| {
                b.iter(|| exact::exact_hitting_set(inst).len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, hitting_ablation);
criterion_main!(benches);
