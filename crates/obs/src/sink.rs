//! Structured JSONL sink: one JSON object per event, one per line.
//!
//! Schema (`DESIGN.md` "Observability" documents it in full): every
//! line carries `kind`, `run`, `t_ns` (monotonic nanoseconds since
//! the sink was created) and `thread` (a small per-process thread
//! ordinal shared with the flight recorder). Span lines add
//! `name`/`depth`/`id` plus `parent` when the span has one and `zone`
//! when it is zone-attributed (and `dur_ns` on exit); metric lines
//! add `name`/`value` and, when known, the enclosing `stage`;
//! `post_mortem` lines splice a rendered forensics frame (see
//! [`crate::forensics`]). The first line is a `run_start` header, the
//! last (on drop) a `run_end` trailer carrying `dropped_events` and
//! the flight recorder's `ring_overflow`.
//!
//! Failure policy: a write error must never reach the pipeline. The
//! event is dropped, an atomic `dropped_events` counter is bumped,
//! and the trailer (or the caller, via [`JsonlSink::dropped_events`])
//! reports how many were lost.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::forensics::PostMortem;
use crate::json;
use crate::recorder::{Recorder, SpanMeta};
use crate::ring;

/// A [`Recorder`] that renders every event as one JSON line.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    start: Instant,
    run_id: String,
    dropped: AtomicU64,
}

impl JsonlSink {
    /// Creates a sink writing to the file at `path` (truncated).
    ///
    /// # Errors
    /// Propagates the underlying file-creation error.
    pub fn create(path: &str) -> io::Result<Arc<Self>> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(BufWriter::new(file))))
    }

    /// Creates a sink writing to stderr.
    pub fn stderr() -> Arc<Self> {
        Self::from_writer(Box::new(io::stderr()))
    }

    /// Creates a sink over an arbitrary writer (used by the chaos
    /// suite to inject write failures).
    pub fn from_writer(out: Box<dyn Write + Send>) -> Arc<Self> {
        let wall_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .as_nanos();
        let run_id = format!("{:x}-{:x}", std::process::id(), wall_ns);
        let sink = JsonlSink {
            out: Mutex::new(out),
            start: Instant::now(),
            run_id,
            dropped: AtomicU64::new(0),
        };
        let mut header = String::with_capacity(96);
        header.push_str("{\"kind\":\"run_start\",\"run\":");
        json::escape_into(&mut header, &sink.run_id);
        header.push_str(&format!(
            ",\"pid\":{},\"wall_unix_ns\":{wall_ns}}}",
            std::process::id()
        ));
        sink.emit(&header);
        Arc::new(sink)
    }

    /// How many events have been lost to write errors so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The id stamped on every line of this run.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Writes one line; on failure drops it and counts the loss.
    fn emit(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let ok = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .is_ok();
        if !ok {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Common line prefix: kind, run id, monotonic time, thread.
    fn prefix(&self, kind: &str) -> String {
        let t_ns = self.start.elapsed().as_nanos();
        let thread = ring::thread_ordinal();
        let mut line = String::with_capacity(160);
        line.push_str("{\"kind\":");
        json::escape_into(&mut line, kind);
        line.push_str(",\"run\":");
        json::escape_into(&mut line, &self.run_id);
        line.push_str(&format!(",\"t_ns\":{t_ns},\"thread\":{thread}"));
        line
    }

    fn metric(
        &self,
        kind: &str,
        name: &str,
        stage: Option<&str>,
        render_value: impl FnOnce(&mut String),
    ) {
        let mut line = self.prefix(kind);
        line.push_str(",\"name\":");
        json::escape_into(&mut line, name);
        if let Some(stage) = stage {
            line.push_str(",\"stage\":");
            json::escape_into(&mut line, stage);
        }
        line.push_str(",\"value\":");
        render_value(&mut line);
        line.push('}');
        self.emit(&line);
    }
}

impl JsonlSink {
    /// Renders the shared span fields: name, depth, id, and (when
    /// present) parent link and zone attribution.
    fn span_fields(&self, kind: &str, span: &SpanMeta) -> String {
        let mut line = self.prefix(kind);
        line.push_str(",\"name\":");
        json::escape_into(&mut line, span.name);
        line.push_str(&format!(",\"depth\":{},\"id\":{}", span.depth, span.id));
        if let Some(parent) = span.parent {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        if let Some(zone) = span.zone {
            line.push_str(&format!(",\"zone\":{zone}"));
        }
        line
    }
}

impl Recorder for JsonlSink {
    fn span_enter(&self, span: &SpanMeta) {
        let mut line = self.span_fields("span_enter", span);
        line.push('}');
        self.emit(&line);
    }

    fn span_exit(&self, span: &SpanMeta, dur: Duration) {
        let mut line = self.span_fields("span_exit", span);
        line.push_str(&format!(",\"dur_ns\":{}}}", dur.as_nanos()));
        self.emit(&line);
    }

    fn counter(&self, name: &'static str, delta: u64, stage: Option<&'static str>) {
        self.metric("counter", name, stage, |line| {
            line.push_str(&delta.to_string());
        });
    }

    fn gauge(&self, name: &'static str, value: f64, stage: Option<&'static str>) {
        self.metric("gauge", name, stage, |line| {
            json::number_into(line, value);
        });
    }

    fn observe(&self, name: &'static str, value: u64, stage: Option<&'static str>) {
        self.metric("observe", name, stage, |line| {
            line.push_str(&value.to_string());
        });
    }

    fn post_mortem(&self, dump: &PostMortem) {
        let mut line = self.prefix("post_mortem");
        line.push(',');
        line.push_str(dump.fields_json());
        line.push('}');
        self.emit(&line);
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let mut trailer = self.prefix("run_end");
        trailer.push_str(&format!(
            ",\"dropped_events\":{},\"ring_overflow\":{}}}",
            self.dropped.load(Ordering::Relaxed),
            ring::overflow_total()
        ));
        self.emit(&trailer);
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared in-memory writer so the test can read back what the
    /// sink wrote after the sink is dropped.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().expect("lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Writer that always fails.
    struct Failing;
    impl Write for Failing {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("injected sink failure"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::other("injected sink failure"))
        }
    }

    #[test]
    fn every_emitted_line_is_valid_json() {
        let buf = Shared::default();
        let sink = JsonlSink::from_writer(Box::new(buf.clone()));
        let meta = SpanMeta {
            name: "stage",
            depth: 2,
            id: 41,
            parent: Some(40),
            zone: Some(5),
        };
        sink.span_enter(&meta);
        sink.counter("ops", 3, Some("stage"));
        sink.gauge("level", -2.5, None);
        sink.observe("size", 17, Some("stage"));
        sink.span_exit(&meta, Duration::from_micros(12));
        sink.post_mortem(&crate::forensics::render(&crate::Dump {
            class: "worker_panic",
            detail: "boom",
            ..crate::Dump::default()
        }));
        drop(sink);
        let text = String::from_utf8(buf.0.lock().expect("lock").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8); // run_start + 6 events + run_end
        for line in &lines {
            crate::json::validate(line).expect("line must parse");
        }
        assert!(lines[0].contains("\"kind\":\"run_start\""));
        assert!(lines[7].contains("\"kind\":\"run_end\""));
        assert!(lines[7].contains("\"dropped_events\":0"));
        assert!(lines[7].contains("\"ring_overflow\":"));
        assert!(text.contains("\"dur_ns\""));
        assert!(text.contains("\"stage\":\"stage\""));
        assert!(text.contains("\"id\":41"));
        assert!(text.contains("\"parent\":40"));
        assert!(text.contains("\"zone\":5"));
        assert!(text.contains("\"kind\":\"post_mortem\""));
        assert!(text.contains("\"class\":\"worker_panic\""));
    }

    #[test]
    fn write_failures_are_counted_not_raised() {
        let sink = JsonlSink::from_writer(Box::new(Failing));
        assert_eq!(sink.dropped_events(), 1); // run_start already lost
        sink.counter("ops", 1, None);
        sink.gauge("g", 1.0, None);
        assert_eq!(sink.dropped_events(), 3);
        drop(sink); // trailer also fails; still no panic
    }
}
