//! Hierarchical timed spans.

use std::time::Instant;

use crate::recorder::{self, enabled};

/// RAII guard for a timed region (returned by [`span`]).
///
/// Entering dispatches a `span_enter` event; dropping dispatches
/// `span_exit` with the monotonic-clock duration. When no recorder is
/// active at creation the guard is disarmed: no clock read, no stack
/// push, and the drop is free.
#[must_use = "a span only times the region while the guard is alive"]
pub struct Span {
    name: &'static str,
    depth: usize,
    start: Option<Instant>,
}

/// Opens the span `name` until the returned guard drops.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name,
            depth: 0,
            start: None,
        };
    }
    let depth = recorder::push_span(name);
    recorder::for_each(|r| r.span_enter(name, depth));
    Span {
        name,
        depth,
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        recorder::for_each(|r| r.span_exit(self.name, self.depth, dur));
        recorder::pop_span(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Collector;
    use crate::with_local;
    use std::sync::Arc;

    #[test]
    fn nested_spans_report_depth() {
        use std::sync::Mutex;
        use std::time::Duration;

        #[derive(Default)]
        struct Depths(Mutex<Vec<(&'static str, usize, bool)>>);
        impl crate::Recorder for Depths {
            fn span_enter(&self, name: &'static str, depth: usize) {
                self.0.lock().expect("lock").push((name, depth, true));
            }
            fn span_exit(&self, name: &'static str, depth: usize, _dur: Duration) {
                self.0.lock().expect("lock").push((name, depth, false));
            }
        }

        let rec = Arc::new(Depths::default());
        with_local(rec.clone(), || {
            let _a = span("a");
            let _b = span("b");
        });
        let events = rec.0.lock().expect("lock").clone();
        assert_eq!(
            events,
            vec![
                ("a", 1, true),
                ("b", 2, true),
                ("b", 2, false),
                ("a", 1, false)
            ]
        );
    }

    #[test]
    fn disarmed_span_records_nothing_after_recorder_arrives() {
        let disarmed = Span {
            name: "early",
            depth: 0,
            start: None, // what span() returns when recording is off
        };
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            drop(disarmed); // exit of a disarmed span must not dispatch
        });
        assert!(c.summary().span("early").is_none());
    }
}
