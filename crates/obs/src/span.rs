//! Hierarchical timed spans with cross-thread linkage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::recorder::{self, SpanMeta};
use crate::ring;

/// Process-wide span id allocator; 0 is reserved for "no span", so a
/// disarmed guard can carry id 0.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// RAII guard for a timed region (returned by [`span`]).
///
/// Entering dispatches a `span_enter` event; dropping dispatches
/// `span_exit` with the monotonic-clock duration. When neither a
/// recorder nor the flight-recorder ring is active at creation the
/// guard is disarmed: no clock read, no stack push, and the drop is
/// free.
#[must_use = "a span only times the region while the guard is alive"]
pub struct Span {
    meta: SpanMeta,
    start: Option<Instant>,
}

impl Span {
    /// This span's process-unique id (0 when the guard is disarmed).
    pub fn id(&self) -> u64 {
        self.meta.id
    }

    /// The id of the enclosing span at creation, if any.
    pub fn parent(&self) -> Option<u64> {
        self.meta.parent
    }
}

/// Opens the span `name` until the returned guard drops.
pub fn span(name: &'static str) -> Span {
    span_impl(name, None)
}

/// Opens the span `name` attributed to zone `zone` — what the
/// parallel engine wraps each per-zone solve in, so a trace can
/// attribute wall time to zones.
pub fn span_zone(name: &'static str, zone: u64) -> Span {
    span_impl(name, Some(zone))
}

fn span_impl(name: &'static str, zone: Option<u64>) -> Span {
    if !crate::armed() {
        return Span {
            meta: SpanMeta {
                name,
                depth: 0,
                id: 0,
                parent: None,
                zone,
            },
            start: None,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = recorder::current_parent();
    let depth = recorder::push_span(name, id);
    let meta = SpanMeta {
        name,
        depth,
        id,
        parent,
        zone,
    };
    ring::record_span_enter(&meta);
    recorder::for_each(|r| r.span_enter(&meta));
    Span {
        meta,
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        ring::record_span_exit(&self.meta, dur);
        recorder::for_each(|r| r.span_exit(&self.meta, dur));
        recorder::pop_span(self.meta.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Collector;
    use crate::with_local;
    use std::sync::Arc;

    #[test]
    fn nested_spans_report_depth_and_parent_links() {
        use std::sync::Mutex;
        use std::time::Duration;

        /// (name, depth, parent id, is_enter) per recorded event.
        type Event = (&'static str, usize, Option<u64>, bool);
        #[derive(Default)]
        struct Log(Mutex<Vec<Event>>);
        impl crate::Recorder for Log {
            fn span_enter(&self, span: &SpanMeta) {
                self.0
                    .lock()
                    .expect("lock")
                    .push((span.name, span.depth, span.parent, true));
            }
            fn span_exit(&self, span: &SpanMeta, _dur: Duration) {
                self.0
                    .lock()
                    .expect("lock")
                    .push((span.name, span.depth, span.parent, false));
            }
        }

        let rec = Arc::new(Log::default());
        let (a_id, b_parent) = with_local(rec.clone(), || {
            let a = span("a");
            let b = span("b");
            (a.id(), b.parent())
        });
        assert_eq!(b_parent, Some(a_id));
        let events = rec.0.lock().expect("lock").clone();
        assert_eq!(
            events,
            vec![
                ("a", 1, None, true),
                ("b", 2, Some(a_id), true),
                ("b", 2, Some(a_id), false),
                ("a", 1, None, false)
            ]
        );
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let c = Arc::new(Collector::default());
        with_local(c, || {
            let a = span("a");
            let b = span("b");
            assert_ne!(a.id(), 0);
            assert_ne!(b.id(), 0);
            assert_ne!(a.id(), b.id());
        });
    }

    #[test]
    fn disarmed_span_records_nothing_after_recorder_arrives() {
        let disarmed = Span {
            meta: SpanMeta {
                name: "early",
                depth: 0,
                id: 0,
                parent: None,
                zone: None,
            },
            start: None, // what span() returns when recording is off
        };
        assert_eq!(disarmed.id(), 0);
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            drop(disarmed); // exit of a disarmed span must not dispatch
        });
        assert!(c.summary().span("early").is_none());
    }
}
