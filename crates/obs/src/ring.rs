//! Flight recorder: bounded, allocation-free per-thread event rings.
//!
//! When armed (capacity > 0), every span/counter/gauge/observe event
//! is additionally copied into a fixed-capacity ring owned by the
//! recording thread — even when no [`crate::Recorder`] is installed —
//! so a post-mortem frame can always show what the failing run was
//! doing. Each event carries a process-global epoch (one relaxed
//! `fetch_add`), so rings from the coordinator, zone workers and
//! portfolio loser threads merge into one totally ordered timeline.
//!
//! Cost model: the disarmed check is one relaxed atomic load (stacked
//! on the recorder-disabled check, the fully-off instrumentation path
//! stays at two relaxed loads plus a thread-local flag read). The
//! armed path is one epoch `fetch_add`, one uncontended per-thread
//! mutex lock and one slot overwrite — no allocation after the ring's
//! one-time creation.
//!
//! Arm it with `SAG_OBS_RING=<capacity>` (picked up by
//! [`crate::init_from_env`]) or programmatically with [`configure`];
//! `0` disarms. Overwritten events are counted per ring and surfaced
//! in aggregate by [`overflow_total`] (the `run_end` JSONL trailer
//! reports it as `ring_overflow`).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::recorder::SpanMeta;

/// Ring capacity in events; 0 = flight recorder off.
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
/// Process-global event sequence number (total order across threads).
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Overflow carried by rings that were pruned from the registry.
static PRUNED_OVERFLOW: AtomicU64 = AtomicU64::new(0);
/// Every live ring, in registration order.
static REGISTRY: Mutex<Vec<Arc<Mutex<RingBuf>>>> = Mutex::new(Vec::new());
/// Monotonic time base shared by all rings.
static T0: OnceLock<Instant> = OnceLock::new();

/// Registry size above which orphaned rings (their thread exited) are
/// pruned. Generously above any per-run thread count, so the rings of
/// freshly dead workers survive until the dump that needs them.
const PRUNE_THRESHOLD: usize = 64;

static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(0);
thread_local! {
    /// Small stable per-thread id for event attribution
    /// (`std::thread::ThreadId` has no stable numeric accessor).
    /// Shared with the JSONL sink so ring and sink timelines agree.
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
    /// This thread's ring, created lazily on first armed record.
    static RING: RefCell<Option<Arc<Mutex<RingBuf>>>> = const { RefCell::new(None) };
}

/// This thread's stable per-process ordinal.
pub(crate) fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

/// Nanoseconds since the process-wide ring time base.
pub(crate) fn t_ns() -> u64 {
    T0.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// What kind of event a ring slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingKind {
    /// A span opened (`a` = span id, `b` = parent id or 0).
    SpanEnter,
    /// A span closed (`a` = span id, `b` = duration in ns).
    SpanExit,
    /// A counter increment (`a` = delta).
    Counter,
    /// A gauge update (`a` = the `f64` value's bit pattern).
    Gauge,
    /// A histogram observation (`a` = value).
    Observe,
}

impl RingKind {
    /// Stable lower-case name (what dump frames render).
    pub fn as_str(self) -> &'static str {
        match self {
            RingKind::SpanEnter => "span_enter",
            RingKind::SpanExit => "span_exit",
            RingKind::Counter => "counter",
            RingKind::Gauge => "gauge",
            RingKind::Observe => "observe",
        }
    }
}

/// One captured event. `a`/`b` are per-kind payloads (see
/// [`RingKind`]); `depth` is only meaningful for span events.
#[derive(Debug, Clone, Copy)]
pub struct RingEvent {
    /// Process-global sequence number (merge key across threads).
    pub epoch: u64,
    /// Nanoseconds since the ring time base.
    pub t_ns: u64,
    /// Recording thread's per-process ordinal.
    pub thread: u64,
    /// Event kind (fixes the meaning of `a`/`b`).
    pub kind: RingKind,
    /// Event name.
    pub name: &'static str,
    /// Innermost open span at record time, if any.
    pub stage: Option<&'static str>,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// 1-based span depth (0 for metric events).
    pub depth: u32,
}

/// A merged view of every thread's ring (see [`snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct RingSnapshot {
    /// All retained events, ascending by epoch.
    pub events: Vec<RingEvent>,
    /// How many events were overwritten (lost) across all rings.
    pub overflow: u64,
}

struct RingBuf {
    slots: Vec<RingEvent>,
    /// Index of the oldest slot once the ring has wrapped.
    head: usize,
    cap: usize,
    overflow: u64,
}

impl RingBuf {
    fn new(cap: usize) -> Self {
        RingBuf {
            slots: Vec::with_capacity(cap),
            head: 0,
            cap,
            overflow: 0,
        }
    }

    fn push(&mut self, ev: RingEvent) {
        if self.slots.len() < self.cap {
            self.slots.push(ev);
        } else {
            self.slots[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overflow += 1;
        }
    }

    fn in_order(&self) -> impl Iterator<Item = &RingEvent> {
        self.slots[self.head..]
            .iter()
            .chain(&self.slots[..self.head])
    }
}

/// Is the flight recorder armed?
#[inline]
pub fn active() -> bool {
    CAPACITY.load(Ordering::Relaxed) != 0
}

/// Sets the per-thread ring capacity (0 disarms). Rings that already
/// exist keep their creation-time capacity; new threads pick up the
/// new value.
pub fn configure(capacity: usize) {
    CAPACITY.store(capacity, Ordering::SeqCst);
}

/// Reads `SAG_OBS_RING` and arms the recorder accordingly; unset,
/// empty or unparseable values leave the current configuration alone
/// (observability must never take the pipeline down).
pub fn init_env() {
    if let Ok(v) = std::env::var("SAG_OBS_RING") {
        if let Ok(cap) = v.trim().parse::<usize>() {
            configure(cap);
        }
    }
}

/// Total events lost to ring overwrites so far, across all threads.
pub fn overflow_total() -> u64 {
    let rings = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let live: u64 = rings
        .iter()
        .map(|r| r.lock().unwrap_or_else(PoisonError::into_inner).overflow)
        .sum();
    live + PRUNED_OVERFLOW.load(Ordering::Relaxed)
}

/// Merges every thread's retained events into one epoch-ordered
/// timeline.
pub fn snapshot() -> RingSnapshot {
    let rings = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let mut events = Vec::new();
    let mut overflow = PRUNED_OVERFLOW.load(Ordering::Relaxed);
    for ring in rings.iter() {
        let ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
        events.extend(ring.in_order().copied());
        overflow += ring.overflow;
    }
    events.sort_unstable_by_key(|e| e.epoch);
    RingSnapshot { events, overflow }
}

/// Records one event into this thread's ring (no-op when disarmed).
fn record(
    kind: RingKind,
    name: &'static str,
    stage: Option<&'static str>,
    a: u64,
    b: u64,
    depth: u32,
) {
    let cap = CAPACITY.load(Ordering::Relaxed);
    if cap == 0 {
        return;
    }
    let ev = RingEvent {
        epoch: EPOCH.fetch_add(1, Ordering::Relaxed),
        t_ns: t_ns(),
        thread: thread_ordinal(),
        kind,
        name,
        stage,
        a,
        b,
        depth,
    };
    RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(RingBuf::new(cap)));
            register(ring.clone());
            ring
        });
        ring.lock().unwrap_or_else(PoisonError::into_inner).push(ev);
    });
}

fn register(ring: Arc<Mutex<RingBuf>>) {
    let mut rings = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    if rings.len() >= PRUNE_THRESHOLD {
        // Drop rings whose thread has exited (only the registry still
        // holds them), oldest first, keeping their loss accounted.
        rings.retain(|r| {
            if Arc::strong_count(r) > 1 {
                return true;
            }
            let overflow = r.lock().unwrap_or_else(PoisonError::into_inner).overflow;
            PRUNED_OVERFLOW.fetch_add(overflow, Ordering::Relaxed);
            false
        });
    }
    rings.push(ring);
}

pub(crate) fn record_span_enter(meta: &SpanMeta) {
    record(
        RingKind::SpanEnter,
        meta.name,
        None,
        meta.id,
        meta.parent.unwrap_or(0),
        meta.depth as u32,
    );
}

pub(crate) fn record_span_exit(meta: &SpanMeta, dur: Duration) {
    record(
        RingKind::SpanExit,
        meta.name,
        None,
        meta.id,
        dur.as_nanos() as u64,
        meta.depth as u32,
    );
}

pub(crate) fn record_metric(
    kind: RingKind,
    name: &'static str,
    stage: Option<&'static str>,
    a: u64,
) {
    record(kind, name, stage, a, 0, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `CAPACITY` is process-global, so the tests that flip it must
    /// not interleave under the parallel test runner.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// The ring registry is process-global, so tests (which cargo runs
    /// on parallel threads) assert on their own thread's events only.
    fn my_events(snap: &RingSnapshot) -> Vec<RingEvent> {
        let me = thread_ordinal();
        snap.events
            .iter()
            .filter(|e| e.thread == me)
            .copied()
            .collect()
    }

    #[test]
    fn disarmed_ring_records_nothing() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        record_metric(RingKind::Counter, "ring.disarmed_probe", None, 1);
        let snap = snapshot();
        assert!(my_events(&snap)
            .iter()
            .all(|e| e.name != "ring.disarmed_probe"));
    }

    #[test]
    fn armed_ring_captures_bounded_history_and_counts_overflow() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        configure(4);
        for i in 0..10u64 {
            record_metric(RingKind::Observe, "ring.bounded_probe", Some("stage"), i);
        }
        let snap = snapshot();
        configure(0);
        let mine: Vec<_> = my_events(&snap)
            .into_iter()
            .filter(|e| e.name == "ring.bounded_probe")
            .collect();
        // This thread's ring holds 4 slots; only the newest survive
        // (the ring may also hold this thread's events from other
        // tests, so "last 4 of 10" is the upper bound that matters).
        assert!(
            mine.len() <= 4,
            "ring must stay bounded, got {}",
            mine.len()
        );
        let values: Vec<u64> = mine.iter().map(|e| e.a).collect();
        assert!(values.contains(&9), "newest event must survive: {values:?}");
        assert!(!values.contains(&0), "oldest event must be overwritten");
        assert!(snap.overflow >= 6, "10 events into 4 slots lose >= 6");
        // Epochs strictly increase within a thread's timeline.
        assert!(mine.windows(2).all(|w| w[0].epoch < w[1].epoch));
    }

    #[test]
    fn rings_merge_across_threads_by_epoch() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        configure(16);
        record_metric(RingKind::Counter, "ring.merge_probe", None, 1);
        std::thread::scope(|s| {
            s.spawn(|| {
                record_metric(RingKind::Counter, "ring.merge_probe", None, 2);
            });
        });
        record_metric(RingKind::Counter, "ring.merge_probe", None, 3);
        let snap = snapshot();
        configure(0);
        let probe: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "ring.merge_probe")
            .collect();
        assert!(probe.len() >= 3);
        assert!(snap.events.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        // The worker's event came from a different thread ordinal.
        let threads: std::collections::HashSet<u64> = probe.iter().map(|e| e.thread).collect();
        assert!(threads.len() >= 2);
    }
}
