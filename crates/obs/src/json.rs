//! Minimal JSON helpers: string escaping for the JSONL sink and a
//! syntax validator for smoke-checking emitted lines.
//!
//! The workspace is hermetic, so there is no serde; the sink composes
//! its fixed event schema by hand and this module supplies the two
//! pieces that need care — escaping and validation.

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number (`null` for non-finite
/// values, which JSON cannot represent).
pub fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips,
        // and always includes a decimal point or exponent.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Extracts the string value of the first `"key":"..."` pair in
/// `line`.
///
/// A schema-aware scanner for the sink's flat event lines, not a
/// general JSON query: it assumes the key appears at most once and
/// that its value, if present, is a plain string. Returns the raw
/// (still-escaped) contents between the quotes.
pub fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extracts the unsigned-integer value of the first `"key":<digits>`
/// pair in `line` (same schema caveats as [`field_str`]).
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Checks that `s` is exactly one well-formed JSON value.
///
/// A recursive-descent syntax checker (no value tree is built). Used
/// by the CI smoke test to validate every line the sink emitted.
///
/// # Errors
/// A static description of the first syntax error.
pub fn validate(s: &str) -> Result<(), &'static str> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos == b.len() {
        Ok(())
    } else {
        Err("trailing characters after value")
    }
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn value(b: &[u8], i: usize) -> Result<usize, &'static str> {
    match b.get(i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, i),
        Some(_) => Err("unexpected character"),
        None => Err("unexpected end of input"),
    }
}

fn literal(b: &[u8], i: usize, lit: &[u8]) -> Result<usize, &'static str> {
    if b[i..].starts_with(lit) {
        Ok(i + lit.len())
    } else {
        Err("malformed literal")
    }
}

fn object(b: &[u8], mut i: usize) -> Result<usize, &'static str> {
    i = skip_ws(b, i + 1); // past '{'
    if b.get(i) == Some(&b'}') {
        return Ok(i + 1);
    }
    loop {
        i = string(b, i)?;
        i = skip_ws(b, i);
        if b.get(i) != Some(&b':') {
            return Err("expected ':' in object");
        }
        i = skip_ws(b, i + 1);
        i = value(b, i)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(b'}') => return Ok(i + 1),
            _ => return Err("expected ',' or '}' in object"),
        }
    }
}

fn array(b: &[u8], mut i: usize) -> Result<usize, &'static str> {
    i = skip_ws(b, i + 1); // past '['
    if b.get(i) == Some(&b']') {
        return Ok(i + 1);
    }
    loop {
        i = value(b, i)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(b']') => return Ok(i + 1),
            _ => return Err("expected ',' or ']' in array"),
        }
    }
}

fn string(b: &[u8], i: usize) -> Result<usize, &'static str> {
    if b.get(i) != Some(&b'"') {
        return Err("expected string");
    }
    let mut i = i + 1;
    while let Some(&c) = b.get(i) {
        match c {
            b'"' => return Ok(i + 1),
            b'\\' => match b.get(i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                Some(b'u') => {
                    let hex = b.get(i + 2..i + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err("bad \\u escape");
                    }
                    i += 6;
                }
                _ => return Err("bad escape"),
            },
            0x00..=0x1f => return Err("raw control character in string"),
            _ => i += 1,
        }
    }
    Err("unterminated string")
}

fn number(b: &[u8], mut i: usize) -> Result<usize, &'static str> {
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let digits = |b: &[u8], mut i: usize| {
        let s = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        (i, i > s)
    };
    let (ni, any) = digits(b, i);
    if !any {
        return Err("malformed number");
    }
    i = ni;
    if b.get(i) == Some(&b'.') {
        let (ni, any) = digits(b, i + 1);
        if !any {
            return Err("malformed fraction");
        }
        i = ni;
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        let (ni, any) = digits(b, i);
        if !any {
            return Err("malformed exponent");
        }
        i = ni;
    }
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_render_and_nonfinite_is_null() {
        let mut out = String::new();
        number_into(&mut out, 1.5);
        out.push(' ');
        number_into(&mut out, f64::NAN);
        assert_eq!(out, "1.5 null");
    }

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e3",
            "\"x\\u00e9\"",
            r#"{"a":[1,2,{"b":null}],"c":"d"}"#,
            r#"  { "kind" : "span_exit" , "dur_ns" : 12 }  "#,
        ] {
            assert!(validate(ok).is_ok(), "rejected valid: {ok}");
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "{]",
            "tru",
            "1.",
            "\"unterminated",
            "{\"a\":}",
            "[1,]",
            "{} {}",
            "\"raw\tcontrol\"",
        ] {
            assert!(validate(bad).is_err(), "accepted invalid: {bad}");
        }
    }

    #[test]
    fn field_helpers_read_flat_event_lines() {
        let line = r#"{"kind":"span_exit","run":"a-1","t_ns":12,"thread":0,"name":"samc","depth":2,"id":7,"parent":3,"dur_ns":4500}"#;
        assert_eq!(field_str(line, "kind"), Some("span_exit"));
        assert_eq!(field_str(line, "name"), Some("samc"));
        assert_eq!(field_str(line, "missing"), None);
        assert_eq!(field_u64(line, "id"), Some(7));
        assert_eq!(field_u64(line, "parent"), Some(3));
        assert_eq!(field_u64(line, "dur_ns"), Some(4500));
        assert_eq!(field_u64(line, "missing"), None);
        assert_eq!(field_u64(line, "kind"), None); // string, not number
    }

    #[test]
    fn escaped_output_validates() {
        let mut out = String::new();
        escape_into(&mut out, "weird \" \\ \n \t \u{7} payload");
        assert!(validate(&out).is_ok());
    }
}
