//! The [`Recorder`] trait and the two dispatch scopes (global +
//! thread-local) behind every instrumentation call.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

use crate::forensics::PostMortem;
use crate::metrics::StageMetrics;

/// Identity and linkage of one span, passed to the span hooks.
///
/// `id` is unique per process; `parent` is the id of the span that was
/// innermost when this one opened — on the same thread via the span
/// stack, or across threads via [`with_span_context`] — so a JSONL
/// stream can be reassembled into one tree at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanMeta {
    /// Span name.
    pub name: &'static str,
    /// 1-based nesting depth on the opening thread.
    pub depth: usize,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Zone index this span is attributed to, if any (see
    /// [`crate::span_zone`]).
    pub zone: Option<u64>,
}

/// Sink for observability events.
///
/// All methods default to no-ops, so a recorder only implements what
/// it cares about. Implementations must be cheap, must not panic and
/// must not call back into the `sag-obs` recording entry points.
pub trait Recorder: Send + Sync {
    /// The span `span` opened.
    fn span_enter(&self, span: &SpanMeta) {
        let _ = span;
    }

    /// The span `span` closed after `dur`.
    fn span_exit(&self, span: &SpanMeta, dur: Duration) {
        let _ = (span, dur);
    }

    /// `delta` added to the counter `name`; `stage` is the innermost
    /// open span on the recording thread, if any.
    fn counter(&self, name: &'static str, delta: u64, stage: Option<&'static str>) {
        let _ = (name, delta, stage);
    }

    /// Gauge `name` set to `value`.
    fn gauge(&self, name: &'static str, value: f64, stage: Option<&'static str>) {
        let _ = (name, value, stage);
    }

    /// One histogram observation of `value` under `name`.
    fn observe(&self, name: &'static str, value: u64, stage: Option<&'static str>) {
        let _ = (name, value, stage);
    }

    /// A structured post-mortem frame (see [`crate::post_mortem`]).
    fn post_mortem(&self, dump: &PostMortem) {
        let _ = dump;
    }

    /// True for aggregating recorders whose zone-worker events must be
    /// buffered per zone and folded in deterministic zone-index order
    /// (via [`Recorder::absorb`]) instead of being recorded live from
    /// racing worker threads. Streaming recorders (the JSONL sink)
    /// stay live and keep their per-thread attribution.
    fn buffered(&self) -> bool {
        false
    }

    /// Folds an independently aggregated summary into this recorder —
    /// the merge half of the [`Recorder::buffered`] contract.
    fn absorb(&self, metrics: &StageMetrics) {
        let _ = metrics;
    }
}

/// Count of globally installed recorders — the disabled-path check is
/// one relaxed load of this.
static GLOBAL_ACTIVE: AtomicUsize = AtomicUsize::new(0);
static NEXT_GLOBAL_ID: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::type_complexity)]
static GLOBALS: RwLock<Vec<(u64, Arc<dyn Recorder>)>> = RwLock::new(Vec::new());

thread_local! {
    /// Recorders active only on this thread (see [`with_local`]).
    static LOCALS: RefCell<Vec<Arc<dyn Recorder>>> = const { RefCell::new(Vec::new()) };
    /// Cheap mirror of `LOCALS.len()` for the disabled-path check.
    static LOCAL_ACTIVE: Cell<usize> = const { Cell::new(0) };
    /// `(name, id)` of the open spans on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
    /// Cross-thread seed consulted when `SPAN_STACK` is empty:
    /// `(parent span id or 0, enclosing stage)` — see
    /// [`with_span_context`].
    static SEED: Cell<(u64, Option<&'static str>)> = const { Cell::new((0, None)) };
}

/// Is any recorder (global or local to this thread) active?
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ACTIVE.load(Ordering::Relaxed) != 0 || LOCAL_ACTIVE.with(|c| c.get() != 0)
}

/// Installs a process-wide recorder; it stays active until the
/// returned guard is dropped. Every thread's events reach it.
pub fn install(rec: Arc<dyn Recorder>) -> RecorderGuard {
    let id = NEXT_GLOBAL_ID.fetch_add(1, Ordering::Relaxed);
    GLOBALS
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .push((id, rec));
    GLOBAL_ACTIVE.fetch_add(1, Ordering::SeqCst);
    RecorderGuard { id }
}

/// Uninstalls its recorder on drop (returned by [`install`]).
pub struct RecorderGuard {
    id: u64,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        GLOBALS
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(id, _)| *id != self.id);
        GLOBAL_ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs `f` with `rec` active as a thread-local recorder.
///
/// Only events emitted by the current thread inside `f` reach `rec`,
/// which is what keeps parallel sweep workers from cross-mixing
/// events. The recorder is popped even if `f` panics.
pub fn with_local<T>(rec: Arc<dyn Recorder>, f: impl FnOnce() -> T) -> T {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            LOCALS.with(|l| {
                l.borrow_mut().pop();
            });
            LOCAL_ACTIVE.with(|c| c.set(c.get().saturating_sub(1)));
        }
    }
    LOCALS.with(|l| l.borrow_mut().push(rec));
    LOCAL_ACTIVE.with(|c| c.set(c.get() + 1));
    let _pop = PopGuard;
    f()
}

/// Snapshot of this thread's local recorder stack, outermost first.
///
/// Spawned workers do not inherit thread-local recorders; a
/// fan-out stage captures the snapshot on the coordinating thread and
/// re-installs it per worker with [`with_local_stack`], so events
/// emitted inside the workers still reach the run's collectors (each
/// worker keeps its own span stack, so stage attribution stays
/// per-thread correct).
pub fn local_stack() -> Vec<Arc<dyn Recorder>> {
    LOCALS.with(|l| l.borrow().clone())
}

/// Runs `f` with every recorder in `stack` active as a thread-local
/// recorder (outermost first, matching [`local_stack`]). The recorders
/// are popped even if `f` panics.
pub fn with_local_stack<T>(stack: &[Arc<dyn Recorder>], f: impl FnOnce() -> T) -> T {
    struct PopGuard(usize);
    impl Drop for PopGuard {
        fn drop(&mut self) {
            LOCALS.with(|l| {
                let mut locals = l.borrow_mut();
                let keep = locals.len().saturating_sub(self.0);
                locals.truncate(keep);
            });
            LOCAL_ACTIVE.with(|c| c.set(c.get().saturating_sub(self.0)));
        }
    }
    LOCALS.with(|l| l.borrow_mut().extend(stack.iter().cloned()));
    LOCAL_ACTIVE.with(|c| c.set(c.get() + stack.len()));
    let _pop = PopGuard(stack.len());
    f()
}

/// Span linkage carried across thread boundaries.
///
/// A fan-out stage captures it on the coordinating thread with
/// [`span_context`] and re-seeds it per worker with
/// [`with_span_context`], so spans opened at a worker's stack base
/// link to the coordinator's enclosing span (`parent`) and metrics
/// recorded before any worker span opens still attribute to the
/// coordinator's enclosing stage (`stage`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanContext {
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Name of the enclosing stage, if any.
    pub stage: Option<&'static str>,
}

/// The current thread's innermost span linkage (open span if any,
/// else the seeded cross-thread context).
pub fn span_context() -> SpanContext {
    let top = SPAN_STACK.with(|s| s.borrow().last().copied());
    match top {
        Some((name, id)) => SpanContext {
            parent: Some(id),
            stage: Some(name),
        },
        None => SEED.with(|s| {
            let (parent, stage) = s.get();
            SpanContext {
                parent: (parent != 0).then_some(parent),
                stage,
            }
        }),
    }
}

/// Runs `f` with `ctx` seeded as this thread's base span context; the
/// previous seed is restored even if `f` panics.
pub fn with_span_context<T>(ctx: SpanContext, f: impl FnOnce() -> T) -> T {
    struct Restore((u64, Option<&'static str>));
    impl Drop for Restore {
        fn drop(&mut self) {
            SEED.with(|s| s.set(self.0));
        }
    }
    let prev = SEED.with(|s| s.get());
    SEED.with(|s| s.set((ctx.parent.unwrap_or(0), ctx.stage)));
    let _restore = Restore(prev);
    f()
}

/// Dispatches `f` to every active recorder: thread-locals first, then
/// globals. Local recorders are cloned out one at a time so a
/// recorder can never observe the stack borrowed.
pub(crate) fn for_each(f: impl Fn(&dyn Recorder)) {
    if LOCAL_ACTIVE.with(|c| c.get() != 0) {
        let n = LOCALS.with(|l| l.borrow().len());
        for i in 0..n {
            let rec = LOCALS.with(|l| l.borrow().get(i).cloned());
            if let Some(rec) = rec {
                f(rec.as_ref());
            }
        }
    }
    if GLOBAL_ACTIVE.load(Ordering::Relaxed) != 0 {
        let globals = GLOBALS.read().unwrap_or_else(PoisonError::into_inner);
        for (_, rec) in globals.iter() {
            f(rec.as_ref());
        }
    }
}

/// The innermost open span name on this thread (falling back to the
/// seeded cross-thread stage), if any.
pub(crate) fn current_stage() -> Option<&'static str> {
    SPAN_STACK
        .with(|s| s.borrow().last().map(|&(name, _)| name))
        .or_else(|| SEED.with(|s| s.get().1))
}

/// The id a span opened now should link to as its parent.
pub(crate) fn current_parent() -> Option<u64> {
    SPAN_STACK
        .with(|s| s.borrow().last().map(|&(_, id)| id))
        .or_else(|| {
            SEED.with(|s| {
                let (parent, _) = s.get();
                (parent != 0).then_some(parent)
            })
        })
}

/// Names of the open spans on this thread, outermost first (the
/// "active span stack" a post-mortem frame captures).
pub(crate) fn stack_snapshot() -> Vec<(&'static str, u64)> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// Pushes a span; returns its 1-based depth.
pub(crate) fn push_span(name: &'static str, id: u64) -> usize {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push((name, id));
        stack.len()
    })
}

/// Pops the innermost span if it matches `name` (tolerates misnested
/// guard drops rather than corrupting the stack).
pub(crate) fn pop_span(name: &'static str) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.last().map(|&(n, _)| n) == Some(name) {
            stack.pop();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Collector;

    #[test]
    fn install_and_drop_uninstall_the_recorder() {
        let c = Arc::new(Collector::default());
        let guard = install(c.clone());
        assert!(enabled());
        crate::counter("global.hits", 1);
        drop(guard);
        crate::counter("global.hits", 1); // after uninstall: not delivered to c
        assert_eq!(c.summary().counter("global.hits"), 1);
    }

    #[test]
    fn global_recorder_sees_other_threads() {
        let c = Arc::new(Collector::default());
        let guard = install(c.clone());
        std::thread::spawn(|| crate::counter("cross.thread", 2))
            .join()
            .expect("worker");
        drop(guard);
        assert_eq!(c.summary().counter("cross.thread"), 2);
    }

    #[test]
    fn local_stack_replays_into_spawned_workers() {
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            let stack = local_stack();
            assert_eq!(stack.len(), 1);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    with_local_stack(&stack, || crate::counter("worker.thread", 3));
                    // Outside the scope the worker's events vanish again.
                    crate::counter("worker.after", 1);
                });
            });
        });
        let m = c.summary();
        assert_eq!(m.counter("worker.thread"), 3);
        assert_eq!(m.counter("worker.after"), 0);
    }

    #[test]
    fn local_recorder_is_invisible_to_other_threads() {
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            std::thread::spawn(|| crate::counter("other.thread", 1))
                .join()
                .expect("worker");
            crate::counter("this.thread", 1);
        });
        let m = c.summary();
        assert_eq!(m.counter("other.thread"), 0);
        assert_eq!(m.counter("this.thread"), 1);
    }

    #[test]
    fn span_context_links_workers_to_the_coordinator_span() {
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            let outer = crate::span("coordinator_stage");
            let ctx = span_context();
            assert_eq!(ctx.parent, Some(outer.id()));
            assert_eq!(ctx.stage, Some("coordinator_stage"));
            let stack = local_stack();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    with_span_context(ctx, || {
                        with_local_stack(&stack, || {
                            // No span open on this worker yet: the seeded
                            // stage attributes the counter.
                            crate::counter("worker.pre_span", 1);
                            let child = crate::span("worker_stage");
                            assert_eq!(child.parent(), Some(outer.id()));
                        });
                    });
                    // Seed restored after the scope: no linkage leaks.
                    assert_eq!(span_context(), SpanContext::default());
                });
            });
        });
        let m = c.summary();
        assert_eq!(
            m.counters,
            vec![("worker.pre_span", Some("coordinator_stage"), 1)]
        );
    }

    #[test]
    fn nested_span_context_prefers_the_open_span() {
        with_span_context(
            SpanContext {
                parent: Some(7),
                stage: Some("seeded"),
            },
            || {
                assert_eq!(current_stage(), Some("seeded"));
                assert_eq!(current_parent(), Some(7));
                let c = Arc::new(Collector::default());
                with_local(c, || {
                    let s = crate::span("inner");
                    assert_eq!(s.parent(), Some(7)); // seeded parent adopted
                    assert_eq!(current_stage(), Some("inner"));
                    assert_eq!(current_parent(), Some(s.id()));
                });
            },
        );
    }
}
