//! The [`Recorder`] trait and the two dispatch scopes (global +
//! thread-local) behind every instrumentation call.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

/// Sink for observability events.
///
/// All methods default to no-ops, so a recorder only implements what
/// it cares about. Implementations must be cheap, must not panic and
/// must not call back into the `sag-obs` recording entry points.
pub trait Recorder: Send + Sync {
    /// A span named `name` opened at 1-based nesting `depth`.
    fn span_enter(&self, name: &'static str, depth: usize) {
        let _ = (name, depth);
    }

    /// The span named `name` at `depth` closed after `dur`.
    fn span_exit(&self, name: &'static str, depth: usize, dur: Duration) {
        let _ = (name, depth, dur);
    }

    /// `delta` added to the counter `name`; `stage` is the innermost
    /// open span on the recording thread, if any.
    fn counter(&self, name: &'static str, delta: u64, stage: Option<&'static str>) {
        let _ = (name, delta, stage);
    }

    /// Gauge `name` set to `value`.
    fn gauge(&self, name: &'static str, value: f64, stage: Option<&'static str>) {
        let _ = (name, value, stage);
    }

    /// One histogram observation of `value` under `name`.
    fn observe(&self, name: &'static str, value: u64, stage: Option<&'static str>) {
        let _ = (name, value, stage);
    }
}

/// Count of globally installed recorders — the disabled-path check is
/// one relaxed load of this.
static GLOBAL_ACTIVE: AtomicUsize = AtomicUsize::new(0);
static NEXT_GLOBAL_ID: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::type_complexity)]
static GLOBALS: RwLock<Vec<(u64, Arc<dyn Recorder>)>> = RwLock::new(Vec::new());

thread_local! {
    /// Recorders active only on this thread (see [`with_local`]).
    static LOCALS: RefCell<Vec<Arc<dyn Recorder>>> = const { RefCell::new(Vec::new()) };
    /// Cheap mirror of `LOCALS.len()` for the disabled-path check.
    static LOCAL_ACTIVE: Cell<usize> = const { Cell::new(0) };
    /// Names of the open spans on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Is any recorder (global or local to this thread) active?
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ACTIVE.load(Ordering::Relaxed) != 0 || LOCAL_ACTIVE.with(|c| c.get() != 0)
}

/// Installs a process-wide recorder; it stays active until the
/// returned guard is dropped. Every thread's events reach it.
pub fn install(rec: Arc<dyn Recorder>) -> RecorderGuard {
    let id = NEXT_GLOBAL_ID.fetch_add(1, Ordering::Relaxed);
    GLOBALS
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .push((id, rec));
    GLOBAL_ACTIVE.fetch_add(1, Ordering::SeqCst);
    RecorderGuard { id }
}

/// Uninstalls its recorder on drop (returned by [`install`]).
pub struct RecorderGuard {
    id: u64,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        GLOBALS
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(id, _)| *id != self.id);
        GLOBAL_ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs `f` with `rec` active as a thread-local recorder.
///
/// Only events emitted by the current thread inside `f` reach `rec`,
/// which is what keeps parallel sweep workers from cross-mixing
/// events. The recorder is popped even if `f` panics.
pub fn with_local<T>(rec: Arc<dyn Recorder>, f: impl FnOnce() -> T) -> T {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            LOCALS.with(|l| {
                l.borrow_mut().pop();
            });
            LOCAL_ACTIVE.with(|c| c.set(c.get().saturating_sub(1)));
        }
    }
    LOCALS.with(|l| l.borrow_mut().push(rec));
    LOCAL_ACTIVE.with(|c| c.set(c.get() + 1));
    let _pop = PopGuard;
    f()
}

/// Snapshot of this thread's local recorder stack, outermost first.
///
/// Spawned workers do not inherit thread-local recorders; a
/// fan-out stage captures the snapshot on the coordinating thread and
/// re-installs it per worker with [`with_local_stack`], so events
/// emitted inside the workers still reach the run's collectors (each
/// worker keeps its own span stack, so stage attribution stays
/// per-thread correct).
pub fn local_stack() -> Vec<Arc<dyn Recorder>> {
    LOCALS.with(|l| l.borrow().clone())
}

/// Runs `f` with every recorder in `stack` active as a thread-local
/// recorder (outermost first, matching [`local_stack`]). The recorders
/// are popped even if `f` panics.
pub fn with_local_stack<T>(stack: &[Arc<dyn Recorder>], f: impl FnOnce() -> T) -> T {
    struct PopGuard(usize);
    impl Drop for PopGuard {
        fn drop(&mut self) {
            LOCALS.with(|l| {
                let mut locals = l.borrow_mut();
                let keep = locals.len().saturating_sub(self.0);
                locals.truncate(keep);
            });
            LOCAL_ACTIVE.with(|c| c.set(c.get().saturating_sub(self.0)));
        }
    }
    LOCALS.with(|l| l.borrow_mut().extend(stack.iter().cloned()));
    LOCAL_ACTIVE.with(|c| c.set(c.get() + stack.len()));
    let _pop = PopGuard(stack.len());
    f()
}

/// Dispatches `f` to every active recorder: thread-locals first, then
/// globals. Local recorders are cloned out one at a time so a
/// recorder can never observe the stack borrowed.
pub(crate) fn for_each(f: impl Fn(&dyn Recorder)) {
    if LOCAL_ACTIVE.with(|c| c.get() != 0) {
        let n = LOCALS.with(|l| l.borrow().len());
        for i in 0..n {
            let rec = LOCALS.with(|l| l.borrow().get(i).cloned());
            if let Some(rec) = rec {
                f(rec.as_ref());
            }
        }
    }
    if GLOBAL_ACTIVE.load(Ordering::Relaxed) != 0 {
        let globals = GLOBALS.read().unwrap_or_else(PoisonError::into_inner);
        for (_, rec) in globals.iter() {
            f(rec.as_ref());
        }
    }
}

/// The innermost open span name on this thread, if any.
pub(crate) fn current_stage() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Pushes a span name; returns its 1-based depth.
pub(crate) fn push_span(name: &'static str) -> usize {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(name);
        stack.len()
    })
}

/// Pops the innermost span if it matches `name` (tolerates misnested
/// guard drops rather than corrupting the stack).
pub(crate) fn pop_span(name: &'static str) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.last() == Some(&name) {
            stack.pop();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Collector;

    #[test]
    fn install_and_drop_uninstall_the_recorder() {
        let c = Arc::new(Collector::default());
        let guard = install(c.clone());
        assert!(enabled());
        crate::counter("global.hits", 1);
        drop(guard);
        crate::counter("global.hits", 1); // after uninstall: not delivered to c
        assert_eq!(c.summary().counter("global.hits"), 1);
    }

    #[test]
    fn global_recorder_sees_other_threads() {
        let c = Arc::new(Collector::default());
        let guard = install(c.clone());
        std::thread::spawn(|| crate::counter("cross.thread", 2))
            .join()
            .expect("worker");
        drop(guard);
        assert_eq!(c.summary().counter("cross.thread"), 2);
    }

    #[test]
    fn local_stack_replays_into_spawned_workers() {
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            let stack = local_stack();
            assert_eq!(stack.len(), 1);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    with_local_stack(&stack, || crate::counter("worker.thread", 3));
                    // Outside the scope the worker's events vanish again.
                    crate::counter("worker.after", 1);
                });
            });
        });
        let m = c.summary();
        assert_eq!(m.counter("worker.thread"), 3);
        assert_eq!(m.counter("worker.after"), 0);
    }

    #[test]
    fn local_recorder_is_invisible_to_other_threads() {
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            std::thread::spawn(|| crate::counter("other.thread", 1))
                .join()
                .expect("worker");
            crate::counter("this.thread", 1);
        });
        let m = c.summary();
        assert_eq!(m.counter("other.thread"), 0);
        assert_eq!(m.counter("this.thread"), 1);
    }
}
