//! `sag-obs` — zero-dependency structured observability.
//!
//! The workspace is hermetic (no registry crates), so the usual
//! `tracing`/`metrics` stack is off the table; this crate is the
//! in-tree substitute. It provides five layers:
//!
//! 1. **Spans** — [`span`] returns an RAII guard that times a named,
//!    hierarchical region on the monotonic clock and reports
//!    enter/exit events to every active [`Recorder`]. Every span
//!    carries a process-unique id and its parent's id ([`SpanMeta`]);
//!    fan-out stages propagate the linkage across threads with
//!    [`span_context`]/[`with_span_context`], so a trace reassembles
//!    into one tree at any thread count.
//! 2. **Metrics** — [`counter`], [`gauge`] and [`observe`] record
//!    named counters, gauges and bucketed histogram samples. The
//!    [`Collector`] recorder aggregates them into a [`StageMetrics`]
//!    summary (what `SagReport::metrics` carries).
//! 3. **Sink** — [`JsonlSink`] renders every event as one JSON line
//!    (see `DESIGN.md` "Observability" for the schema). It is
//!    installed process-wide from the environment via
//!    [`init_from_env`]: `SAG_OBS_JSON=<path>` writes to a file,
//!    `SAG_OBS=1` writes to stderr.
//! 4. **Flight recorder** — the [`ring`] module keeps a bounded
//!    per-thread ring of recent events (armed by `SAG_OBS_RING=<n>`
//!    or [`ring::configure`]), capturing history even when no
//!    recorder is installed.
//! 5. **Forensics** — [`post_mortem`] renders a structured dump frame
//!    (failure class + span stack + ring timeline + budget spend) and
//!    fans it out through [`Recorder::post_mortem`]; typed failure
//!    boundaries across the workspace call it exactly once per
//!    failure.
//!
//! # Cost model
//!
//! Recorders come in two scopes: **global** (process-wide, installed
//! with [`install`]) and **thread-local** (active only inside a
//! [`with_local`] closure, so parallel sweeps do not cross-mix
//! events). When neither is active and the flight recorder is
//! disarmed, every instrumentation call short-circuits on two relaxed
//! atomic loads plus one thread-local flag read — no allocation, no
//! clock read, no dispatch. Hot solver loops additionally aggregate
//! their counts in plain locals and flush once per solve, so the
//! per-iteration cost is zero even with recording enabled.
//!
//! Recorder implementations must never call back into this crate's
//! recording entry points (the dispatch loop is not re-entrant for
//! mutation) and must never panic; failures are dropped, not raised.

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod forensics;
pub mod json;
mod metrics;
mod recorder;
pub mod ring;
mod sink;
mod span;

pub use forensics::{last_dump, Dump, PostMortem};
pub use metrics::{bucket_floor, Collector, HistSummary, SpanStat, StageMetrics};
pub use recorder::{
    enabled, install, local_stack, span_context, with_local, with_local_stack, with_span_context,
    Recorder, RecorderGuard, SpanContext, SpanMeta,
};
pub use sink::JsonlSink;
pub use span::{span, span_zone, Span};

use std::sync::Arc;

/// Is any event capture active — a recorder (global or thread-local)
/// or the flight-recorder ring?
#[inline]
pub fn armed() -> bool {
    enabled() || ring::active()
}

/// Adds `delta` to the named counter on every active recorder.
///
/// No-op (two relaxed atomic loads) when nothing captures events or
/// `delta == 0`.
pub fn counter(name: &'static str, delta: u64) {
    if delta == 0 {
        return;
    }
    let dispatch = enabled();
    if !dispatch && !ring::active() {
        return;
    }
    let stage = recorder::current_stage();
    ring::record_metric(ring::RingKind::Counter, name, stage, delta);
    if dispatch {
        recorder::for_each(|r| r.counter(name, delta, stage));
    }
}

/// Sets the named gauge to `value` on every active recorder.
pub fn gauge(name: &'static str, value: f64) {
    let dispatch = enabled();
    if !dispatch && !ring::active() {
        return;
    }
    let stage = recorder::current_stage();
    ring::record_metric(ring::RingKind::Gauge, name, stage, value.to_bits());
    if dispatch {
        recorder::for_each(|r| r.gauge(name, value, stage));
    }
}

/// Records one histogram observation of `value` under `name`.
pub fn observe(name: &'static str, value: u64) {
    let dispatch = enabled();
    if !dispatch && !ring::active() {
        return;
    }
    let stage = recorder::current_stage();
    ring::record_metric(ring::RingKind::Observe, name, stage, value);
    if dispatch {
        recorder::for_each(|r| r.observe(name, value, stage));
    }
}

/// Renders a post-mortem frame for `dump` and dispatches it to every
/// active recorder (see [`forensics`]).
pub fn post_mortem(dump: &Dump<'_>) {
    forensics::post_mortem(dump);
}

/// A process-wide JSONL sink installed from the environment.
///
/// Keep it alive for the duration of the run; dropping it uninstalls
/// the sink. [`ObsSession::sink`] exposes the sink for a final
/// `dropped_events` report.
pub struct ObsSession {
    /// The installed sink (shared so callers can read drop counts).
    pub sink: Arc<JsonlSink>,
    _guard: RecorderGuard,
}

/// Installs a [`JsonlSink`] if the environment asks for one, and arms
/// the flight recorder if `SAG_OBS_RING` is set.
///
/// `SAG_OBS_JSON=<path>` selects a file sink (the path is truncated);
/// otherwise `SAG_OBS=1` selects a stderr sink. Returns `None` when
/// neither variable is set (the ring, which works without a sink, may
/// still have been armed). A file that cannot be created is reported
/// on stderr and treated as "not configured" — observability must
/// never take the pipeline down.
pub fn init_from_env() -> Option<ObsSession> {
    ring::init_env();
    let sink = match std::env::var("SAG_OBS_JSON") {
        Ok(path) if !path.is_empty() => match JsonlSink::create(&path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("sag-obs: cannot open {path}: {e}; events will not be recorded");
                return None;
            }
        },
        _ => match std::env::var("SAG_OBS") {
            Ok(v) if v == "1" => JsonlSink::stderr(),
            _ => return None,
        },
    };
    let guard = install(sink.clone());
    Some(ObsSession {
        sink,
        _guard: guard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_path_is_inert() {
        // No recorder active: nothing panics, nothing records.
        counter("t.counter", 3);
        gauge("t.gauge", 1.5);
        observe("t.hist", 7);
        let s = span("t.span");
        drop(s);
    }

    #[test]
    fn local_collector_sees_everything() {
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            let _outer = span("outer");
            counter("work", 2);
            counter("work", 3);
            gauge("level", 4.5);
            observe("size", 9);
            let _inner = span("inner");
        });
        let m = c.summary();
        assert_eq!(m.counter("work"), 5);
        assert_eq!(m.gauge("level"), Some(4.5));
        let span_names: Vec<_> = m.spans.iter().map(|s| s.name).collect();
        assert!(span_names.contains(&"outer") && span_names.contains(&"inner"));
        let h = m.histogram("size").expect("histogram recorded");
        assert_eq!((h.count, h.sum, h.max), (1, 9, 9));
    }

    #[test]
    fn with_local_scopes_recording() {
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || counter("in", 1));
        counter("out", 1); // after the scope: not recorded
        let m = c.summary();
        assert_eq!(m.counter("in"), 1);
        assert_eq!(m.counter("out"), 0);
    }

    #[test]
    fn with_local_pops_on_panic() {
        let c = Arc::new(Collector::default());
        let r = std::panic::catch_unwind(|| {
            with_local(c.clone(), || {
                counter("before.panic", 1);
                panic!("boom");
            })
        });
        assert!(r.is_err());
        counter("after.panic", 1); // recorder must be popped by now
        let m = c.summary();
        assert_eq!(m.counter("before.panic"), 1);
        assert_eq!(
            m.counter("after.panic"),
            0,
            "local recorder leaked after panic"
        );
    }

    #[test]
    fn counters_carry_enclosing_stage() {
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            let _s = span("stage_a");
            counter("ops", 1);
        });
        let m = c.summary();
        assert_eq!(m.counters, vec![("ops", Some("stage_a"), 1)]);
    }

    #[test]
    fn span_durations_are_nonnegative_and_counted() {
        let c = Arc::new(Collector::default());
        with_local(c.clone(), || {
            for _ in 0..3 {
                let _s = span("loop");
                std::thread::sleep(Duration::from_micros(50));
            }
        });
        let m = c.summary();
        let s = m.span("loop").expect("span recorded");
        assert_eq!(s.count, 3);
        assert!(s.total >= Duration::from_micros(150));
    }
}
