//! Aggregating recorder ([`Collector`]) and its exported summary
//! ([`StageMetrics`]).

use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use crate::recorder::{Recorder, SpanMeta};

/// How many raw histogram samples a collector retains (in arrival
/// order) alongside the bucket counts. Beyond the cap only the
/// aggregates keep growing; pipeline histograms (zone sizes) are far
/// below it.
const MAX_RETAINED_SAMPLES: usize = 4096;

/// Aggregate of one span name: how often it ran and for how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: &'static str,
    /// Number of completed executions.
    pub count: u64,
    /// Total wall time across executions.
    pub total: Duration,
}

/// Summary of one histogram: exact aggregates plus sparse sub-octave
/// bucketed counts. Values below 16 get exact buckets (index =
/// value); above that every power-of-two octave splits into 4
/// sub-buckets, so bucket width stays ≤ 25% of the value everywhere —
/// fine enough to resolve the 100–500µs band of the churn
/// repair-latency gate in nanoseconds. [`bucket_floor`] maps an index
/// back to its inclusive lower bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// `(bucket, count)` pairs for non-empty buckets, ascending.
    pub buckets: Vec<(u32, u64)>,
    /// Raw samples in arrival order, capped at an internal limit.
    pub samples: Vec<u64>,
}

/// The sub-octave bucket index of `v` (see [`HistSummary`]).
fn bucket_of(v: u64) -> u32 {
    if v < 16 {
        return v as u32;
    }
    let b = 63 - v.leading_zeros(); // octave: 2^b <= v, b in 4..=63
    let sub = ((v >> (b - 2)) & 0x3) as u32; // quarter within the octave
    16 + (b - 4) * 4 + sub
}

/// Inclusive lower bound of bucket `idx` — the inverse of the bucket
/// index function, exposed so histogram renderers (and the trace
/// analyzer) can print real value edges.
pub fn bucket_floor(idx: u32) -> u64 {
    if idx < 16 {
        return u64::from(idx);
    }
    let b = 4 + (idx - 16) / 4;
    let sub = u64::from((idx - 16) % 4);
    (1u64 << b) + (sub << (b - 2))
}

/// Everything a [`Collector`] gathered, in first-seen order.
///
/// Counters, gauges and histograms are keyed by `(name, stage)` where
/// `stage` is the innermost span open when the value was recorded, so
/// the rendered table can attribute work to pipeline stages. The
/// lookup helpers aggregate across stages.
#[derive(Debug, Clone, Default)]
pub struct StageMetrics {
    /// Completed spans.
    pub spans: Vec<SpanStat>,
    /// `(name, stage, value)` counters.
    pub counters: Vec<(&'static str, Option<&'static str>, u64)>,
    /// `(name, stage, last value)` gauges.
    pub gauges: Vec<(&'static str, Option<&'static str>, f64)>,
    /// `(name, stage, summary)` histograms.
    pub histograms: Vec<(&'static str, Option<&'static str>, HistSummary)>,
}

impl StageMetrics {
    /// Total of the counter `name` across all stages (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _, _)| *n == name)
            .map(|(_, _, v)| v)
            .sum()
    }

    /// Last value of the gauge `name` (any stage), if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .rev()
            .find(|(n, _, _)| *n == name)
            .map(|&(_, _, v)| v)
    }

    /// Aggregate stats of the span `name`, if it ran.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The histogram `name` (first matching stage), if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        self.histograms
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, _, h)| h)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Folds `other` into `self` (summing counters/histograms/span
    /// stats, keeping `other`'s gauges as the latest value) — used to
    /// aggregate per-run metrics across a sweep.
    pub fn merge(&mut self, other: &StageMetrics) {
        for s in &other.spans {
            match self.spans.iter_mut().find(|m| m.name == s.name) {
                Some(m) => {
                    m.count += s.count;
                    m.total += s.total;
                }
                None => self.spans.push(s.clone()),
            }
        }
        for &(name, stage, v) in &other.counters {
            match self
                .counters
                .iter_mut()
                .find(|(n, s, _)| *n == name && *s == stage)
            {
                Some((_, _, total)) => *total += v,
                None => self.counters.push((name, stage, v)),
            }
        }
        for &(name, stage, v) in &other.gauges {
            match self
                .gauges
                .iter_mut()
                .find(|(n, s, _)| *n == name && *s == stage)
            {
                Some((_, _, latest)) => *latest = v,
                None => self.gauges.push((name, stage, v)),
            }
        }
        for &(name, stage, ref h) in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|(n, s, _)| *n == name && *s == stage)
            {
                Some((_, _, mine)) => {
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.max = mine.max.max(h.max);
                    for &(b, c) in &h.buckets {
                        match mine.buckets.iter_mut().find(|(mb, _)| *mb == b) {
                            Some((_, mc)) => *mc += c,
                            None => mine.buckets.push((b, c)),
                        }
                    }
                    mine.buckets.sort_unstable_by_key(|&(b, _)| b);
                    let room = MAX_RETAINED_SAMPLES.saturating_sub(mine.samples.len());
                    mine.samples.extend(h.samples.iter().copied().take(room));
                }
                None => self.histograms.push((name, stage, h.clone())),
            }
        }
    }
}

/// Renders the per-stage time/work table: one row per span in
/// first-seen (execution) order, with the counters, gauges and
/// histograms attributed to that stage indented beneath it, and
/// un-attributed metrics in a trailing group.
impl fmt::Display for StageMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<18} {:>6} {:>12}", "stage", "calls", "time")?;
        for s in &self.spans {
            writeln!(f, "{:<18} {:>6} {:>12}", s.name, s.count, fmt_dur(s.total))?;
            self.fmt_stage_items(f, Some(s.name))?;
        }
        let orphan = StageMetrics {
            spans: Vec::new(),
            counters: self
                .counters
                .iter()
                .filter(|(_, s, _)| s.is_none_or(|s| self.span(s).is_none()))
                .copied()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(_, s, _)| s.is_none_or(|s| self.span(s).is_none()))
                .copied()
                .collect(),
            histograms: Vec::new(),
        };
        if !orphan.counters.is_empty() || !orphan.gauges.is_empty() {
            writeln!(f, "{:<18}", "(other)")?;
            for &(name, _, v) in &orphan.counters {
                writeln!(f, "  {name:<28} {v:>12}")?;
            }
            for &(name, _, v) in &orphan.gauges {
                writeln!(f, "  {name:<28} {v:>12.4}")?;
            }
        }
        Ok(())
    }
}

impl StageMetrics {
    /// Writes the metrics attributed to `stage`, indented.
    fn fmt_stage_items(&self, f: &mut fmt::Formatter<'_>, stage: Option<&str>) -> fmt::Result {
        for &(name, s, v) in &self.counters {
            if s == stage {
                writeln!(f, "  {name:<28} {v:>12}")?;
            }
        }
        for &(name, s, v) in &self.gauges {
            if s == stage {
                writeln!(f, "  {name:<28} {v:>12.4}")?;
            }
        }
        for &(name, s, ref h) in &self.histograms {
            if s == stage {
                writeln!(
                    f,
                    "  {:<28} {:>12} (n={}, max={})",
                    name, h.sum, h.count, h.max
                )?;
            }
        }
        Ok(())
    }
}

/// Compact duration rendering for the stage table.
fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Thread-safe aggregating [`Recorder`].
///
/// Install one per pipeline run (thread-locally via
/// [`crate::with_local`]) or process-wide; [`Collector::summary`]
/// snapshots everything gathered so far as a [`StageMetrics`].
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<StageMetrics>,
}

impl Collector {
    /// Snapshot of everything recorded so far.
    pub fn summary(&self) -> StageMetrics {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Recorder for Collector {
    fn span_exit(&self, span: &SpanMeta, dur: Duration) {
        let name = span.name;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.spans.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.count += 1;
                s.total += dur;
            }
            None => inner.spans.push(SpanStat {
                name,
                count: 1,
                total: dur,
            }),
        }
    }

    /// A collector is an aggregate — zone-worker events must be
    /// buffered per zone and folded in zone-index order so the result
    /// is identical at any thread count (gauges are last-write-wins,
    /// and vector ordering is first-seen).
    fn buffered(&self) -> bool {
        true
    }

    fn absorb(&self, metrics: &StageMetrics) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(metrics);
    }

    fn counter(&self, name: &'static str, delta: u64, stage: Option<&'static str>) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner
            .counters
            .iter_mut()
            .find(|(n, s, _)| *n == name && *s == stage)
        {
            Some((_, _, v)) => *v += delta,
            None => inner.counters.push((name, stage, delta)),
        }
    }

    fn gauge(&self, name: &'static str, value: f64, stage: Option<&'static str>) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner
            .gauges
            .iter_mut()
            .find(|(n, s, _)| *n == name && *s == stage)
        {
            Some((_, _, v)) => *v = value,
            None => inner.gauges.push((name, stage, value)),
        }
    }

    fn observe(&self, name: &'static str, value: u64, stage: Option<&'static str>) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let hist = match inner
            .histograms
            .iter_mut()
            .find(|(n, s, _)| *n == name && *s == stage)
        {
            Some((_, _, h)) => h,
            None => {
                inner.histograms.push((name, stage, HistSummary::default()));
                let last = inner.histograms.len() - 1;
                &mut inner.histograms[last].2
            }
        };
        hist.count += 1;
        hist.sum += value;
        hist.max = hist.max.max(value);
        let b = bucket_of(value);
        match hist.buckets.iter_mut().find(|(hb, _)| *hb == b) {
            Some((_, c)) => *c += 1,
            None => {
                hist.buckets.push((b, 1));
                hist.buckets.sort_unstable_by_key(|&(b, _)| b);
            }
        }
        if hist.samples.len() < MAX_RETAINED_SAMPLES {
            hist.samples.push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_pinned() {
        // Exact buckets below 16.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 3);
        assert_eq!(bucket_of(15), 15);
        // Four sub-buckets per octave from 16 up.
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(19), 16);
        assert_eq!(bucket_of(20), 17);
        assert_eq!(bucket_of(24), 18);
        assert_eq!(bucket_of(28), 19);
        assert_eq!(bucket_of(31), 19);
        assert_eq!(bucket_of(32), 20);
        assert_eq!(bucket_of(u64::MAX), 255);
        // The sub-microsecond band the churn p99<=500us gate reads
        // (values in ns): the 100us and 500us marks land in distinct
        // buckets with ~13-25% wide edges, not one coarse octave.
        assert_eq!(bucket_of(100_000), 66);
        assert_eq!(bucket_floor(66), 98_304);
        assert_eq!(bucket_of(500_000), 75);
        assert_eq!(bucket_floor(75), 458_752);
        assert_eq!(bucket_floor(76), 524_288);
    }

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        for idx in 0..=255u32 {
            let floor = bucket_floor(idx);
            assert_eq!(bucket_of(floor), idx, "floor of bucket {idx}");
            if floor > 0 {
                assert!(
                    bucket_of(floor - 1) < idx,
                    "bucket {idx} floor {floor} is not the edge"
                );
            }
        }
        // Monotone over a dense range.
        let mut last = 0;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn observe_tracks_aggregates_buckets_and_samples() {
        let c = Collector::default();
        for v in [1u64, 2, 3, 100] {
            Recorder::observe(&c, "h", v, None);
        }
        let m = c.summary();
        let h = m.histogram("h").expect("recorded");
        assert_eq!((h.count, h.sum, h.max), (4, 106, 100));
        assert_eq!(h.samples, vec![1, 2, 3, 100]);
        // Small values get exact buckets; 100 lands in [96, 112).
        assert_eq!(h.buckets, vec![(1, 1), (2, 1), (3, 1), (26, 1)]);
    }

    #[test]
    fn merge_sums_counters_and_spans() {
        let mut a = StageMetrics::default();
        a.counters.push(("x", None, 2));
        a.spans.push(SpanStat {
            name: "s",
            count: 1,
            total: Duration::from_millis(5),
        });
        let mut b = StageMetrics::default();
        b.counters.push(("x", None, 3));
        b.counters.push(("y", Some("s"), 1));
        b.spans.push(SpanStat {
            name: "s",
            count: 2,
            total: Duration::from_millis(7),
        });
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let s = a.span("s").expect("merged");
        assert_eq!(s.count, 3);
        assert_eq!(s.total, Duration::from_millis(12));
    }

    #[test]
    fn display_renders_stage_table() {
        let mut m = StageMetrics::default();
        m.spans.push(SpanStat {
            name: "samc",
            count: 1,
            total: Duration::from_micros(1500),
        });
        m.counters.push(("ledger.delta_ops", Some("samc"), 42));
        m.counters.push(("loose.counter", None, 7));
        let s = format!("{m}");
        assert!(s.contains("samc"));
        assert!(s.contains("ledger.delta_ops"));
        assert!(s.contains("42"));
        assert!(s.contains("(other)"));
        assert!(s.contains("1.5ms") || s.contains("1.50ms"));
    }
}
