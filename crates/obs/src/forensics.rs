//! Post-mortem dump frames: structured failure forensics.
//!
//! When a typed failure fires (any `SagError`/`LpError`, a worker
//! panic, ledger desync, portfolio loser death, or a churn repair
//! deferral), the owning boundary calls [`crate::post_mortem`] with a
//! [`Dump`] describing the failure. The frame that results bundles
//! everything needed to reconstruct what the run was doing:
//!
//! * the failure class, detail, stage, zone and (when the failure is
//!   solver-shaped) backend/reason and budget spend;
//! * the recording thread's active span stack (names + ids, so the
//!   frame links into the span tree);
//! * the merged flight-recorder timeline (see [`crate::ring`]) with
//!   its overflow count.
//!
//! Frames are dispatched through the normal recorder fan-out via
//! [`crate::Recorder::post_mortem`]; the JSONL sink renders them as
//! one `"kind":"post_mortem"` line under its never-panic drop-and-
//! count policy. The most recent frame is also retained in-process
//! for the forensics test suite ([`last_dump`]).

use std::sync::{Mutex, PoisonError};

use crate::{json, recorder, ring};

/// What a failing boundary reports (borrowed; the frame copies it).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dump<'a> {
    /// Stable failure class, e.g. `worker_panic`, `budget_exceeded`,
    /// `ledger_desync`, `lp_error`, `portfolio_loser_panic`,
    /// `portfolio_loser_hang`, `churn_deferred`.
    pub class: &'a str,
    /// Pipeline stage the failure fired in, when known.
    pub stage: Option<&'a str>,
    /// Zone index the failure is attributed to, when known.
    pub zone: Option<u64>,
    /// Human-readable detail (typically the error's `Display`).
    pub detail: &'a str,
    /// Solver backend involved, when the failure is solver-shaped.
    pub backend: Option<&'a str>,
    /// Why that backend was selected, when known.
    pub reason: Option<&'a str>,
    /// Branch-and-bound nodes spent before the failure, when known.
    pub nodes_spent: Option<u64>,
    /// Wall time spent before the failure in ns, when known.
    pub elapsed_ns: Option<u64>,
}

/// A rendered post-mortem frame (what recorders receive).
#[derive(Debug, Clone)]
pub struct PostMortem {
    class: String,
    fields: String,
}

impl PostMortem {
    /// The failure class this frame reports.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The frame's fields as a comma-separated list of JSON
    /// `"key":value` pairs (no surrounding braces), ready for a sink
    /// to splice after its own line prefix.
    pub fn fields_json(&self) -> &str {
        &self.fields
    }

    /// The frame as one complete standalone JSON object.
    pub fn to_json(&self) -> String {
        format!("{{\"kind\":\"post_mortem\",{}}}", self.fields)
    }
}

/// The most recent frame, retained for the forensics test suite.
static LAST: Mutex<Option<PostMortem>> = Mutex::new(None);

/// The most recently emitted frame as standalone JSON, if any.
pub fn last_dump() -> Option<String> {
    LAST.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .map(PostMortem::to_json)
}

/// Clears the retained frame (test isolation).
pub fn clear_last_dump() {
    *LAST.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Builds a post-mortem frame for `dump` and dispatches it to every
/// active recorder. Never panics; cost is irrelevant (failure path).
pub fn post_mortem(dump: &Dump<'_>) {
    let frame = render(dump);
    *LAST.lock().unwrap_or_else(PoisonError::into_inner) = Some(frame.clone());
    recorder::for_each(|r| r.post_mortem(&frame));
}

/// Renders `dump` into a frame without dispatching it (what
/// [`post_mortem`] builds; also lets callers inspect or persist a
/// frame out-of-band).
pub fn render(dump: &Dump<'_>) -> PostMortem {
    let mut f = String::with_capacity(512);
    f.push_str("\"class\":");
    json::escape_into(&mut f, dump.class);
    f.push_str(",\"detail\":");
    json::escape_into(&mut f, dump.detail);
    if let Some(stage) = dump.stage {
        f.push_str(",\"stage\":");
        json::escape_into(&mut f, stage);
    }
    if let Some(zone) = dump.zone {
        f.push_str(&format!(",\"zone\":{zone}"));
    }
    if let Some(backend) = dump.backend {
        f.push_str(",\"backend\":");
        json::escape_into(&mut f, backend);
    }
    if let Some(reason) = dump.reason {
        f.push_str(",\"reason\":");
        json::escape_into(&mut f, reason);
    }
    if dump.nodes_spent.is_some() || dump.elapsed_ns.is_some() {
        f.push_str(",\"budget\":{");
        let mut first = true;
        if let Some(nodes) = dump.nodes_spent {
            f.push_str(&format!("\"nodes\":{nodes}"));
            first = false;
        }
        if let Some(ns) = dump.elapsed_ns {
            if !first {
                f.push(',');
            }
            f.push_str(&format!("\"elapsed_ns\":{ns}"));
        }
        f.push('}');
    }
    f.push_str(",\"span_stack\":[");
    for (i, (name, id)) in recorder::stack_snapshot().iter().enumerate() {
        if i > 0 {
            f.push(',');
        }
        f.push_str("{\"name\":");
        json::escape_into(&mut f, name);
        f.push_str(&format!(",\"id\":{id}}}"));
    }
    f.push(']');
    let snap = ring::snapshot();
    f.push_str(&format!(
        ",\"ring\":{{\"overflow\":{},\"events\":[",
        snap.overflow
    ));
    for (i, ev) in snap.events.iter().enumerate() {
        if i > 0 {
            f.push(',');
        }
        render_ring_event(&mut f, ev);
    }
    f.push_str("]}");
    PostMortem {
        class: dump.class.to_string(),
        fields: f,
    }
}

fn render_ring_event(f: &mut String, ev: &ring::RingEvent) {
    f.push_str(&format!(
        "{{\"epoch\":{},\"t_ns\":{},\"thread\":{},\"kind\":\"{}\",\"name\":",
        ev.epoch,
        ev.t_ns,
        ev.thread,
        ev.kind.as_str()
    ));
    json::escape_into(f, ev.name);
    if let Some(stage) = ev.stage {
        f.push_str(",\"stage\":");
        json::escape_into(f, stage);
    }
    match ev.kind {
        ring::RingKind::SpanEnter => {
            f.push_str(&format!(",\"id\":{},\"depth\":{}", ev.a, ev.depth));
            if ev.b != 0 {
                f.push_str(&format!(",\"parent\":{}", ev.b));
            }
        }
        ring::RingKind::SpanExit => {
            f.push_str(&format!(
                ",\"id\":{},\"depth\":{},\"dur_ns\":{}",
                ev.a, ev.depth, ev.b
            ));
        }
        ring::RingKind::Counter | ring::RingKind::Observe => {
            f.push_str(&format!(",\"value\":{}", ev.a));
        }
        ring::RingKind::Gauge => {
            f.push_str(",\"value\":");
            json::number_into(f, f64::from_bits(ev.a));
        }
    }
    f.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Collector;
    use std::sync::Arc;

    #[test]
    fn frames_render_valid_json_with_all_fields() {
        let dump = Dump {
            class: "budget_exceeded",
            stage: Some("ilpqc"),
            zone: Some(3),
            detail: "nodes exhausted with \"quotes\" and\nnewlines",
            backend: Some("exact"),
            reason: Some("dense zone"),
            nodes_spent: Some(4096),
            elapsed_ns: Some(1_500_000),
        };
        let frame = render(&dump);
        assert_eq!(frame.class(), "budget_exceeded");
        let line = frame.to_json();
        json::validate(&line).expect("frame must be valid JSON");
        assert!(line.contains("\"kind\":\"post_mortem\""));
        assert!(line.contains("\"class\":\"budget_exceeded\""));
        assert!(line.contains("\"zone\":3"));
        assert!(line.contains("\"budget\":{\"nodes\":4096,\"elapsed_ns\":1500000}"));
        assert!(line.contains("\"span_stack\":["));
        assert!(line.contains("\"ring\":{\"overflow\":"));
    }

    #[test]
    fn minimal_frames_render_valid_json() {
        let frame = render(&Dump {
            class: "worker_panic",
            detail: "boom",
            ..Dump::default()
        });
        json::validate(&frame.to_json()).expect("minimal frame must be valid JSON");
    }

    #[test]
    fn post_mortem_reaches_recorders_and_last_dump() {
        struct Saw(Mutex<Vec<String>>);
        impl crate::Recorder for Saw {
            fn post_mortem(&self, dump: &PostMortem) {
                self.0.lock().expect("lock").push(dump.class().to_string());
            }
        }
        let saw = Arc::new(Saw(Mutex::new(Vec::new())));
        crate::with_local(saw.clone(), || {
            post_mortem(&Dump {
                class: "churn_deferred",
                detail: "starved",
                ..Dump::default()
            });
        });
        assert_eq!(*saw.0.lock().expect("lock"), vec!["churn_deferred"]);
        let last = last_dump().expect("retained");
        json::validate(&last).expect("retained frame is valid JSON");
        assert!(last.contains("\"class\":\"churn_deferred\""));
        // A collector ignores frames without panicking (default hook).
        crate::with_local(Arc::new(Collector::default()), || {
            post_mortem(&Dump {
                class: "noop",
                detail: "",
                ..Dump::default()
            });
        });
    }
}
