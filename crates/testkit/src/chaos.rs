//! Fault-injection primitives for chaos/robustness testing.
//!
//! Zero-dependency building blocks for adversarial inputs: poisoned
//! floats (NaN/∞/subnormal extremes) and a catalogue of structural
//! [`Fault`]s that robustness suites apply to domain objects (the
//! scenario-specific mutators live with the types they mutate, e.g. in
//! the workspace `tests` crate). The invariant such suites assert is
//! always the same: **any input → a typed error or a validated result,
//! never a panic**.

use crate::rng::Rng;

/// A structural fault an adversarial-input generator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Replace a numeric field with NaN.
    NanInject,
    /// Replace a numeric field with ±∞.
    InfInject,
    /// Collapse a region to zero width/height.
    ZeroWidthRegion,
    /// Duplicate a station exactly on top of another.
    CoincidentStations,
    /// Place three or more stations exactly on one line.
    ColinearStations,
    /// Push a threshold (β, SNR, power cap) to an extreme magnitude.
    ExtremeThreshold,
    /// Cluster many stations in a vanishingly small area.
    AdversarialCluster,
    /// Desynchronise an incremental accumulator from its inputs (a
    /// stale interference-ledger entry). Realised by skewing ledger
    /// state rather than mutating the scenario; the invariant under
    /// test is that oracle cross-checks surface it as a typed error.
    LedgerDesync,
    /// Make the observability sink fail on every write. Realised at
    /// the sink level (a failing writer behind `sag_obs::JsonlSink`)
    /// rather than by mutating the scenario; the invariant under test
    /// is that a broken sink never alters results or panics — events
    /// are dropped and counted.
    ObsSinkFail,
    /// Kill a zone worker thread mid-solve. Realised at the
    /// zone-engine level (`sag_core::engine::inject_zone_worker_panic`)
    /// rather than by mutating the scenario; the invariant under test
    /// is that a panicking worker surfaces a typed `WorkerPanic` error
    /// instead of hanging the merge or poisoning the process.
    ZoneWorkerPanic,
    /// Starve the per-event repair budget with an event burst: a batch
    /// of churn events delivered under a zero (already-expired) budget.
    /// Realised at the churn-engine level (a `Budget` whose deadline has
    /// passed before the first event); the invariant under test is that
    /// the degradation ladder bottoms out in defer-and-batch — never a
    /// hang or an unserved subscriber after the final flush.
    ChurnBurst,
    /// Drive a mobility trace straight across a zone boundary: a
    /// subscriber move whose destination lands in (or bridges) a
    /// different interference zone, forcing the dirty-set closure to
    /// merge/split zones. Realised at the churn trace-generator level;
    /// the invariant under test is that cross-zone repairs stay
    /// audit-clean and leave no stale relay behind.
    ChurnBoundaryHop,
    /// Skew one entry of the sparse LP basis factorization so the
    /// factored basis no longer matches the true basis columns.
    /// Realised at the solver level (`sag_lp::revised::inject_lu_skew`)
    /// rather than by mutating the scenario; the invariant under test
    /// is that the residual self-check detects the drift and either
    /// refactorizes (transient skew) or surfaces a typed
    /// `LpError::Numerical` (persistent skew) — never a silently wrong
    /// objective.
    LpBasisDesync,
    /// Panic (or hang) the losing arm of a solver portfolio race.
    /// Realised at the solver level
    /// (`sag_core::SolverBuilder::with_loser_fault`) rather than by
    /// mutating the scenario; the invariant under test is that a dying
    /// loser never corrupts the winner — the race still commits the
    /// winner's clean answer and the loss surfaces only as a typed,
    /// counted event (`portfolio.loser_panic`).
    PortfolioLoserPanic,
}

impl Fault {
    /// Every fault, for exhaustive sweeps.
    pub const fn all() -> [Fault; 14] {
        [
            Fault::NanInject,
            Fault::InfInject,
            Fault::ZeroWidthRegion,
            Fault::CoincidentStations,
            Fault::ColinearStations,
            Fault::ExtremeThreshold,
            Fault::AdversarialCluster,
            Fault::LedgerDesync,
            Fault::ObsSinkFail,
            Fault::ZoneWorkerPanic,
            Fault::ChurnBurst,
            Fault::ChurnBoundaryHop,
            Fault::LpBasisDesync,
            Fault::PortfolioLoserPanic,
        ]
    }

    /// A uniformly random fault.
    pub fn sample(rng: &mut Rng) -> Fault {
        let all = Fault::all();
        all[rng.gen_range(0usize..all.len())]
    }
}

/// Flips one random byte of `data` to a random different value and
/// returns the (index, original, replacement) triple. Pairs with
/// [`Fault::ObsSinkFail`]: corrupt a captured JSONL stream in place
/// and assert the validator rejects (or a scanner survives) the
/// damaged line without panicking. No-op returning `None` on empty
/// input.
pub fn flip_byte(rng: &mut Rng, data: &mut [u8]) -> Option<(usize, u8, u8)> {
    if data.is_empty() {
        return None;
    }
    let idx = rng.gen_range(0usize..data.len());
    let orig = data[idx];
    let mut repl = orig;
    while repl == orig {
        repl = rng.gen_range(0u8..=u8::MAX);
    }
    data[idx] = repl;
    Some((idx, orig, repl))
}

/// A "poisoned" float: NaN, ±∞, a signed zero, or a magnitude extreme
/// (subnormal / near-`MAX`) — the values numeric code mishandles first.
pub fn poisoned_f64(rng: &mut Rng) -> f64 {
    match rng.gen_range(0usize..8) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::MIN_POSITIVE / 2.0, // subnormal
        6 => f64::MAX / 2.0,
        _ => -f64::MAX / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_faults_are_distinct() {
        let all = Fault::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn sample_covers_every_fault() {
        let mut rng = Rng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(Fault::sample(&mut rng));
        }
        assert_eq!(seen.len(), Fault::all().len());
    }

    #[test]
    fn flip_byte_changes_exactly_one_byte() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..200 {
            let mut data = b"{\"kind\":\"counter\",\"v\":1}".to_vec();
            let before = data.clone();
            let (idx, orig, repl) = flip_byte(&mut rng, &mut data).expect("non-empty");
            assert_eq!(before[idx], orig);
            assert_eq!(data[idx], repl);
            assert_ne!(orig, repl);
            let diffs = before.iter().zip(&data).filter(|(a, b)| a != b).count();
            assert_eq!(diffs, 1);
        }
        assert!(flip_byte(&mut rng, &mut []).is_none());
    }

    #[test]
    fn poisoned_floats_hit_non_finite_and_finite_extremes() {
        let mut rng = Rng::seed_from_u64(7);
        let vals: Vec<f64> = (0..500).map(|_| poisoned_f64(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_nan()));
        assert!(vals.iter().any(|v| v.is_infinite()));
        assert!(vals.iter().any(|v| v.is_finite()));
    }
}
