//! Golden-file assertions for regression tests.
//!
//! A golden test renders some deterministic artefact (a table, a
//! placement count summary) to text and compares it against a file
//! checked into the repository. On mismatch the test fails with a
//! line diff; running with `SAG_UPDATE_GOLDEN=1` rewrites the files
//! instead, so intentional changes are a re-run plus a `git diff`
//! review away.

use std::fs;
use std::path::Path;

/// Normalises line endings and trailing whitespace so goldens are
/// platform- and editor-stable.
fn normalise(s: &str) -> String {
    let mut out: String = s
        .replace("\r\n", "\n")
        .lines()
        .map(|l| l.trim_end())
        .collect::<Vec<_>>()
        .join("\n");
    while out.ends_with('\n') {
        out.pop();
    }
    out.push('\n');
    out
}

/// Returns `true` when golden files should be rewritten instead of
/// compared (`SAG_UPDATE_GOLDEN` set to anything but `0`/empty).
pub fn update_mode() -> bool {
    std::env::var("SAG_UPDATE_GOLDEN")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Compares `actual` against the golden file at `path`.
///
/// # Panics
/// Panics with a line diff on mismatch, or with instructions when the
/// golden file does not exist yet. In [`update_mode`] it writes the
/// file and never panics.
pub fn assert_golden(path: impl AsRef<Path>, actual: &str) {
    let path = path.as_ref();
    let actual = normalise(actual);
    if update_mode() {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
        }
        fs::write(path, &actual).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("updated golden {}", path.display());
        return;
    }
    let expected = match fs::read_to_string(path) {
        Ok(s) => normalise(&s),
        Err(e) => panic!(
            "golden file {} unreadable ({e}); generate it with SAG_UPDATE_GOLDEN=1 cargo test",
            path.display()
        ),
    };
    if expected != actual {
        panic!(
            "golden mismatch for {}\n{}\nif the change is intentional: SAG_UPDATE_GOLDEN=1 cargo test",
            path.display(),
            diff(&expected, &actual)
        );
    }
}

/// Minimal line diff: enough to see *what* moved without an external
/// diff crate.
fn diff(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for i in 0..e.len().max(a.len()) {
        match (e.get(i), a.get(i)) {
            (Some(el), Some(al)) if el == al => {}
            (el, al) => {
                if let Some(el) = el {
                    out.push_str(&format!("  line {:>3} - {el}\n", i + 1));
                }
                if let Some(al) = al {
                    out.push_str(&format!("  line {:>3} + {al}\n", i + 1));
                }
            }
        }
    }
    if out.is_empty() {
        out.push_str("  (differs only in normalised whitespace)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sag-testkit-golden");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn matching_golden_passes() {
        let p = tmp("match.txt");
        fs::write(&p, "a\nb\n").unwrap();
        assert_golden(&p, "a\nb");
        assert_golden(&p, "a \nb\n\n"); // whitespace-normalised
    }

    #[test]
    fn mismatch_panics_with_diff() {
        let p = tmp("mismatch.txt");
        fs::write(&p, "a\nb\n").unwrap();
        let err = std::panic::catch_unwind(|| assert_golden(&p, "a\nc")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("- b"), "{msg}");
        assert!(msg.contains("+ c"), "{msg}");
        assert!(msg.contains("SAG_UPDATE_GOLDEN"), "{msg}");
    }

    #[test]
    fn missing_golden_names_the_fix() {
        let p = tmp("never-written.txt");
        let _ = fs::remove_file(&p);
        let err = std::panic::catch_unwind(|| assert_golden(&p, "x")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("SAG_UPDATE_GOLDEN=1"), "{msg}");
    }
}
