//! The property-testing harness behind the [`prop!`](crate::prop!) macro.
//!
//! Each test runs a configurable number of cases (default
//! [`DEFAULT_CASES`], overridable per test with `#[cases(n)]` and
//! globally with `SAG_PROP_CASES`). Case inputs are sampled from a
//! per-case seed drawn off a deterministic stream, so a failure report
//! always names the exact seed that produced it:
//!
//! ```text
//! property `prop_foo` failed (case 17 of 64, seed 0x4f2a...)
//! ...
//! reproduce with: SAG_PROP_SEED=0x4f2a... cargo test prop_foo
//! ```
//!
//! Re-running with `SAG_PROP_SEED` set replays exactly that one case —
//! same seed, same sampled input, same failure — which is the hermetic
//! replacement for `proptest`'s persisted regression files.

use std::panic::{self, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng};
use crate::strategy::Strategy;

/// Cases per property unless overridden.
pub const DEFAULT_CASES: u32 = 64;

/// Upper bound on greedy shrink steps so pathological shrink trees
/// terminate.
const MAX_SHRINK_STEPS: usize = 512;

/// FNV-1a, used to give every property its own deterministic seed
/// stream (so renaming a test, not reordering the file, changes its
/// inputs).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn run_case<S, F>(strat: &S, seed: u64, f: &F) -> Result<(), (S::Value, String)>
where
    S: Strategy,
    F: Fn(S::Value),
{
    let value = strat.sample(&mut Rng::seed_from_u64(seed));
    check_value(value, f)
}

fn check_value<V, F>(value: V, f: &F) -> Result<(), (V, String)>
where
    V: Clone + std::fmt::Debug,
    F: Fn(V),
{
    let probe = value.clone();
    match panic::catch_unwind(AssertUnwindSafe(|| f(probe))) {
        Ok(()) => Ok(()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            Err((value, msg))
        }
    }
}

/// Greedily walks the shrink tree: keeps taking the first simpler
/// candidate that still fails, until none does.
fn shrink_failure<S, F>(
    strat: &S,
    mut value: S::Value,
    mut msg: String,
    f: &F,
) -> (S::Value, String)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in strat.shrink(&value) {
            steps += 1;
            if let Err((v, m)) = check_value(cand, f) {
                value = v;
                msg = m;
                continue 'outer;
            }
            if steps >= MAX_SHRINK_STEPS {
                break;
            }
        }
        break;
    }
    (value, msg)
}

/// Drives one property: called by the code [`prop!`](crate::prop!)
/// generates, not directly.
///
/// # Panics
/// Panics (failing the enclosing `#[test]`) with the case seed, the
/// shrunk input and the original assertion message on the first
/// counterexample.
pub fn run<S, F>(name: &str, cases: u32, strat: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    // Replay mode: exactly one case, no panic-hook games, so the
    // failure surfaces exactly as the original assertion.
    if let Ok(spec) = std::env::var("SAG_PROP_SEED") {
        let seed = parse_seed(&spec)
            .unwrap_or_else(|| panic!("SAG_PROP_SEED `{spec}` is not a (hex or decimal) u64"));
        let value = strat.sample(&mut Rng::seed_from_u64(seed));
        eprintln!("replaying property `{name}` with seed {seed:#018x}: input {value:?}");
        f(value);
        return;
    }

    let cases = std::env::var("SAG_PROP_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cases)
        .max(1);

    // Silence the default per-panic backtrace spam while we probe and
    // shrink; restored before reporting.
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let mut stream = fnv1a(name) ^ 0x5347_5052_4F50_5345; // "SGPROPSE"
    let mut failure: Option<(u64, u32, S::Value, String)> = None;
    for case in 0..cases {
        let seed = splitmix64(&mut stream);
        if let Err((value, msg)) = run_case(strat, seed, &f) {
            let (value, msg) = shrink_failure(strat, value, msg, &f);
            failure = Some((seed, case, value, msg));
            break;
        }
    }

    panic::set_hook(hook);
    if let Some((seed, case, value, msg)) = failure {
        panic!(
            "property `{name}` failed (case {case} of {cases}, seed {seed:#018x})\n\
             shrunk input: {value:?}\n\
             assertion: {msg}\n\
             reproduce with: SAG_PROP_SEED={seed:#x} cargo test {name}"
        );
    }
}

fn parse_seed(spec: &str) -> Option<u64> {
    let spec = spec.trim();
    if let Some(hex) = spec.strip_prefix("0x").or_else(|| spec.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        spec.parse().ok()
    }
}

/// Defines property-based tests.
///
/// Each `fn name(binding in strategy, ...) { body }` item becomes a
/// `#[test]` running the body over sampled inputs, with failing seeds
/// reported and inputs shrunk. An optional `#[cases(n)]` attribute sets
/// the case count (default [`DEFAULT_CASES`]).
///
/// ```
/// use sag_testkit::prelude::*;
///
/// prop! {
///     #[cases(32)]
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop {
    () => {};
    (
        $(# $attr:tt)*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $crate::__prop_one! {
            [$(# $attr)*] [] [$crate::prop::DEFAULT_CASES]
            fn $name($($arg in $strat),+) $body
        }
        $crate::prop! { $($rest)* }
    };
}

/// Implementation detail of [`prop!`]: peels attributes one at a time so
/// `#[cases(n)]` can appear anywhere among ordinary attributes such as
/// `#[ignore]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_one {
    (
        [#[cases($n:expr)] $($restattr:tt)*] [$($kept:tt)*] [$cases:expr]
        fn $name:ident($($arg:ident in $strat:expr),+) $body:block
    ) => {
        $crate::__prop_one! {
            [$($restattr)*] [$($kept)*] [$n]
            fn $name($($arg in $strat),+) $body
        }
    };
    (
        [# $attr:tt $($restattr:tt)*] [$($kept:tt)*] [$cases:expr]
        fn $name:ident($($arg:ident in $strat:expr),+) $body:block
    ) => {
        $crate::__prop_one! {
            [$($restattr)*] [$($kept)* # $attr] [$cases]
            fn $name($($arg in $strat),+) $body
        }
    };
    (
        [] [$($kept:tt)*] [$cases:expr]
        fn $name:ident($($arg:ident in $strat:expr),+) $body:block
    ) => {
        #[test]
        $($kept)*
        fn $name() {
            let strategy = ($($strat,)+);
            $crate::prop::run(stringify!($name), $cases, &strategy, |($($arg,)+)| $body);
        }
    };
}

/// `assert!` inside a [`prop!`](crate::prop!) body (kept distinct so
/// property assertions read the same as they did under `proptest`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// `assert_eq!` for [`prop!`](crate::prop!) bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// `assert_ne!` for [`prop!`](crate::prop!) bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current case when its sampled input doesn't satisfy a
/// precondition (the case counts as passing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    prop! {
        fn passes_trivially(a in 0usize..10, b in 0usize..10) {
            prop_assert!(a < 10 && b < 10);
        }

        #[cases(8)]
        fn case_count_override(_a in 0usize..2) {
            prop_assert!(true);
        }

        fn assume_skips(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let err = std::panic::catch_unwind(|| {
            crate::prop::run("doc_failure", 64, &(0usize..1000), |n| {
                assert!(n < 50, "too big: {n}");
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("seed 0x"), "no seed in: {msg}");
        assert!(msg.contains("SAG_PROP_SEED="), "no repro line in: {msg}");
        // Greedy shrinking must land on the boundary counterexample.
        assert!(
            msg.contains("shrunk input: 50\n"),
            "did not shrink to 50: {msg}"
        );
    }

    #[test]
    fn failing_seed_replays_deterministically() {
        // Extract the reported seed, then check the same seed samples the
        // same input — the contract behind SAG_PROP_SEED replay.
        let err = std::panic::catch_unwind(|| {
            crate::prop::run("doc_replay", 64, &(0u64..1_000_000), |n| {
                assert!(n < 3, "n={n}");
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string payload");
        let hex = msg
            .split("seed 0x")
            .nth(1)
            .and_then(|s| s.split(')').next())
            .expect("seed");
        let seed = u64::from_str_radix(hex, 16).expect("hex seed");
        let strat = 0u64..1_000_000;
        let a =
            crate::strategy::Strategy::sample(&strat, &mut crate::rng::Rng::seed_from_u64(seed));
        let b =
            crate::strategy::Strategy::sample(&strat, &mut crate::rng::Rng::seed_from_u64(seed));
        assert_eq!(a, b);
        assert!(
            a >= 3,
            "reported seed must reproduce a failing input, got {a}"
        );
    }

    #[test]
    fn shrink_respects_lower_bound() {
        let err = std::panic::catch_unwind(|| {
            crate::prop::run("doc_bound", 64, &(10usize..1000), |n| {
                assert!(n >= 2000, "always fails");
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string payload");
        // Everything fails, so the shrinker must bottom out at the
        // strategy's minimum, never below it.
        assert!(
            msg.contains("shrunk input: 10\n"),
            "bad shrink floor: {msg}"
        );
    }
}
