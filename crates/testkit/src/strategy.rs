//! Input strategies for the [`prop!`](crate::prop!) harness.
//!
//! A [`Strategy`] knows how to *sample* a value from a seeded
//! [`Rng`](crate::rng::Rng) and how to *shrink* a failing value toward
//! simpler counterexamples. Plain range expressions (`1usize..40`,
//! `-25.0..-10.0f64`), tuples of strategies, [`vec_of`], [`one_of`] and
//! [`just`] cover the shapes the workspace's property tests use.

use std::fmt::Debug;

use crate::rng::Rng;

/// A generator + shrinker of test inputs.
pub trait Strategy {
    /// The produced value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes strictly "simpler" candidates for a failing value,
    /// simplest first. Returning an empty vector stops shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

macro_rules! impl_int_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                if v == lo {
                    return Vec::new();
                }
                let mid = lo + (v - lo) / 2;
                let mut out = vec![lo];
                if mid != lo && mid != v {
                    out.push(mid);
                }
                out.push(v - 1);
                out.dedup();
                out
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = *self.start();
                let v = *value;
                if v == lo {
                    return Vec::new();
                }
                let mid = lo + (v - lo) / 2;
                let mut out = vec![lo];
                if mid != lo && mid != v {
                    out.push(mid);
                }
                out.push(v - 1);
                out.dedup();
                out
            }
        }
    )+};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_shrink(self.start, *value)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_shrink(*self.start(), *value)
            }
        }
    )+};
}

impl_float_strategy!(f32, f64);

/// Halves the distance to the lower bound; also tries zero when the
/// range straddles it (the classic "simplest float").
fn float_shrink<T>(lo: T, v: T) -> Vec<T>
where
    T: Copy
        + PartialOrd
        + core::ops::Sub<Output = T>
        + core::ops::Add<Output = T>
        + core::ops::Div<Output = T>
        + From<u8>
        + PartialEq,
{
    let zero: T = 0u8.into();
    let two: T = 2u8.into();
    if v == lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    if lo < zero && zero < v {
        out.push(zero);
    }
    let mid = lo + (v - lo) / two;
    if mid != lo && mid != v {
        out.push(mid);
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
);

/// Strategy producing a `Vec` of `elem` samples with a length drawn from
/// `len` — the replacement for `proptest::collection::vec`.
pub fn vec_of<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

/// See [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut Rng) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let min = self.len.start;
        let mut out: Vec<Self::Value> = Vec::new();
        // Structural shrinks first: shorter vectors are simpler than
        // vectors of simpler elements.
        if value.len() > min {
            out.push(value[..min].to_vec());
            let half = min.max(value.len() / 2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
            // Dropping a single interior element (bounded).
            for i in (0..value.len()).take(8) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element-wise shrinks (bounded so the candidate list stays small).
        for i in (0..value.len()).take(8) {
            for cand in self.elem.shrink(&value[i]).into_iter().take(2) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// Strategy choosing uniformly among the given values; shrinks toward
/// the first — the replacement for `prop_oneof![Just(..), ..]`.
pub fn one_of<T: Clone + Debug, const N: usize>(choices: [T; N]) -> OneOf<T> {
    assert!(N > 0, "one_of needs at least one choice");
    OneOf {
        choices: choices.to_vec(),
    }
}

/// See [`one_of`].
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    choices: Vec<T>,
}

impl<T: Clone + Debug + PartialEq> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        self.choices[rng.gen_range(0..self.choices.len())].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        match self.choices.iter().position(|c| c == value) {
            Some(0) | None => Vec::new(),
            Some(_) => vec![self.choices[0].clone()],
        }
    }
}

/// Constant strategy: always yields `value`, never shrinks.
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just { value }
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T> {
    value: T,
}

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut Rng) -> T {
        self.value.clone()
    }

    fn shrink(&self, _value: &T) -> Vec<T> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_samples_and_shrinks_toward_lo() {
        let s = 3usize..40;
        let mut rng = Rng::seed_from_u64(0);
        for _ in 0..200 {
            assert!((3..40).contains(&s.sample(&mut rng)));
        }
        let cands = s.shrink(&20);
        assert!(cands.contains(&3));
        assert!(cands.iter().all(|&c| c < 20));
        assert!(s.shrink(&3).is_empty());
    }

    #[test]
    fn float_range_shrinks_toward_lo_and_zero() {
        let s = -10.0..10.0f64;
        let cands = s.shrink(&7.5);
        assert!(cands.contains(&-10.0));
        assert!(cands.contains(&0.0));
        assert!(s.shrink(&-10.0).is_empty());
    }

    #[test]
    fn tuple_shrinks_one_coordinate_at_a_time() {
        let s = (0usize..10, 0usize..10);
        for cand in s.shrink(&(4, 7)) {
            let changed = usize::from(cand.0 != 4) + usize::from(cand.1 != 7);
            assert_eq!(changed, 1, "candidate {cand:?} changed both coordinates");
        }
    }

    #[test]
    fn vec_of_respects_length_and_shrinks_shorter() {
        let s = vec_of(0usize..5, 2..6);
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
        }
        let v = s.sample(&mut rng);
        if v.len() > 2 {
            assert!(s.shrink(&v).iter().any(|c| c.len() < v.len()));
        }
    }

    #[test]
    fn one_of_only_yields_choices() {
        let s = one_of([300.0, 500.0, 800.0]);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..50 {
            assert!([300.0, 500.0, 800.0].contains(&s.sample(&mut rng)));
        }
        assert_eq!(s.shrink(&800.0), vec![300.0]);
        assert!(s.shrink(&300.0).is_empty());
    }

    #[test]
    fn just_is_constant() {
        let s = just(17u8);
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(s.sample(&mut rng), 17);
        assert!(s.shrink(&17).is_empty());
    }
}
