//! # sag-testkit — hermetic test substrate
//!
//! Zero-dependency replacements for the external test tooling the SAG
//! workspace used to pull from the registry, so the full tier-1 verify
//! (`cargo build --release --offline && cargo test -q --offline`) runs
//! with no network access:
//!
//! * [`rng`] — a SplitMix64-seeded xoshiro256\*\* generator exposing the
//!   `rand`-shaped surface the codebase uses (`gen_range`, `gen_bool`,
//!   `shuffle`, uniform/normal floats), deterministic per seed on every
//!   platform.
//! * [`strategy`] + [`prop!`] — a property-testing harness replacing
//!   `proptest`: range/tuple/vec/one-of strategies, configurable case
//!   counts, failing-seed reporting and greedy input shrinking.
//!   Reproduce any failure with `SAG_PROP_SEED=<seed> cargo test <name>`.
//! * [`golden`] — golden-file assertions for fixed-seed regression
//!   scenarios (`SAG_UPDATE_GOLDEN=1` rewrites).
//! * [`chaos`] — fault-injection primitives (poisoned floats, a
//!   structural [`chaos::Fault`] catalogue) for robustness suites.
//!
//! The crate deliberately has **no dependencies** (not even workspace
//! path deps), so every other crate can dev-depend on it without cycles
//! and the whole workspace stays buildable offline.

pub mod chaos;
pub mod golden;
pub mod prop;
pub mod rng;
pub mod strategy;

/// The single import property tests need:
/// `use sag_testkit::prelude::*;`.
pub mod prelude {
    pub use crate::chaos::{flip_byte, poisoned_f64, Fault};
    pub use crate::golden::assert_golden;
    pub use crate::rng::Rng;
    pub use crate::strategy::{just, one_of, vec_of, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
}
