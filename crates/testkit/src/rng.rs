//! Deterministic pseudo-random number generation.
//!
//! A SplitMix64 seeder expanding a single `u64` into the 256-bit state of
//! a xoshiro256\*\* core. The surface mirrors the small part of `rand`
//! this workspace actually uses — [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`Rng::shuffle`], uniform/normal floats — so migrating a test is a
//! one-line import change.
//!
//! Every stream is a pure function of its seed: the same seed always
//! yields the same sequence on every platform, which is what makes the
//! golden-scenario tests and the property harness reproducible
//! bit-for-bit.

/// SplitMix64 step: the standard seeding PRNG (Steele, Lea & Flood).
///
/// Used both to expand seeds into xoshiro state and as the per-case seed
/// stream of the property harness.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256\*\* generator.
///
/// # Example
/// ```
/// use sag_testkit::rng::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x: f64 = a.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Expands `seed` into a full 256-bit state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256\*\*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (`Range` or `RangeInclusive` over the
    /// primitive integer and float types).
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.f64() < p
    }

    /// Standard-normal sample via Marsaglia's polar method, scaled to
    /// `mean` / `std_dev`.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return mean + std_dev * u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Exponential sample with the given `rate` (λ): inter-arrival
    /// times of a Poisson process via inversion, `−ln(1−u)/λ`.
    ///
    /// # Panics
    /// Panics unless `rate` is strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be > 0 and finite, got {rate}"
        );
        // `1 − u` is in (0, 1], so the log is finite.
        -(1.0 - self.f64()).ln() / rate
    }

    /// Poisson-distributed count with the given `mean` (Knuth's
    /// product-of-uniforms method — fine for the small means event
    /// traces use; `O(mean)` per sample).
    ///
    /// # Panics
    /// Panics unless `mean` is non-negative and finite.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "poisson mean must be ≥ 0 and finite, got {mean}"
        );
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut product = 1.0;
        loop {
            product *= self.f64();
            if product <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A statistically independent generator split off this one
    /// (advances `self`).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

/// Unbiased integer sampling from `[0, n)` (Lemire's method).
#[inline]
fn uniform_below(rng: &mut Rng, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection threshold so every residue class is equally likely.
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = (rng.next_u64() as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )+};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_range {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                let u = rng.f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + (hi - lo) * u as $t
            }
        }
    )+};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_xoshiro_reference_values() {
        // First outputs for seed 0 expanded by splitmix64, cross-checked
        // against the reference C implementation.
        let mut r = Rng::seed_from_u64(0);
        let first = r.next_u64();
        let mut again = Rng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let g = r.gen_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut r = Rng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = Rng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&heads), "got {heads}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exponential_mean_tracks_rate() {
        let mut r = Rng::seed_from_u64(11);
        let n = 20_000;
        let rate = 2.5;
        let mean = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.02, "mean {mean}");
        assert!((0..1000).all(|_| r.exponential(rate) >= 0.0));
    }

    #[test]
    fn poisson_moments_and_edge_cases() {
        let mut r = Rng::seed_from_u64(12);
        assert!((0..100).all(|_| r.poisson(0.0) == 0));
        let n = 20_000;
        let lambda = 3.0;
        let samples: Vec<u64> = (0..n).map(|_| r.poisson(lambda)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        // Poisson variance equals its mean.
        assert!((var - lambda).abs() < 0.2, "var {var}");
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        Rng::seed_from_u64(0).exponential(0.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50 elements staying in place is a broken shuffle"
        );
    }

    #[test]
    fn fork_streams_diverge() {
        let mut r = Rng::seed_from_u64(6);
        let mut a = r.fork();
        let mut b = r.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5usize..5);
    }
}
