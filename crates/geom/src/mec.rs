//! Minimum enclosing circle (Welzl's algorithm).
//!
//! For a group of subscribers assigned to one shared relay with *equal*
//! distance requirements, the centre of their minimum enclosing circle
//! is the position minimising the worst access-link distance — a useful
//! relay-placement primitive and a diagnostic for zone footprints.

use crate::circle::Circle;
use crate::float;
use crate::point::Point;

/// Computes the minimum enclosing circle of `points`.
///
/// Returns `None` for an empty input; a single point yields a
/// zero-radius circle. Runs Welzl's move-to-front algorithm; the input
/// order is permuted deterministically (no RNG) which keeps results
/// reproducible — expected-linear time still holds for the smallish
/// inputs this workspace produces.
///
/// # Example
/// ```
/// use sag_geom::{mec::minimum_enclosing_circle, Point};
/// let c = minimum_enclosing_circle(&[
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
/// ]).unwrap();
/// assert!((c.radius - 1.0).abs() < 1e-9);
/// assert!(c.center.approx_eq(Point::new(1.0, 0.0)));
/// ```
pub fn minimum_enclosing_circle(points: &[Point]) -> Option<Circle> {
    if points.is_empty() {
        return None;
    }
    // Deterministic shuffle: a fixed multiplicative permutation is enough
    // to defeat adversarial orderings without RNG.
    let n = points.len();
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let mut idx = 0usize;
    let stride = largest_coprime_stride(n);
    for _ in 0..n {
        pts.push(points[idx]);
        idx = (idx + stride) % n;
    }

    let mut c = Circle::new(pts[0], 0.0);
    for i in 1..n {
        if !contains(&c, pts[i]) {
            c = Circle::new(pts[i], 0.0);
            for j in 0..i {
                if !contains(&c, pts[j]) {
                    c = circle_two(pts[i], pts[j]);
                    for k in 0..j {
                        if !contains(&c, pts[k]) {
                            c = circle_three(pts[i], pts[j], pts[k]);
                        }
                    }
                }
            }
        }
    }
    Some(c)
}

fn largest_coprime_stride(n: usize) -> usize {
    if n <= 2 {
        return 1;
    }
    let mut s = n / 2 + 1;
    while gcd(s, n) != 1 {
        s += 1;
    }
    s % n
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn contains(c: &Circle, p: Point) -> bool {
    c.center.distance_sq(p) <= c.radius * c.radius + 1e-7
}

fn circle_two(a: Point, b: Point) -> Circle {
    Circle::new(a.midpoint(b), a.distance(b) / 2.0)
}

/// Circumcircle of three points; collinear triples fall back to the
/// widest two-point circle.
fn circle_three(a: Point, b: Point, c: Point) -> Circle {
    let d = 2.0 * ((b - a).cross(c - a));
    if d.abs() <= float::EPS {
        // Collinear: the diametral circle of the farthest pair.
        let ab = circle_two(a, b);
        let ac = circle_two(a, c);
        let bc = circle_two(b, c);
        return [ab, ac, bc]
            .into_iter()
            .max_by(|x, y| float::total_cmp(&x.radius, &y.radius))
            .expect("three candidates");
    }
    let a2 = a.to_vec().norm_sq();
    let b2 = b.to_vec().norm_sq();
    let c2 = c.to_vec().norm_sq();
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    let center = Point::new(ux, uy);
    Circle::new(center, center.distance(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn empty_and_singleton() {
        assert!(minimum_enclosing_circle(&[]).is_none());
        let c = minimum_enclosing_circle(&[Point::new(3.0, 4.0)]).unwrap();
        assert_eq!(c.radius, 0.0);
        assert!(c.center.approx_eq(Point::new(3.0, 4.0)));
    }

    #[test]
    fn pair_is_diametral() {
        let c = minimum_enclosing_circle(&[Point::new(-1.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        assert!((c.radius - 1.0).abs() < 1e-9);
        assert!(c.center.approx_eq(Point::ORIGIN));
    }

    #[test]
    fn equilateral_triangle_circumcircle() {
        let pts = [
            Point::new(0.0, 1.0),
            Point::new((3.0f64).sqrt() / 2.0, -0.5),
            Point::new(-(3.0f64).sqrt() / 2.0, -0.5),
        ];
        let c = minimum_enclosing_circle(&pts).unwrap();
        assert!((c.radius - 1.0).abs() < 1e-9);
        assert!(c.center.distance(Point::ORIGIN) < 1e-9);
    }

    #[test]
    fn obtuse_triangle_uses_two_points() {
        // Very flat triangle: MEC is the diametral circle of the long side.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 0.1),
        ];
        let c = minimum_enclosing_circle(&pts).unwrap();
        assert!((c.radius - 5.0).abs() < 1e-3);
    }

    #[test]
    fn collinear_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let c = minimum_enclosing_circle(&pts).unwrap();
        assert!((c.radius - 2.5).abs() < 1e-9);
    }

    #[test]
    fn interior_points_ignored() {
        let mut pts = vec![
            Point::new(-3.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
            Point::new(0.0, -3.0),
        ];
        for k in 0..10 {
            pts.push(Point::new(0.1 * k as f64, 0.05 * k as f64));
        }
        let c = minimum_enclosing_circle(&pts).unwrap();
        assert!((c.radius - 3.0).abs() < 1e-9);
    }

    prop! {
        fn prop_encloses_all(seed in 0u64..300, n in 1usize..40) {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
                .collect();
            let c = minimum_enclosing_circle(&pts).unwrap();
            for p in &pts {
                prop_assert!(c.center.distance(*p) <= c.radius + 1e-6,
                    "{p} outside MEC r={}", c.radius);
            }
        }

        fn prop_not_larger_than_diametral_bound(seed in 0u64..300, n in 2usize..25) {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
                .collect();
            let c = minimum_enclosing_circle(&pts).unwrap();
            // MEC radius is at most the max pairwise distance / sqrt(3) * ... —
            // use the safe bound: at most max pairwise distance.
            let diam = pts
                .iter()
                .flat_map(|a| pts.iter().map(move |b| a.distance(*b)))
                .fold(0.0f64, f64::max);
            prop_assert!(c.radius <= diam / 3.0f64.sqrt() + 1e-6);
            // And at least half the diameter.
            prop_assert!(c.radius + 1e-6 >= diam / 2.0);
        }

        fn prop_order_invariant(seed in 0u64..100, n in 2usize..15) {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)))
                .collect();
            let c1 = minimum_enclosing_circle(&pts).unwrap();
            let mut rev = pts.clone();
            rev.reverse();
            let c2 = minimum_enclosing_circle(&rev).unwrap();
            prop_assert!((c1.radius - c2.radius).abs() < 1e-6);
        }
    }
}
