//! # sag-geom — 2-D computational geometry substrate
//!
//! Geometry primitives used throughout the SAG (Signal-Aware Green relay
//! network design) reproduction:
//!
//! * [`Point`] / [`Vec2`] — planar points and displacement vectors,
//! * [`Circle`] — subscriber feasible-coverage circles and their pairwise
//!   intersections (the *IAC* candidate construction of the paper),
//! * [`Rect`] and [`GridSpec`] — the playing field and the *GAC* grid
//!   candidate construction,
//! * [`disks`] — common-intersection tests over families of disks, used by
//!   the paper's *Update RS Topology* (Algorithm 5) "common area" check,
//! * [`SpatialHash`] — a uniform-bucket spatial index used by zone
//!   partitioning and interference scans,
//! * [`hull`] — convex hulls for topology export and zone diagnostics,
//! * [`arc`] — sampling positions along a circle, used by *RS Sliding
//!   Movement* (Algorithm 4).
//!
//! All computation is `f64`; tolerance-controlled comparisons live in
//! [`float`].
//!
//! # Example
//!
//! ```
//! use sag_geom::{Circle, Point};
//!
//! let a = Circle::new(Point::new(0.0, 0.0), 5.0);
//! let b = Circle::new(Point::new(6.0, 0.0), 5.0);
//! let pts = a.intersection_points(&b);
//! assert_eq!(pts.len(), 2);
//! for p in pts {
//!     assert!(a.on_boundary(p) && b.on_boundary(p));
//! }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arc;
pub mod circle;
pub mod disks;
pub mod float;
pub mod grid;
pub mod hull;
pub mod mec;
pub mod point;
pub mod rect;
pub mod segment;
pub mod spatial;

pub use circle::{Circle, CircleRelation};
pub use grid::GridSpec;
pub use point::{Point, Vec2};
pub use rect::Rect;
pub use segment::Segment;
pub use spatial::SpatialHash;
