//! Sampling positions along circles — the motion primitive of *RS Sliding
//! Movement* (Algorithm 4).
//!
//! An infeasible relay sits on its covered subscriber's feasible circle;
//! the algorithm "slides" it along that circle looking for a position that
//! clears the SNR violations. The continuum of positions is discretised
//! into a finite candidate sequence by [`sample_circle`] /
//! [`sample_arc`], which is how the paper's "transfer the unlimited number
//! of order combinations into limited ones" is realised here.

use crate::circle::Circle;
use crate::point::Point;

/// Uniformly samples `n` points on the full circle, starting at angle
/// `phase` radians.
///
/// Returns an empty vector for `n == 0`; a single sample sits at `phase`.
///
/// # Example
/// ```
/// use sag_geom::{arc, Circle, Point};
/// let c = Circle::new(Point::ORIGIN, 2.0);
/// let pts = arc::sample_circle(&c, 8, 0.0);
/// assert_eq!(pts.len(), 8);
/// assert!(pts.iter().all(|p| c.on_boundary(*p)));
/// ```
pub fn sample_circle(circle: &Circle, n: usize, phase: f64) -> Vec<Point> {
    let step = std::f64::consts::TAU / n.max(1) as f64;
    (0..n)
        .map(|k| circle.point_at(phase + k as f64 * step))
        .collect()
}

/// Samples `n` points on the arc from angle `from` to angle `to`
/// (counter-clockwise), endpoints included for `n >= 2`.
///
/// For `n == 1` the single sample is the arc midpoint. `to` may be less
/// than `from`; the arc then wraps through `from + TAU`.
pub fn sample_arc(circle: &Circle, from: f64, to: f64, n: usize) -> Vec<Point> {
    if n == 0 {
        return Vec::new();
    }
    let mut span = to - from;
    while span < 0.0 {
        span += std::f64::consts::TAU;
    }
    if n == 1 {
        return vec![circle.point_at(from + span / 2.0)];
    }
    let step = span / (n - 1) as f64;
    (0..n)
        .map(|k| circle.point_at(from + k as f64 * step))
        .collect()
}

/// The angle (radians) of point `p` as seen from the circle's centre.
///
/// `p` need not be on the boundary; its direction from the centre is used.
/// Returns `0.0` if `p` coincides with the centre.
pub fn angle_of(circle: &Circle, p: Point) -> f64 {
    let v = p - circle.center;
    if v.norm() < crate::float::EPS {
        0.0
    } else {
        v.angle()
    }
}

/// Sliding candidate sequence: positions on `circle` ordered by angular
/// distance from the current position `at` (nearest first), alternating
/// sides, `n` samples total.
///
/// This realises the sliding search's locality bias: the relay is tried at
/// positions progressively farther from where it already stands so that
/// small corrective moves are preferred — small moves are least likely to
/// disturb SNR elsewhere.
pub fn sliding_candidates(circle: &Circle, at: Point, n: usize) -> Vec<Point> {
    let base = angle_of(circle, at);
    let step = std::f64::consts::TAU / n.max(1) as f64;
    let mut out = Vec::with_capacity(n);
    let mut k = 1usize;
    out.push(circle.point_at(base));
    while out.len() < n {
        let delta = k.div_ceil(2) as f64 * step;
        let theta = if k % 2 == 1 {
            base + delta
        } else {
            base - delta
        };
        out.push(circle.point_at(theta));
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    fn c(r: f64) -> Circle {
        Circle::new(Point::new(1.0, -2.0), r)
    }

    #[test]
    fn sample_circle_counts_and_boundary() {
        let circle = c(5.0);
        for n in [0usize, 1, 2, 7, 64] {
            let pts = sample_circle(&circle, n, 0.3);
            assert_eq!(pts.len(), n);
            assert!(pts.iter().all(|p| circle.on_boundary(*p)));
        }
    }

    #[test]
    fn sample_circle_is_uniform() {
        let circle = c(2.0);
        let pts = sample_circle(&circle, 4, 0.0);
        // Consecutive points are a quarter-turn apart.
        for i in 0..4 {
            let a = pts[i];
            let b = pts[(i + 1) % 4];
            assert!(
                (a.distance(b)
                    - 2.0 * 2.0_f64.sqrt() * 2.0 / 2.0_f64.sqrt() / 2.0 * 2.0_f64.sqrt())
                .abs()
                    < 1.0
            );
            // chord of 90° on radius 2 = 2*sqrt(2)
            assert!((a.distance(b) - 2.0 * (2.0_f64).sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_arc_endpoints() {
        let circle = c(3.0);
        let pts = sample_arc(&circle, 0.0, std::f64::consts::PI, 5);
        assert_eq!(pts.len(), 5);
        assert!(pts[0].approx_eq(circle.point_at(0.0)));
        assert!(pts[4].approx_eq(circle.point_at(std::f64::consts::PI)));
    }

    #[test]
    fn sample_arc_wraps_negative_span() {
        let circle = c(1.0);
        // from 3π/2 to π/2, wrapping through 0.
        let pts = sample_arc(
            &circle,
            3.0 * std::f64::consts::FRAC_PI_2,
            std::f64::consts::FRAC_PI_2,
            3,
        );
        assert_eq!(pts.len(), 3);
        // Midpoint should be at angle 0 (the wrap-through point), i.e. (cx + r, cy).
        assert!(pts[1].approx_eq(circle.point_at(0.0)));
    }

    #[test]
    fn sample_arc_single_is_midpoint() {
        let circle = c(1.0);
        let pts = sample_arc(&circle, 0.0, std::f64::consts::PI, 1);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].approx_eq(circle.point_at(std::f64::consts::FRAC_PI_2)));
    }

    #[test]
    fn angle_of_roundtrip() {
        let circle = c(4.0);
        for theta in [0.0, 0.7, 2.0, -1.2] {
            let p = circle.point_at(theta);
            let got = angle_of(&circle, p);
            let diff = (got - theta).rem_euclid(std::f64::consts::TAU);
            assert!(diff < 1e-9 || (std::f64::consts::TAU - diff) < 1e-9);
        }
        assert_eq!(angle_of(&circle, circle.center), 0.0);
    }

    #[test]
    fn sliding_candidates_start_at_current() {
        let circle = c(5.0);
        let at = circle.point_at(1.0);
        let cands = sliding_candidates(&circle, at, 9);
        assert_eq!(cands.len(), 9);
        assert!(cands[0].distance(at) < 1e-9);
        // Distances from the starting position are non-decreasing in pairs.
        let d1 = cands[1].distance(at);
        let d3 = cands[3].distance(at);
        assert!(d3 >= d1 - 1e-9);
        assert!(cands.iter().all(|p| circle.on_boundary(*p)));
    }

    prop! {
        fn prop_samples_on_boundary(r in 0.5..60.0f64, n in 1usize..40, phase in -6.3..6.3f64) {
            let circle = Circle::new(Point::new(-3.0, 7.0), r);
            for p in sample_circle(&circle, n, phase) {
                prop_assert!(circle.on_boundary(p));
            }
        }

        fn prop_sliding_candidates_on_boundary(r in 0.5..60.0f64, n in 1usize..40, theta in -6.3..6.3f64) {
            let circle = Circle::new(Point::new(2.0, 2.0), r);
            let at = circle.point_at(theta);
            let cands = sliding_candidates(&circle, at, n);
            prop_assert_eq!(cands.len(), n);
            for p in cands {
                prop_assert!(circle.on_boundary(p));
            }
        }
    }
}
