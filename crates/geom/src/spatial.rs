//! A uniform-bucket spatial hash for radius and nearest-neighbour queries.
//!
//! Zone partitioning and interference scans repeatedly ask "which stations
//! lie within distance `d` of this point?"; a uniform grid of buckets makes
//! those queries `O(points in range)` instead of `O(n)`.

use std::collections::HashMap;

use crate::float;
use crate::point::Point;

/// A spatial index over a fixed set of points.
///
/// Build once with [`SpatialHash::build`], then query. Indices returned by
/// queries refer to the original input slice order.
///
/// # Example
/// ```
/// use sag_geom::{Point, SpatialHash};
/// let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(1.0, 1.0)];
/// let idx = SpatialHash::build(&pts, 5.0);
/// let mut near = idx.query_radius(Point::new(0.0, 0.0), 2.0);
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialHash {
    cell: f64,
    points: Vec<Point>,
    buckets: HashMap<(i64, i64), Vec<usize>>,
}

impl SpatialHash {
    /// Builds an index over `points` with bucket side `cell`.
    ///
    /// A good `cell` is the typical query radius; correctness does not
    /// depend on the choice, only performance.
    ///
    /// # Panics
    /// Panics if `cell` is not strictly positive and finite, or any point
    /// is not finite.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell must be > 0, got {cell}"
        );
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {i} is not finite");
            buckets.entry(Self::key(*p, cell)).or_default().push(i);
        }
        SpatialHash {
            cell,
            points: points.to_vec(),
            buckets,
        }
    }

    #[inline]
    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within distance `radius` of `center`
    /// (inclusive, with the crate tolerance). Order is unspecified.
    pub fn query_radius(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_radius_into(center, radius, &mut out);
        out
    }

    /// Appends the indices of all points within `radius` of `center` to
    /// `out` — the allocation-reusing form of [`SpatialHash::query_radius`]
    /// for callers that query in a hot loop. `out` is *not* cleared.
    pub fn query_radius_into(&self, center: Point, radius: f64, out: &mut Vec<usize>) {
        self.for_each_within(center, radius, |i, _| out.push(i));
    }

    /// Visits every point within distance `radius` of `center` without
    /// allocating, calling `visit(index, distance)` per hit (inclusive
    /// boundary, crate tolerance). Order is unspecified.
    ///
    /// This is the radius-bounded neighbour walk incremental consumers
    /// (e.g. interference-ledger updates under a contribution cutoff)
    /// run per relay move, so it must not allocate or re-test points
    /// outside the covered buckets.
    pub fn for_each_within(&self, center: Point, radius: f64, mut visit: impl FnMut(usize, f64)) {
        assert!(radius.is_finite() && radius >= 0.0, "radius must be ≥ 0");
        let lo = Self::key(Point::new(center.x - radius, center.y - radius), self.cell);
        let hi = Self::key(Point::new(center.x + radius, center.y + radius), self.cell);
        for bx in lo.0..=hi.0 {
            for by in lo.1..=hi.1 {
                if let Some(bucket) = self.buckets.get(&(bx, by)) {
                    for &i in bucket {
                        let d = self.points[i].distance(center);
                        if float::leq(d, radius) {
                            visit(i, d);
                        }
                    }
                }
            }
        }
    }

    /// Index of the nearest point to `center`, or `None` for an empty
    /// index. Ties break toward the lower index.
    pub fn nearest(&self, center: Point) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        // Expanding ring search over buckets; falls back to linear scan
        // once the ring covers everything (bounded by bucket extent).
        let start = Self::key(center, self.cell);
        let mut best: Option<(usize, f64)> = None;
        let mut ring = 0i64;
        loop {
            let mut any_bucket = false;
            for bx in (start.0 - ring)..=(start.0 + ring) {
                for by in (start.1 - ring)..=(start.1 + ring) {
                    // Only the new ring shell.
                    if ring > 0
                        && bx > start.0 - ring
                        && bx < start.0 + ring
                        && by > start.1 - ring
                        && by < start.1 + ring
                    {
                        continue;
                    }
                    if let Some(bucket) = self.buckets.get(&(bx, by)) {
                        any_bucket = true;
                        for &i in bucket {
                            let d = self.points[i].distance(center);
                            let better = match best {
                                None => true,
                                Some((bi, bd)) => {
                                    d < bd - float::EPS || (float::approx_eq(d, bd) && i < bi)
                                }
                            };
                            if better {
                                best = Some((i, d));
                            }
                        }
                    }
                }
            }
            // Stop when we have a candidate and the next ring cannot beat
            // it (ring inner distance > best distance), or the search has
            // exhausted all buckets.
            if let Some((_, bd)) = best {
                let ring_inner = (ring as f64) * self.cell;
                if ring_inner > bd {
                    break;
                }
            }
            if !any_bucket && ring > 0 {
                // Expanded past every bucket without finding more.
                let max_ring = self.max_ring(start);
                if ring > max_ring {
                    break;
                }
            }
            ring += 1;
            if ring > self.max_ring(start) + 1 {
                break;
            }
        }
        best.map(|(i, _)| i)
    }

    fn max_ring(&self, start: (i64, i64)) -> i64 {
        self.buckets
            .keys()
            .map(|&(bx, by)| (bx - start.0).abs().max((by - start.1).abs()))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    fn brute_radius(pts: &[Point], c: Point, r: f64) -> Vec<usize> {
        let mut v: Vec<usize> = (0..pts.len())
            .filter(|&i| float::leq(pts[i].distance(c), r))
            .collect();
        v.sort_unstable();
        v
    }

    fn brute_nearest(pts: &[Point], c: Point) -> Option<usize> {
        (0..pts.len()).min_by(|&a, &b| float::total_cmp(&pts[a].distance(c), &pts[b].distance(c)))
    }

    #[test]
    fn empty_index() {
        let idx = SpatialHash::build(&[], 5.0);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.query_radius(Point::ORIGIN, 100.0).is_empty());
        assert!(idx.nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let mut rng = Rng::seed_from_u64(7);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.gen_range(-250.0..250.0), rng.gen_range(-250.0..250.0)))
            .collect();
        let idx = SpatialHash::build(&pts, 40.0);
        for _ in 0..50 {
            let c = Point::new(rng.gen_range(-250.0..250.0), rng.gen_range(-250.0..250.0));
            let r = rng.gen_range(0.0..120.0);
            let mut got = idx.query_radius(c, r);
            got.sort_unstable();
            assert_eq!(got, brute_radius(&pts, c, r));
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut rng = Rng::seed_from_u64(11);
        let pts: Vec<Point> = (0..150)
            .map(|_| Point::new(rng.gen_range(-250.0..250.0), rng.gen_range(-250.0..250.0)))
            .collect();
        let idx = SpatialHash::build(&pts, 25.0);
        for _ in 0..100 {
            let c = Point::new(rng.gen_range(-400.0..400.0), rng.gen_range(-400.0..400.0));
            let got = idx.nearest(c).unwrap();
            let want = brute_nearest(&pts, c).unwrap();
            assert!(
                float::approx_eq(pts[got].distance(c), pts[want].distance(c)),
                "nearest mismatch at {c}: got {got} want {want}"
            );
        }
    }

    #[test]
    fn single_point() {
        let pts = [Point::new(3.0, 4.0)];
        let idx = SpatialHash::build(&pts, 1.0);
        assert_eq!(idx.nearest(Point::ORIGIN), Some(0));
        assert_eq!(idx.query_radius(Point::ORIGIN, 5.0), vec![0]);
        assert!(idx.query_radius(Point::ORIGIN, 4.9).is_empty());
    }

    #[test]
    fn inclusive_boundary() {
        let pts = [Point::new(10.0, 0.0)];
        let idx = SpatialHash::build(&pts, 3.0);
        assert_eq!(idx.query_radius(Point::ORIGIN, 10.0), vec![0]);
    }

    #[test]
    #[should_panic]
    fn zero_cell_panics() {
        SpatialHash::build(&[], 0.0);
    }

    #[test]
    fn for_each_within_reports_true_distances() {
        let pts = [Point::new(3.0, 4.0), Point::new(30.0, 40.0)];
        let idx = SpatialHash::build(&pts, 10.0);
        let mut seen = Vec::new();
        idx.for_each_within(Point::ORIGIN, 10.0, |i, d| seen.push((i, d)));
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, 0);
        assert!((seen[0].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn query_radius_into_appends_without_clearing() {
        let pts = [Point::new(1.0, 0.0)];
        let idx = SpatialHash::build(&pts, 5.0);
        let mut out = vec![99];
        idx.query_radius_into(Point::ORIGIN, 2.0, &mut out);
        assert_eq!(out, vec![99, 0]);
    }

    prop! {
        fn prop_radius_equals_brute(
            seed in 0u64..1000,
            n in 1usize..60,
            cell in 1.0..60.0f64,
            r in 0.0..200.0f64,
        ) {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
                .collect();
            let idx = SpatialHash::build(&pts, cell);
            let c = Point::new(rng.gen_range(-150.0..150.0), rng.gen_range(-150.0..150.0));
            let mut got = idx.query_radius(c, r);
            got.sort_unstable();
            prop_assert_eq!(got, brute_radius(&pts, c, r));
        }
    }
}
