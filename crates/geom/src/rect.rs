//! Axis-aligned rectangles (the playing field).

use std::fmt;

use crate::float;
use crate::point::Point;

/// A closed axis-aligned rectangle.
///
/// The paper's playing fields are squares centred at the origin
/// (`300×300`, `500×500`, `800×800`); [`Rect::centered_square`] builds
/// those directly.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square of side `side` centred at the origin.
    ///
    /// # Panics
    /// Panics if `side` is negative or not finite.
    pub fn centered_square(side: f64) -> Self {
        assert!(
            side.is_finite() && side >= 0.0,
            "side must be ≥ 0, got {side}"
        );
        let h = side / 2.0;
        Rect::from_corners(Point::new(-h, -h), Point::new(h, h))
    }

    /// Lower-left corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (x-extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y-extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Returns `true` if `p` lies in the closed rectangle (with tolerance).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        float::geq(p.x, self.min.x)
            && float::leq(p.x, self.max.x)
            && float::geq(p.y, self.min.y)
            && float::leq(p.y, self.max.y)
    }

    /// Clamps `p` into the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            float::clamp(p.x, self.min.x, self.max.x),
            float::clamp(p.y, self.min.y, self.max.y),
        )
    }

    /// Grows the rectangle by `margin` on every side (shrinks if negative).
    ///
    /// # Panics
    /// Panics if shrinking past a degenerate rectangle.
    pub fn inflate(&self, margin: f64) -> Rect {
        let r = Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        };
        assert!(
            r.min.x <= r.max.x && r.min.y <= r.max.y,
            "inflate shrank rect below zero size"
        );
        r
    }

    /// The four corner points in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn corners_normalised() {
        let r = Rect::from_corners(Point::new(3.0, -1.0), Point::new(-2.0, 5.0));
        assert_eq!(r.min(), Point::new(-2.0, -1.0));
        assert_eq!(r.max(), Point::new(3.0, 5.0));
        assert_eq!(r.width(), 5.0);
        assert_eq!(r.height(), 6.0);
        assert_eq!(r.area(), 30.0);
    }

    #[test]
    fn centered_square_is_symmetric() {
        let r = Rect::centered_square(500.0);
        assert_eq!(r.min(), Point::new(-250.0, -250.0));
        assert_eq!(r.max(), Point::new(250.0, 250.0));
        assert!(r.center().approx_eq(Point::ORIGIN));
    }

    #[test]
    fn contains_and_clamp() {
        let r = Rect::centered_square(10.0);
        assert!(r.contains(Point::ORIGIN));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(5.1, 0.0)));
        assert_eq!(r.clamp(Point::new(100.0, -100.0)), Point::new(5.0, -5.0));
        let inside = Point::new(1.0, 2.0);
        assert_eq!(r.clamp(inside), inside);
    }

    #[test]
    fn inflate_grows() {
        let r = Rect::centered_square(10.0).inflate(2.0);
        assert_eq!(r.width(), 14.0);
        let s = r.inflate(-2.0);
        assert_eq!(s.width(), 10.0);
    }

    #[test]
    fn corners_are_contained() {
        let r = Rect::centered_square(8.0);
        for c in r.corners() {
            assert!(r.contains(c));
        }
    }

    #[test]
    #[should_panic]
    fn negative_square_panics() {
        Rect::centered_square(-1.0);
    }

    prop! {
        fn prop_clamp_is_inside(
            ax in -100.0..100.0f64, ay in -100.0..100.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64,
            px in -1e3..1e3f64, py in -1e3..1e3f64,
        ) {
            let r = Rect::from_corners(Point::new(ax, ay), Point::new(bx, by));
            prop_assert!(r.contains(r.clamp(Point::new(px, py))));
        }

        fn prop_clamp_identity_inside(side in 1.0..500.0f64, t in 0.0..1.0f64, u in 0.0..1.0f64) {
            let r = Rect::centered_square(side);
            let p = Point::new(
                r.min().x + t * r.width(),
                r.min().y + u * r.height(),
            );
            prop_assert!(r.clamp(p).approx_eq(p));
        }
    }
}
