//! Circles and circle–circle intersections.
//!
//! Every subscriber station `s_i` in the paper induces a *feasible coverage
//! circle* `c_i` of radius `d_i` (its capacity-derived distance request)
//! centred at its location. The *IAC* candidate construction collects the
//! pairwise intersection points of these circles; *RS Sliding Movement*
//! slides relay positions along them.

use std::fmt;

use crate::float;
use crate::point::{Point, Vec2};

/// A circle (and, in predicates, the closed disk it bounds).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circle {
    /// Centre point.
    pub center: Point,
    /// Radius; must be non-negative and finite.
    pub radius: f64,
}

/// Classification of the relative position of two circles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircleRelation {
    /// The circles are identical (same centre & radius up to tolerance).
    Coincident,
    /// The closed disks are disjoint (no common point).
    Disjoint,
    /// One disk lies strictly inside the other without touching.
    Nested,
    /// The circles touch at exactly one point.
    Tangent,
    /// The circles cross at two points.
    Crossing,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    /// Panics if `radius` is negative or not finite, or the centre is not
    /// finite: such circles indicate a modelling bug upstream.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        assert!(center.is_finite(), "circle centre must be finite");
        Circle { center, radius }
    }

    /// Returns `true` if `p` lies in the closed disk (with tolerance).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        float::leq(self.center.distance(p), self.radius)
    }

    /// Returns `true` if `p` lies strictly inside the open disk.
    #[inline]
    pub fn contains_strict(&self, p: Point) -> bool {
        float::lt(self.center.distance(p), self.radius)
    }

    /// Returns `true` if `p` lies on the circle boundary (with tolerance).
    ///
    /// Uses a larger tolerance (`1e-6`) than the generic [`float::EPS`]
    /// because boundary points are produced by trigonometric constructions.
    #[inline]
    pub fn on_boundary(&self, p: Point) -> bool {
        float::approx_eq_eps(self.center.distance(p), self.radius, 1e-6)
    }

    /// The point on the circle at angle `theta` radians.
    #[inline]
    pub fn point_at(&self, theta: f64) -> Point {
        self.center + Vec2::from_angle(theta) * self.radius
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Classifies the relative position of `self` and `other`.
    pub fn relation(&self, other: &Circle) -> CircleRelation {
        let d = self.center.distance(other.center);
        let rsum = self.radius + other.radius;
        let rdiff = (self.radius - other.radius).abs();
        if float::approx_eq_eps(d, 0.0, 1e-9) && float::approx_eq_eps(rdiff, 0.0, 1e-9) {
            CircleRelation::Coincident
        } else if float::gt(d, rsum) {
            CircleRelation::Disjoint
        } else if float::approx_eq_eps(d, rsum, float::EPS) {
            CircleRelation::Tangent
        } else if float::lt(d, rdiff) {
            CircleRelation::Nested
        } else if float::approx_eq_eps(d, rdiff, float::EPS) {
            CircleRelation::Tangent
        } else {
            CircleRelation::Crossing
        }
    }

    /// Intersection points of the two circle *boundaries*.
    ///
    /// Returns zero points for disjoint, nested or coincident circles, one
    /// point for tangency, two for a proper crossing. The IAC candidate
    /// generator calls this for every pair of subscriber circles.
    ///
    /// # Example
    /// ```
    /// use sag_geom::{Circle, Point};
    /// let a = Circle::new(Point::new(0.0, 0.0), 1.0);
    /// let b = Circle::new(Point::new(1.0, 0.0), 1.0);
    /// assert_eq!(a.intersection_points(&b).len(), 2);
    /// ```
    pub fn intersection_points(&self, other: &Circle) -> Vec<Point> {
        match self.relation(other) {
            CircleRelation::Disjoint | CircleRelation::Nested | CircleRelation::Coincident => {
                Vec::new()
            }
            CircleRelation::Tangent => {
                let d = self.center.distance(other.center);
                if float::approx_eq_eps(d, 0.0, float::EPS) {
                    // Internally tangent with coincident centres cannot
                    // happen for distinct radii; guard anyway.
                    return Vec::new();
                }
                let dir = (other.center - self.center) / d;
                // External tangency: point between centres. Internal
                // tangency: when this circle is the larger one the touch
                // point is still ahead along `dir`; when it is the
                // smaller one, it sits on the far side.
                let external = float::approx_eq_eps(d, self.radius + other.radius, 1e-7);
                if external || self.radius >= other.radius {
                    vec![self.center + dir * self.radius]
                } else {
                    vec![self.center - dir * self.radius]
                }
            }
            CircleRelation::Crossing => {
                let d = self.center.distance(other.center);
                let r0 = self.radius;
                let r1 = other.radius;
                // Distance from self.center to the radical line along the
                // centre axis.
                let a = (d * d + r0 * r0 - r1 * r1) / (2.0 * d);
                let h_sq = r0 * r0 - a * a;
                let h = h_sq.max(0.0).sqrt();
                let dir = (other.center - self.center) / d;
                let mid = self.center + dir * a;
                let off = dir.perp() * h;
                vec![mid + off, mid - off]
            }
        }
    }

    /// Area of the lens-shaped intersection of the two disks.
    ///
    /// Used only for diagnostics/visualisation; returns `0.0` for disjoint
    /// disks and the smaller disk's area for nested disks.
    pub fn intersection_area(&self, other: &Circle) -> f64 {
        let d = self.center.distance(other.center);
        let (r, bigr) = if self.radius <= other.radius {
            (self.radius, other.radius)
        } else {
            (other.radius, self.radius)
        };
        if d >= r + bigr {
            return 0.0;
        }
        if d <= bigr - r {
            return std::f64::consts::PI * r * r;
        }
        let r2 = r * r;
        let big2 = bigr * bigr;
        let alpha = ((d * d + r2 - big2) / (2.0 * d * r))
            .clamp(-1.0, 1.0)
            .acos()
            * 2.0;
        let beta = ((d * d + big2 - r2) / (2.0 * d * bigr))
            .clamp(-1.0, 1.0)
            .acos()
            * 2.0;
        0.5 * (r2 * (alpha - alpha.sin()) + big2 * (beta - beta.sin()))
    }

    /// The point of this circle closest to `p` (any boundary point if `p`
    /// is the centre).
    pub fn closest_boundary_point(&self, p: Point) -> Point {
        match (p - self.center).normalized() {
            Some(dir) => self.center + dir * self.radius,
            None => self.center + Vec2::new(self.radius, 0.0),
        }
    }
}

impl fmt::Display for Circle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Circle(c={}, r={:.3})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn relation_classification() {
        assert_eq!(
            c(0.0, 0.0, 1.0).relation(&c(3.0, 0.0, 1.0)),
            CircleRelation::Disjoint
        );
        assert_eq!(
            c(0.0, 0.0, 1.0).relation(&c(2.0, 0.0, 1.0)),
            CircleRelation::Tangent
        );
        assert_eq!(
            c(0.0, 0.0, 1.0).relation(&c(1.0, 0.0, 1.0)),
            CircleRelation::Crossing
        );
        assert_eq!(
            c(0.0, 0.0, 3.0).relation(&c(0.5, 0.0, 1.0)),
            CircleRelation::Nested
        );
        assert_eq!(
            c(0.0, 0.0, 1.0).relation(&c(0.0, 0.0, 1.0)),
            CircleRelation::Coincident
        );
        // Internal tangency
        assert_eq!(
            c(0.0, 0.0, 2.0).relation(&c(1.0, 0.0, 1.0)),
            CircleRelation::Tangent
        );
    }

    #[test]
    fn crossing_intersection_points_lie_on_both() {
        let a = c(0.0, 0.0, 5.0);
        let b = c(6.0, 0.0, 5.0);
        let pts = a.intersection_points(&b);
        assert_eq!(pts.len(), 2);
        for p in pts {
            assert!(a.on_boundary(p), "{p} not on a");
            assert!(b.on_boundary(p), "{p} not on b");
        }
    }

    #[test]
    fn tangent_intersection_single_point() {
        let a = c(0.0, 0.0, 1.0);
        let b = c(2.0, 0.0, 1.0);
        let pts = a.intersection_points(&b);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].approx_eq(Point::new(1.0, 0.0)));
    }

    #[test]
    fn disjoint_and_nested_have_no_points() {
        assert!(c(0.0, 0.0, 1.0)
            .intersection_points(&c(5.0, 0.0, 1.0))
            .is_empty());
        assert!(c(0.0, 0.0, 5.0)
            .intersection_points(&c(0.5, 0.0, 1.0))
            .is_empty());
        assert!(c(0.0, 0.0, 1.0)
            .intersection_points(&c(0.0, 0.0, 1.0))
            .is_empty());
    }

    #[test]
    fn contains_and_boundary() {
        let a = c(0.0, 0.0, 2.0);
        assert!(a.contains(Point::new(1.0, 1.0)));
        assert!(a.contains(Point::new(2.0, 0.0)));
        assert!(!a.contains_strict(Point::new(2.0, 0.0)));
        assert!(!a.contains(Point::new(2.1, 0.0)));
        assert!(a.on_boundary(Point::new(0.0, 2.0)));
    }

    #[test]
    fn point_at_is_on_boundary() {
        let a = c(3.0, -1.0, 7.0);
        for k in 0..16 {
            let p = a.point_at(k as f64 * 0.5);
            assert!(a.on_boundary(p));
        }
    }

    #[test]
    fn intersection_area_limits() {
        let a = c(0.0, 0.0, 1.0);
        assert!((a.intersection_area(&a.clone()) - a.area()).abs() < 1e-9);
        assert_eq!(a.intersection_area(&c(5.0, 0.0, 1.0)), 0.0);
        let nested = c(0.1, 0.0, 0.2);
        assert!((a.intersection_area(&nested) - nested.area()).abs() < 1e-9);
        // Half-overlapping circles: area strictly between 0 and min area.
        let b = c(1.0, 0.0, 1.0);
        let lens = a.intersection_area(&b);
        assert!(lens > 0.0 && lens < a.area());
        // Symmetry.
        assert!((lens - b.intersection_area(&a)).abs() < 1e-9);
    }

    #[test]
    fn closest_boundary_point_cases() {
        let a = c(0.0, 0.0, 2.0);
        let p = a.closest_boundary_point(Point::new(5.0, 0.0));
        assert!(p.approx_eq(Point::new(2.0, 0.0)));
        let q = a.closest_boundary_point(Point::ORIGIN);
        assert!(a.on_boundary(q));
    }

    #[test]
    #[should_panic]
    fn negative_radius_panics() {
        Circle::new(Point::ORIGIN, -1.0);
    }

    prop! {
        fn prop_intersections_on_both_boundaries(
            ax in -100.0..100.0f64, ay in -100.0..100.0f64, ar in 1.0..50.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64, br in 1.0..50.0f64,
        ) {
            let a = c(ax, ay, ar);
            let b = c(bx, by, br);
            for p in a.intersection_points(&b) {
                prop_assert!(float::approx_eq_eps(a.center.distance(p), ar, 1e-6));
                prop_assert!(float::approx_eq_eps(b.center.distance(p), br, 1e-6));
            }
        }

        fn prop_intersection_area_symmetric_and_bounded(
            ax in -100.0..100.0f64, ay in -100.0..100.0f64, ar in 1.0..50.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64, br in 1.0..50.0f64,
        ) {
            let a = c(ax, ay, ar);
            let b = c(bx, by, br);
            let s = a.intersection_area(&b);
            prop_assert!(s >= -1e-9);
            prop_assert!(s <= a.area().min(b.area()) + 1e-6);
            prop_assert!((s - b.intersection_area(&a)).abs() < 1e-6);
        }

        fn prop_point_at_round_trip(theta in -6.3..6.3f64, r in 0.5..40.0f64) {
            let a = c(1.0, 2.0, r);
            let p = a.point_at(theta);
            prop_assert!(float::approx_eq_eps(a.center.distance(p), r, 1e-9));
        }
    }
}
