//! Uniform grids over a rectangle — the *GAC* (Grids As Candidates)
//! construction.
//!
//! GAC divides the playing field into square cells of a chosen size and
//! uses every cell centre as a candidate relay position. The paper notes
//! the central trade-off: smaller cells give more accurate solutions but
//! the optimiser's running time grows non-linearly with the candidate
//! count (§III-A, Fig. 3(e)).

use crate::point::Point;
use crate::rect::Rect;

/// Specification of a uniform square grid over a rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridSpec {
    rect: Rect,
    cell: f64,
}

impl GridSpec {
    /// Creates a grid with square cells of side `cell` covering `rect`.
    ///
    /// Cells are anchored at the rectangle's min corner; a partial final
    /// row/column still contributes centres (clamped into the rectangle),
    /// so every part of the field is near some candidate.
    ///
    /// # Panics
    /// Panics if `cell` is not strictly positive and finite.
    pub fn new(rect: Rect, cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell must be > 0, got {cell}"
        );
        GridSpec { rect, cell }
    }

    /// The covered rectangle.
    #[inline]
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// The cell side length.
    #[inline]
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        (self.rect.width() / self.cell).ceil().max(1.0) as usize
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        (self.rect.height() / self.cell).ceil().max(1.0) as usize
    }

    /// Total number of cells (candidate positions).
    pub fn len(&self) -> usize {
        self.cols() * self.rows()
    }

    /// Returns `true` if the grid has no cells (never happens for valid
    /// specs, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The centre of cell `(col, row)`, clamped into the rectangle so a
    /// partial boundary cell still yields an in-field candidate.
    ///
    /// # Panics
    /// Panics if `col`/`row` are out of range.
    pub fn cell_center(&self, col: usize, row: usize) -> Point {
        assert!(
            col < self.cols() && row < self.rows(),
            "cell index out of range"
        );
        let p = Point::new(
            self.rect.min().x + (col as f64 + 0.5) * self.cell,
            self.rect.min().y + (row as f64 + 0.5) * self.cell,
        );
        self.rect.clamp(p)
    }

    /// Iterator over all cell centres, row-major.
    ///
    /// # Example
    /// ```
    /// use sag_geom::{GridSpec, Rect};
    /// let g = GridSpec::new(Rect::centered_square(100.0), 20.0);
    /// assert_eq!(g.centers().count(), g.len());
    /// ```
    pub fn centers(&self) -> Centers {
        Centers {
            grid: *self,
            idx: 0,
        }
    }

    /// Index of the cell containing point `p` as `(col, row)`, or `None`
    /// if `p` is outside the rectangle.
    pub fn locate(&self, p: Point) -> Option<(usize, usize)> {
        if !self.rect.contains(p) {
            return None;
        }
        let col = (((p.x - self.rect.min().x) / self.cell) as usize).min(self.cols() - 1);
        let row = (((p.y - self.rect.min().y) / self.cell) as usize).min(self.rows() - 1);
        Some((col, row))
    }
}

/// Iterator over grid cell centres. See [`GridSpec::centers`].
#[derive(Debug, Clone)]
pub struct Centers {
    grid: GridSpec,
    idx: usize,
}

impl Iterator for Centers {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.idx >= self.grid.len() {
            return None;
        }
        let cols = self.grid.cols();
        let col = self.idx % cols;
        let row = self.idx / cols;
        self.idx += 1;
        Some(self.grid.cell_center(col, row))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.grid.len() - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Centers {}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn exact_division() {
        let g = GridSpec::new(Rect::centered_square(100.0), 25.0);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 4);
        assert_eq!(g.len(), 16);
        assert_eq!(g.centers().count(), 16);
    }

    #[test]
    fn partial_cells_round_up() {
        let g = GridSpec::new(Rect::centered_square(100.0), 30.0);
        assert_eq!(g.cols(), 4); // 100/30 = 3.33 → 4
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn centers_inside_rect() {
        let g = GridSpec::new(Rect::centered_square(500.0), 17.0);
        for p in g.centers() {
            assert!(g.rect().contains(p), "{p} escaped the field");
        }
    }

    #[test]
    fn first_center_position() {
        let g = GridSpec::new(Rect::centered_square(100.0), 20.0);
        let first = g.centers().next().unwrap();
        assert!(first.approx_eq(Point::new(-40.0, -40.0)));
    }

    #[test]
    fn locate_matches_center() {
        let g = GridSpec::new(Rect::centered_square(100.0), 10.0);
        for (i, p) in g.centers().enumerate() {
            let (col, row) = g.locate(p).unwrap();
            assert_eq!(row * g.cols() + col, i);
        }
        assert!(g.locate(Point::new(500.0, 0.0)).is_none());
    }

    #[test]
    fn smaller_cells_more_candidates() {
        let r = Rect::centered_square(500.0);
        let coarse = GridSpec::new(r, 20.0).len();
        let fine = GridSpec::new(r, 13.0).len();
        assert!(fine > coarse);
    }

    #[test]
    #[should_panic]
    fn zero_cell_panics() {
        GridSpec::new(Rect::centered_square(10.0), 0.0);
    }

    prop! {
        fn prop_count_matches_iterator(side in 10.0..900.0f64, cell in 5.0..50.0f64) {
            let g = GridSpec::new(Rect::centered_square(side), cell);
            prop_assert_eq!(g.centers().count(), g.len());
        }

        fn prop_every_point_near_some_center(side in 50.0..400.0f64, cell in 5.0..40.0f64,
                                             t in 0.0..1.0f64, u in 0.0..1.0f64) {
            let r = Rect::centered_square(side);
            let g = GridSpec::new(r, cell);
            let p = Point::new(r.min().x + t * side, r.min().y + u * side);
            let nearest = g
                .centers()
                .map(|c| c.distance(p))
                .fold(f64::INFINITY, f64::min);
            // Any field point is within one cell diagonal of some centre.
            prop_assert!(nearest <= cell * std::f64::consts::SQRT_2 + 1e-9);
        }
    }
}
