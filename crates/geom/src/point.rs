//! Planar points and displacement vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::float;

/// A point in the plane.
///
/// Stations (subscribers, relays, base stations) are located at `Point`s.
/// `Point - Point` yields a [`Vec2`]; `Point + Vec2` yields a `Point`.
///
/// # Example
/// ```
/// use sag_geom::{Point, Vec2};
/// let p = Point::new(1.0, 2.0);
/// let q = p + Vec2::new(3.0, 4.0);
/// assert_eq!(p.distance(q), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement vector in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: returns `self` when `t = 0`, `other` when
    /// `t = 1`. `t` outside `[0, 1]` extrapolates.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Returns `true` if the two points coincide up to the crate tolerance.
    #[inline]
    pub fn approx_eq(self, other: Point) -> bool {
        float::approx_eq(self.x, other.x) && float::approx_eq(self.y, other.y)
    }

    /// Both coordinates are finite (not NaN / infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Converts to a displacement vector from the origin.
    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at angle `theta` radians from the positive x-axis.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vec2::new(theta.cos(), theta.sin())
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The angle of this vector in radians, in `(-pi, pi]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotates by `theta` radians counter-clockwise.
    #[inline]
    pub fn rotate(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Returns the unit vector in the same direction, or `None` for the
    /// (near-)zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= float::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// The perpendicular vector rotated +90 degrees.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(3.0, 4.0);
        assert_eq!(p.distance(q), 5.0);
        assert_eq!(p.distance_sq(q), 25.0);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let p = Point::new(-2.0, 0.0);
        let q = Point::new(4.0, 6.0);
        assert!(p.midpoint(q).approx_eq(p.lerp(q, 0.5)));
        assert!(p.lerp(q, 0.0).approx_eq(p));
        assert!(p.lerp(q, 1.0).approx_eq(q));
    }

    #[test]
    fn vector_algebra() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
        assert_eq!((a + b).x, 4.0);
        assert_eq!((a - b).y, 3.0);
        assert_eq!((-a).x, -1.0);
        assert_eq!((a * 2.0).y, 4.0);
        assert_eq!((a / 2.0).x, 0.5);
    }

    #[test]
    fn rotate_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotate(std::f64::consts::FRAC_PI_2);
        assert!((v.x).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let u = Vec2::new(0.0, 5.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_angle_is_unit() {
        for k in 0..8 {
            let v = Vec2::from_angle(k as f64 * 0.7);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conversions_roundtrip() {
        let p: Point = (1.5, -2.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, -2.5));
        assert_eq!(p.to_vec(), Vec2::new(1.5, -2.5));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
        assert!(!format!("{}", Vec2::ZERO).is_empty());
    }

    prop! {
        fn distance_symmetric(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                              bx in -1e3..1e3f64, by in -1e3..1e3f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        }

        fn triangle_inequality(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                               bx in -1e3..1e3f64, by in -1e3..1e3f64,
                               cx in -1e3..1e3f64, cy in -1e3..1e3f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        fn rotation_preserves_norm(x in -1e3..1e3f64, y in -1e3..1e3f64,
                                   theta in -10.0..10.0f64) {
            let v = Vec2::new(x, y);
            prop_assert!((v.rotate(theta).norm() - v.norm()).abs() < 1e-6);
        }

        fn lerp_endpoints(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                          bx in -1e3..1e3f64, by in -1e3..1e3f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!(a.lerp(b, 0.0).approx_eq(a));
            prop_assert!(a.lerp(b, 1.0).distance(b) < 1e-9);
        }
    }
}

/// Deduplicates points that coincide within `tol`, preserving first-seen
/// order, in expected linear time (grid hashing).
///
/// Two points farther than `tol` apart are always both kept; points
/// within `tol/2` of an earlier point are always dropped. In the narrow
/// band between, cell quantisation decides — exactly the right contract
/// for merging numerically-identical candidate positions.
///
/// # Panics
/// Panics unless `tol > 0` and finite.
pub fn dedup_points_grid(points: Vec<Point>, tol: f64) -> Vec<Point> {
    assert!(
        tol.is_finite() && tol > 0.0,
        "tolerance must be > 0, got {tol}"
    );
    let mut seen: std::collections::HashMap<(i64, i64), Vec<usize>> = Default::default();
    let mut out: Vec<Point> = Vec::with_capacity(points.len());
    let key = |v: f64| (v / tol).floor() as i64;
    for p in points {
        let (cx, cy) = (key(p.x), key(p.y));
        let mut duplicate = false;
        'scan: for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(cell) = seen.get(&(cx + dx, cy + dy)) {
                    if cell.iter().any(|&i| out[i].distance(p) < tol) {
                        duplicate = true;
                        break 'scan;
                    }
                }
            }
        }
        if !duplicate {
            seen.entry((cx, cy)).or_default().push(out.len());
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod dedup_tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn exact_duplicates_removed() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1e-12),
        ];
        let out = dedup_points_grid(pts, 1e-9);
        assert_eq!(out.len(), 2);
        assert!(out[0].approx_eq(Point::ORIGIN));
    }

    #[test]
    fn order_preserved() {
        let pts = vec![
            Point::new(5.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
        ];
        let out = dedup_points_grid(pts, 1e-9);
        assert_eq!(out, vec![Point::new(5.0, 0.0), Point::new(1.0, 0.0)]);
    }

    #[test]
    fn distant_points_all_kept() {
        let pts: Vec<Point> = (0..100)
            .map(|k| Point::new(k as f64, -(k as f64)))
            .collect();
        assert_eq!(dedup_points_grid(pts, 1e-9).len(), 100);
    }

    #[test]
    #[should_panic]
    fn zero_tolerance_panics() {
        dedup_points_grid(vec![], 0.0);
    }

    prop! {
        fn prop_no_close_pairs_survive(seed in 0u64..200) {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..60)
                .map(|_| Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                .collect();
            let out = dedup_points_grid(pts.clone(), 1e-3);
            // Survivors are pairwise ≥ tol/2 apart… (grid guarantee: any
            // two survivors in the same or adjacent cells are ≥ tol; the
            // only possible sub-tol pairs would share a neighbourhood and
            // were checked) — assert the hard guarantee:
            for i in 0..out.len() {
                for j in i + 1..out.len() {
                    prop_assert!(out[i].distance(out[j]) >= 1e-3 - 1e-12);
                }
            }
            // And every input point is within tol of some survivor.
            for p in &pts {
                prop_assert!(out.iter().any(|q| q.distance(*p) < 1e-3 + 1e-12));
            }
        }
    }
}
