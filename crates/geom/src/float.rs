//! Tolerance-controlled floating point comparisons.
//!
//! The SAG algorithms repeatedly test "is this point *on* a circle" or "is
//! this distance *at most* the feasible distance"; exact `f64` comparison
//! would make those tests flap. All geometric predicates in this crate
//! funnel through the helpers here with the shared [`EPS`] tolerance.

/// Default absolute tolerance for geometric predicates.
///
/// Field coordinates in the paper's simulations are in `[-400, 400]` and
/// radii in `[30, 40]`, so `1e-9` leaves ~6 orders of magnitude of headroom
/// over `f64` rounding at that scale.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a` and `b` differ by at most `eps` absolutely.
///
/// # Example
/// ```
/// assert!(sag_geom::float::approx_eq_eps(1.0, 1.0 + 1e-12, 1e-9));
/// ```
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Returns `true` if `a` and `b` differ by at most [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, EPS)
}

/// Returns `true` if `a <= b` up to [`EPS`] slack.
#[inline]
pub fn leq(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// Returns `true` if `a >= b` up to [`EPS`] slack.
#[inline]
pub fn geq(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// Returns `true` if `a < b` by more than [`EPS`].
#[inline]
pub fn lt(a: f64, b: f64) -> bool {
    a + EPS < b
}

/// Returns `true` if `a > b` by more than [`EPS`].
#[inline]
pub fn gt(a: f64, b: f64) -> bool {
    a > b + EPS
}

/// Clamps `v` into `[lo, hi]`.
///
/// # Panics
/// Panics if `lo > hi`.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
    v.max(lo).min(hi)
}

/// Total order comparison for `f64` that treats `NaN` as greatest.
///
/// Useful for `sort_by` / `min_by` over distances that are known to be
/// finite; `NaN`s (which indicate a bug upstream) sink to the end where they
/// are easy to spot.
#[inline]
pub fn total_cmp(a: &f64, b: &f64) -> std::cmp::Ordering {
    a.partial_cmp(b).unwrap_or_else(|| {
        if a.is_nan() && b.is_nan() {
            std::cmp::Ordering::Equal
        } else if a.is_nan() {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Less
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn approx_eq_within_eps() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + EPS / 2.0));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn leq_geq_are_slack() {
        assert!(leq(1.0 + EPS / 2.0, 1.0));
        assert!(geq(1.0 - EPS / 2.0, 1.0));
        assert!(!leq(1.0 + 1e-6, 1.0));
        assert!(!geq(1.0 - 1e-6, 1.0));
    }

    #[test]
    fn strict_lt_gt_exclude_near_ties() {
        assert!(!lt(1.0, 1.0 + EPS / 2.0));
        assert!(lt(1.0, 1.1));
        assert!(!gt(1.0 + EPS / 2.0, 1.0));
        assert!(gt(1.1, 1.0));
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    #[should_panic]
    fn clamp_panics_on_inverted_range() {
        clamp(0.5, 1.0, 0.0);
    }

    #[test]
    fn total_cmp_nan_sinks() {
        assert_eq!(total_cmp(&f64::NAN, &1.0), Ordering::Greater);
        assert_eq!(total_cmp(&1.0, &f64::NAN), Ordering::Less);
        assert_eq!(total_cmp(&f64::NAN, &f64::NAN), Ordering::Equal);
        assert_eq!(total_cmp(&1.0, &2.0), Ordering::Less);
    }
}
