//! Common-intersection queries over families of closed disks.
//!
//! The paper's *Update RS Topology* (Algorithm 5) builds a set `W` of
//! circles — the feasible circles of subscribers whose SNR is already met
//! plus "virtual circles" for subscribers whose SNR is violated — and asks
//! whether **all the circles in `W` have common area**; if so the relay is
//! moved to any point of that common area.
//!
//! For closed disks in the plane this query has an exact finite test: if the
//! common intersection of a family of disks is non-empty then it contains
//! either (a) the centre of some disk, or (b) an intersection point of two
//! disk boundaries. (The intersection is a convex region bounded by arcs;
//! each arc endpoint is a pairwise boundary intersection, and if the region
//! has no boundary contributed by some disk then that disk's centre region
//! argument applies.) [`common_point`] enumerates exactly those candidates.

use crate::circle::Circle;
use crate::float;
use crate::point::Point;

/// Returns a point contained in every disk, or `None` if the common
/// intersection is empty.
///
/// The returned point is a *witness*: callers that need "move the RS into
/// the common area" (Algorithm 5) can use it directly.
///
/// An empty family has no constraint; its "intersection" is the whole
/// plane, and the function returns the origin as a witness.
///
/// # Example
/// ```
/// use sag_geom::{disks, Circle, Point};
/// let family = vec![
///     Circle::new(Point::new(0.0, 0.0), 2.0),
///     Circle::new(Point::new(1.0, 0.0), 2.0),
/// ];
/// let w = disks::common_point(&family).expect("overlapping disks");
/// assert!(family.iter().all(|c| c.contains(w)));
/// ```
pub fn common_point(disks: &[Circle]) -> Option<Point> {
    if disks.is_empty() {
        return Some(Point::ORIGIN);
    }
    let in_all = |p: Point| disks.iter().all(|d| d.contains(p));

    // Candidate 1: disk centres (covers the case where one disk lies in the
    // interior of all others, e.g. nested disks).
    for d in disks {
        if in_all(d.center) {
            return Some(d.center);
        }
    }
    // Candidate 2: pairwise boundary intersection points.
    for (i, a) in disks.iter().enumerate() {
        for b in disks.iter().skip(i + 1) {
            for p in a.intersection_points(b) {
                if in_all(p) {
                    return Some(p);
                }
            }
        }
    }
    // Candidate 3 (robustness): for tangent-ish pairs the analytic
    // intersection points can fall a hair outside a third disk. Try the
    // deepest point of each pair's lens: the midpoint of the two crossing
    // points, and midpoints between circle centres projected onto both.
    for (i, a) in disks.iter().enumerate() {
        for b in disks.iter().skip(i + 1) {
            let pts = a.intersection_points(b);
            if pts.len() == 2 {
                let mid = pts[0].midpoint(pts[1]);
                if in_all(mid) {
                    return Some(mid);
                }
            }
        }
    }
    None
}

/// Returns `true` if all disks share at least one common point.
pub fn have_common_area(disks: &[Circle]) -> bool {
    common_point(disks).is_some()
}

/// Returns a point contained in every disk that is (approximately) deepest
/// inside the family — maximising the minimum slack `radius_i - dist_i`.
///
/// Starts from the [`common_point`] witness and refines it with a few
/// rounds of pattern search. Returns `None` when the intersection is empty.
/// The refined point is strictly better for the sliding-movement heuristic
/// because it leaves margin against later perturbations.
pub fn deep_common_point(disks: &[Circle]) -> Option<Point> {
    let start = common_point(disks)?;
    if disks.is_empty() {
        return Some(start);
    }
    let slack = |p: Point| -> f64 {
        disks
            .iter()
            .map(|d| d.radius - d.center.distance(p))
            .fold(f64::INFINITY, f64::min)
    };
    let mut best = start;
    let mut best_slack = slack(best);
    let mut step = disks.iter().map(|d| d.radius).fold(f64::INFINITY, f64::min) / 2.0;
    while step > 1e-6 {
        let mut improved = false;
        for (dx, dy) in [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)] {
            let cand = Point::new(best.x + dx * step, best.y + dy * step);
            let s = slack(cand);
            if s > best_slack + float::EPS {
                best = cand;
                best_slack = s;
                improved = true;
            }
        }
        if !improved {
            step /= 2.0;
        }
    }
    debug_assert!(best_slack >= -1e-6);
    Some(best)
}

/// Computes, for each disk, whether removing it makes the family's common
/// intersection non-empty (used to diagnose infeasible sliding sets).
///
/// Returns indices of disks whose removal restores a common point. When the
/// family already has a common point, every index is returned.
pub fn blocking_disks(disks: &[Circle]) -> Vec<usize> {
    (0..disks.len())
        .filter(|&skip| {
            let rest: Vec<Circle> = disks
                .iter()
                .enumerate()
                .filter_map(|(i, c)| (i != skip).then_some(*c))
                .collect();
            have_common_area(&rest)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn empty_family_has_witness() {
        assert!(common_point(&[]).is_some());
        assert!(have_common_area(&[]));
    }

    #[test]
    fn single_disk_returns_centre() {
        let w = common_point(&[c(3.0, 4.0, 1.0)]).unwrap();
        assert!(w.approx_eq(Point::new(3.0, 4.0)));
    }

    #[test]
    fn overlapping_pair() {
        let fam = [c(0.0, 0.0, 2.0), c(3.0, 0.0, 2.0)];
        let w = common_point(&fam).unwrap();
        assert!(fam.iter().all(|d| d.contains(w)));
    }

    #[test]
    fn disjoint_pair_is_empty() {
        assert!(common_point(&[c(0.0, 0.0, 1.0), c(5.0, 0.0, 1.0)]).is_none());
    }

    #[test]
    fn three_disks_with_small_core() {
        // Three unit disks whose centres form a triangle with circumradius
        // slightly below 1: common core exists around the centroid.
        let fam = [c(0.9, 0.0, 1.0), c(-0.45, 0.78, 1.0), c(-0.45, -0.78, 1.0)];
        let w = common_point(&fam).expect("core exists");
        assert!(fam.iter().all(|d| d.contains(w)));
    }

    #[test]
    fn three_disks_pairwise_but_no_core() {
        // Pairwise-intersecting disks with empty triple intersection
        // (Helly's theorem needs convexity of *all* of them — disks are
        // convex so by Helly in the plane, pairwise-3 intersection implies
        // common point only for *every triple*; construct a genuinely empty
        // triple).
        let fam = [c(2.0, 0.0, 1.9), c(-1.0, 1.732, 1.9), c(-1.0, -1.732, 1.9)];
        // Pairwise distances = 2*sqrt(3) ≈ 3.46 < 3.8, so pairwise overlap.
        for i in 0..3 {
            for j in i + 1..3 {
                assert!(!fam[i].intersection_points(&fam[j]).is_empty());
            }
        }
        assert!(common_point(&fam).is_none());
    }

    #[test]
    fn nested_family_returns_inner_point() {
        let fam = [c(0.0, 0.0, 10.0), c(0.0, 0.0, 5.0), c(1.0, 0.0, 2.0)];
        let w = common_point(&fam).unwrap();
        assert!(fam.iter().all(|d| d.contains(w)));
    }

    #[test]
    fn deep_point_has_more_slack_than_witness() {
        let fam = [c(0.0, 0.0, 2.0), c(2.0, 0.0, 2.0)];
        let w = common_point(&fam).unwrap();
        let d = deep_common_point(&fam).unwrap();
        let slack = |p: Point, f: &[Circle]| {
            f.iter()
                .map(|c| c.radius - c.center.distance(p))
                .fold(f64::INFINITY, f64::min)
        };
        assert!(slack(d, &fam) >= slack(w, &fam) - 1e-9);
        assert!(fam.iter().all(|c| c.contains(d)));
        // The deepest point of two equal overlapping disks is equidistant
        // between centres.
        assert!((d.x - 1.0).abs() < 1e-3);
    }

    #[test]
    fn blocking_disk_identification() {
        // Two overlapping disks plus one far away: removing the far one
        // restores the intersection.
        let fam = [c(0.0, 0.0, 2.0), c(1.0, 0.0, 2.0), c(50.0, 0.0, 1.0)];
        let blockers = blocking_disks(&fam);
        assert!(blockers.contains(&2));
        assert!(!blockers.contains(&0) && !blockers.contains(&1));
    }

    prop! {
        fn prop_witness_is_in_all(
            xs in vec_of((-50.0..50.0f64, -50.0..50.0f64, 5.0..40.0f64), 1..8)
        ) {
            let fam: Vec<Circle> = xs.iter().map(|&(x, y, r)| c(x, y, r)).collect();
            if let Some(w) = common_point(&fam) {
                for d in &fam {
                    prop_assert!(d.contains(w), "witness {w} outside {d}");
                }
            }
        }

        fn prop_shrunk_family_keeps_witness(
            x in -20.0..20.0f64, y in -20.0..20.0f64,
        ) {
            // Disks all containing the probe point must report a common point.
            let probe = Point::new(x, y);
            let fam: Vec<Circle> = (0..5)
                .map(|k| {
                    let cx = x + (k as f64) - 2.0;
                    let cy = y + 1.5 - (k as f64) * 0.5;
                    let r = probe.distance(Point::new(cx, cy)) + 1.0;
                    c(cx, cy, r)
                })
                .collect();
            prop_assert!(have_common_area(&fam));
        }
    }
}
