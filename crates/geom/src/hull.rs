//! Convex hulls and simple polygon measures.
//!
//! Used by the topology-export example and by zone diagnostics (hull of a
//! zone's subscriber group gives a quick visual footprint of the zone).

use crate::float;
use crate::point::Point;

/// Computes the convex hull of `points` with Andrew's monotone chain.
///
/// Returns hull vertices in counter-clockwise order without repeating the
/// first vertex. Collinear points on hull edges are dropped. Degenerate
/// inputs return what they can: empty input → empty hull, one point → that
/// point, collinear points → the two extreme points.
///
/// # Example
/// ```
/// use sag_geom::{hull::convex_hull, Point};
/// let pts = vec![
///     Point::new(0.0, 0.0), Point::new(2.0, 0.0),
///     Point::new(2.0, 2.0), Point::new(0.0, 2.0),
///     Point::new(1.0, 1.0), // interior
/// ];
/// assert_eq!(convex_hull(&pts).len(), 4);
/// ```
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| float::total_cmp(&a.x, &b.x).then_with(|| float::total_cmp(&a.y, &b.y)));
    pts.dedup_by(|a, b| a.approx_eq(*b));
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    let cross = |o: Point, a: Point, b: Point| (a - o).cross(b - o);

    let mut lower: Vec<Point> = Vec::with_capacity(n);
    for &p in &pts {
        while lower.len() >= 2
            && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= float::EPS
        {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::with_capacity(n);
    for &p in pts.iter().rev() {
        while upper.len() >= 2
            && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= float::EPS
        {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.is_empty() {
        // All points collinear: return the two extremes.
        return vec![pts[0], pts[n - 1]];
    }
    lower
}

/// Signed area of a polygon given by vertices in order (positive for
/// counter-clockwise orientation). Degenerate polygons (< 3 vertices)
/// have zero area.
pub fn polygon_area(vertices: &[Point]) -> f64 {
    if vertices.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..vertices.len() {
        let a = vertices[i];
        let b = vertices[(i + 1) % vertices.len()];
        acc += a.x * b.y - b.x * a.y;
    }
    acc / 2.0
}

/// Perimeter of a polygon given by vertices in order.
pub fn polygon_perimeter(vertices: &[Point]) -> f64 {
    if vertices.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..vertices.len() {
        acc += vertices[i].distance(vertices[(i + 1) % vertices.len()]);
    }
    acc
}

/// Returns `true` if `p` lies inside or on the convex polygon `hull`
/// (vertices in counter-clockwise order, as produced by [`convex_hull`]).
pub fn convex_contains(hull: &[Point], p: Point) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0].approx_eq(p),
        2 => {
            // Segment containment.
            let (a, b) = (hull[0], hull[1]);
            let ab = b - a;
            let ap = p - a;
            ab.cross(ap).abs() <= 1e-6
                && float::geq(ab.dot(ap), 0.0)
                && float::leq(ap.norm_sq(), ab.norm_sq())
        }
        _ => {
            for i in 0..hull.len() {
                let a = hull[i];
                let b = hull[(i + 1) % hull.len()];
                if (b - a).cross(p - a) < -1e-6 {
                    return false;
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn square_hull() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(1.0, 1.0),
            Point::new(0.5, 0.5),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!((polygon_area(&h) - 4.0).abs() < 1e-9);
        assert!((polygon_perimeter(&h) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn hull_is_ccw() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(2.0, 5.0),
            Point::new(-1.0, 3.0),
        ];
        let h = convex_hull(&pts);
        assert!(polygon_area(&h) > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]).len(), 1);
        let collinear = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ];
        let h = convex_hull(&collinear);
        assert_eq!(h.len(), 2);
        assert_eq!(polygon_area(&h), 0.0);
    }

    #[test]
    fn duplicates_removed() {
        let pts = vec![Point::new(0.0, 0.0); 5];
        assert_eq!(convex_hull(&pts).len(), 1);
    }

    #[test]
    fn containment() {
        let h = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(convex_contains(&h, Point::new(2.0, 2.0)));
        assert!(convex_contains(&h, Point::new(0.0, 0.0)));
        assert!(convex_contains(&h, Point::new(4.0, 2.0)));
        assert!(!convex_contains(&h, Point::new(5.0, 2.0)));
        assert!(!convex_contains(&h, Point::new(-0.1, 2.0)));
    }

    #[test]
    fn segment_containment() {
        let h = vec![Point::new(0.0, 0.0), Point::new(2.0, 2.0)];
        assert!(convex_contains(&h, Point::new(1.0, 1.0)));
        assert!(!convex_contains(&h, Point::new(3.0, 3.0)));
        assert!(!convex_contains(&h, Point::new(1.0, 0.0)));
    }

    prop! {
        fn prop_all_points_inside_hull(seed in 0u64..500, n in 3usize..40) {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)))
                .collect();
            let h = convex_hull(&pts);
            for p in &pts {
                prop_assert!(convex_contains(&h, *p), "{p} escaped its own hull");
            }
        }

        fn prop_hull_area_nonnegative(seed in 0u64..500, n in 1usize..30) {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)))
                .collect();
            prop_assert!(polygon_area(&convex_hull(&pts)) >= -1e-9);
        }
    }
}
