//! Line segments: the relay links of the steinerized upper tier.
//!
//! Used to validate MBMC chains (hop subdivision), to detect link
//! crossings in topology dumps, and to measure point–link distances for
//! interference diagnostics.

use std::fmt;

use crate::float;
use crate::point::Point;

/// A closed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    ///
    /// # Panics
    /// Panics if either endpoint is not finite.
    pub fn new(a: Point, b: Point) -> Self {
        assert!(
            a.is_finite() && b.is_finite(),
            "segment endpoints must be finite"
        );
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The point at parameter `t ∈ [0, 1]` along the segment (clamped).
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, float::clamp(t, 0.0, 1.0))
    }

    /// Splits into `n` equal sub-segments, returning the `n − 1` interior
    /// division points — exactly the steinerization rule of MBMC Step 7.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn subdivide(&self, n: usize) -> Vec<Point> {
        assert!(n > 0, "cannot subdivide into zero parts");
        (1..n).map(|k| self.point_at(k as f64 / n as f64)).collect()
    }

    /// The closest point of the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let ab = self.b - self.a;
        let len_sq = ab.norm_sq();
        if len_sq <= float::EPS {
            return self.a;
        }
        let t = float::clamp((p - self.a).dot(ab) / len_sq, 0.0, 1.0);
        self.a + ab * t
    }

    /// Distance from `p` to the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Returns `true` if the two segments intersect (including touching
    /// endpoints and collinear overlap).
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = (self.b - self.a).cross(other.a - self.a);
        let d2 = (self.b - self.a).cross(other.b - self.a);
        let d3 = (other.b - other.a).cross(self.a - other.a);
        let d4 = (other.b - other.a).cross(self.b - other.a);
        if ((d1 > float::EPS && d2 < -float::EPS) || (d1 < -float::EPS && d2 > float::EPS))
            && ((d3 > float::EPS && d4 < -float::EPS) || (d3 < -float::EPS && d4 > float::EPS))
        {
            return true;
        }
        // Collinear / touching cases.
        let on = |s: &Segment, p: Point| -> bool {
            (s.b - s.a).cross(p - s.a).abs() <= 1e-6 && s.distance_to_point(p) <= 1e-6
        };
        on(self, other.a) || on(self, other.b) || on(other, self.a) || on(other, self.b)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} — {}]", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert!(s.midpoint().approx_eq(Point::new(1.5, 2.0)));
    }

    #[test]
    fn subdivision_matches_steinerization() {
        let s = seg(0.0, 0.0, 100.0, 0.0);
        let pts = s.subdivide(4);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].approx_eq(Point::new(25.0, 0.0)));
        assert!(pts[2].approx_eq(Point::new(75.0, 0.0)));
        assert!(s.subdivide(1).is_empty());
    }

    #[test]
    fn closest_point_cases() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // Interior projection.
        assert!(s
            .closest_point(Point::new(5.0, 3.0))
            .approx_eq(Point::new(5.0, 0.0)));
        // Clamped to endpoints.
        assert!(s
            .closest_point(Point::new(-4.0, 3.0))
            .approx_eq(Point::new(0.0, 0.0)));
        assert!(s
            .closest_point(Point::new(14.0, -3.0))
            .approx_eq(Point::new(10.0, 0.0)));
        assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
        // Degenerate segment.
        let d = seg(1.0, 1.0, 1.0, 1.0);
        assert!(d
            .closest_point(Point::new(5.0, 5.0))
            .approx_eq(Point::new(1.0, 1.0)));
    }

    #[test]
    fn crossing_segments() {
        assert!(seg(0.0, 0.0, 2.0, 2.0).intersects(&seg(0.0, 2.0, 2.0, 0.0)));
        assert!(!seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(0.0, 1.0, 1.0, 1.0)));
    }

    #[test]
    fn touching_and_collinear() {
        // Shared endpoint.
        assert!(seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(1.0, 0.0, 2.0, 1.0)));
        // Collinear overlap.
        assert!(seg(0.0, 0.0, 2.0, 0.0).intersects(&seg(1.0, 0.0, 3.0, 0.0)));
        // Collinear disjoint.
        assert!(!seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(2.0, 0.0, 3.0, 0.0)));
        // T-junction.
        assert!(seg(0.0, 0.0, 2.0, 0.0).intersects(&seg(1.0, -1.0, 1.0, 0.0)));
    }

    prop! {
        fn prop_point_at_on_segment(ax in -50.0..50.0f64, ay in -50.0..50.0f64,
                                    bx in -50.0..50.0f64, by in -50.0..50.0f64,
                                    t in 0.0..1.0f64) {
            let s = seg(ax, ay, bx, by);
            let p = s.point_at(t);
            prop_assert!(s.distance_to_point(p) < 1e-9);
        }

        fn prop_subdivide_even_spacing(n in 1usize..12) {
            let s = seg(0.0, 0.0, 60.0, 0.0);
            let pts = s.subdivide(n);
            prop_assert_eq!(pts.len(), n - 1);
            let mut prev = s.a;
            let hop = s.length() / n as f64;
            for p in pts.iter().copied().chain(std::iter::once(s.b)) {
                prop_assert!((prev.distance(p) - hop).abs() < 1e-9);
                prev = p;
            }
        }

        fn prop_closest_point_is_closest(ax in -20.0..20.0f64, ay in -20.0..20.0f64,
                                         bx in -20.0..20.0f64, by in -20.0..20.0f64,
                                         px in -30.0..30.0f64, py in -30.0..30.0f64,
                                         t in 0.0..1.0f64) {
            let s = seg(ax, ay, bx, by);
            let p = Point::new(px, py);
            let best = s.distance_to_point(p);
            prop_assert!(best <= s.point_at(t).distance(p) + 1e-9);
        }
    }
}
