//! Edge-case tests for disk intersections — the geometry under the IAC
//! candidate generator and the escape/sliding machinery.
//!
//! The paper's algorithms enumerate pairwise circle-boundary
//! intersection points, so degenerate configurations (tangency,
//! concentricity, zero radii, near-tangent crossings) must behave
//! exactly, not just usually. Randomised sections draw their seeds from
//! `sag-testkit`, so every run is reproducible.

use sag_geom::{disks, Circle, CircleRelation, Point};
use sag_testkit::prelude::*;

fn c(x: f64, y: f64, r: f64) -> Circle {
    Circle::new(Point::new(x, y), r)
}

#[test]
fn externally_tangent_circles_touch_once() {
    let a = c(0.0, 0.0, 2.0);
    let b = c(5.0, 0.0, 3.0);
    assert_eq!(a.relation(&b), CircleRelation::Tangent);
    let pts = a.intersection_points(&b);
    assert_eq!(pts.len(), 1);
    assert!(a.on_boundary(pts[0]) && b.on_boundary(pts[0]));
    assert!((pts[0].x - 2.0).abs() < 1e-9 && pts[0].y.abs() < 1e-9);
    // The tangency point is the whole common area.
    assert_eq!(disks::common_point(&[a, b]), Some(pts[0]));
}

#[test]
fn internally_tangent_circles_touch_once() {
    // Small circle inside the big one, touching at (4, 0) — from both
    // orderings, since the tangent branch is direction-sensitive.
    let big = c(0.0, 0.0, 4.0);
    let small = c(2.0, 0.0, 2.0);
    assert_eq!(big.relation(&small), CircleRelation::Tangent);
    for (first, second) in [(big, small), (small, big)] {
        let pts = first.intersection_points(&second);
        assert_eq!(pts.len(), 1, "{first:?} vs {second:?}");
        assert!(first.on_boundary(pts[0]) && second.on_boundary(pts[0]));
        assert!((pts[0].x - 4.0).abs() < 1e-6 && pts[0].y.abs() < 1e-6);
    }
}

#[test]
fn concentric_circles_never_intersect_boundaries() {
    let outer = c(1.0, -2.0, 5.0);
    let inner = c(1.0, -2.0, 2.0);
    assert_eq!(outer.relation(&inner), CircleRelation::Nested);
    assert!(outer.intersection_points(&inner).is_empty());
    // Common area is the inner disk; the witness must live there.
    let w = disks::common_point(&[outer, inner]).expect("nested disks share area");
    assert!(inner.contains(w));
}

#[test]
fn coincident_circles_share_area_without_boundary_points() {
    let a = c(3.0, 3.0, 1.5);
    let b = c(3.0, 3.0, 1.5);
    assert_eq!(a.relation(&b), CircleRelation::Coincident);
    assert!(a.intersection_points(&b).is_empty());
    assert!(disks::have_common_area(&[a, b]));
}

#[test]
fn zero_radius_disk_is_a_point() {
    let p = Point::new(1.0, 2.0);
    let dot = Circle::new(p, 0.0);
    assert!(dot.contains(p));
    assert!(!dot.contains(Point::new(1.1, 2.0)));
    assert!((dot.area() - 0.0).abs() < 1e-300);

    // A zero-radius disk inside a family pins the witness to its centre.
    let family = [dot, c(0.0, 0.0, 5.0), c(2.0, 2.0, 3.0)];
    let w = disks::common_point(&family).expect("point lies in both big disks");
    assert!(family.iter().all(|d| d.contains(w)));
    assert!(w.distance(p) < 1e-9);

    // Two distinct zero-radius disks can never share area.
    assert!(!disks::have_common_area(&[
        dot,
        Circle::new(Point::new(5.0, 5.0), 0.0)
    ]));
}

#[test]
fn zero_radius_tangencies_are_consistent() {
    // A point-disk on the boundary of a proper disk: tangent, one touch
    // point, and that point is the common witness.
    let disk = c(0.0, 0.0, 3.0);
    let dot = Circle::new(Point::new(3.0, 0.0), 0.0);
    assert_eq!(disk.relation(&dot), CircleRelation::Tangent);
    let w = disks::common_point(&[disk, dot]).expect("touching disks share the touch point");
    assert!(w.distance(Point::new(3.0, 0.0)) < 1e-9);
}

#[test]
fn near_degenerate_crossings_stay_on_both_boundaries() {
    // Circles closing toward external tangency: the crossing chord
    // shrinks toward a point and the quadratic loses precision. The
    // candidates must remain on both boundaries (IAC feeds them straight
    // into feasibility checks).
    for gap in [1e-3, 1e-6, 1e-9, 1e-12] {
        let a = c(0.0, 0.0, 1.0);
        let b = c(2.0 - gap, 0.0, 1.0);
        let pts = a.intersection_points(&b);
        assert!(!pts.is_empty(), "gap {gap}: lost the intersection entirely");
        for p in pts {
            assert!(a.on_boundary(p), "gap {gap}: {p:?} off first boundary");
            assert!(b.on_boundary(p), "gap {gap}: {p:?} off second boundary");
        }
    }
}

#[test]
fn deep_common_point_beats_the_witness_margin() {
    let family = [c(0.0, 0.0, 2.0), c(1.0, 0.0, 2.0), c(0.5, 0.8, 2.0)];
    let deep = disks::deep_common_point(&family).expect("family overlaps");
    let slack = family
        .iter()
        .map(|d| d.radius - d.center.distance(deep))
        .fold(f64::INFINITY, f64::min);
    assert!(
        slack > 0.3,
        "deep point should have real margin, got {slack}"
    );
}

#[test]
fn blocking_disks_identifies_the_spoiler() {
    // Two overlapping disks plus one far away: only removing the far
    // disk restores a common point.
    let family = [c(0.0, 0.0, 1.0), c(0.5, 0.0, 1.0), c(100.0, 0.0, 1.0)];
    assert!(!disks::have_common_area(&family));
    assert_eq!(disks::blocking_disks(&family), vec![2]);
}

prop! {
    /// Fuzz: families constructed to share a known point must always
    /// report a valid witness containing it.
    fn prop_constructed_families_have_witness(seed in 0u64..400, n in 1usize..10) {
        let mut rng = Rng::seed_from_u64(seed);
        let q = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
        let family: Vec<Circle> = (0..n)
            .map(|_| {
                let r = rng.gen_range(0.5..20.0);
                // Centre within r of q, so q is inside (with margin).
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                let off = rng.gen_range(0.0..r * 0.9);
                Circle::new(Point::new(q.x + off * theta.cos(), q.y + off * theta.sin()), r)
            })
            .collect();
        let w = disks::common_point(&family);
        prop_assert!(w.is_some(), "family constructed around {q:?} reported empty");
        let w = w.expect("checked above");
        for d in &family {
            prop_assert!(d.contains(w), "witness {w:?} outside {d:?}");
        }
    }

    /// Fuzz: intersection points of random crossing pairs are symmetric
    /// in argument order and always land on both boundaries.
    fn prop_intersections_symmetric_and_on_boundary(seed in 0u64..400) {
        let mut rng = Rng::seed_from_u64(seed);
        let a = c(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0), rng.gen_range(0.5..8.0));
        let b = c(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0), rng.gen_range(0.5..8.0));
        let ab = a.intersection_points(&b);
        let ba = b.intersection_points(&a);
        prop_assert_eq!(ab.len(), ba.len());
        for p in ab.iter().chain(ba.iter()) {
            prop_assert!(a.on_boundary(*p) || b.on_boundary(*p));
            prop_assert!(a.contains(*p) && b.contains(*p));
        }
    }
}
