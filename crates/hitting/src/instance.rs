//! Hitting-set instances over families of disks.

use sag_geom::{Circle, Point};

/// A geometric hitting-set instance: a family of closed disks to be hit.
///
/// Candidate points are derived once at construction: every disk centre
/// plus every pairwise boundary intersection point. Any optimal hitting
/// set can be normalised onto these candidates (slide each chosen point
/// until it is pinned by two disk boundaries, or centre it in its only
/// disk), so searching the candidates loses nothing.
#[derive(Debug, Clone)]
pub struct DiskInstance {
    disks: Vec<Circle>,
    candidates: Vec<Point>,
    /// `hits[c]` = indices of disks containing candidate `c`.
    hits: Vec<Vec<usize>>,
}

impl DiskInstance {
    /// Builds an instance and its candidate structure.
    ///
    /// # Panics
    /// Panics if `disks` is empty (a hitting set of nothing is trivially
    /// empty and callers should not ask).
    pub fn new(disks: Vec<Circle>) -> Self {
        assert!(!disks.is_empty(), "instance must contain at least one disk");
        let mut candidates: Vec<Point> = disks.iter().map(|d| d.center).collect();
        for (i, a) in disks.iter().enumerate() {
            for b in disks.iter().skip(i + 1) {
                candidates.extend(a.intersection_points(b));
            }
        }
        // Deduplicate near-coincident candidates to keep the search small
        // (expected-linear grid hashing; candidate counts grow as n²).
        let dedup: Vec<Point> = sag_geom::point::dedup_points_grid(candidates, 1e-9);
        let hits = dedup
            .iter()
            .map(|&p| {
                disks
                    .iter()
                    .enumerate()
                    .filter_map(|(i, d)| d.contains(p).then_some(i))
                    .collect()
            })
            .collect();
        DiskInstance {
            disks,
            candidates: dedup,
            hits,
        }
    }

    /// The disks of the instance.
    pub fn disks(&self) -> &[Circle] {
        &self.disks
    }

    /// The candidate points.
    pub fn candidates(&self) -> &[Point] {
        &self.candidates
    }

    /// Number of disks.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Instances are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Disk indices hit by candidate `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    pub fn hit_by(&self, c: usize) -> &[usize] {
        &self.hits[c]
    }

    /// Returns `true` if the given points hit every disk.
    pub fn is_hitting_set(&self, points: &[Point]) -> bool {
        self.disks
            .iter()
            .all(|d| points.iter().any(|&p| d.contains(p)))
    }

    /// Returns `true` if the given *candidate indices* hit every disk.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn indices_hit_all(&self, chosen: &[usize]) -> bool {
        let mut hit = vec![false; self.disks.len()];
        for &c in chosen {
            for &d in &self.hits[c] {
                hit[d] = true;
            }
        }
        hit.iter().all(|&h| h)
    }

    /// Materialises candidate indices into points.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn points_of(&self, chosen: &[usize]) -> Vec<Point> {
        chosen.iter().map(|&c| self.candidates[c]).collect()
    }

    /// Removes dominated candidates: candidate `a` is dominated by `b`
    /// when `hit(a) ⊆ hit(b)` and `a ≠ b`. Returns the surviving
    /// candidate indices (useful to shrink exact searches).
    pub fn non_dominated_candidates(&self) -> Vec<usize> {
        let sets: Vec<std::collections::BTreeSet<usize>> = self
            .hits
            .iter()
            .map(|h| h.iter().copied().collect())
            .collect();
        (0..self.candidates.len())
            .filter(|&a| {
                !(0..self.candidates.len())
                    .any(|b| b != a && sets[a].is_subset(&sets[b]) && (sets[a] != sets[b] || b < a))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn candidates_include_centres_and_crossings() {
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 2.0), c(2.0, 0.0, 2.0)]);
        // 2 centres + 2 crossing points.
        assert_eq!(inst.candidates().len(), 4);
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn hit_structure() {
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 2.0), c(2.0, 0.0, 2.0)]);
        // Centre of disk 0 hits both? distance 2 from (2,0) → on boundary → contained.
        let idx_center0 = inst
            .candidates()
            .iter()
            .position(|p| p.approx_eq(Point::new(0.0, 0.0)))
            .unwrap();
        let hits = inst.hit_by(idx_center0);
        assert!(hits.contains(&0) && hits.contains(&1));
    }

    #[test]
    fn hitting_set_predicates() {
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 1.0), c(10.0, 0.0, 1.0)]);
        assert!(!inst.is_hitting_set(&[Point::new(0.0, 0.0)]));
        assert!(inst.is_hitting_set(&[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]));
    }

    #[test]
    fn indices_hit_all_matches_points() {
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 2.0), c(1.0, 0.0, 2.0)]);
        for set in [vec![0], vec![1], vec![0, 1]] {
            assert_eq!(
                inst.indices_hit_all(&set),
                inst.is_hitting_set(&inst.points_of(&set))
            );
        }
    }

    #[test]
    fn dedup_candidates() {
        // Coincident circles produce coincident centres → dedup to one.
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 1.0), c(0.0, 0.0, 2.0)]);
        let centres = inst
            .candidates()
            .iter()
            .filter(|p| p.approx_eq(Point::ORIGIN))
            .count();
        assert_eq!(centres, 1);
    }

    #[test]
    fn non_dominated_pruning() {
        // Candidate hitting both disks dominates ones hitting a single disk.
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 2.0), c(2.0, 0.0, 2.0)]);
        let nd = inst.non_dominated_candidates();
        assert!(!nd.is_empty());
        // Every surviving candidate hits both disks (since such exist here).
        for &cand in &nd {
            assert_eq!(inst.hit_by(cand).len(), 2);
        }
    }

    #[test]
    #[should_panic]
    fn empty_instance_panics() {
        DiskInstance::new(Vec::new());
    }
}
