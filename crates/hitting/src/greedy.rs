//! Greedy hitting set (ln n approximation).

use crate::instance::DiskInstance;
use sag_geom::Point;

/// Greedy hitting set: repeatedly picks the candidate hitting the most
/// not-yet-hit disks. Ties break toward the lower candidate index for
/// determinism.
///
/// Always returns a valid hitting set (every disk contains its own centre,
/// which is among the candidates).
///
/// # Example
/// ```
/// use sag_geom::{Circle, Point};
/// use sag_hitting::{greedy::greedy_hitting_set, DiskInstance};
/// let inst = DiskInstance::new(vec![Circle::new(Point::ORIGIN, 1.0)]);
/// assert_eq!(greedy_hitting_set(&inst).len(), 1);
/// ```
pub fn greedy_hitting_set(inst: &DiskInstance) -> Vec<Point> {
    greedy_hitting_set_indices(inst)
        .into_iter()
        .map(|c| inst.candidates()[c])
        .collect()
}

/// As [`greedy_hitting_set`] but returns candidate indices.
pub fn greedy_hitting_set_indices(inst: &DiskInstance) -> Vec<usize> {
    let n_disks = inst.len();
    let n_cands = inst.candidates().len();
    let mut hit = vec![false; n_disks];
    let mut remaining = n_disks;
    let mut chosen = Vec::new();
    while remaining > 0 {
        let mut best: Option<(usize, usize)> = None; // (gain, candidate)
        for c in 0..n_cands {
            let gain = inst.hit_by(c).iter().filter(|&&d| !hit[d]).count();
            if gain > 0 {
                let better = match best {
                    None => true,
                    Some((bg, bc)) => gain > bg || (gain == bg && c < bc),
                };
                if better {
                    best = Some((gain, c));
                }
            }
        }
        let (gain, c) =
            best.expect("every disk centre is a candidate, so progress is always possible");
        chosen.push(c);
        for &d in inst.hit_by(c) {
            if !hit[d] {
                hit[d] = true;
            }
        }
        remaining -= gain;
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_geom::Circle;
    use sag_testkit::prelude::*;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn single_disk_single_point() {
        let inst = DiskInstance::new(vec![c(3.0, 4.0, 1.0)]);
        let hs = greedy_hitting_set(&inst);
        assert_eq!(hs.len(), 1);
        assert!(inst.is_hitting_set(&hs));
    }

    #[test]
    fn overlapping_cluster_one_point() {
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 2.0), c(1.0, 0.0, 2.0), c(0.5, 0.5, 2.0)]);
        let hs = greedy_hitting_set(&inst);
        assert_eq!(hs.len(), 1);
        assert!(inst.is_hitting_set(&hs));
    }

    #[test]
    fn two_separated_clusters() {
        let inst = DiskInstance::new(vec![
            c(0.0, 0.0, 2.0),
            c(1.0, 0.0, 2.0),
            c(100.0, 0.0, 2.0),
            c(101.0, 0.0, 2.0),
        ]);
        let hs = greedy_hitting_set(&inst);
        assert_eq!(hs.len(), 2);
        assert!(inst.is_hitting_set(&hs));
    }

    #[test]
    fn disjoint_disks_need_one_each() {
        let disks: Vec<Circle> = (0..5).map(|i| c(i as f64 * 10.0, 0.0, 1.0)).collect();
        let inst = DiskInstance::new(disks);
        let hs = greedy_hitting_set(&inst);
        assert_eq!(hs.len(), 5);
    }

    #[test]
    fn deterministic() {
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 2.0), c(3.0, 0.0, 2.0), c(6.0, 0.0, 2.0)]);
        let a = greedy_hitting_set_indices(&inst);
        let b = greedy_hitting_set_indices(&inst);
        assert_eq!(a, b);
    }

    prop! {
        fn prop_always_valid(seed in 0u64..400, n in 1usize..25) {
            let mut rng = Rng::seed_from_u64(seed);
            let disks: Vec<Circle> = (0..n)
                .map(|_| c(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0),
                           rng.gen_range(5.0..30.0)))
                .collect();
            let inst = DiskInstance::new(disks);
            let hs = greedy_hitting_set(&inst);
            prop_assert!(inst.is_hitting_set(&hs));
            prop_assert!(hs.len() <= n);
        }
    }
}
