//! Mustafa–Ray-style local search for geometric hitting set.
//!
//! Mustafa & Ray (SCG'09) proved that `b`-swap local search on hitting
//! sets of pseudo-disks is a PTAS: for swap size `b = O(1/ε²)` the local
//! optimum is within `(1+ε)` of the minimum. The paper's SAMC adopts that
//! PTAS for Step 4. This implementation starts from the greedy solution
//! and applies swaps of size up to `b` (replace `k ≤ b` chosen points by
//! `k − 1` candidates) until no swap improves — the canonical form of the
//! algorithm.

use crate::greedy::greedy_hitting_set_indices;
use crate::instance::DiskInstance;
use sag_geom::Point;

/// Configuration for the local search.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchConfig {
    /// Maximum swap size `b` (remove up to `b`, insert up to `b − 1`).
    /// The PTAS guarantee improves with `b`; runtime grows as
    /// `n^{O(b)}`. `b = 2` or `3` is the practical sweet spot.
    pub swap_size: usize,
    /// Hard cap on improvement rounds (safety valve; the search strictly
    /// shrinks the solution each round so it terminates on its own).
    pub max_rounds: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            swap_size: 3,
            max_rounds: 64,
        }
    }
}

/// Local-search hitting set with the default configuration.
///
/// # Example
/// ```
/// use sag_geom::{Circle, Point};
/// use sag_hitting::{local_search::local_search_hitting_set, DiskInstance};
/// let inst = DiskInstance::new(vec![
///     Circle::new(Point::new(0.0, 0.0), 2.0),
///     Circle::new(Point::new(1.0, 0.0), 2.0),
/// ]);
/// let hs = local_search_hitting_set(&inst);
/// assert!(inst.is_hitting_set(&hs));
/// ```
pub fn local_search_hitting_set(inst: &DiskInstance) -> Vec<Point> {
    local_search_with(inst, LocalSearchConfig::default())
        .into_iter()
        .map(|c| inst.candidates()[c])
        .collect()
}

/// Local-search hitting set with explicit configuration; returns candidate
/// indices.
///
/// # Panics
/// Panics if `config.swap_size == 0`.
pub fn local_search_with(inst: &DiskInstance, config: LocalSearchConfig) -> Vec<usize> {
    assert!(config.swap_size >= 1, "swap size must be ≥ 1");
    let mut current = greedy_hitting_set_indices(inst);
    for _ in 0..config.max_rounds {
        match improve_once(inst, &current, config.swap_size) {
            Some(next) => current = next,
            None => break,
        }
    }
    current
}

/// Tries one improving swap: remove `k` chosen points and re-cover the
/// disks they exclusively hit with `k − 1` candidates. Returns the
/// improved solution, or `None` at a local optimum.
fn improve_once(inst: &DiskInstance, current: &[usize], b: usize) -> Option<Vec<usize>> {
    // Fast path: try dropping a single redundant point (k = 1 swap).
    for skip in 0..current.len() {
        let rest: Vec<usize> = current
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (i != skip).then_some(c))
            .collect();
        if inst.indices_hit_all(&rest) {
            return Some(rest);
        }
    }
    let all_cands: Vec<usize> = (0..inst.candidates().len()).collect();
    // k-swaps for k = 2..=b: remove k, add k−1.
    for k in 2..=b.min(current.len()) {
        let removals = combinations(current.len(), k);
        for removal in removals {
            let rest: Vec<usize> = current
                .iter()
                .enumerate()
                .filter_map(|(i, &c)| (!removal.contains(&i)).then_some(c))
                .collect();
            // Disks uncovered after removal.
            let mut hit = vec![false; inst.len()];
            for &c in &rest {
                for &d in inst.hit_by(c) {
                    hit[d] = true;
                }
            }
            let unhit: Vec<usize> = (0..inst.len()).filter(|&d| !hit[d]).collect();
            if unhit.is_empty() {
                return Some(rest); // removal alone suffices (stronger than a swap)
            }
            // Candidates that help at all.
            let helpful: Vec<usize> = all_cands
                .iter()
                .copied()
                .filter(|&c| inst.hit_by(c).iter().any(|&d| unhit.contains(&d)))
                .collect();
            if let Some(adds) = cover_with_at_most(inst, &unhit, &helpful, k - 1) {
                let mut next = rest;
                next.extend(adds);
                debug_assert!(inst.indices_hit_all(&next));
                return Some(next);
            }
        }
    }
    None
}

/// Exhaustively searches for ≤ `limit` candidates covering all `unhit`
/// disks (tiny instances: `limit ≤ b − 1 ≤ 2` in practice).
fn cover_with_at_most(
    inst: &DiskInstance,
    unhit: &[usize],
    helpful: &[usize],
    limit: usize,
) -> Option<Vec<usize>> {
    if unhit.is_empty() {
        return Some(Vec::new());
    }
    if limit == 0 {
        return None;
    }
    // Branch on the first unhit disk.
    let d = unhit[0];
    for &c in helpful {
        if inst.hit_by(c).contains(&d) {
            let rest: Vec<usize> = unhit
                .iter()
                .copied()
                .filter(|&u| !inst.hit_by(c).contains(&u))
                .collect();
            if let Some(mut tail) = cover_with_at_most(inst, &rest, helpful, limit - 1) {
                tail.push(c);
                return Some(tail);
            }
        }
    }
    None
}

/// All k-element index combinations of `0..n` (small `k` only).
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_hitting_set;
    use crate::greedy::greedy_hitting_set;
    use sag_geom::Circle;
    use sag_testkit::prelude::*;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(3, 3).len(), 1);
        assert_eq!(combinations(3, 0).len(), 1);
    }

    #[test]
    fn local_search_valid_and_no_worse_than_greedy() {
        let disks: Vec<Circle> = vec![
            c(0.0, 0.0, 3.0),
            c(4.0, 0.0, 3.0),
            c(8.0, 0.0, 3.0),
            c(12.0, 0.0, 3.0),
            c(2.0, 4.0, 3.0),
        ];
        let inst = DiskInstance::new(disks);
        let g = greedy_hitting_set(&inst);
        let l = local_search_hitting_set(&inst);
        assert!(inst.is_hitting_set(&l));
        assert!(l.len() <= g.len());
    }

    #[test]
    fn single_disk() {
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 1.0)]);
        assert_eq!(local_search_hitting_set(&inst).len(), 1);
    }

    #[test]
    fn redundant_point_dropped() {
        // Greedy may pick a point for a cluster then another point that
        // retroactively covers it; the k=1 drop should clean up. Build a
        // case where local search definitely equals the optimum 1.
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 5.0), c(1.0, 0.0, 5.0), c(0.5, 1.0, 5.0)]);
        assert_eq!(local_search_hitting_set(&inst).len(), 1);
    }

    prop! {
        #[cases(30)]
        fn prop_local_between_exact_and_greedy(seed in 0u64..150, n in 1usize..10) {
            let mut rng = Rng::seed_from_u64(seed);
            let disks: Vec<Circle> = (0..n)
                .map(|_| c(rng.gen_range(-40.0..40.0), rng.gen_range(-40.0..40.0),
                           rng.gen_range(4.0..18.0)))
                .collect();
            let inst = DiskInstance::new(disks);
            let e = exact_hitting_set(&inst);
            let l = local_search_hitting_set(&inst);
            let g = greedy_hitting_set(&inst);
            prop_assert!(inst.is_hitting_set(&l));
            prop_assert!(e.len() <= l.len());
            prop_assert!(l.len() <= g.len());
        }
    }
}
