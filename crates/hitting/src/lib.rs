//! # sag-hitting — geometric minimum hitting set
//!
//! Step 4 of the paper's SAMC algorithm covers each zone's subscribers by
//! solving a *minimum hitting set* over their feasible-coverage disks:
//! find the fewest points (relay positions) such that every disk contains
//! at least one point. The paper adopts the Mustafa–Ray local-search PTAS
//! \[5\] for this step.
//!
//! Three solvers are provided:
//!
//! * [`greedy::greedy_hitting_set`] — classic greedy (ln n approximation),
//! * [`local_search::local_search_hitting_set`] — greedy start plus
//!   Mustafa–Ray-style `b`-swap local search (the paper's (1+ε) PTAS
//!   family; ε shrinks as the swap size grows),
//! * [`exact::exact_hitting_set`] — branch-and-bound optimum for small
//!   instances (used to measure the others' gaps in the ablation bench).
//!
//! Candidate points follow the standard normalisation: any hitting set can
//! be moved onto disk centres and pairwise circle-intersection points
//! without losing feasibility, so those finitely many candidates suffice.
//!
//! # Example
//!
//! ```
//! use sag_geom::{Circle, Point};
//! use sag_hitting::{greedy::greedy_hitting_set, instance::DiskInstance};
//!
//! let disks = vec![
//!     Circle::new(Point::new(0.0, 0.0), 2.0),
//!     Circle::new(Point::new(1.0, 0.0), 2.0),
//!     Circle::new(Point::new(10.0, 0.0), 2.0),
//! ];
//! let inst = DiskInstance::new(disks);
//! let hs = greedy_hitting_set(&inst);
//! assert!(inst.is_hitting_set(&hs));
//! assert_eq!(hs.len(), 2); // two clusters
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exact;
pub mod greedy;
pub mod instance;
pub mod local_search;

pub use instance::DiskInstance;
